package innsearch_test

import (
	"fmt"
	"math/rand"

	"innsearch"
)

// buildExampleData plants a 40-point cluster in the first three of eight
// attributes; everything else is uniform noise.
func buildExampleData() (*innsearch.Dataset, []float64) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 500)
	for i := range rows {
		row := make([]float64, 8)
		for j := range row {
			if i < 40 && j < 3 {
				row[j] = 5 + rng.NormFloat64()*0.1
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		rows[i] = row
	}
	ds, _ := innsearch.NewDataset(rows, nil)
	query := append([]float64(nil), rows[0]...)
	return ds, query
}

// The heuristic user stands in for a person at the terminal; the session
// finds the planted cluster and reports how confident the grouping is.
func ExampleNewSession() {
	ds, query := buildExampleData()
	sess, err := innsearch.NewSession(ds, query, innsearch.NewHeuristicUser(), innsearch.Config{
		Support: 40,
		Mode:    innsearch.ModeAxis,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sess.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("meaningful:", res.Diagnosis.Meaningful)
	nat := res.NaturalNeighbors()
	inCluster := 0
	for _, nb := range nat {
		if nb.ID < 40 {
			inCluster++
		}
	}
	fmt.Println("planted cluster fully recovered:", inCluster == 40)
	// Output:
	// meaningful: true
	// planted cluster fully recovered: true
}

// Diagnose can be used on any probability profile, independent of a
// session — here a plateau of ten coherent points over a noise floor.
func ExampleDiagnose() {
	probs := make([]float64, 200)
	for i := range probs {
		if i < 10 {
			probs[i] = 0.96
		} else {
			probs[i] = 0.05
		}
	}
	d := innsearch.Diagnose(probs, innsearch.DiagnosisConfig{})
	fmt.Println(d.Meaningful, d.NaturalSize)
	// Output:
	// true 10
}

// Custom users implement one method. This one accepts every view at half
// the query's density.
func ExampleUserFunc() {
	ds, query := buildExampleData()
	u := innsearch.UserFunc(func(p *innsearch.VisualProfile, preview func(tau float64) *innsearch.Region) innsearch.Decision {
		return innsearch.Decision{Tau: 0.5 * p.QueryDensity}
	})
	sess, err := innsearch.NewSession(ds, query, u, innsearch.Config{
		Support: 40, Mode: innsearch.ModeAxis, MaxMajorIterations: 2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sess.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("views answered:", res.ViewsAnswered == res.ViewsShown)
	// Output:
	// views answered: true
}
