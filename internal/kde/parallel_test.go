package kde

import (
	"context"
	"math/rand"
	"testing"

	"innsearch/internal/linalg"
)

func randomPoints(t *testing.T, n int, seed int64) *linalg.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, rng.NormFloat64()*3+rng.Float64())
		m.Set(i, 1, rng.NormFloat64()*0.5-2)
	}
	return m
}

// TestEstimate2DParallelBitIdentical is the package's half of the
// repository-wide determinism contract: the density grid must be
// bit-identical at every worker count, for both estimators.
func TestEstimate2DParallelBitIdentical(t *testing.T) {
	pts := randomPoints(t, 800, 7)
	for _, exact := range []bool{false, true} {
		serial, err := Estimate2D(pts, Options{GridSize: 40, Exact: exact, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Estimate2DContext(context.Background(), pts, Options{GridSize: 40, Exact: exact, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for i := range serial.Density {
				if par.Density[i] != serial.Density[i] {
					t.Fatalf("exact=%v workers=%d: density[%d] = %v, serial %v",
						exact, workers, i, par.Density[i], serial.Density[i])
				}
			}
		}
	}
}

func TestEstimate2DContextCanceled(t *testing.T) {
	pts := randomPoints(t, 100, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Estimate2DContext(ctx, pts, Options{GridSize: 32, Exact: true, Workers: 4}); err == nil {
		t.Fatal("want error from canceled context")
	}
}
