package kde

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"innsearch/internal/linalg"
)

func randomXY(t *testing.T, seed int64, n int) MatrixXY {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, r.NormFloat64()*3+1)
		m.Set(i, 1, r.Float64()*10-5)
	}
	return MatrixXY{M: m}
}

// estimateSharded runs the full partial/merge pipeline over the given
// row windows — the coordinator's composition, inlined for testing.
func estimateSharded(t *testing.T, src XYSource, windows [][2]int, opts Options) *Grid {
	t.Helper()
	exts := make([]Extent, len(windows))
	for k, w := range windows {
		exts[k] = CollectExtent(src, w[0], w[1])
	}
	ext := MergeExtents(exts)
	meanX, meanY := ext.Mean()
	sprs := make([]Spread, len(windows))
	for k, w := range windows {
		sprs[k] = CollectSpread(src, w[0], w[1], meanX, meanY)
	}
	g, err := PlanGrid(ext, MergeSpreads(sprs), opts)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]float64, len(windows))
	for k, w := range windows {
		if opts.Exact {
			parts[k], err = ExactPartial(context.Background(), g, src, w[0], w[1], 1)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			parts[k] = BinnedPartial(g, src, w[0], w[1])
		}
	}
	lattice, err := MergeLattices(parts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Exact {
		FinishExact(g, lattice)
	} else {
		if err := FinishBinned(context.Background(), g, lattice, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestPartialSingleShardBitIdentical is the P=1 contract at the kernel
// level: one full-range partial, merged and finished, must reproduce the
// unsharded estimator bit for bit — for both estimators.
func TestPartialSingleShardBitIdentical(t *testing.T) {
	src := randomXY(t, 41, 500)
	for _, exact := range []bool{false, true} {
		opts := Options{GridSize: 32, Exact: exact}
		want, err := Estimate2DSourceContext(context.Background(), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := estimateSharded(t, src, [][2]int{{0, src.Len()}}, opts)
		if got.MinX != want.MinX || got.MaxX != want.MaxX || got.Hx != want.Hx || got.Hy != want.Hy {
			t.Fatalf("exact=%v: grid geometry differs: got %+v bounds, want %+v", exact,
				[4]float64{got.MinX, got.MaxX, got.MinY, got.MaxY},
				[4]float64{want.MinX, want.MaxX, want.MinY, want.MaxY})
		}
		for i := range want.Density {
			if got.Density[i] != want.Density[i] {
				t.Fatalf("exact=%v: density[%d] = %v, want %v (not bit-identical)", exact, i, got.Density[i], want.Density[i])
			}
		}
	}
}

// TestPartialMergeMatchesUnsharded is the property test over random shard
// splits: the merged estimate must agree with the unsharded reference to
// ≤ 1e-10 relative at any partition width, for both estimators.
func TestPartialMergeMatchesUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	src := randomXY(t, 43, 600)
	n := src.Len()
	for _, exact := range []bool{false, true} {
		opts := Options{GridSize: 24, Exact: exact}
		want, err := Estimate2DSourceContext(context.Background(), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		scale := want.MaxDensity()
		for trial := 0; trial < 8; trial++ {
			p := 2 + r.Intn(6)
			cuts := map[int]bool{}
			for len(cuts) < p-1 {
				cuts[1+r.Intn(n-1)] = true
			}
			var windows [][2]int
			lo := 0
			for c := 1; c <= n; c++ {
				if c == n || cuts[c] {
					windows = append(windows, [2]int{lo, c})
					lo = c
				}
			}
			got := estimateSharded(t, src, windows, opts)
			for i := range want.Density {
				if d := math.Abs(got.Density[i] - want.Density[i]); d > 1e-10*scale {
					t.Fatalf("exact=%v trial %d (p=%d): density[%d] = %v, want %v (Δ %v)",
						exact, trial, p, i, got.Density[i], want.Density[i], d)
				}
			}
		}
	}
}

// TestPartialNonFinitePropagates checks the finiteness contract: the
// merged extent carries the globally-first bad row and PlanGrid rejects
// it with the estimator's error.
func TestPartialNonFinitePropagates(t *testing.T) {
	src := randomXY(t, 44, 100)
	src.M.Set(57, 1, math.NaN())
	src.M.Set(80, 0, math.Inf(1))
	a := CollectExtent(src, 0, 50)
	b := CollectExtent(src, 50, 100)
	ext := MergeExtents([]Extent{a, b})
	if ext.BadRow != 57 {
		t.Fatalf("merged BadRow = %d, want 57", ext.BadRow)
	}
	if _, err := PlanGrid(ext, Spread{N: ext.N}, Options{}); err == nil {
		t.Fatal("PlanGrid accepted a non-finite extent")
	}
}

// TestMergeLatticesShapeMismatch checks that incompatible lattices are
// rejected.
func TestMergeLatticesShapeMismatch(t *testing.T) {
	if _, err := MergeLattices([][]float64{make([]float64, 4), make([]float64, 9)}); err == nil {
		t.Fatal("mismatched lattice sizes accepted")
	}
}
