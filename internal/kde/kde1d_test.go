package kde

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEstimate1DPeaksAtCluster(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 7 + r.NormFloat64()*0.5
	}
	g, err := Estimate1D(xs, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	best, bx := -1.0, 0
	for i, d := range g.Density {
		if d > best {
			best, bx = d, i
		}
	}
	if math.Abs(g.X(bx)-7) > 0.3 {
		t.Errorf("peak at %v, want near 7", g.X(bx))
	}
}

func TestEstimate1DIntegratesToOne(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.NormFloat64() * 3
	}
	g, err := Estimate1D(xs, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for _, d := range g.Density {
		integral += d * g.Step()
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("integral = %v", integral)
	}
}

func TestEstimate1DErrors(t *testing.T) {
	if _, err := Estimate1D(nil, 16, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: %v", err)
	}
	if _, err := Estimate1D([]float64{1, 2}, 2, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("tiny grid: %v", err)
	}
	if _, err := Estimate1D([]float64{1, math.NaN()}, 16, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN: %v", err)
	}
	if _, err := Estimate1D([]float64{1, 2}, 16, -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative scale: %v", err)
	}
}

func TestEstimate1DConstantSample(t *testing.T) {
	g, err := Estimate1D([]float64{4, 4, 4, 4}, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDensity() <= 0 || math.IsInf(g.MaxDensity(), 0) {
		t.Errorf("constant-sample density %v", g.MaxDensity())
	}
}

func TestGrid1DInterp(t *testing.T) {
	g := &Grid1D{P: 4, Min: 0, Max: 3, Density: []float64{0, 1, 2, 3}}
	if got := g.InterpAt(1.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("InterpAt = %v", got)
	}
	if g.InterpAt(-1) != 0 || g.InterpAt(5) != 0 {
		t.Error("outside values should be 0")
	}
	if got := g.InterpAt(3); got != 3 {
		t.Errorf("right edge = %v", got)
	}
}

func TestPropertyEstimate1DNonNegativeFinite(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(80)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormFloat64() * math.Pow(10, float64(rr.Intn(5)-2))
		}
		g, err := Estimate1D(xs, 32, 0)
		if err != nil {
			return false
		}
		for _, d := range g.Density {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return g.MaxDensity() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
