package kde

import (
	"fmt"
	"math"

	"innsearch/internal/stats"
)

// Grid1D is a one-dimensional density estimate over an interval, used for
// attribute-marginal profiles (e.g. the terminal UI's histogram view) and
// for analyzing the distribution of meaningfulness probabilities.
type Grid1D struct {
	P        int
	Min, Max float64
	Density  []float64 // len P
	H        float64   // bandwidth used
	N        int
}

// Step returns the spacing between grid points.
func (g *Grid1D) Step() float64 { return (g.Max - g.Min) / float64(g.P-1) }

// X returns the coordinate of grid point i.
func (g *Grid1D) X(i int) float64 { return g.Min + float64(i)*g.Step() }

// MaxDensity returns the largest estimated density.
func (g *Grid1D) MaxDensity() float64 {
	var mx float64
	for _, v := range g.Density {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// InterpAt returns the linearly interpolated density at x, or 0 outside
// the grid.
func (g *Grid1D) InterpAt(x float64) float64 {
	if x < g.Min || x > g.Max {
		return 0
	}
	pos := (x - g.Min) / g.Step()
	i := int(pos)
	if i > g.P-2 {
		i = g.P - 2
	}
	frac := pos - float64(i)
	return g.Density[i]*(1-frac) + g.Density[i+1]*frac
}

// Estimate1D computes the Gaussian kernel density of xs on a regular grid
// of p points with the Silverman bandwidth (scaled by bandwidthScale; 0
// means 1). The grid spans the data range extended by three bandwidths.
func Estimate1D(xs []float64, p int, bandwidthScale float64) (*Grid1D, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: no points", ErrBadInput)
	}
	if p < MinGridSize {
		return nil, fmt.Errorf("%w: grid size %d < %d", ErrBadInput, p, MinGridSize)
	}
	if bandwidthScale == 0 {
		bandwidthScale = 1
	}
	if bandwidthScale < 0 {
		return nil, fmt.Errorf("%w: negative bandwidth scale", ErrBadInput)
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: non-finite value at index %d", ErrBadInput, i)
		}
	}
	h, err := SilvermanBandwidth(xs)
	if err != nil {
		return nil, err
	}
	h *= bandwidthScale
	lo, hi, _ := stats.MinMax(xs)
	g := &Grid1D{P: p, Min: lo - 3*h, Max: hi + 3*h, H: h, N: len(xs)}
	if g.Max == g.Min {
		g.Min -= 0.5
		g.Max += 0.5
	}
	g.Density = make([]float64, p)
	c := 1 / (float64(len(xs)) * math.Sqrt(2*math.Pi) * h)
	for i := 0; i < p; i++ {
		gx := g.X(i)
		var sum float64
		for _, x := range xs {
			d := (gx - x) / h
			sum += math.Exp(-d * d / 2)
		}
		g.Density[i] = sum * c
	}
	return g, nil
}
