package kde

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"innsearch/internal/linalg"
)

func gaussianPoints(t *testing.T, n int, cx, cy, sigma float64, seed int64) *linalg.Matrix {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, cx+r.NormFloat64()*sigma)
		m.Set(i, 1, cy+r.NormFloat64()*sigma)
	}
	return m
}

func TestSilvermanBandwidth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64() * 3
	}
	h, err := SilvermanBandwidth(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.06 * 3 * math.Pow(1000, -0.2)
	if math.Abs(h-want) > 0.15*want {
		t.Errorf("h = %v, want ≈ %v", h, want)
	}
}

func TestSilvermanBandwidthDegenerate(t *testing.T) {
	h, err := SilvermanBandwidth([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Errorf("constant sample bandwidth %v, want positive", h)
	}
	if _, err := SilvermanBandwidth(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty: %v", err)
	}
}

func TestEstimate2DErrors(t *testing.T) {
	pts := gaussianPoints(t, 50, 0, 0, 1, 2)
	cases := []struct {
		name string
		pts  *linalg.Matrix
		opts Options
	}{
		{"wrong cols", linalg.NewMatrix(5, 3), Options{}},
		{"no points", linalg.NewMatrix(0, 2), Options{}},
		{"tiny grid", pts, Options{GridSize: 2}},
		{"negative margin", pts, Options{MarginBandwidths: -1}},
		{"negative scale", pts, Options{BandwidthScale: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Estimate2D(tc.pts, tc.opts); !errors.Is(err, ErrBadInput) {
				t.Errorf("want ErrBadInput, got %v", err)
			}
		})
	}
	nan := linalg.NewMatrix(1, 2)
	nan.Set(0, 0, math.NaN())
	if _, err := Estimate2D(nan, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN input: %v", err)
	}
}

func TestEstimatePeaksAtCluster(t *testing.T) {
	pts := gaussianPoints(t, 400, 10, -5, 0.8, 3)
	g, err := Estimate2D(pts, Options{GridSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Locate the argmax node; it must be near the cluster center.
	var bx, by int
	best := -1.0
	for iy := 0; iy < g.P; iy++ {
		for ix := 0; ix < g.P; ix++ {
			if d := g.At(ix, iy); d > best {
				best, bx, by = d, ix, iy
			}
		}
	}
	if math.Abs(g.X(bx)-10) > 1 || math.Abs(g.Y(by)+5) > 1 {
		t.Errorf("peak at (%v, %v), want near (10, -5)", g.X(bx), g.Y(by))
	}
}

func TestExactVsBinnedAgree(t *testing.T) {
	pts := gaussianPoints(t, 300, 0, 0, 2, 4)
	// Add a second cluster for structure.
	r := rand.New(rand.NewSource(5))
	m := linalg.NewMatrix(450, 2)
	copy(m.Data, pts.Data)
	for i := 300; i < 450; i++ {
		m.Set(i, 0, 8+r.NormFloat64())
		m.Set(i, 1, 8+r.NormFloat64())
	}
	exact, err := Estimate2D(m, Options{GridSize: 40, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	binned, err := Estimate2D(m, Options{GridSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	peak := exact.MaxDensity()
	for i := range exact.Density {
		if diff := math.Abs(exact.Density[i] - binned.Density[i]); diff > 0.03*peak {
			t.Fatalf("node %d: exact %v binned %v (peak %v)", i, exact.Density[i], binned.Density[i], peak)
		}
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	pts := gaussianPoints(t, 500, 3, 3, 1.5, 6)
	g, err := Estimate2D(pts, Options{GridSize: 80, MarginBandwidths: 6})
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	cell := g.StepX() * g.StepY()
	for _, d := range g.Density {
		integral += d * cell
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("density integrates to %v, want ≈1", integral)
	}
}

func TestGridGeometry(t *testing.T) {
	g := &Grid{P: 5, MinX: 0, MaxX: 4, MinY: 10, MaxY: 18, Density: make([]float64, 25)}
	if g.StepX() != 1 || g.StepY() != 2 {
		t.Fatalf("steps %v %v", g.StepX(), g.StepY())
	}
	if g.X(3) != 3 || g.Y(2) != 14 {
		t.Fatalf("coords %v %v", g.X(3), g.Y(2))
	}
	cx, cy, ok := g.CellOf(3.5, 16.5)
	if !ok || cx != 3 || cy != 3 {
		t.Fatalf("CellOf = %d %d %v", cx, cy, ok)
	}
	// Max edge belongs to last cell.
	cx, cy, ok = g.CellOf(4, 18)
	if !ok || cx != 3 || cy != 3 {
		t.Fatalf("edge CellOf = %d %d %v", cx, cy, ok)
	}
	if _, _, ok := g.CellOf(-1, 12); ok {
		t.Error("outside point reported inside")
	}
}

func TestInterpAt(t *testing.T) {
	g := &Grid{P: 4, MinX: 0, MaxX: 3, MinY: 0, MaxY: 3, Density: make([]float64, 16)}
	// Density = x coordinate at each node: interpolation is exact for
	// linear fields.
	for iy := 0; iy < 4; iy++ {
		for ix := 0; ix < 4; ix++ {
			g.Set(ix, iy, float64(ix))
		}
	}
	if got := g.InterpAt(1.5, 2.2); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("InterpAt = %v, want 1.5", got)
	}
	if got := g.InterpAt(99, 0); got != 0 {
		t.Errorf("outside InterpAt = %v", got)
	}
}

func TestEvalAtMatchesGridNode(t *testing.T) {
	pts := gaussianPoints(t, 200, 0, 0, 1, 7)
	g, err := Estimate2D(pts, Options{GridSize: 24, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	ix, iy := 12, 12
	got := EvalAt(pts, g, g.X(ix), g.Y(iy))
	want := g.At(ix, iy)
	if math.Abs(got-want) > 1e-9*math.Max(want, 1e-300) {
		t.Errorf("EvalAt = %v, grid node = %v", got, want)
	}
}

func TestSampleLateral(t *testing.T) {
	pts := gaussianPoints(t, 400, 5, 5, 0.7, 8)
	g, err := Estimate2D(pts, Options{GridSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	samples := g.SampleLateral(500, rng)
	if len(samples) != 500 {
		t.Fatalf("samples %d", len(samples))
	}
	// Most samples should land near the single cluster.
	near := 0
	for _, s := range samples {
		if math.Hypot(s[0]-5, s[1]-5) < 3 {
			near++
		}
	}
	if near < 400 {
		t.Errorf("only %d/500 samples near cluster", near)
	}
	// Degenerate grid: zero density everywhere.
	zero := &Grid{P: 4, MinX: 0, MaxX: 1, MinY: 0, MaxY: 1, Density: make([]float64, 16)}
	if got := zero.SampleLateral(10, rng); len(got) != 0 {
		t.Errorf("zero-density sampling returned %d points", len(got))
	}
}

func TestBandwidthScaleSmooths(t *testing.T) {
	pts := gaussianPoints(t, 300, 0, 0, 1, 10)
	sharp, err := Estimate2D(pts, Options{GridSize: 32, BandwidthScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := Estimate2D(pts, Options{GridSize: 32, BandwidthScale: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sharp.MaxDensity() <= smooth.MaxDensity() {
		t.Errorf("oversmoothed peak %v not lower than undersmoothed %v",
			smooth.MaxDensity(), sharp.MaxDensity())
	}
}

func TestPropertyDensityNonNegativeFinite(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(100)
		m := linalg.NewMatrix(n, 2)
		for i := 0; i < n; i++ {
			m.Set(i, 0, rr.NormFloat64()*10)
			m.Set(i, 1, rr.Float64()*100)
		}
		g, err := Estimate2D(m, Options{GridSize: 16})
		if err != nil {
			return false
		}
		for _, d := range g.Density {
			if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
				return false
			}
		}
		return g.MaxDensity() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCellOfRoundTrip(t *testing.T) {
	// Any sampled point inside the grid maps to a valid cell whose
	// corners bracket it.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		g := &Grid{P: 4 + rr.Intn(20), MinX: -5, MaxX: 5, MinY: 0, MaxY: 7}
		g.Density = make([]float64, g.P*g.P)
		x := -5 + rr.Float64()*10
		y := rr.Float64() * 7
		cx, cy, ok := g.CellOf(x, y)
		if !ok {
			return false
		}
		const eps = 1e-9
		return g.X(cx) <= x+eps && x <= g.X(cx+1)+eps &&
			g.Y(cy) <= y+eps && y <= g.Y(cy+1)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIdenticalPointsDoNotCrash(t *testing.T) {
	m := linalg.NewMatrix(50, 2)
	for i := 0; i < 50; i++ {
		m.Set(i, 0, 7)
		m.Set(i, 1, -3)
	}
	g, err := Estimate2D(m, Options{GridSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDensity() <= 0 || math.IsInf(g.MaxDensity(), 0) {
		t.Errorf("degenerate data density %v", g.MaxDensity())
	}
}

func BenchmarkEstimate2DExact(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := linalg.NewMatrix(5000, 2)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate2D(m, Options{GridSize: 48, Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimate2DBinned(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := linalg.NewMatrix(5000, 2)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate2D(m, Options{GridSize: 48}); err != nil {
			b.Fatal(err)
		}
	}
}
