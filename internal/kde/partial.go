package kde

import (
	"context"
	"fmt"
	"math"
	"time"

	"innsearch/internal/parallel"
)

// This file is the partial/merge decomposition of the 2-D density
// estimate — the kernels a scatter-gather coordinator (internal/shard)
// runs over row-disjoint shards of the projected points and merges in
// ascending shard order. The estimate splits into three scatterable
// passes plus a finishing step that runs once on the merged state:
//
//	extent   — per-shard count, coordinate sums, min/max, finiteness
//	spread   — per-shard squared deviations about the global mean
//	lattice  — per-shard grid contributions (CIC weights, or raw exact
//	           node sums), merged by entrywise addition
//	finish   — bandwidths → grid geometry → convolution/normalization
//
// Determinism rules: each partial sweeps its rows in ascending order,
// partials merge in ascending shard order, and the finish runs once
// after the merge. A single partial over the full row range therefore
// carries exactly the accumulation order of the unsharded estimator —
// estimate2DSource is literally composed from these kernels — so P=1 is
// bit-identical by construction, and any P reassociates only per-entry
// float additions (≤ 1e-10 relative). All partial states are plain
// values a remote shard could ship over a wire.

// Extent is the first-pass density partial over a row range: row count,
// per-axis coordinate sums (for the global mean), exact min/max, the
// first row's coordinates (the Silverman zero-spread fallback anchors on
// them), and the first non-finite row, if any.
type Extent struct {
	N                      int
	SumX, SumY             float64
	MinX, MaxX, MinY, MaxY float64
	X0, Y0                 float64
	// BadRow is the index of the first non-finite coordinate in the
	// range, or -1. Merged extents keep the smallest across shards.
	BadRow int
}

// CollectExtent sweeps rows [lo, hi) of points in ascending order. An
// empty range yields Extent{N: 0, BadRow: -1}.
func CollectExtent(points XYSource, lo, hi int) Extent {
	e := Extent{BadRow: -1}
	for i := lo; i < hi; i++ {
		x, y := points.XY(i)
		if e.BadRow < 0 && (math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0)) {
			e.BadRow = i
		}
		if e.N == 0 {
			e.MinX, e.MaxX, e.MinY, e.MaxY = x, x, y, y
			e.X0, e.Y0 = x, y
		} else {
			if x < e.MinX {
				e.MinX = x
			}
			if x > e.MaxX {
				e.MaxX = x
			}
			if y < e.MinY {
				e.MinY = y
			}
			if y > e.MaxY {
				e.MaxY = y
			}
		}
		e.SumX += x
		e.SumY += y
		e.N++
	}
	return e
}

// Mean finishes the extent's first moment: sum / n per axis, the
// arithmetic of stats.Mean.
func (e Extent) Mean() (mx, my float64) {
	return e.SumX / float64(e.N), e.SumY / float64(e.N)
}

// MergeExtents folds extent partials in the order given (ascending shard
// order). Min/max are exact under any grouping; the sums reassociate.
func MergeExtents(parts []Extent) Extent {
	out := Extent{BadRow: -1}
	for _, p := range parts {
		if p.N == 0 {
			continue
		}
		if out.N == 0 {
			out = p
			continue
		}
		if p.MinX < out.MinX {
			out.MinX = p.MinX
		}
		if p.MaxX > out.MaxX {
			out.MaxX = p.MaxX
		}
		if p.MinY < out.MinY {
			out.MinY = p.MinY
		}
		if p.MaxY > out.MaxY {
			out.MaxY = p.MaxY
		}
		out.SumX += p.SumX
		out.SumY += p.SumY
		out.N += p.N
		if p.BadRow >= 0 && (out.BadRow < 0 || p.BadRow < out.BadRow) {
			out.BadRow = p.BadRow
		}
	}
	return out
}

// Spread is the second-pass density partial: per-axis sums of squared
// deviations about the global mean fixed by the merged extents.
type Spread struct {
	N        int
	SqX, SqY float64
}

// CollectSpread sweeps rows [lo, hi) in ascending order, accumulating
// squared deviations about (meanX, meanY) — the centered pass of
// stats.Variance with the mean hoisted out.
func CollectSpread(points XYSource, lo, hi int, meanX, meanY float64) Spread {
	var s Spread
	for i := lo; i < hi; i++ {
		x, y := points.XY(i)
		dx := x - meanX
		s.SqX += dx * dx
		dy := y - meanY
		s.SqY += dy * dy
		s.N++
	}
	return s
}

// MergeSpreads folds spread partials in the order given.
func MergeSpreads(parts []Spread) Spread {
	var out Spread
	for _, p := range parts {
		out.SqX += p.SqX
		out.SqY += p.SqY
		out.N += p.N
	}
	return out
}

// silvermanFromSpread is SilvermanBandwidth computed from merged moments
// instead of a sample slice: sd = √(sq/n), with the same constant-sample
// fallback anchored on the first row's coordinate.
func silvermanFromSpread(sq float64, n int, first float64) float64 {
	sd := math.Sqrt(sq / float64(n))
	if sd > 0 {
		return 1.06 * sd * math.Pow(float64(n), -0.2)
	}
	scale := math.Abs(first)
	if scale < 1 {
		scale = 1
	}
	return 1e-3 * scale
}

// PlanGrid turns merged extent and spread partials into the grid the
// lattice pass scatters into: Silverman bandwidths (× BandwidthScale),
// margin-widened bounds with the degenerate-extent fallback, resolution,
// and a zeroed density lattice. opts is normalized here, so callers may
// pass options as-is.
func PlanGrid(ext Extent, spr Spread, opts Options) (*Grid, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if ext.N == 0 {
		return nil, fmt.Errorf("%w: no points", ErrBadInput)
	}
	if ext.BadRow >= 0 {
		return nil, fmt.Errorf("%w: non-finite coordinate at row %d", ErrBadInput, ext.BadRow)
	}
	if spr.N != ext.N {
		return nil, fmt.Errorf("%w: spread over %d rows, extent over %d", ErrBadInput, spr.N, ext.N)
	}
	hx := silvermanFromSpread(spr.SqX, ext.N, ext.X0) * opts.BandwidthScale
	hy := silvermanFromSpread(spr.SqY, ext.N, ext.Y0) * opts.BandwidthScale
	g := &Grid{
		P:    opts.GridSize,
		MinX: ext.MinX - opts.MarginBandwidths*hx,
		MaxX: ext.MaxX + opts.MarginBandwidths*hx,
		MinY: ext.MinY - opts.MarginBandwidths*hy,
		MaxY: ext.MaxY + opts.MarginBandwidths*hy,
		Hx:   hx, Hy: hy, N: ext.N,
	}
	if g.MaxX == g.MinX {
		g.MinX -= 0.5
		g.MaxX += 0.5
	}
	if g.MaxY == g.MinY {
		g.MinY -= 0.5
		g.MaxY += 0.5
	}
	g.Density = make([]float64, g.P*g.P)
	g.Binned = !opts.Exact
	return g, nil
}

// BinnedPartial scatters rows [lo, hi) onto a fresh weight lattice with
// bilinear cloud-in-cell weights — the binned estimator's serial scatter
// restricted to one shard's rows, in ascending order.
func BinnedPartial(g *Grid, points XYSource, lo, hi int) []float64 {
	p := g.P
	weights := make([]float64, p*p)
	sx, sy := g.StepX(), g.StepY()
	for i := lo; i < hi; i++ {
		x, y := points.XY(i)
		fx := (x - g.MinX) / sx
		fy := (y - g.MinY) / sy
		ix := int(fx)
		iy := int(fy)
		if ix < 0 {
			ix = 0
		}
		if iy < 0 {
			iy = 0
		}
		if ix > p-2 {
			ix = p - 2
		}
		if iy > p-2 {
			iy = p - 2
		}
		rx := fx - float64(ix)
		ry := fy - float64(iy)
		if rx < 0 {
			rx = 0
		} else if rx > 1 {
			rx = 1
		}
		if ry < 0 {
			ry = 0
		} else if ry > 1 {
			ry = 1
		}
		weights[iy*p+ix] += (1 - rx) * (1 - ry)
		weights[iy*p+ix+1] += rx * (1 - ry)
		weights[(iy+1)*p+ix] += (1 - rx) * ry
		weights[(iy+1)*p+ix+1] += rx * ry
	}
	return weights
}

// ExactPartial computes raw per-node kernel sums over rows [lo, hi) — the
// exact estimator's point loop restricted to one shard, before the 1/N
// normalization (which Finish applies once, after the merge). Grid rows
// shard across workers; each node's sum runs the shard's points in
// ascending order.
func ExactPartial(ctx context.Context, g *Grid, points XYSource, lo, hi, workers int) ([]float64, error) {
	m := hi - lo
	xs := make([]float64, m)
	ys := make([]float64, m)
	for i := 0; i < m; i++ {
		xs[i], ys[i] = points.XY(lo + i)
	}
	lattice := make([]float64, g.P*g.P)
	err := parallel.ForShards(ctx, workers, g.P, func(_ context.Context, _, rlo, rhi int) error {
		for iy := rlo; iy < rhi; iy++ {
			gy := g.Y(iy)
			for ix := 0; ix < g.P; ix++ {
				gx := g.X(ix)
				var sum float64
				for i := 0; i < m; i++ {
					dx := (gx - xs[i]) / g.Hx
					dy := (gy - ys[i]) / g.Hy
					sum += math.Exp(-(dx*dx + dy*dy) / 2)
				}
				lattice[iy*g.P+ix] = sum
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lattice, nil
}

// MergeLattices folds lattice partials (CIC weights or exact node sums)
// by entrywise addition in the order given.
func MergeLattices(parts [][]float64) ([]float64, error) {
	var out []float64
	for k, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = append([]float64(nil), p...)
			continue
		}
		if len(p) != len(out) {
			return nil, fmt.Errorf("%w: merge lattice %d of %d cells into %d", ErrBadInput, k, len(p), len(out))
		}
		for i, v := range p {
			out[i] += v
		}
	}
	return out, nil
}

// FinishExact normalizes a merged exact lattice into g's densities:
// node sum × (1/N) × cx × cy, the exact estimator's per-node finish.
func FinishExact(g *Grid, lattice []float64) {
	invN := 1 / float64(g.N)
	cx := 1 / (math.Sqrt(2*math.Pi) * g.Hx)
	cy := 1 / (math.Sqrt(2*math.Pi) * g.Hy)
	for iy := 0; iy < g.P; iy++ {
		for ix := 0; ix < g.P; ix++ {
			g.Set(ix, iy, lattice[iy*g.P+ix]*invN*cx*cy)
		}
	}
}

// FinishBinned convolves a merged CIC weight lattice with the separable
// Gaussian taps and normalizes into g's densities — the binned
// estimator's convolution and scaling, bit-identical at any worker count.
func FinishBinned(ctx context.Context, g *Grid, weights []float64, workers int) error {
	p := g.P
	kx := gaussianTaps(g.Hx, g.StepX())
	ky := gaussianTaps(g.Hy, g.StepY())
	tmp := make([]float64, p*p)
	out := g.Density
	err := parallel.ForShards(ctx, workers, p, func(_ context.Context, _, lo, hi int) error {
		convolveRows(weights, tmp, p, kx, lo, hi)
		return nil
	})
	if err != nil {
		return err
	}
	err = parallel.ForShards(ctx, workers, p, func(_ context.Context, _, lo, hi int) error {
		convolveCols(tmp, out, p, ky, lo, hi)
		return nil
	})
	if err != nil {
		return err
	}
	invN := 1 / float64(g.N)
	cx := 1 / (math.Sqrt(2*math.Pi) * g.Hx)
	cy := 1 / (math.Sqrt(2*math.Pi) * g.Hy)
	for i := range out {
		out[i] *= invN * cx * cy
	}
	return nil
}

// stamp records the density evaluation wall time when a clock is
// configured; shared by the composed estimators.
func stamp(opts Options) (start time.Time, stop func(*Grid)) {
	if opts.Clock == nil {
		return time.Time{}, func(*Grid) {}
	}
	start = opts.Clock()
	return start, func(g *Grid) { g.BuildTime = opts.Clock().Sub(start) }
}
