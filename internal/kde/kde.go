// Package kde implements the kernel density estimation that drives the
// paper's visual profiles (§2.2): Gaussian product kernels with the
// Silverman bandwidth rule h = 1.06·σ·N^(−1/5), evaluated over a p×p grid
// of a 2-D projection. Both an exact estimator and a fast linear-binned
// estimator (separable convolution over the grid) are provided; the binned
// path is what interactive sessions use, the exact path is the reference
// the tests compare against.
package kde

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"innsearch/internal/linalg"
	"innsearch/internal/stats"
)

// ErrBadInput flags invalid estimation inputs (no points, wrong shape,
// non-finite values, too-small grid).
var ErrBadInput = errors.New("kde: bad input")

// MinGridSize is the smallest usable density grid resolution.
const MinGridSize = 4

// SilvermanBandwidth returns 1.06·σ·n^(−1/5) for the sample xs, the
// normal-reference rule the paper cites from Silverman (1986). A zero
// standard deviation (constant sample) yields a small positive fallback
// proportional to max(|x|, 1) so downstream density evaluation stays
// finite.
func SilvermanBandwidth(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("%w: empty sample", ErrBadInput)
	}
	sd, err := stats.StdDev(xs)
	if err != nil {
		return 0, err
	}
	n := float64(len(xs))
	if sd > 0 {
		return 1.06 * sd * math.Pow(n, -0.2), nil
	}
	scale := math.Abs(xs[0])
	if scale < 1 {
		scale = 1
	}
	return 1e-3 * scale, nil
}

// Grid is a p×p lattice of density values over an axis-aligned rectangle
// of a 2-D projection. Index (ix, iy) maps to the point
// (MinX + ix·StepX(), MinY + iy·StepY()).
type Grid struct {
	P                      int
	MinX, MaxX, MinY, MaxY float64
	Density                []float64 // len P*P, row-major by iy
	Hx, Hy                 float64   // bandwidths used for the estimate
	N                      int       // number of data points estimated from
	// Binned reports which estimator produced the grid (the fast
	// linear-binned path or the exact reference).
	Binned bool
	// BuildTime is the wall time of the density evaluation, measured
	// against Options.Clock. Zero when no clock was configured — timing is
	// opt-in so untraced sessions pay no clock reads.
	BuildTime time.Duration
}

// StepX returns the grid spacing along x.
func (g *Grid) StepX() float64 { return (g.MaxX - g.MinX) / float64(g.P-1) }

// StepY returns the grid spacing along y.
func (g *Grid) StepY() float64 { return (g.MaxY - g.MinY) / float64(g.P-1) }

// X returns the x coordinate of grid column ix.
func (g *Grid) X(ix int) float64 { return g.MinX + float64(ix)*g.StepX() }

// Y returns the y coordinate of grid row iy.
func (g *Grid) Y(iy int) float64 { return g.MinY + float64(iy)*g.StepY() }

// At returns the density at grid node (ix, iy).
func (g *Grid) At(ix, iy int) float64 { return g.Density[iy*g.P+ix] }

// Set assigns the density at grid node (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) { g.Density[iy*g.P+ix] = v }

// MaxDensity returns the largest grid density.
func (g *Grid) MaxDensity() float64 {
	var mx float64
	for _, v := range g.Density {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// CellOf returns the elementary rectangle (cell) indices containing the
// point (x, y); cells are indexed 0 … P−2 per axis. Points outside the
// grid return ok = false. A point exactly on the max edge belongs to the
// last cell.
func (g *Grid) CellOf(x, y float64) (cx, cy int, ok bool) {
	if x < g.MinX || x > g.MaxX || y < g.MinY || y > g.MaxY {
		return 0, 0, false
	}
	cx = int((x - g.MinX) / g.StepX())
	cy = int((y - g.MinY) / g.StepY())
	if cx > g.P-2 {
		cx = g.P - 2
	}
	if cy > g.P-2 {
		cy = g.P - 2
	}
	return cx, cy, true
}

// InterpAt returns the bilinearly interpolated density at (x, y), or 0
// outside the grid.
func (g *Grid) InterpAt(x, y float64) float64 {
	cx, cy, ok := g.CellOf(x, y)
	if !ok {
		return 0
	}
	fx := (x - g.X(cx)) / g.StepX()
	fy := (y - g.Y(cy)) / g.StepY()
	d00 := g.At(cx, cy)
	d10 := g.At(cx+1, cy)
	d01 := g.At(cx, cy+1)
	d11 := g.At(cx+1, cy+1)
	return d00*(1-fx)*(1-fy) + d10*fx*(1-fy) + d01*(1-fx)*fy + d11*fx*fy
}

// XYSource yields 2-D coordinates by row index. It is the row-accessor
// interface the density and selection layers accept so that dataset views
// (or any other coordinate holder) can feed them without first being
// copied into column slices or matrices.
type XYSource interface {
	Len() int
	XY(i int) (x, y float64)
}

// MatrixXY adapts the first two columns of a matrix to XYSource.
type MatrixXY struct{ M *linalg.Matrix }

// Len returns the number of rows.
func (s MatrixXY) Len() int { return s.M.Rows }

// XY returns row i's first two columns.
func (s MatrixXY) XY(i int) (float64, float64) { return s.M.At(i, 0), s.M.At(i, 1) }

// Options tunes Estimate2D.
type Options struct {
	// GridSize is p, the number of grid points per axis (≥ MinGridSize).
	GridSize int
	// Exact forces the O(N·p²) reference estimator instead of the
	// linear-binned fast path.
	Exact bool
	// MarginBandwidths widens the grid bounding box by this many
	// bandwidths beyond the data extent (default 3).
	MarginBandwidths float64
	// BandwidthScale multiplies the Silverman bandwidths; 1 when zero.
	// Values > 1 oversmooth, < 1 undersmooth (used by the ablations).
	BandwidthScale float64
	// Workers caps the number of goroutines used for grid evaluation;
	// values ≤ 0 mean GOMAXPROCS. Grid rows are sharded across workers
	// and every row is computed exactly as in the serial path, so the
	// estimate is bit-identical at any worker count.
	Workers int
	// Clock, when non-nil, is read once before and once after the density
	// evaluation and the difference recorded as Grid.BuildTime — the KDE
	// grid-build timing of the telemetry layer. Tests inject deterministic
	// clocks here; nil (the default) skips timing entirely.
	Clock func() time.Time
}

func (o Options) normalized() (Options, error) {
	if o.GridSize == 0 {
		o.GridSize = 48
	}
	if o.GridSize < MinGridSize {
		return o, fmt.Errorf("%w: grid size %d < %d", ErrBadInput, o.GridSize, MinGridSize)
	}
	if o.MarginBandwidths == 0 {
		o.MarginBandwidths = 3
	}
	if o.MarginBandwidths < 0 {
		return o, fmt.Errorf("%w: negative margin", ErrBadInput)
	}
	if o.BandwidthScale == 0 {
		o.BandwidthScale = 1
	}
	if o.BandwidthScale < 0 {
		return o, fmt.Errorf("%w: negative bandwidth scale", ErrBadInput)
	}
	return o, nil
}

// Estimate2D computes the kernel density of the n×2 point matrix on a p×p
// grid. Densities are true probability densities (they integrate to ≈1
// over the plane).
func Estimate2D(points *linalg.Matrix, opts Options) (*Grid, error) {
	return Estimate2DContext(context.Background(), points, opts)
}

// Estimate2DContext is Estimate2D with cooperative cancellation: grid
// evaluation checks ctx between row shards and returns the context's error
// once canceled. Parallelism is controlled by Options.Workers.
func Estimate2DContext(ctx context.Context, points *linalg.Matrix, opts Options) (*Grid, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if points.Cols != 2 {
		return nil, fmt.Errorf("%w: points have %d columns, want 2", ErrBadInput, points.Cols)
	}
	return estimate2DSource(ctx, MatrixXY{M: points}, opts)
}

// Estimate2DSourceContext is Estimate2DContext over an XYSource: the same
// estimate — same bandwidths, bounds, and densities, bit for bit — without
// requiring the coordinates to live in a matrix.
func Estimate2DSourceContext(ctx context.Context, points XYSource, opts Options) (*Grid, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	return estimate2DSource(ctx, points, opts)
}

// estimate2DSource is the shared implementation behind the public
// estimators, composed literally from the partial/merge kernels of
// partial.go run as one full-range partial: extent → spread → grid plan →
// lattice → finish. Composing the sharded kernels here (instead of
// keeping a separate monolithic path) is what makes the P=1 sharded
// estimate bit-identical to the unsharded one by construction. opts must
// already be normalized — each entry point validates and defaults the
// options exactly once before delegating here (PlanGrid re-normalizes,
// which is idempotent).
func estimate2DSource(ctx context.Context, points XYSource, opts Options) (*Grid, error) {
	n := points.Len()
	ext := CollectExtent(points, 0, n)
	if ext.N == 0 {
		return nil, fmt.Errorf("%w: no points", ErrBadInput)
	}
	if ext.BadRow >= 0 {
		return nil, fmt.Errorf("%w: non-finite coordinate at row %d", ErrBadInput, ext.BadRow)
	}
	meanX, meanY := ext.Mean()
	spr := CollectSpread(points, 0, n, meanX, meanY)
	g, err := PlanGrid(ext, spr, opts)
	if err != nil {
		return nil, err
	}
	_, stop := stamp(opts)
	if opts.Exact {
		lattice, err := ExactPartial(ctx, g, points, 0, n, opts.Workers)
		if err != nil {
			return nil, err
		}
		FinishExact(g, lattice)
	} else {
		weights := BinnedPartial(g, points, 0, n)
		if err := FinishBinned(ctx, g, weights, opts.Workers); err != nil {
			return nil, err
		}
	}
	stop(g)
	return g, nil
}

// gaussianTaps samples exp(−(k·step)²/(2h²)) for k = −R…R with R = ⌈5h/step⌉.
func gaussianTaps(h, step float64) []float64 {
	r := int(math.Ceil(5 * h / step))
	if r < 1 {
		r = 1
	}
	taps := make([]float64, 2*r+1)
	for k := -r; k <= r; k++ {
		d := float64(k) * step / h
		taps[k+r] = math.Exp(-d * d / 2)
	}
	return taps
}

// convolveRows convolves rows loY ≤ iy < hiY of the p×p lattice with taps.
func convolveRows(in, out []float64, p int, taps []float64, loY, hiY int) {
	r := len(taps) / 2
	for iy := loY; iy < hiY; iy++ {
		row := in[iy*p : (iy+1)*p]
		dst := out[iy*p : (iy+1)*p]
		for ix := 0; ix < p; ix++ {
			var sum float64
			lo := ix - r
			if lo < 0 {
				lo = 0
			}
			hi := ix + r
			if hi > p-1 {
				hi = p - 1
			}
			for j := lo; j <= hi; j++ {
				sum += row[j] * taps[j-ix+r]
			}
			dst[ix] = sum
		}
	}
}

// convolveCols convolves columns loX ≤ ix < hiX of the p×p lattice with
// taps.
func convolveCols(in, out []float64, p int, taps []float64, loX, hiX int) {
	r := len(taps) / 2
	for ix := loX; ix < hiX; ix++ {
		for iy := 0; iy < p; iy++ {
			var sum float64
			lo := iy - r
			if lo < 0 {
				lo = 0
			}
			hi := iy + r
			if hi > p-1 {
				hi = p - 1
			}
			for j := lo; j <= hi; j++ {
				sum += in[j*p+ix] * taps[j-iy+r]
			}
			out[iy*p+ix] = sum
		}
	}
}

// EvalAt computes the exact kernel density of the n×2 point matrix at a
// single location, using the same bandwidths as the grid g (so values are
// comparable with grid densities).
func EvalAt(points *linalg.Matrix, g *Grid, x, y float64) float64 {
	n := points.Rows
	if n == 0 {
		return 0
	}
	c := 1 / (float64(n) * 2 * math.Pi * g.Hx * g.Hy)
	var sum float64
	for i := 0; i < n; i++ {
		dx := (x - points.At(i, 0)) / g.Hx
		dy := (y - points.At(i, 1)) / g.Hy
		sum += math.Exp(-(dx*dx + dy*dy) / 2)
	}
	return sum * c
}

// SampleLateral draws m "fictitious" points distributed proportionally to
// the grid density — the paper's lateral density plot (Figure 1 uses 500
// such points). Sampling picks a grid cell by its density mass and then a
// uniform position inside the cell.
func (g *Grid) SampleLateral(m int, rng *rand.Rand) [][2]float64 {
	cells := (g.P - 1) * (g.P - 1)
	cum := make([]float64, cells+1)
	for cy := 0; cy < g.P-1; cy++ {
		for cx := 0; cx < g.P-1; cx++ {
			mass := g.At(cx, cy) + g.At(cx+1, cy) + g.At(cx, cy+1) + g.At(cx+1, cy+1)
			idx := cy*(g.P-1) + cx
			cum[idx+1] = cum[idx] + mass
		}
	}
	total := cum[cells]
	out := make([][2]float64, 0, m)
	if total <= 0 {
		return out
	}
	for i := 0; i < m; i++ {
		t := rng.Float64() * total
		// Binary search for the cell.
		lo, hi := 0, cells
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		cx := lo % (g.P - 1)
		cy := lo / (g.P - 1)
		x := g.X(cx) + rng.Float64()*g.StepX()
		y := g.Y(cy) + rng.Float64()*g.StepY()
		out = append(out, [2]float64{x, y})
	}
	return out
}
