// Package stats provides the statistical primitives the interactive
// nearest-neighbor system depends on: the standard normal distribution
// (used by the meaningfulness quantification of §3 of the paper), moment
// estimators, order statistics, and retrieval-quality metrics
// (precision/recall/F1 and classification accuracy for the paper's
// Tables 1 and 2).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// NormalCDF returns Φ(x), the cumulative distribution function of the
// standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalPDF returns the standard normal density at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// NormalQuantile returns Φ⁻¹(p) for p ∈ (0, 1). It uses the Acklam
// rational approximation refined by one Halley step, accurate to around
// 1e-15 over the full open interval. It returns ±Inf at p ∈ {0, 1} and
// NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population (maximum-likelihood, divide-by-n)
// variance of xs, matching the covariance convention in internal/linalg.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-quantile (q ∈ [0,1]) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Retrieval summarizes a retrieved set against a relevant (ground-truth)
// set, as used in the paper's Table 1.
type Retrieval struct {
	Retrieved int // |returned|
	Relevant  int // |ground truth|
	Hits      int // |returned ∩ ground truth|
}

// EvalRetrieval computes the overlap statistics between a returned set of
// item IDs and the relevant set. Duplicate IDs in either slice are
// counted once, so Precision and Recall stay within [0, 1].
func EvalRetrieval(returned, relevant []int) Retrieval {
	rel := make(map[int]bool, len(relevant))
	for _, id := range relevant {
		rel[id] = true
	}
	var r Retrieval
	r.Relevant = len(rel)
	seen := make(map[int]bool, len(returned))
	for _, id := range returned {
		if seen[id] {
			continue
		}
		seen[id] = true
		r.Retrieved++
		if rel[id] {
			r.Hits++
		}
	}
	return r
}

// Precision returns Hits/Retrieved, or 0 when nothing was retrieved.
func (r Retrieval) Precision() float64 {
	if r.Retrieved == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Retrieved)
}

// Recall returns Hits/Relevant, or 0 when the relevant set is empty.
func (r Retrieval) Recall() float64 {
	if r.Relevant == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Relevant)
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func (r Retrieval) F1() float64 { return r.FBeta(1) }

// FBeta returns the F_β score, which weights recall β times as heavily as
// precision (β > 1 leans toward recall, β < 1 toward precision). It is 0
// when both precision and recall are 0, and NaN for β ≤ 0.
func (r Retrieval) FBeta(beta float64) float64 {
	if beta <= 0 {
		return math.NaN()
	}
	p, rc := r.Precision(), r.Recall()
	b2 := beta * beta
	den := b2*p + rc
	if den == 0 {
		return 0
	}
	return (1 + b2) * p * rc / den
}

// Accuracy returns the fraction of correct predictions. The slices must
// have equal length; an empty input yields 0.
func Accuracy(predicted, actual []int) float64 {
	if len(predicted) != len(actual) || len(predicted) == 0 {
		return 0
	}
	correct := 0
	for i := range predicted {
		if predicted[i] == actual[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(predicted))
}

// ArgsortDesc returns the indices that sort xs in descending order. Ties
// break by ascending index so the result is deterministic.
func ArgsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}

// ArgsortAsc returns the indices that sort xs in ascending order, with
// ties broken by ascending index.
func ArgsortAsc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// TopK returns the indices of the k largest values of xs in descending
// value order. k is clamped to len(xs).
func TopK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	if k <= 0 {
		return nil
	}
	return ArgsortDesc(xs)[:k]
}

// Overlap returns |a ∩ b| / max(|a|, |b|) treating the int slices as sets;
// it is the termination statistic comparing top-s sets across successive
// major iterations (§3). Two empty sets overlap fully (1).
func Overlap(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	inter := 0
	seen := make(map[int]bool, len(b))
	for _, x := range b {
		if seen[x] {
			continue
		}
		seen[x] = true
		if set[x] {
			inter++
		}
	}
	den := len(set)
	if len(seen) > den {
		den = len(seen)
	}
	return float64(inter) / float64(den)
}

// KendallTau returns Kendall's τ rank correlation between two equal-length
// value slices: the normalized difference of concordant and discordant
// pairs, in [−1, 1]. Tied pairs in either slice are excluded from the
// denominator (τ_b without the full tie correction — adequate for the
// continuous distance vectors this system compares). It returns 0 for
// slices shorter than 2 and NaN-free output for any finite input.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: kendall length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	var concordant, discordant int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 || db == 0:
				// tie: contributes to neither
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 0, nil
	}
	return float64(concordant-discordant) / float64(total), nil
}
