package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnown(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-6, 9.865876450376946e-10},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalPDF(t *testing.T) {
	if got := NormalPDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Errorf("NormalPDF(0) = %v", got)
	}
	if NormalPDF(3) >= NormalPDF(0) {
		t.Error("density should decrease away from 0")
	}
	if math.Abs(NormalPDF(2)-NormalPDF(-2)) > 1e-16 {
		t.Error("density should be symmetric")
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ∓Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) || !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("out-of-range p should return NaN")
	}
	if got := NormalQuantile(0.5); math.Abs(got) > 1e-14 {
		t.Errorf("median = %v", got)
	}
	if got := NormalQuantile(0.975); math.Abs(got-1.959963984540054) > 1e-10 {
		t.Errorf("q(0.975) = %v", got)
	}
}

func TestPropertyQuantileCDFInverse(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		p := rr.Float64()*0.9998 + 0.0001
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || v != 4 {
		t.Fatalf("Variance = %v, %v", v, err)
	}
	sd, err := StdDev(xs)
	if err != nil || sd != 2 {
		t.Fatalf("StdDev = %v, %v", sd, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil) err = %v", err)
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Variance(nil) err = %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, tc := range tests {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Input must not be mutated (sorted).
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected range error")
	}
	one, err := Quantile([]float64{42}, 0.7)
	if err != nil || one != 42 {
		t.Errorf("single-element quantile = %v, %v", one, err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrievalMetrics(t *testing.T) {
	r := EvalRetrieval([]int{1, 2, 3, 4}, []int{3, 4, 5})
	if r.Hits != 2 || r.Retrieved != 4 || r.Relevant != 3 {
		t.Fatalf("retrieval = %+v", r)
	}
	if got := r.Precision(); got != 0.5 {
		t.Errorf("precision = %v", got)
	}
	if got := r.Recall(); math.Abs(got-2.0/3.0) > 1e-15 {
		t.Errorf("recall = %v", got)
	}
	wantF1 := 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0/3.0)
	if got := r.F1(); math.Abs(got-wantF1) > 1e-15 {
		t.Errorf("f1 = %v", got)
	}
	empty := EvalRetrieval(nil, nil)
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty retrieval should score 0 everywhere")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3.0) > 1e-15 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Error("mismatched lengths should yield 0")
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty should yield 0")
	}
}

func TestArgsortAndTopK(t *testing.T) {
	xs := []float64{0.3, 0.9, 0.1, 0.9}
	desc := ArgsortDesc(xs)
	if desc[0] != 1 || desc[1] != 3 { // stable: ties by index
		t.Errorf("ArgsortDesc = %v", desc)
	}
	asc := ArgsortAsc(xs)
	if asc[0] != 2 || asc[3] != 3 {
		t.Errorf("ArgsortAsc = %v", asc)
	}
	top := TopK(xs, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(xs, 99); len(got) != 4 {
		t.Errorf("TopK clamp = %v", got)
	}
	if TopK(xs, 0) != nil {
		t.Error("TopK(0) should be nil")
	}
}

func TestOverlap(t *testing.T) {
	tests := []struct {
		name string
		a, b []int
		want float64
	}{
		{"identical", []int{1, 2, 3}, []int{3, 2, 1}, 1},
		{"disjoint", []int{1, 2}, []int{3, 4}, 0},
		{"partial", []int{1, 2, 3, 4}, []int{3, 4, 5, 6}, 0.5},
		{"unequal sizes", []int{1}, []int{1, 2, 3, 4}, 0.25},
		{"both empty", nil, nil, 1},
		{"one empty", []int{1}, nil, 0},
		{"duplicates", []int{1, 1, 2}, []int{1, 2, 2}, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Overlap(tc.a, tc.b); math.Abs(got-tc.want) > 1e-15 {
				t.Errorf("Overlap = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPropertyOverlapSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := make([]int, rr.Intn(20))
		b := make([]int, rr.Intn(20))
		for i := range a {
			a[i] = rr.Intn(10)
		}
		for i := range b {
			b[i] = rr.Intn(10)
		}
		o1, o2 := Overlap(a, b), Overlap(b, a)
		return o1 == o2 && o1 >= 0 && o1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrecisionRecallBounds(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		returned := make([]int, rr.Intn(30))
		relevant := make([]int, rr.Intn(30))
		for i := range returned {
			returned[i] = rr.Intn(15)
		}
		for i := range relevant {
			relevant[i] = rr.Intn(15)
		}
		r := EvalRetrieval(returned, relevant)
		p, rc, f1 := r.Precision(), r.Recall(), r.F1()
		return p >= 0 && p <= 1 && rc >= 0 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKendallTau(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical order", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, 1},
		{"reversed", []float64{1, 2, 3}, []float64{3, 2, 1}, -1},
		{"short", []float64{1}, []float64{2}, 0},
		{"all tied", []float64{5, 5, 5}, []float64{1, 2, 3}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := KendallTau(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-15 {
				t.Errorf("tau = %v, want %v", got, tc.want)
			}
		})
	}
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPropertyKendallTauBoundsAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rr.NormFloat64(), rr.NormFloat64()
		}
		t1, err1 := KendallTau(a, b)
		t2, err2 := KendallTau(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		self, err := KendallTau(a, a)
		if err != nil || self != 1 {
			return false
		}
		return t1 == t2 && t1 >= -1 && t1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
