package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/server"
	"innsearch/internal/server/wire"
	"innsearch/internal/synth"
)

// fleetSpec is the synthetic dataset both the test servers and the
// client-side ground truth regenerate — the deployment contract the
// fleet relies on.
const fleetSpec = "case1:n=400:seed=7"

func fleetDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	pd, err := synth.FromSpec(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	return pd.Data
}

func newFleetServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	if cfg.Datasets == nil {
		cfg.Datasets = map[string]*dataset.Dataset{"fleet": fleetDataset(t)}
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// fastSession keeps fleet tests quick: axis mode, coarse grid, two major
// iterations.
var fastSession = wire.SessionConfig{
	Mode:               "axis",
	GridSize:           24,
	MaxMajorIterations: 2,
	Workers:            1,
}

func runFleet(t *testing.T, cfg Config) *Report {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return rep
}

// TestFleetDeterministic is the loadgen acceptance test: two seeded runs
// against two fresh servers complete every session and produce identical
// per-session decision sequences — latencies differ, decisions do not.
func TestFleetDeterministic(t *testing.T) {
	truth, err := TruthFromSpec(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		ts := newFleetServer(t, server.Config{})
		return runFleet(t, Config{
			BaseURL:  ts.URL,
			Policy:   "noisyhuman",
			Seed:     42,
			Phases:   []Phase{{Name: "burst", Sessions: 12}},
			Session:  fastSession,
			ViewWait: 5 * time.Second,
			Truth:    truth,
			Scrape:   true,
		})
	}
	a, b := run(), run()

	if a.Totals.Started != 12 || a.Totals.Done != 12 {
		t.Fatalf("run A totals = %+v, want 12 started and done", a.Totals)
	}
	if a.Totals.Failed != 0 || a.Totals.Errors != 0 || a.Totals.Evicted != 0 {
		t.Fatalf("run A had failures: %+v", a.Totals)
	}
	if len(a.Sessions) != len(b.Sessions) {
		t.Fatalf("session counts differ: %d vs %d", len(a.Sessions), len(b.Sessions))
	}
	for i := range a.Sessions {
		sa, sb := a.Sessions[i], b.Sessions[i]
		if sa.Index != sb.Index || sa.QueryRow != sb.QueryRow || sa.Seed != sb.Seed {
			t.Fatalf("session %d identity differs: %+v vs %+v", i, sa, sb)
		}
		if !reflect.DeepEqual(sa.Decisions, sb.Decisions) {
			t.Errorf("session %d decision sequences differ:\nA: %+v\nB: %+v", sa.Index, sa.Decisions, sb.Decisions)
		}
	}
	// Sessions must have actually decided something, or the determinism
	// comparison is vacuous.
	var decisions int
	for _, s := range a.Sessions {
		decisions += len(s.Decisions)
	}
	if decisions == 0 {
		t.Error("no decisions recorded across 12 done sessions")
	}
	// Scraping was on: phase-boundary + final snapshots with parsed samples.
	if len(a.Server) < 2 {
		t.Fatalf("got %d server snapshots, want ≥ 2", len(a.Server))
	}
	last := a.Server[len(a.Server)-1]
	if last.Metrics["innsearch_sessions_done_total"] < 12 {
		t.Errorf("final scrape sessions_done = %v, want ≥ 12", last.Metrics["innsearch_sessions_done_total"])
	}
	if last.Metrics["innsearch_decision_wait_seconds_count"] == 0 {
		t.Error("final scrape shows no decision-wait observations")
	}
}

// TestFleetStragglerScrape drives a sharded server and checks the
// report's straggler section: the final /debug/sessions scrape must
// yield a per-stage rollup naming a specific shard per stage kernel.
func TestFleetStragglerScrape(t *testing.T) {
	ts := newFleetServer(t, server.Config{Shards: 4})
	rep := runFleet(t, Config{
		BaseURL:  ts.URL,
		Policy:   "heuristic",
		Seed:     7,
		Phases:   []Phase{{Name: "burst", Sessions: 3}},
		Session:  fastSession,
		ViewWait: 5 * time.Second,
		Scrape:   true,
	})
	if rep.Totals.Done != 3 {
		t.Fatalf("totals = %+v, want 3 done", rep.Totals)
	}
	if len(rep.Stragglers) == 0 {
		t.Fatal("sharded fleet report has no straggler section")
	}
	for _, st := range rep.Stragglers {
		if st.Straggler < 0 || st.Straggler >= 4 {
			t.Errorf("stage %q straggler = %d, want a shard in [0, 4)", st.Stage, st.Straggler)
		}
		if st.Sessions == 0 || st.Scatters == 0 || st.SlowestMS > st.TotalMS {
			t.Errorf("inconsistent stage rollup: %+v", st)
		}
	}
	// The rollup is sorted by descending total cost.
	for i := 1; i < len(rep.Stragglers); i++ {
		if rep.Stragglers[i].TotalMS > rep.Stragglers[i-1].TotalMS {
			t.Errorf("stragglers out of order at %d: %+v", i, rep.Stragglers)
		}
	}
}

// TestFleetOracleQuality checks the ground-truth loop end to end: oracle
// sessions against planted clusters come back meaningful and score
// perfect-recall-or-better-than-nothing precision/recall.
func TestFleetOracleQuality(t *testing.T) {
	truth, err := TruthFromSpec(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	ts := newFleetServer(t, server.Config{})
	rep := runFleet(t, Config{
		BaseURL: ts.URL,
		Policy:  "oracle",
		Seed:    7,
		Phases:  []Phase{{Name: "burst", Sessions: 6}},
		Session: fastSession,
		Truth:   truth,
	})
	if rep.Totals.Done != 6 {
		t.Fatalf("totals = %+v, want 6 done", rep.Totals)
	}
	if rep.Quality.Evaluated == 0 {
		t.Fatal("oracle run evaluated no sessions against ground truth")
	}
	if rep.Quality.MeanPrecision <= 0 || rep.Quality.MeanRecall <= 0 {
		t.Errorf("quality = %+v, want positive precision and recall", rep.Quality)
	}
}

// TestFleetTruthMismatch: a wrong ground-truth spec must fail loudly, not
// silently score nonsense.
func TestFleetTruthMismatch(t *testing.T) {
	truth, err := TruthFromSpec("case1:n=300:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	ts := newFleetServer(t, server.Config{})
	_, err = Run(context.Background(), Config{
		BaseURL: ts.URL,
		Phases:  []Phase{{Name: "x", Sessions: 1}},
		Truth:   truth,
	})
	if err == nil {
		t.Fatal("size-mismatched ground truth did not fail")
	}
}

// jsonKeys returns the top-level keys of a marshaled value.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestReportSchema pins the report's JSON schema: downstream tooling
// trends these reports, so renaming or dropping a field must fail a test,
// and a strict re-decode must round-trip without unknown fields.
func TestReportSchema(t *testing.T) {
	ts := newFleetServer(t, server.Config{})
	rep := runFleet(t, Config{
		BaseURL:         ts.URL,
		Policy:          "heuristic",
		Seed:            1,
		Phases:          []Phase{{Name: "burst", Sessions: 2}, {Name: "drain"}},
		Session:         fastSession,
		PreviewsPerView: 1,
		Scrape:          true,
	})
	if rep.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d, want 1", rep.SchemaVersion)
	}

	want := map[string][]string{
		"report": {
			"base_url", "dataset", "phases", "policy", "quality", "schema_version",
			"seed", "server", "sessions", "started_at", "totals", "wall_ms",
		},
		"phase": {
			"create", "decision_rtt", "done", "duration_ms", "errors", "evicted",
			"failed", "name", "preview_rtt", "rejected_429", "rejected_503",
			"scheduled", "session", "shed", "started", "starts_per_sec", "view_wait",
		},
		"latency": {"count", "max_ms", "mean_ms", "p50_ms", "p95_ms", "p99_ms"},
		"totals": {
			"done", "errors", "evicted", "failed", "rejected_429", "rejected_503",
			"scheduled", "shed", "started",
		},
		"quality": {"evaluated", "mean_precision", "mean_recall", "meaningful"},
	}
	got := map[string][]string{
		"report":  jsonKeys(t, rep),
		"phase":   jsonKeys(t, rep.Phases[0]),
		"latency": jsonKeys(t, rep.Phases[0].Create),
		"totals":  jsonKeys(t, rep.Totals),
		"quality": jsonKeys(t, rep.Quality),
	}
	for name, w := range want {
		if !reflect.DeepEqual(got[name], w) {
			t.Errorf("%s keys = %v\nwant %v", name, got[name], w)
		}
	}

	// The artifact must strict-decode back into the Go type: no field of
	// the emitted JSON is unknown to the schema.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var back Report
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict re-decode: %v", err)
	}
	if back.Totals != rep.Totals {
		t.Errorf("totals did not round-trip: %+v vs %+v", back.Totals, rep.Totals)
	}

	// Per-phase latency summaries carry real observations with ordered
	// quantiles.
	burst := rep.Phases[0]
	if burst.Session.Count != 2 || burst.Create.Count != 2 {
		t.Errorf("burst latency counts: session=%d create=%d, want 2", burst.Session.Count, burst.Create.Count)
	}
	for _, s := range []LatencySummary{burst.Create, burst.ViewWait, burst.DecisionRTT, burst.Session} {
		if s.P50MS > s.P95MS || s.P95MS > s.P99MS || s.P99MS > s.MaxMS {
			t.Errorf("quantiles out of order: %+v", s)
		}
	}
	if burst.PreviewRTT.Count == 0 {
		t.Error("PreviewsPerView=1 recorded no preview round-trips")
	}
}

// varzView is the slice of /varz the stress test asserts on.
type varzView struct {
	ActiveSessions   int64 `json:"active_sessions"`
	LiveSessionViews int64 `json:"live_session_views"`
	SessionsEvicted  int64 `json:"sessions_evicted"`
	SessionsRejected int64 `json:"sessions_rejected"`
}

func readVarz(t *testing.T, c *Client) varzView {
	t.Helper()
	raw, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var v varzView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestStressEvictionAndBackpressure churns a deliberately tiny server —
// 6 session slots, ~300ms TTL — with a mix of full sessions and abandoned
// ones, concurrently, and asserts the server's safety envelope: excess
// creates get 429, abandoned sessions get evicted by the sweeper, and no
// session leaks (live_session_views drains to zero). Run under -race in
// CI, this is the concurrency stress test of the store's TTL/backpressure
// paths driven through the real wire client.
func TestStressEvictionAndBackpressure(t *testing.T) {
	ts := newFleetServer(t, server.Config{
		MaxSessions:   6,
		SessionTTL:    300 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
		LongPollWait:  2 * time.Second,
	})
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	d := &driver{client: c, metrics: newPhaseMetrics()}
	var (
		mu                  sync.Mutex
		rejected, abandoned int
		states              = map[string]int{}
	)
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(round, i int) {
				defer wg.Done()
				if i%2 == 0 {
					// Abandoner: create, never poll, let the TTL reap it.
					row := i
					_, err := c.CreateSession(ctx, wire.CreateSessionRequest{
						Dataset: "fleet", QueryRow: &row, User: "remote", Config: fastSession,
					})
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						rejected++
					} else {
						abandoned++
					}
					return
				}
				rec := d.run(ctx, SessionSpec{
					Index: round*8 + i, Dataset: "fleet", QueryRow: 100 + i,
					Policy: "heuristic", Config: fastSession, ViewWait: 2 * time.Second,
				})
				mu.Lock()
				states[rec.State]++
				mu.Unlock()
			}(round, i)
		}
		wg.Wait()
		time.Sleep(150 * time.Millisecond) // let the sweeper catch up between rounds
	}

	if abandoned == 0 {
		t.Fatal("no sessions were abandoned; the eviction path was never exercised")
	}
	if states[StateError] > 0 {
		t.Errorf("driver sessions hit hard errors: %v", states)
	}

	// The sweeper must reap every abandoned session and release its view;
	// poll /varz until the gauge drains (bounded by the test deadline).
	deadline := time.Now().Add(10 * time.Second)
	var v varzView
	for {
		v = readVarz(t, c)
		if v.LiveSessionViews == 0 && v.ActiveSessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions leaked: varz = %+v", v)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v.SessionsEvicted == 0 {
		t.Errorf("varz = %+v: abandoned sessions were never evicted", v)
	}
	if v.SessionsRejected == 0 && rejected == 0 {
		t.Errorf("varz = %+v, rejected = %d: capacity 6 never produced a 429 under 8-way churn", v, rejected)
	}
	t.Logf("stress: abandoned=%d rejected=%d states=%v varz=%+v", abandoned, rejected, states, v)
}
