package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/server/wire"
	"innsearch/internal/telemetry"
)

// Phase is one segment of a fleet run's arrival schedule. The controller
// runs phases in order; each phase schedules session starts open-loop —
// at the target rate, independent of completions — which is what exposes
// queueing collapse: a closed-loop driver slows down with the server and
// hides it.
//
// Sessions fixes the number of starts scheduled in the phase; when it is
// zero, Rate·Duration starts are scheduled instead. A phase with neither
// (all zero) is a drain phase: it waits for every in-flight session to
// finish. Rate 0 with Sessions > 0 is a burst: all starts at once.
type Phase struct {
	Name     string
	Rate     float64 // session starts per second
	Sessions int     // number of starts (0 = derive from Rate·Duration)
	Duration time.Duration
	// MaxConcurrent caps in-flight sessions (0 = unlimited). An arrival
	// at the cap is shed: counted, and its session index consumed, so the
	// decision sequences of the sessions that do run stay seed-stable no
	// matter how many arrivals the cap turned away.
	MaxConcurrent int
}

// Config configures a fleet run.
type Config struct {
	BaseURL string
	// HTTP optionally overrides the transport (nil = dedicated client with
	// no overall timeout; long-polls own their deadlines).
	HTTP *http.Client
	// Dataset names the server dataset to drive ("" = the first one the
	// server advertises).
	Dataset string
	// Policy names the separator policy (user.PolicyNames).
	Policy string
	// Seed makes the run deterministic: session i derives its query row
	// and policy seed from Seed and i alone.
	Seed   int64
	Phases []Phase
	// Session is the per-session engine config sent to the server.
	Session wire.SessionConfig
	// PreviewsPerView issues that many wire preview requests per view to
	// measure the preview endpoint (decisions always use local previews).
	PreviewsPerView int
	// ViewWait is the long-poll budget per view request (default 5s).
	ViewWait time.Duration
	// Truth supplies planted ground truth for the oracle policy and
	// precision/recall scoring (nil = neither).
	Truth *Truth
	// Transcript backs the replay policy.
	Transcript *core.Transcript
	// SkipProb, BadAcceptProb, and TauJitter tune the noisyhuman policy
	// (0 takes the policy defaults).
	SkipProb      float64
	BadAcceptProb float64
	TauJitter     float64
	// Scrape collects the server's /metrics and /varz at every phase
	// boundary and after the final drain.
	Scrape bool
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// phaseMetrics holds one phase's client-observed latency histograms.
// Buckets span 0.5ms–~500s exponentially: wide enough that a collapsing
// server still lands in finite buckets, fine enough near the bottom to
// resolve LAN round-trips.
type phaseMetrics struct {
	create      *telemetry.Histogram // session creation round-trip
	viewWait    *telemetry.Histogram // decision-to-next-view wait
	previewRTT  *telemetry.Histogram // wire preview round-trip
	decisionRTT *telemetry.Histogram // decision submit round-trip
	session     *telemetry.Histogram // whole-session wall time
}

func newPhaseMetrics() *phaseMetrics {
	bounds := telemetry.ExponentialBounds(0.0005, 2, 21)
	return &phaseMetrics{
		create:      telemetry.NewHistogram(bounds),
		viewWait:    telemetry.NewHistogram(bounds),
		previewRTT:  telemetry.NewHistogram(bounds),
		decisionRTT: telemetry.NewHistogram(bounds),
		session:     telemetry.NewHistogram(bounds),
	}
}

// phaseTally counts session outcomes attributed to the phase that
// started them. Updated under the fleet's results mutex.
type phaseTally struct {
	scheduled, started, shed                        int
	done, failed, evicted, rej429, rej503, errCount int
}

func (t *phaseTally) record(state string) {
	switch state {
	case wire.StateDone:
		t.done++
	case wire.StateFailed:
		t.failed++
	case wire.StateEvicted:
		t.evicted++
	case StateRejected429:
		t.rej429++
	case StateRejected503:
		t.rej503++
	default:
		t.errCount++
	}
}

// Run drives a full fleet: resolve the dataset, schedule every phase,
// drain, and assemble the report. A cancelled context stops scheduling
// and returns the partial report alongside ctx's error.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Phases) == 0 {
		return nil, errors.New("loadgen: fleet needs at least one phase")
	}
	if cfg.Policy == "" {
		cfg.Policy = "heuristic"
	}
	if cfg.ViewWait <= 0 {
		cfg.ViewWait = 5 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	client := NewClient(cfg.BaseURL, cfg.HTTP)
	dataset, n, err := resolveDataset(ctx, client, cfg.Dataset)
	if err != nil {
		return nil, err
	}
	if cfg.Truth != nil && cfg.Truth.N() != n {
		return nil, fmt.Errorf("loadgen: ground truth has %d rows but server dataset %q has %d — wrong -synth spec?",
			cfg.Truth.N(), dataset, n)
	}

	rep := &Report{
		SchemaVersion: 1,
		StartedAt:     time.Now().UTC().Format(time.RFC3339),
		BaseURL:       cfg.BaseURL,
		Dataset:       dataset,
		Policy:        cfg.Policy,
		Seed:          cfg.Seed,
	}

	var (
		mu       sync.Mutex
		records  []SessionRecord
		wg       sync.WaitGroup
		inFlight atomic.Int64
	)
	metrics := make([]*phaseMetrics, len(cfg.Phases))
	tallies := make([]*phaseTally, len(cfg.Phases))
	elapsed := make([]time.Duration, len(cfg.Phases))

	fleetStart := time.Now()
	nextIndex := 0
phases:
	for pi, ph := range cfg.Phases {
		pm, tally := newPhaseMetrics(), &phaseTally{}
		metrics[pi], tallies[pi] = pm, tally
		count := ph.Sessions
		if count == 0 && ph.Rate > 0 && ph.Duration > 0 {
			count = int(ph.Rate * ph.Duration.Seconds())
		}
		phaseStart := time.Now()

		if count == 0 {
			logf("phase %q: draining %d in-flight sessions", ph.Name, inFlight.Load())
			waitAll(ctx, &wg)
			elapsed[pi] = time.Since(phaseStart)
			rep.scrape(ctx, cfg, client, ph.Name, logf)
			continue
		}

		logf("phase %q: %d session starts (rate %.3g/s, cap %d)", ph.Name, count, ph.Rate, ph.MaxConcurrent)
		d := &driver{client: client, truth: cfg.Truth, metrics: pm}
		for i := 0; i < count; i++ {
			if ph.Rate > 0 {
				sleepUntil(ctx, phaseStart.Add(time.Duration(float64(i)/ph.Rate*float64(time.Second))))
			}
			if ctx.Err() != nil {
				elapsed[pi] = time.Since(phaseStart)
				break phases
			}
			idx := nextIndex
			nextIndex++
			tally.scheduled++
			if ph.MaxConcurrent > 0 && int(inFlight.Load()) >= ph.MaxConcurrent {
				tally.shed++
				continue
			}
			tally.started++
			spec := cfg.sessionSpec(idx, ph.Name, dataset, n)
			inFlight.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer inFlight.Add(-1)
				t0 := time.Now()
				rec := d.run(ctx, spec)
				pm.session.Observe(time.Since(t0).Seconds())
				mu.Lock()
				tally.record(rec.State)
				records = append(records, rec)
				mu.Unlock()
			}()
		}
		elapsed[pi] = time.Since(phaseStart)
		rep.scrape(ctx, cfg, client, ph.Name, logf)
	}

	waitAll(ctx, &wg)
	rep.scrape(ctx, cfg, client, "final", logf)
	if cfg.Scrape && ctx.Err() == nil {
		// The run's sessions are drained, so /debug/sessions now holds
		// their span summaries — the straggler attribution the server
		// computed from each session's scatter spans.
		if ds, err := client.DebugSessions(ctx); err != nil {
			logf("scrape /debug/sessions: %v", err)
		} else {
			rep.Stragglers = aggregateStragglers(ds.Recent)
		}
	}
	rep.WallMS = ms(time.Since(fleetStart))

	mu.Lock()
	defer mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Index < records[j].Index })
	rep.Sessions = records
	for pi, ph := range cfg.Phases {
		rep.Phases = append(rep.Phases, phaseReport(ph.Name, tallies[pi], metrics[pi], elapsed[pi]))
		rep.Totals.add(tallies[pi])
	}
	rep.Quality = scoreQuality(records)
	return rep, ctx.Err()
}

// sessionSpec derives session idx's spec from the fleet seed and idx
// alone — the determinism contract. The query row comes from the ground
// truth's eligible rows when available (so oracle sessions always query
// from inside a planted cluster), else uniformly from the dataset.
func (cfg Config) sessionSpec(idx int, phase, dataset string, n int) SessionSpec {
	draw := splitmix(uint64(cfg.Seed) ^ splitmix(uint64(idx)+1))
	row := int(draw % uint64(n))
	if cfg.Truth != nil {
		if el := cfg.Truth.EligibleRows(); len(el) > 0 {
			row = el[int(draw%uint64(len(el)))]
		}
	}
	return SessionSpec{
		Index:           idx,
		Phase:           phase,
		Dataset:         dataset,
		QueryRow:        row,
		Policy:          cfg.Policy,
		PolicySeed:      int64(splitmix(draw)),
		Config:          cfg.Session,
		PreviewsPerView: cfg.PreviewsPerView,
		ViewWait:        cfg.ViewWait,
		Transcript:      cfg.Transcript,
		SkipProb:        cfg.SkipProb,
		BadAcceptProb:   cfg.BadAcceptProb,
		TauJitter:       cfg.TauJitter,
	}
}

// splitmix is splitmix64: a bijective mixer, so distinct (seed, index)
// pairs give independent-looking draws without any shared RNG state
// between the scheduler and the sessions.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// resolveDataset picks the dataset to drive and returns its size.
func resolveDataset(ctx context.Context, client *Client, name string) (string, int, error) {
	resp, err := client.Datasets(ctx)
	if err != nil {
		return "", 0, fmt.Errorf("loadgen: list datasets: %w", err)
	}
	if len(resp.Datasets) == 0 {
		return "", 0, errors.New("loadgen: server advertises no datasets")
	}
	if name == "" {
		return resp.Datasets[0].Name, resp.Datasets[0].N, nil
	}
	for _, d := range resp.Datasets {
		if d.Name == name {
			return d.Name, d.N, nil
		}
	}
	return "", 0, fmt.Errorf("loadgen: server has no dataset %q", name)
}

// scrape appends a server snapshot when scraping is enabled; scrape
// failures are logged, not fatal — the fleet's own measurements stand.
func (r *Report) scrape(ctx context.Context, cfg Config, client *Client, phase string, logf func(string, ...any)) {
	if !cfg.Scrape || ctx.Err() != nil {
		return
	}
	snap := ServerSnapshot{Phase: phase}
	var err error
	if snap.Varz, err = client.Varz(ctx); err != nil {
		logf("scrape /varz after %q: %v", phase, err)
	}
	if snap.Metrics, err = client.Metrics(ctx); err != nil {
		logf("scrape /metrics after %q: %v", phase, err)
	}
	r.Server = append(r.Server, snap)
}

// sleepUntil sleeps until t or ctx cancellation, whichever first.
func sleepUntil(ctx context.Context, t time.Time) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// waitAll waits for the group or ctx cancellation. On cancellation the
// in-flight drivers see the same ctx and unwind promptly on their own.
func waitAll(ctx context.Context, wg *sync.WaitGroup) {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-ctx.Done():
		<-ch // drivers abort on ctx; still join them so records are complete
	}
}
