package loadgen

import (
	"context"
	"errors"
	"net/http"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/grid"
	"innsearch/internal/server/wire"
	"innsearch/internal/stats"
	"innsearch/internal/user"
)

// Terminal session states the driver reports beyond the wire states: a
// creation refused by backpressure or drain, and a client-side error.
const (
	StateRejected429 = "rejected_429"
	StateRejected503 = "rejected_503"
	StateError       = "error"
)

// SessionSpec describes one session for the driver: everything is
// derived deterministically from the fleet seed and the session index
// before the session starts, so decision sequences replay across runs.
type SessionSpec struct {
	Index    int
	Phase    string
	Dataset  string
	QueryRow int
	Policy   string
	// PolicySeed seeds the policy's randomness (noisyhuman); derived from
	// the fleet seed and Index.
	PolicySeed int64
	Config     wire.SessionConfig
	// PreviewsPerView issues this many wire preview requests per view
	// before deciding, exercising the preview endpoint and measuring its
	// round-trip (0 = none; decisions always use local previews).
	PreviewsPerView int
	// ViewWait is the long-poll budget per view request.
	ViewWait time.Duration
	// Transcript backs the replay policy.
	Transcript *core.Transcript
	// SkipProb, BadAcceptProb, and TauJitter tune the noisyhuman policy
	// (0 takes the policy defaults).
	SkipProb      float64
	BadAcceptProb float64
	TauJitter     float64
}

// DecisionRecord is one entry of a session's decision sequence — the
// deterministic part of the run (latencies live in the histograms).
type DecisionRecord struct {
	Seq  int     `json:"seq"`
	Skip bool    `json:"skip,omitempty"`
	Tau  float64 `json:"tau,omitempty"`
}

// SessionRecord is the per-session slice of the fleet report.
type SessionRecord struct {
	Index    int    `json:"index"`
	Phase    string `json:"phase"`
	ID       string `json:"id,omitempty"`
	QueryRow int    `json:"query_row"`
	Policy   string `json:"policy"`
	Seed     int64  `json:"seed"`
	// State is the terminal state: the wire states (done, failed,
	// evicted, closed) or the driver's own (rejected_429, rejected_503,
	// error).
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Decisions is the session's decision sequence in view order.
	Decisions  []DecisionRecord `json:"decisions"`
	ViewsSeen  int              `json:"views_seen"`
	Iterations int              `json:"iterations,omitempty"`
	Converged  bool             `json:"converged,omitempty"`
	// Quality of the accepted cluster against planted ground truth:
	// precision/recall of the natural neighbors (the entries above the
	// diagnosed steep drop). Evaluated only for done sessions with a
	// meaningful diagnosis and available ground truth.
	QualityEvaluated bool    `json:"quality_evaluated,omitempty"`
	Meaningful       bool    `json:"meaningful,omitempty"`
	Precision        float64 `json:"precision,omitempty"`
	Recall           float64 `json:"recall,omitempty"`
	// DurationMS is the client-observed session wall time (create → terminal).
	DurationMS float64 `json:"duration_ms"`
}

// driver runs single sessions over the wire against one server.
type driver struct {
	client  *Client
	truth   *Truth // nil: no ground truth, no oracle, no quality scoring
	metrics *phaseMetrics
}

// run drives one full session: create, long-poll views, decide via the
// policy, collect the result. It never returns an error — every failure
// mode is a terminal state in the record, because under load 429s and
// evictions are data, not exceptions.
func (d *driver) run(ctx context.Context, spec SessionSpec) SessionRecord {
	rec := SessionRecord{
		Index:    spec.Index,
		Phase:    spec.Phase,
		QueryRow: spec.QueryRow,
		Policy:   spec.Policy,
		Seed:     spec.PolicySeed,
	}
	pcfg := user.PolicyConfig{
		Seed:          spec.PolicySeed,
		Transcript:    spec.Transcript,
		SkipProb:      spec.SkipProb,
		BadAcceptProb: spec.BadAcceptProb,
		TauJitter:     spec.TauJitter,
	}
	if d.truth != nil {
		pcfg.Relevant = d.truth.RelevantTo(spec.QueryRow)
	}
	policy, err := user.NewPolicy(spec.Policy, pcfg)
	if err != nil {
		rec.State, rec.Error = StateError, err.Error()
		return rec
	}

	start := time.Now()
	defer func() { rec.DurationMS = ms(time.Since(start)) }()

	created, err := d.client.CreateSession(ctx, wire.CreateSessionRequest{
		Dataset:  spec.Dataset,
		QueryRow: &spec.QueryRow,
		User:     "remote",
		Config:   spec.Config,
	})
	d.metrics.create.Observe(time.Since(start).Seconds())
	if err != nil {
		rec.State, rec.Error = classifyCreateErr(err)
		return rec
	}
	rec.ID = created.ID

	// The view loop: long-poll until a view or a terminal state, decide,
	// repeat. lastAction anchors the view-wait measurement — the time the
	// client spent waiting for the engine, as the client experienced it.
	lastAction := time.Now()
	for {
		view, err := d.client.View(ctx, created.ID, spec.ViewWait)
		if err != nil {
			rec.State, rec.Error = terminalFromErr(err)
			return rec
		}
		switch view.State {
		case wire.StateComputing:
			continue // long-poll timeout with nothing new; poll again
		case wire.StateAwaiting:
			// fall through to decide below
		default:
			// Terminal (done/failed/evicted/closed): fetch the outcome.
			d.finish(ctx, created.ID, view.State, &rec)
			return rec
		}
		d.metrics.viewWait.Observe(time.Since(lastAction).Seconds())
		rec.ViewsSeen++

		profile := view.Profile.ToProfile()
		preview := func(tau float64) *grid.Region {
			reg, err := profile.Region(tau)
			if err != nil {
				return nil
			}
			return reg
		}
		// Optional wire previews: exercise the preview endpoint the way an
		// interactive client adjusting the separator would (Figure 6), at
		// descending fractions of the query density.
		for i := 0; i < spec.PreviewsPerView && profile.QueryDensity > 0; i++ {
			frac := []float64{0.9, 0.6, 0.3, 0.15}[i%4]
			pt := time.Now()
			if _, err := d.client.Preview(ctx, created.ID, view.Seq, frac*profile.QueryDensity); err == nil {
				d.metrics.previewRTT.Observe(time.Since(pt).Seconds())
			}
		}

		decision := policy.SeparateCluster(profile, preview)
		dt := time.Now()
		_, err = d.client.Decide(ctx, created.ID, wire.DecisionRequest{
			Seq:      view.Seq,
			Decision: wire.FromDecision(decision),
		})
		if err != nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict {
				// The view expired under us (e.g. decision deadline); the
				// next poll reveals what the session became.
				lastAction = time.Now()
				continue
			}
			rec.State, rec.Error = terminalFromErr(err)
			return rec
		}
		d.metrics.decisionRTT.Observe(time.Since(dt).Seconds())
		rec.Decisions = append(rec.Decisions, DecisionRecord{Seq: view.Seq, Skip: decision.Skip, Tau: decision.Tau})
		lastAction = time.Now()
	}
}

// finish resolves the terminal state and, for done sessions with ground
// truth, scores the accepted cluster against the planted clusters.
func (d *driver) finish(ctx context.Context, id, state string, rec *SessionRecord) {
	rec.State = state
	res, err := d.client.Result(ctx, id, 0)
	if err != nil {
		if rec.Error == "" {
			rec.Error = err.Error()
		}
		return
	}
	rec.State = res.State
	if res.Error != "" {
		rec.Error = res.Error
	}
	if res.Result == nil {
		return
	}
	rec.Iterations = res.Result.Iterations
	rec.Converged = res.Result.Converged
	rec.Meaningful = res.Result.Diagnosis.Meaningful
	if d.truth == nil || res.State != wire.StateDone || !rec.Meaningful {
		return
	}
	relevant := d.truth.RelevantTo(rec.QueryRow)
	if len(relevant) == 0 {
		return
	}
	accepted := make([]int, len(res.Result.NaturalNeighbors))
	for i, nb := range res.Result.NaturalNeighbors {
		accepted[i] = nb.ID
	}
	r := stats.EvalRetrieval(accepted, relevant)
	rec.QualityEvaluated = true
	rec.Precision, rec.Recall = r.Precision(), r.Recall()
}

// classifyCreateErr maps a session-creation failure to a terminal state.
func classifyCreateErr(err error) (state, msg string) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests:
			return StateRejected429, apiErr.Msg
		case http.StatusServiceUnavailable:
			return StateRejected503, apiErr.Msg
		}
	}
	return StateError, err.Error()
}

// terminalFromErr maps a mid-session failure to a terminal state.
func terminalFromErr(err error) (state, msg string) {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusGone {
		// 410: the session ended while we were talking to it; the message
		// carries the state the server reported.
		return wire.StateEvicted, apiErr.Msg
	}
	return StateError, err.Error()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
