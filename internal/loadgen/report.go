package loadgen

import (
	"encoding/json"
	"time"

	"innsearch/internal/telemetry"
)

// Report is the fleet's single JSON artifact. The schema is pinned by
// TestReportSchema: fields are only added (with a SchemaVersion bump when
// their meaning shifts), never silently renamed, so downstream tooling
// can trend reports across revisions.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	StartedAt     string  `json:"started_at"` // RFC 3339, UTC
	WallMS        float64 `json:"wall_ms"`
	BaseURL       string  `json:"base_url"`
	Dataset       string  `json:"dataset"`
	Policy        string  `json:"policy"`
	Seed          int64   `json:"seed"`

	Phases []PhaseReport `json:"phases"`
	Totals Totals        `json:"totals"`
	// Quality scores accepted clusters against planted ground truth
	// (zero-valued when the run had none).
	Quality Quality `json:"quality"`
	// Server holds /metrics + /varz snapshots scraped at phase boundaries
	// (empty unless Config.Scrape).
	Server []ServerSnapshot `json:"server,omitempty"`
	// Sessions is every scheduled-and-started session, ascending by
	// index. Decision sequences here are the deterministic part of the
	// run: equal seeds ⇒ equal sequences.
	Sessions []SessionRecord `json:"sessions"`
}

// LatencySummary condenses one client-observed latency histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// PhaseReport aggregates the sessions a phase started (outcomes are
// attributed to the starting phase even when they complete later).
type PhaseReport struct {
	Name string `json:"name"`
	// Scheduled = Started + Shed: every arrival the open-loop schedule
	// produced, whether or not the concurrency cap admitted it.
	Scheduled   int     `json:"scheduled"`
	Started     int     `json:"started"`
	Shed        int     `json:"shed"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	Evicted     int     `json:"evicted"`
	Rejected429 int     `json:"rejected_429"`
	Rejected503 int     `json:"rejected_503"`
	Errors      int     `json:"errors"`
	DurationMS  float64 `json:"duration_ms"`
	// StartsPerSec is the achieved arrival rate (scheduled / duration).
	StartsPerSec float64 `json:"starts_per_sec"`

	Create      LatencySummary `json:"create"`
	ViewWait    LatencySummary `json:"view_wait"`
	PreviewRTT  LatencySummary `json:"preview_rtt"`
	DecisionRTT LatencySummary `json:"decision_rtt"`
	Session     LatencySummary `json:"session"`
}

// Totals sums outcome counts across phases.
type Totals struct {
	Scheduled   int `json:"scheduled"`
	Started     int `json:"started"`
	Shed        int `json:"shed"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Evicted     int `json:"evicted"`
	Rejected429 int `json:"rejected_429"`
	Rejected503 int `json:"rejected_503"`
	Errors      int `json:"errors"`
}

func (t *Totals) add(p *phaseTally) {
	t.Scheduled += p.scheduled
	t.Started += p.started
	t.Shed += p.shed
	t.Done += p.done
	t.Failed += p.failed
	t.Evicted += p.evicted
	t.Rejected429 += p.rej429
	t.Rejected503 += p.rej503
	t.Errors += p.errCount
}

// Quality aggregates oracle-vs-result scores over the sessions that were
// evaluable: done, diagnosed meaningful, query inside a planted cluster.
type Quality struct {
	// Evaluated counts scored sessions; Meaningful counts done sessions
	// whose diagnosis accepted the result as a natural cluster.
	Evaluated     int     `json:"evaluated"`
	Meaningful    int     `json:"meaningful"`
	MeanPrecision float64 `json:"mean_precision"`
	MeanRecall    float64 `json:"mean_recall"`
}

// ServerSnapshot is the server's own telemetry at one phase boundary.
type ServerSnapshot struct {
	Phase   string             `json:"phase"`
	Varz    json.RawMessage    `json:"varz,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// summarize reads a histogram into the report's millisecond summary
// (observations are recorded in seconds).
func summarize(h *telemetry.Histogram) LatencySummary {
	s := h.Snapshot()
	const toMS = 1e3
	return LatencySummary{
		Count:  s.Count,
		MeanMS: s.Mean() * toMS,
		P50MS:  s.Quantile(0.50) * toMS,
		P95MS:  s.Quantile(0.95) * toMS,
		P99MS:  s.Quantile(0.99) * toMS,
		MaxMS:  s.Max * toMS,
	}
}

func phaseReport(name string, t *phaseTally, m *phaseMetrics, elapsed time.Duration) PhaseReport {
	pr := PhaseReport{
		Name:        name,
		Scheduled:   t.scheduled,
		Started:     t.started,
		Shed:        t.shed,
		Done:        t.done,
		Failed:      t.failed,
		Evicted:     t.evicted,
		Rejected429: t.rej429,
		Rejected503: t.rej503,
		Errors:      t.errCount,
		DurationMS:  ms(elapsed),
		Create:      summarize(m.create),
		ViewWait:    summarize(m.viewWait),
		PreviewRTT:  summarize(m.previewRTT),
		DecisionRTT: summarize(m.decisionRTT),
		Session:     summarize(m.session),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		pr.StartsPerSec = float64(t.scheduled) / secs
	}
	return pr
}

func scoreQuality(records []SessionRecord) Quality {
	var q Quality
	var sumP, sumR float64
	for _, r := range records {
		if r.Meaningful {
			q.Meaningful++
		}
		if r.QualityEvaluated {
			q.Evaluated++
			sumP += r.Precision
			sumR += r.Recall
		}
	}
	if q.Evaluated > 0 {
		q.MeanPrecision = sumP / float64(q.Evaluated)
		q.MeanRecall = sumR / float64(q.Evaluated)
	}
	return q
}
