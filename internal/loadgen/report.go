package loadgen

import (
	"encoding/json"
	"sort"
	"time"

	"innsearch/internal/telemetry"
)

// Report is the fleet's single JSON artifact. The schema is pinned by
// TestReportSchema: fields are only added (with a SchemaVersion bump when
// their meaning shifts), never silently renamed, so downstream tooling
// can trend reports across revisions.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	StartedAt     string  `json:"started_at"` // RFC 3339, UTC
	WallMS        float64 `json:"wall_ms"`
	BaseURL       string  `json:"base_url"`
	Dataset       string  `json:"dataset"`
	Policy        string  `json:"policy"`
	Seed          int64   `json:"seed"`

	Phases []PhaseReport `json:"phases"`
	Totals Totals        `json:"totals"`
	// Quality scores accepted clusters against planted ground truth
	// (zero-valued when the run had none).
	Quality Quality `json:"quality"`
	// Server holds /metrics + /varz snapshots scraped at phase boundaries
	// (empty unless Config.Scrape).
	Server []ServerSnapshot `json:"server,omitempty"`
	// Stragglers is the per-stage shard straggler attribution aggregated
	// from the /debug/sessions span summaries scraped after the final
	// drain: which stage kernels dominated the sharded engine's wall time
	// and which shard bounded them. Empty unless Config.Scrape, the
	// sessions were sharded, and the server has the endpoint.
	Stragglers []StageStragglers `json:"stragglers,omitempty"`
	// Sessions is every scheduled-and-started session, ascending by
	// index. Decision sequences here are the deterministic part of the
	// run: equal seeds ⇒ equal sequences.
	Sessions []SessionRecord `json:"sessions"`
}

// LatencySummary condenses one client-observed latency histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// PhaseReport aggregates the sessions a phase started (outcomes are
// attributed to the starting phase even when they complete later).
type PhaseReport struct {
	Name string `json:"name"`
	// Scheduled = Started + Shed: every arrival the open-loop schedule
	// produced, whether or not the concurrency cap admitted it.
	Scheduled   int     `json:"scheduled"`
	Started     int     `json:"started"`
	Shed        int     `json:"shed"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	Evicted     int     `json:"evicted"`
	Rejected429 int     `json:"rejected_429"`
	Rejected503 int     `json:"rejected_503"`
	Errors      int     `json:"errors"`
	DurationMS  float64 `json:"duration_ms"`
	// StartsPerSec is the achieved arrival rate (scheduled / duration).
	StartsPerSec float64 `json:"starts_per_sec"`

	Create      LatencySummary `json:"create"`
	ViewWait    LatencySummary `json:"view_wait"`
	PreviewRTT  LatencySummary `json:"preview_rtt"`
	DecisionRTT LatencySummary `json:"decision_rtt"`
	Session     LatencySummary `json:"session"`
}

// Totals sums outcome counts across phases.
type Totals struct {
	Scheduled   int `json:"scheduled"`
	Started     int `json:"started"`
	Shed        int `json:"shed"`
	Done        int `json:"done"`
	Failed      int `json:"failed"`
	Evicted     int `json:"evicted"`
	Rejected429 int `json:"rejected_429"`
	Rejected503 int `json:"rejected_503"`
	Errors      int `json:"errors"`
}

func (t *Totals) add(p *phaseTally) {
	t.Scheduled += p.scheduled
	t.Started += p.started
	t.Shed += p.shed
	t.Done += p.done
	t.Failed += p.failed
	t.Evicted += p.evicted
	t.Rejected429 += p.rej429
	t.Rejected503 += p.rej503
	t.Errors += p.errCount
}

// Quality aggregates oracle-vs-result scores over the sessions that were
// evaluable: done, diagnosed meaningful, query inside a planted cluster.
type Quality struct {
	// Evaluated counts scored sessions; Meaningful counts done sessions
	// whose diagnosis accepted the result as a natural cluster.
	Evaluated     int     `json:"evaluated"`
	Meaningful    int     `json:"meaningful"`
	MeanPrecision float64 `json:"mean_precision"`
	MeanRecall    float64 `json:"mean_recall"`
}

// StageStragglers aggregates one stage kernel's straggler attribution
// over the sessions /debug/sessions retained: summed scatter cost, the
// parallel lower bound (slowest shard per scatter), and how often each
// shard was the per-session straggler.
type StageStragglers struct {
	Stage string `json:"stage"`
	// Sessions counts summaries that attributed cost to the stage;
	// Scatters sums their scatter counts.
	Sessions int `json:"sessions"`
	Scatters int `json:"scatters"`
	// TotalMS sums the stage's scatter wall time across sessions;
	// SlowestMS the slowest-shard portion of it.
	TotalMS   float64 `json:"total_ms"`
	SlowestMS float64 `json:"slowest_ms"`
	// Straggler is the shard named most often across sessions (ties to
	// the lower index); StragglerSessions its count.
	Straggler         int `json:"straggler"`
	StragglerSessions int `json:"straggler_sessions"`
}

// aggregateStragglers folds per-session stage costs into the report's
// per-stage rollup, most expensive stage first (ties by name).
func aggregateStragglers(summaries []DebugSessionSummary) []StageStragglers {
	type agg struct {
		StageStragglers
		byShard map[int]int
	}
	byStage := make(map[string]*agg)
	for _, sum := range summaries {
		for _, st := range sum.Stages {
			a := byStage[st.Stage]
			if a == nil {
				a = &agg{StageStragglers: StageStragglers{Stage: st.Stage}, byShard: make(map[int]int)}
				byStage[st.Stage] = a
			}
			a.Sessions++
			a.Scatters += st.Scatters
			a.TotalMS += st.TotalMS
			a.SlowestMS += st.SlowestMS
			if st.Straggler >= 0 {
				a.byShard[st.Straggler]++
			}
		}
	}
	out := make([]StageStragglers, 0, len(byStage))
	for _, a := range byStage {
		a.Straggler = -1
		for shard, n := range a.byShard {
			if a.Straggler == -1 || n > a.StragglerSessions ||
				(n == a.StragglerSessions && shard < a.Straggler) {
				a.Straggler, a.StragglerSessions = shard, n
			}
		}
		out = append(out, a.StageStragglers)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// ServerSnapshot is the server's own telemetry at one phase boundary.
type ServerSnapshot struct {
	Phase   string             `json:"phase"`
	Varz    json.RawMessage    `json:"varz,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// summarize reads a histogram into the report's millisecond summary
// (observations are recorded in seconds).
func summarize(h *telemetry.Histogram) LatencySummary {
	s := h.Snapshot()
	const toMS = 1e3
	return LatencySummary{
		Count:  s.Count,
		MeanMS: s.Mean() * toMS,
		P50MS:  s.Quantile(0.50) * toMS,
		P95MS:  s.Quantile(0.95) * toMS,
		P99MS:  s.Quantile(0.99) * toMS,
		MaxMS:  s.Max * toMS,
	}
}

func phaseReport(name string, t *phaseTally, m *phaseMetrics, elapsed time.Duration) PhaseReport {
	pr := PhaseReport{
		Name:        name,
		Scheduled:   t.scheduled,
		Started:     t.started,
		Shed:        t.shed,
		Done:        t.done,
		Failed:      t.failed,
		Evicted:     t.evicted,
		Rejected429: t.rej429,
		Rejected503: t.rej503,
		Errors:      t.errCount,
		DurationMS:  ms(elapsed),
		Create:      summarize(m.create),
		ViewWait:    summarize(m.viewWait),
		PreviewRTT:  summarize(m.previewRTT),
		DecisionRTT: summarize(m.decisionRTT),
		Session:     summarize(m.session),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		pr.StartsPerSec = float64(t.scheduled) / secs
	}
	return pr
}

func scoreQuality(records []SessionRecord) Quality {
	var q Quality
	var sumP, sumR float64
	for _, r := range records {
		if r.Meaningful {
			q.Meaningful++
		}
		if r.QualityEvaluated {
			q.Evaluated++
			sumP += r.Precision
			sumR += r.Recall
		}
	}
	if q.Evaluated > 0 {
		q.MeanPrecision = sumP / float64(q.Evaluated)
		q.MeanRecall = sumR / float64(q.Evaluated)
	}
	return q
}
