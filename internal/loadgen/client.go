// Package loadgen is the autopilot load fleet: a client-side driver that
// speaks innsearchd's wire protocol over HTTP and a fleet controller that
// runs hundreds-to-thousands of concurrent policy-driven sessions against
// a live server with open-loop arrival control.
//
// The subsystem turns the paper's interactive protocol — a human placing
// density separators — into a fully automated, benchmarkable workload:
// the human is replaced by a pluggable separator policy (user.NewPolicy:
// oracle, heuristic, noisyhuman, replay), the fleet schedules session
// starts at a target rate through ramp/hold/drain phases, and everything
// the fleet observes lands in one JSON report: client-side latency
// quantiles per phase (view wait, decision round-trip, session
// completion), error and backpressure counts, the server's own /metrics
// and /varz scraped mid-run, and answer quality (precision/recall of
// accepted clusters against planted ground truth).
//
// Determinism contract: a fleet run is seeded. Session i draws its query
// row and its policy seed from Config.Seed and i alone, and every policy
// is deterministic given its views, so two runs with equal seeds produce
// identical per-session decision sequences — only latencies differ. That
// is what makes the fleet usable both as a load generator and as an
// end-to-end regression harness.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"innsearch/internal/server/wire"
)

// APIError is a non-2xx response from the server, preserving the HTTP
// status so callers can tell backpressure (429) and drain (503) from
// protocol conflicts (409/410) and real failures.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Msg)
}

// Client speaks the innsearchd wire protocol (see internal/server/wire).
// It is safe for concurrent use by any number of session drivers; the
// underlying http.Client's connection pool is the only shared state.
type Client struct {
	base string
	http *http.Client
}

// NewClient builds a client for the server at baseURL (e.g.
// "http://127.0.0.1:7207"). httpClient nil uses a dedicated client with
// no overall request timeout — long-polls own their deadlines via
// context and the ?wait= parameter.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// do issues one JSON round-trip. A non-2xx status decodes the wire error
// body into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("loadgen: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("loadgen: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var werr wire.Error
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&werr) == nil && werr.Error != "" {
			msg = werr.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("loadgen: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// CreateSession opens an interactive session.
func (c *Client) CreateSession(ctx context.Context, req wire.CreateSessionRequest) (wire.CreateSessionResponse, error) {
	var out wire.CreateSessionResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out)
	return out, err
}

// View long-polls the session's current view for up to wait.
func (c *Client) View(ctx context.Context, id string, wait time.Duration) (wire.ViewResponse, error) {
	var out wire.ViewResponse
	path := "/v1/sessions/" + url.PathEscape(id) + "/view"
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Preview renders the density-separated region a candidate τ would induce
// on view seq — the Figure 6 adjustment loop over the wire.
func (c *Client) Preview(ctx context.Context, id string, seq int, tau float64) (wire.PreviewResponse, error) {
	var out wire.PreviewResponse
	path := fmt.Sprintf("/v1/sessions/%s/preview?seq=%d&tau=%s",
		url.PathEscape(id), seq, strconv.FormatFloat(tau, 'g', -1, 64))
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Decide answers the current view.
func (c *Client) Decide(ctx context.Context, id string, req wire.DecisionRequest) (wire.DecisionResponse, error) {
	var out wire.DecisionResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(id)+"/decision", req, &out)
	return out, err
}

// Result fetches the session outcome, long-polling up to wait.
func (c *Client) Result(ctx context.Context, id string, wait time.Duration) (wire.ResultResponse, error) {
	var out wire.ResultResponse
	path := "/v1/sessions/" + url.PathEscape(id) + "/result"
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Delete abandons a session.
func (c *Client) Delete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), nil, nil)
}

// Datasets lists the server's preloaded datasets.
func (c *Client) Datasets(ctx context.Context) (wire.DatasetsResponse, error) {
	var out wire.DatasetsResponse
	err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out)
	return out, err
}

// Varz fetches the server's JSON counters verbatim.
func (c *Client) Varz(ctx context.Context) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/varz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: GET /varz: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("loadgen: read /varz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &APIError{Status: resp.StatusCode, Msg: string(raw)}
	}
	return json.RawMessage(raw), nil
}

// DebugSessions is the decoded body of GET /debug/sessions — the
// server's live-session introspection surface. The fleet consumes the
// recent summaries (straggler attribution) and the index-cache counters;
// live entries matter to operators mid-run.
type DebugSessions struct {
	Live   []DebugLiveSession    `json:"live"`
	Recent []DebugSessionSummary `json:"recent"`
	IndexCache struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
	} `json:"index_cache"`
}

// DebugLiveSession is one running session as /debug/sessions reports it.
type DebugLiveSession struct {
	Session   string  `json:"session"`
	Request   string  `json:"request"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Round     int     `json:"round"`
	Stage     string  `json:"stage"`
	Shards    int     `json:"shards"`
}

// DebugSessionSummary is one finished session's span summary.
type DebugSessionSummary struct {
	Session    string           `json:"session"`
	Request    string           `json:"request"`
	DurationMS float64          `json:"duration_ms"`
	Iterations int              `json:"iterations"`
	Converged  bool             `json:"converged"`
	Shards     int              `json:"shards"`
	Stages     []DebugStageCost `json:"stages"`
}

// DebugStageCost is one sharded stage kernel's attribution within a
// session summary.
type DebugStageCost struct {
	Stage     string  `json:"stage"`
	Scatters  int     `json:"scatters"`
	TotalMS   float64 `json:"total_ms"`
	SlowestMS float64 `json:"slowest_ms"`
	Straggler int     `json:"straggler"`
}

// DebugSessionsSnapshot fetches GET /debug/sessions. Servers predating
// the endpoint return 404, surfaced as an *APIError.
func (c *Client) DebugSessions(ctx context.Context) (DebugSessions, error) {
	var out DebugSessions
	err := c.do(ctx, http.MethodGet, "/debug/sessions", nil, &out)
	return out, err
}

// Metrics scrapes the server's Prometheus text exposition and parses the
// label-free samples (counters, gauges, histogram _count/_sum lines) into
// a name → value map. Bucket lines carry le labels and are skipped — the
// fleet wants the counts and totals, not the full distribution, which it
// measures client-side anyway.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, &APIError{Status: resp.StatusCode, Msg: string(raw)}
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics reads Prometheus text exposition, keeping the label-free
// samples.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: scan /metrics: %w", err)
	}
	return out, nil
}
