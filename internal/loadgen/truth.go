package loadgen

import (
	"fmt"

	"innsearch/internal/dataset"
	"innsearch/internal/synth"
)

// Truth is client-side planted ground truth: a labeled copy of the
// dataset the server is serving, regenerated locally from the same
// synthetic spec (synth.FromSpec is deterministic in the spec). It
// supplies the oracle policy's relevant sets and the report's
// precision/recall scoring without labels ever crossing the wire.
type Truth struct {
	ds *dataset.Dataset
	// byLabel maps each cluster label to the original row IDs carrying it.
	byLabel map[int][]int
	// eligible lists the row positions usable as query rows: labeled,
	// non-outlier points, so every driven session queries from inside a
	// planted cluster — the paper's protocol.
	eligible []int
}

// NewTruth wraps a labeled dataset as ground truth. Unlabeled datasets
// yield a Truth that treats every row as eligible and answers no
// relevant sets (quality scoring is then skipped).
func NewTruth(ds *dataset.Dataset) *Truth {
	t := &Truth{ds: ds, byLabel: make(map[int][]int)}
	for i := 0; i < ds.N(); i++ {
		if !ds.Labeled() {
			t.eligible = append(t.eligible, i)
			continue
		}
		l := ds.Label(i)
		if l == synth.OutlierLabel {
			continue
		}
		t.byLabel[l] = append(t.byLabel[l], ds.ID(i))
		t.eligible = append(t.eligible, i)
	}
	return t
}

// TruthFromSpec regenerates ground truth from a synthetic spec
// ("case1:n=2000:seed=7"); the spec must match the one the server was
// started with.
func TruthFromSpec(spec string) (*Truth, error) {
	pd, err := synth.FromSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("loadgen: ground truth: %w", err)
	}
	return NewTruth(pd.Data), nil
}

// N returns the dataset size, for sanity-checking against the server's
// advertised dataset.
func (t *Truth) N() int { return t.ds.N() }

// Dim returns the dataset dimensionality.
func (t *Truth) Dim() int { return t.ds.Dim() }

// EligibleRows returns the row positions sessions may query from.
func (t *Truth) EligibleRows() []int { return t.eligible }

// RelevantTo returns the ground-truth cluster of the query row: the
// original IDs sharing its label. Nil for unlabeled data and outliers.
func (t *Truth) RelevantTo(row int) []int {
	if !t.ds.Labeled() {
		return nil
	}
	l := t.ds.Label(row)
	if l == synth.OutlierLabel {
		return nil
	}
	return t.byLabel[l]
}
