package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Errorf("bound %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, -2} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	s := h.Snapshot()
	// v ≤ bound buckets: {0.5, 1, -2} ≤ 1; {1.5} ≤ 2; {3} ≤ 4; {100} → +Inf.
	wantCounts := []int64{3, 1, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-104) > 1e-12 {
		t.Errorf("sum = %v, want 104", s.Sum)
	}
	if s.Max != 100 {
		t.Errorf("max = %v, want 100", s.Max)
	}
	if mean := s.Mean(); math.Abs(mean-104.0/6) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
}

// TestHistogramWindowMax is the satellite fix for the pinned /varz max: a
// cold-start outlier must age out of the windowed maximum while the
// all-time max keeps it.
func TestHistogramWindowMax(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	h := NewHistogramWindow(ExponentialBounds(0.001, 2, 8), time.Second, clock)
	h.Observe(9.5) // the cold-start outlier
	s := h.Snapshot()
	if s.Max != 9.5 || s.WindowMax != 9.5 {
		t.Fatalf("fresh outlier: max=%v window=%v", s.Max, s.WindowMax)
	}

	advance(2 * time.Second)
	h.Observe(0.25)
	s = h.Snapshot()
	if s.WindowMax != 9.5 {
		t.Fatalf("outlier should still be in the window: %v", s.WindowMax)
	}

	advance(10 * time.Second) // > windowSlots slots later
	h.Observe(0.125)
	s = h.Snapshot()
	if s.Max != 9.5 {
		t.Errorf("all-time max lost: %v", s.Max)
	}
	if s.WindowMax != 0.125 {
		t.Errorf("window max = %v, want 0.125 (outlier must age out)", s.WindowMax)
	}
}

func TestHistogramWindowEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if s := h.Snapshot(); s.WindowMax != 0 || s.Max != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExponentialBounds(0.001, 2, 10))
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	var perGoroutine float64
	for i := 0; i < per; i++ {
		perGoroutine += float64(i%7) * 0.001
	}
	wantSum := float64(goroutines) * perGoroutine
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Max != 0.006 {
		t.Fatalf("max = %v, want 0.006", s.Max)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 100 observations spread uniformly through the (0.01, 0.1] bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(0.01 + float64(i)*0.0009)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 0.01 || got > 0.1 {
		t.Fatalf("p50 = %v outside its bucket (0.01, 0.1]", got)
	}
	// Quantiles must be monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
	// The top quantile never exceeds the observed maximum.
	if got, max := s.Quantile(1), s.Max; got > max {
		t.Fatalf("p100 = %v > max %v", got, max)
	}
}

func TestHistogramQuantileCappedByMax(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.03) // lone observation in the (0.01, 0.1] bucket
	s := h.Snapshot()
	if got := s.Quantile(0.99); got > 0.03+1e-12 {
		t.Fatalf("p99 = %v, want ≤ observed max 0.03", got)
	}
	// An observation beyond the last finite bound reports the max.
	h.Observe(5)
	if got := h.Snapshot().Quantile(1); got != 5 {
		t.Fatalf("p100 with +Inf bucket = %v, want 5", got)
	}
}

// TestHistogramQuantileEdgeCases pins the corner behavior of the
// interpolation: empty histograms, a lone sample, the extreme quantiles,
// and the max-capped bucket ceiling.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4}

	// Empty histogram: every quantile is 0, including the clamped ones.
	empty := NewHistogram(bounds).Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// A single sample at 1.5 lives in the (1, 2] bucket with Max = 1.5.
	single := NewHistogram(bounds)
	single.Observe(1.5)
	s := single.Snapshot()
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("single-sample p0 = %v, want bucket floor 1", got)
	}
	if got := s.Quantile(1); got != 1.5 {
		t.Fatalf("single-sample p100 = %v, want observed max 1.5", got)
	}
	// Interpolation runs toward the observed max, not the bucket bound 2.
	if got := s.Quantile(0.5); got != 1.25 {
		t.Fatalf("single-sample p50 = %v, want 1.25 (midpoint of [1, max])", got)
	}
	// Out-of-range q clamps to the extremes.
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Fatalf("Quantile(-3) = %v, want clamp to p0 %v", got, s.Quantile(0))
	}
	if got := s.Quantile(7); got != s.Quantile(1) {
		t.Fatalf("Quantile(7) = %v, want clamp to p100 %v", got, s.Quantile(1))
	}

	// A sample below the first bound interpolates within [0, max].
	low := NewHistogram(bounds)
	low.Observe(0.5)
	if got := low.Snapshot().Quantile(1); got != 0.5 {
		t.Fatalf("first-bucket p100 = %v, want 0.5", got)
	}
	if got := low.Snapshot().Quantile(0); got != 0 {
		t.Fatalf("first-bucket p0 = %v, want 0", got)
	}

	// Beyond the last finite bound the +Inf bucket reports the max for
	// every quantile that lands in it.
	inf := NewHistogram(bounds)
	inf.Observe(100)
	for _, q := range []float64{0, 0.5, 1} {
		if got := inf.Snapshot().Quantile(q); got != 100 {
			t.Fatalf("+Inf-bucket Quantile(%v) = %v, want 100", q, got)
		}
	}

	// Degenerate cap: a snapshot whose max undercuts the hit bucket's
	// floor returns the max rather than inventing mass below it.
	crafted := HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []int64{0, 1, 0},
		Count:  1,
		Max:    0.5,
	}
	if got := crafted.Quantile(0.5); got != 0.5 {
		t.Fatalf("capped-below-floor Quantile = %v, want max 0.5", got)
	}
}
