package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// windowSlots is the number of rotating slots in a histogram's
// recent-maximum window. With the default windowSlotDur of one minute the
// windowed max covers the last four to five minutes — long enough that an
// operator's scrape cadence always sees a recent spike, short enough that
// one cold-start outlier stops pinning the reading (the /varz max bug this
// replaces).
const windowSlots = 5

// windowSlotDur is the default span of one window slot.
const windowSlotDur = time.Minute

// Histogram is a fixed-bucket histogram with lock-free observation:
// per-bucket atomic counters, an atomically-accumulated sum, an all-time
// maximum, and a rolling-window maximum. Bucket bounds are upper bounds
// (v ≤ bound) with an implicit +Inf bucket, matching Prometheus
// cumulative-bucket semantics when exported.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf

	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the all-time max

	win maxWindow
}

// ExponentialBounds returns n upper bounds start, start·factor,
// start·factor², … — the standard exponential bucket layout. start must
// be positive and factor > 1.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBounds wants start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogram builds a histogram over the given ascending upper bounds,
// with the default rolling-max window (five one-minute slots) on the
// real-time clock.
func NewHistogram(bounds []float64) *Histogram {
	return NewHistogramWindow(bounds, windowSlotDur, time.Now)
}

// NewHistogramWindow is NewHistogram with an explicit window-slot span and
// clock, for tests that need to drive the rolling maximum.
func NewHistogramWindow(bounds []float64, slot time.Duration, clock func() time.Time) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must ascend")
		}
	}
	if slot <= 0 {
		slot = windowSlotDur
	}
	if clock == nil {
		clock = time.Now
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
		win:    maxWindow{slot: slot, clock: clock},
	}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum); negative values land in the first bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	// CAS-max; the zero initial value makes Max effectively
	// max(0, observations), which is exact for the durations recorded here.
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.win.observe(v)
}

// Merge folds another histogram's observations into h: bucket counts and
// the sum add, the maxima fold, and o's rolling-window maximum is
// re-observed into h's window at merge time. The two histograms must
// share identical bucket bounds. Merge reads o through a snapshot, so o
// may keep observing concurrently; h is typically a scrape-time scratch
// aggregating per-shard histograms (the shard gather latency exposition).
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("telemetry: merge histogram with %d bounds into %d", len(o.bounds), len(h.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("telemetry: merge histograms with mismatched bound %d: %v vs %v", i, o.bounds[i], h.bounds[i])
		}
	}
	s := o.Snapshot()
	for i := range h.counts {
		h.counts[i].Add(s.Counts[i])
	}
	h.count.Add(s.Count)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s.Sum)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= s.Max {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(s.Max)) {
			break
		}
	}
	if s.WindowMax > 0 {
		h.win.observe(s.WindowMax)
	}
	return nil
}

// HistogramSnapshot is a consistent-enough point-in-time read of a
// histogram (each field is read atomically; fields may straddle a
// concurrent Observe, which scrapes tolerate by design).
type HistogramSnapshot struct {
	// Bounds are the finite upper bounds; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket, not cumulative.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
	// Max is the all-time maximum; WindowMax the maximum within the
	// rolling window (0 when the window holds no observations).
	Max       float64
	WindowMax float64
}

// Mean returns the mean observed value, or 0 before any observation.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts
// by linear interpolation inside the bucket holding the target rank — the
// same estimate a Prometheus histogram_quantile would give. Observations
// in the +Inf bucket are attributed to the all-time maximum, so tail
// quantiles stay finite. Returns 0 before any observation.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i == len(s.Bounds) {
				return s.Max // +Inf bucket: the max is the best finite bound
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if hi > s.Max {
				// The true maximum caps the bucket: a lone 3ms observation
				// in the (1ms, 10ms] bucket should not report p99 ≈ 10ms.
				hi = s.Max
			}
			if hi < lo {
				return hi
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	if s.Count > 0 {
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.WindowMax = h.win.max()
	return s
}

// maxWindow tracks the maximum observation over the last windowSlots
// rotating time slots. The mutex is uncontended in practice (observations
// are per interactive step, not per point) and the alternative — packing
// slot epoch and value into one atomic — is not worth the subtlety.
type maxWindow struct {
	slot  time.Duration
	clock func() time.Time

	mu     sync.Mutex
	epochs [windowSlots]int64 // slot-epoch each entry was written for
	maxes  [windowSlots]float64
	seen   [windowSlots]bool
}

func (w *maxWindow) observe(v float64) {
	epoch := w.clock().UnixNano() / int64(w.slot)
	i := int(epoch % windowSlots)
	if i < 0 {
		i += windowSlots
	}
	w.mu.Lock()
	if !w.seen[i] || w.epochs[i] != epoch {
		w.epochs[i] = epoch
		w.maxes[i] = v
		w.seen[i] = true
	} else if v > w.maxes[i] {
		w.maxes[i] = v
	}
	w.mu.Unlock()
}

func (w *maxWindow) max() float64 {
	epoch := w.clock().UnixNano() / int64(w.slot)
	var out float64
	w.mu.Lock()
	for i := 0; i < windowSlots; i++ {
		if w.seen[i] && epoch-w.epochs[i] < windowSlots && w.maxes[i] > out {
			out = w.maxes[i]
		}
	}
	w.mu.Unlock()
	return out
}
