package telemetry

import "testing"

// craftedSession builds an event stream for one synthetic session:
//
//	s (100ms)
//	└── s/r1 (90ms)
//	    ├── s/r1/v1.axis (60ms)
//	    │   ├── s/r1/v1.axis/proj (40ms)
//	    │   │   └── s/r1/v1.axis/proj/nearest#1 (30ms scatter)
//	    │   │       ├── sh0 10ms  sh1 25ms (straggler)
//	    │   └── s/r1/v1.axis/kde (15ms)
//	    │       └── s/r1/v1.axis/kde/kde/lattice#2 (12ms scatter)
//	    │           ├── sh0 11ms (straggler)  sh1 3ms
//	    └── s/r1/v1.axis/wait (20ms)
func craftedSession(session string) []Event {
	ev := func(e Event) Event {
		e.Session = session
		e.Request = "req-" + session
		return e
	}
	nearest := "s/r1/v1.axis/proj/nearest#1"
	lattice := "s/r1/v1.axis/kde/kde/lattice#2"
	return []Event{
		ev(Event{Type: EventSessionStart, Parent: "s", N: 100, Dim: 8}),
		ev(Event{Type: EventShardScatter, Parent: nearest, Stage: "nearest", Shards: 2, N: 100}),
		ev(Event{Type: EventShardGather, Span: nearest + "/sh0", Parent: nearest, Stage: "nearest", Shard: 0, Shards: 2, DurationMS: 10}),
		ev(Event{Type: EventShardGather, Span: nearest + "/sh1", Parent: nearest, Stage: "nearest", Shard: 1, Shards: 2, DurationMS: 25}),
		ev(Event{Type: EventSpan, Span: nearest, Parent: "s/r1/v1.axis/proj", Stage: "nearest", Shards: 2, N: 100, DurationMS: 30}),
		ev(Event{Type: EventProjection, Span: "s/r1/v1.axis/proj", Parent: "s/r1/v1.axis", DurationMS: 40}),
		ev(Event{Type: EventShardGather, Span: lattice + "/sh0", Parent: lattice, Stage: "kde/lattice", Shard: 0, Shards: 2, DurationMS: 11}),
		ev(Event{Type: EventShardGather, Span: lattice + "/sh1", Parent: lattice, Stage: "kde/lattice", Shard: 1, Shards: 2, DurationMS: 3}),
		ev(Event{Type: EventSpan, Span: lattice, Parent: "s/r1/v1.axis/kde", Stage: "kde/lattice", Shards: 2, N: 100, DurationMS: 12}),
		ev(Event{Type: EventKDEBuild, Span: "s/r1/v1.axis/kde", Parent: "s/r1/v1.axis", DurationMS: 15}),
		ev(Event{Type: EventView, Span: "s/r1/v1.axis", Parent: "s/r1", DurationMS: 60}),
		ev(Event{Type: EventDecisionWait, Span: "s/r1/v1.axis/wait", Parent: "s/r1", DurationMS: 20}),
		ev(Event{Type: EventIteration, Span: "s/r1", Parent: "s", Major: 1, DurationMS: 90}),
		ev(Event{Type: EventSessionEnd, Span: "s", Iterations: 1, DurationMS: 100}),
	}
}

func TestBuildSpanTrees(t *testing.T) {
	trees := BuildSpanTrees(craftedSession("sess-a"))
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Session != "sess-a" || tree.Request != "req-sess-a" {
		t.Fatalf("tree IDs = %q/%q", tree.Session, tree.Request)
	}
	if tree.Root == nil || tree.Root.ID != "s" || tree.Root.Type != EventSessionEnd {
		t.Fatalf("root = %+v, want session span s", tree.Root)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("complete trace produced orphans: %+v", tree.Orphans)
	}
	// 10 span ends: s, r1, view, proj, kde, wait, 2 scatters, 4 gathers = 12.
	if len(tree.Nodes) != 12 {
		t.Fatalf("got %d nodes, want 12", len(tree.Nodes))
	}
	round := tree.Root.Children
	if len(round) != 1 || round[0].ID != "s/r1" {
		t.Fatalf("root children = %+v, want [s/r1]", round)
	}
	// Round children in end order: view then wait.
	if len(round[0].Children) != 2 || round[0].Children[0].ID != "s/r1/v1.axis" ||
		round[0].Children[1].ID != "s/r1/v1.axis/wait" {
		t.Fatalf("round children = %v", round[0].Children)
	}

	nearest := tree.Nodes["s/r1/v1.axis/proj/nearest#1"]
	if !nearest.Scatter() {
		t.Fatal("nearest scatter span not recognized as scatter")
	}
	if got := nearest.Straggler(); got.Shard != 1 || got.DurationMS != 25 {
		t.Fatalf("nearest straggler = %+v, want shard 1 at 25ms", got)
	}
	// Scatter self time = 30 − max(10, 25) = 5.
	if self := nearest.SelfMS(); self != 5 {
		t.Fatalf("scatter SelfMS = %v, want 5", self)
	}
	// Sequential self time: view 60 − (proj 40 + kde 15) = 5.
	if self := tree.Nodes["s/r1/v1.axis"].SelfMS(); self != 5 {
		t.Fatalf("view SelfMS = %v, want 5", self)
	}
}

func TestSpanTreeMultiSessionAndOrphans(t *testing.T) {
	events := append(craftedSession("a"), craftedSession("b")...)
	// An orphan: span end whose parent never closes.
	events = append(events, Event{Session: "a", Type: EventSpan, Span: "ghost/x", Parent: "ghost", DurationMS: 1})
	trees := BuildSpanTrees(events)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2 (one per session)", len(trees))
	}
	if trees[0].Session != "a" || trees[1].Session != "b" {
		t.Fatalf("tree order = %q, %q, want first-appearance order a, b", trees[0].Session, trees[1].Session)
	}
	if len(trees[0].Orphans) != 1 || trees[0].Orphans[0].ID != "ghost/x" {
		t.Fatalf("orphans = %+v, want [ghost/x]", trees[0].Orphans)
	}
}

func TestSpanTreeIgnoresPreSpanStreams(t *testing.T) {
	trees := BuildSpanTrees([]Event{
		{Type: EventSessionStart, Session: "old"},
		{Type: EventView, Session: "old", DurationMS: 5},
		{Type: EventSessionEnd, Session: "old", DurationMS: 9},
	})
	if len(trees) != 0 {
		t.Fatalf("pre-span stream produced %d trees, want 0", len(trees))
	}
}

func TestAttribution(t *testing.T) {
	tree := BuildSpanTrees(craftedSession("sess-a"))[0]
	a := tree.Attribute()
	if a.TotalMS != 100 {
		t.Fatalf("TotalMS = %v, want 100", a.TotalMS)
	}
	// Critical path: s → r1 → view (60 > wait 20) → proj (40 > kde 15) →
	// nearest scatter → shard 1 (the straggler).
	wantPath := []string{"s", "s/r1", "s/r1/v1.axis", "s/r1/v1.axis/proj",
		"s/r1/v1.axis/proj/nearest#1", "s/r1/v1.axis/proj/nearest#1/sh1"}
	if len(a.Path) != len(wantPath) {
		t.Fatalf("path length %d, want %d: %+v", len(a.Path), len(wantPath), a.Path)
	}
	for i, want := range wantPath {
		if a.Path[i].Span != want {
			t.Fatalf("path[%d] = %q, want %q", i, a.Path[i].Span, want)
		}
	}
	last := a.Path[len(a.Path)-1]
	if last.Shard != 1 || last.Type != EventShardGather {
		t.Fatalf("critical path leaf = %+v, want straggler shard 1", last)
	}

	if len(a.Stages) != 2 {
		t.Fatalf("stages = %+v, want 2", a.Stages)
	}
	// Sorted by TotalMS descending: nearest (30) before kde/lattice (12).
	n := a.Stages[0]
	if n.Stage != "nearest" || n.Scatters != 1 || n.TotalMS != 30 || n.SlowestMS != 25 ||
		n.SelfMS != 5 || n.Straggler != 1 || n.Stragglers[1] != 1 {
		t.Fatalf("nearest attribution = %+v", n)
	}
	k := a.Stages[1]
	if k.Stage != "kde/lattice" || k.SlowestMS != 11 || k.Straggler != 0 {
		t.Fatalf("kde/lattice attribution = %+v", k)
	}

	// Pure derivation: attributing twice is identical.
	b := tree.Attribute()
	if len(b.Path) != len(a.Path) || b.Stages[0].Straggler != a.Stages[0].Straggler {
		t.Fatal("Attribute is not deterministic")
	}
}

func TestAttributionStragglerTieBreak(t *testing.T) {
	scatter := func(id string, d0, d1 float64) []Event {
		return []Event{
			{Type: EventShardGather, Span: id + "/sh0", Parent: id, Stage: "nearest", Shard: 0, DurationMS: d0},
			{Type: EventShardGather, Span: id + "/sh1", Parent: id, Stage: "nearest", Shard: 1, DurationMS: d1},
			{Type: EventSpan, Span: id, Parent: "s", Stage: "nearest", DurationMS: d0 + d1},
		}
	}
	events := append(scatter("s/nearest#1", 5, 1), scatter("s/nearest#2", 1, 5)...)
	events = append(events, Event{Type: EventSessionEnd, Span: "s", DurationMS: 20})
	a := BuildSpanTrees(events)[0].Attribute()
	if len(a.Stages) != 1 {
		t.Fatalf("stages = %+v", a.Stages)
	}
	// One straggle each: the tie breaks to the lower shard index.
	if a.Stages[0].Straggler != 0 || a.Stages[0].Stragglers[0] != 1 || a.Stages[0].Stragglers[1] != 1 {
		t.Fatalf("tie-break attribution = %+v, want straggler 0", a.Stages[0])
	}
	// Equal-duration shards within one scatter: straggler is the lower index.
	b := BuildSpanTrees(append(scatter("s/nearest#1", 3, 3),
		Event{Type: EventSessionEnd, Span: "s", DurationMS: 6}))[0]
	if got := b.Nodes["s/nearest#1"].Straggler(); got.Shard != 0 {
		t.Fatalf("equal-duration straggler = shard %d, want 0", got.Shard)
	}
}
