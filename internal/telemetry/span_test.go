package telemetry

import (
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	clock := StepClock(time.Unix(0, 0).UTC(), time.Millisecond)
	c := NewCollectorClock(clock)

	sp := StartSpan(c, "s/r1/proj/nearest#3", "s/r1/proj")
	if !sp.Active() {
		t.Fatal("span against a live tracer should be active")
	}
	sp.Annotate(Event{Type: EventShardScatter, Stage: "nearest", Shards: 2, N: 100})
	sp.ChildEnd("sh0", Event{Type: EventShardGather, Stage: "nearest", Shard: 0, DurationMS: 7})
	sp.ChildEnd("sh1", Event{Type: EventShardGather, Stage: "nearest", Shard: 1, DurationMS: 9})
	sp.End(Event{Type: EventSpan, Stage: "nearest", Shards: 2, N: 100})

	ev := c.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	scatter := ev[0]
	if scatter.Span != "" || scatter.Parent != "s/r1/proj/nearest#3" {
		t.Fatalf("annotation span/parent = %q/%q, want \"\"/span ID", scatter.Span, scatter.Parent)
	}
	for i, shard := range []string{"sh0", "sh1"} {
		g := ev[1+i]
		want := "s/r1/proj/nearest#3/" + shard
		if g.Span != want || g.Parent != "s/r1/proj/nearest#3" {
			t.Fatalf("gather %d span/parent = %q/%q, want %q under the scatter", i, g.Span, g.Parent, want)
		}
	}
	end := ev[3]
	if end.Span != "s/r1/proj/nearest#3" || end.Parent != "s/r1/proj" {
		t.Fatalf("end span/parent = %q/%q", end.Span, end.Parent)
	}
	if !end.Time.Equal(sp.StartTime()) {
		t.Fatalf("end Time = %v, want back-stamped start %v", end.Time, sp.StartTime())
	}
	// StartSpan read the clock once; Annotate/ChildEnd stamps read it three
	// more times; End read it once for the duration: start at +1ms, end
	// reading at +5ms → 4ms.
	if end.DurationMS != 4 {
		t.Fatalf("end DurationMS = %v, want 4 under the step clock", end.DurationMS)
	}
}

func TestSpanEndKeepsCallerDuration(t *testing.T) {
	c := NewCollectorClock(StepClock(time.Unix(0, 0).UTC(), time.Millisecond))
	sp := StartSpan(c, "x", "")
	sp.End(Event{Type: EventSpan, DurationMS: 42})
	if got := c.Events()[0].DurationMS; got != 42 {
		t.Fatalf("End overwrote caller duration: got %v, want 42", got)
	}
}

// TestSpanInertZeroAlloc pins the zero-cost-when-off contract: a span
// started against a nil tracer must not allocate or emit through its
// whole lifecycle. This is the span-layer counterpart of the
// BenchmarkFullSessionNoopTracer pair in core.
func TestSpanInertZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		sp := StartSpan(nil, "s/r1", "s")
		if sp.Active() {
			t.Fatal("nil-tracer span should be inert")
		}
		sp.Annotate(Event{Type: EventShardScatter, Stage: "nearest"})
		sp.ChildEnd("sh0", Event{Type: EventShardGather, Shard: 0, DurationMS: 1})
		sp.End(Event{Type: EventSpan, Stage: "nearest"})
	})
	if allocs != 0 {
		t.Fatalf("inert span lifecycle allocated %v times per run, want 0", allocs)
	}
}

func TestSpanInertNoClock(t *testing.T) {
	sp := StartSpan(nil, "a", "")
	if !sp.StartTime().IsZero() {
		t.Fatal("inert span should not read any clock")
	}
	if sp.ID() != "" {
		t.Fatalf("inert span ID = %q, want empty", sp.ID())
	}
}
