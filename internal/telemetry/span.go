package telemetry

import "time"

// Span is a lightweight handle on one node of a session's span tree: a
// tracer, a deterministic ID, the parent's ID, and the start time read
// from the tracer's clock. It is a plain value — starting, annotating,
// and ending a span allocate nothing — and the zero Span (or any Span
// started against a nil Tracer) is an inert no-op, preserving the
// zero-cost-when-off contract of the Tracer seam.
//
// Span IDs are not random: producers derive them from structural
// position (session → round → view → stage → shard), so the same seed
// yields the same tree at any worker count. The ID grammar is documented
// in DESIGN.md ("Causal tracing").
type Span struct {
	tr     Tracer
	id     string
	parent string
	start  time.Time
}

// StartSpan opens a span with the given deterministic ID under parent
// (empty for a root), reading the start time from tr's clock. A nil tr
// returns the inert zero Span without touching any clock.
func StartSpan(tr Tracer, id, parent string) Span {
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, id: id, parent: parent, start: tr.Now()}
}

// Active reports whether the span traces to a real sink. Callers guard
// any ID construction or event building on it.
func (s Span) Active() bool { return s.tr != nil }

// ID returns the span's deterministic ID ("" for an inert span).
func (s Span) ID() string { return s.id }

// StartTime returns the clock reading taken when the span was started.
func (s Span) StartTime() time.Time { return s.start }

// Annotate emits e as an annotation inside the span: Parent is set to
// the span's ID and Span is left empty, so readers see an event that
// belongs to the span without ending it. No-op when inert.
func (s Span) Annotate(e Event) {
	if s.tr == nil {
		return
	}
	e.Parent = s.id
	s.tr.Emit(e)
}

// ChildEnd emits e as the end record of the child span id + "/" + suffix.
// The caller supplies DurationMS (e.g. a per-shard wall time measured off
// the session goroutine); Time is left for the sink to stamp. No-op when
// inert.
func (s Span) ChildEnd(suffix string, e Event) {
	if s.tr == nil {
		return
	}
	e.Span = s.id + "/" + suffix
	e.Parent = s.id
	s.tr.Emit(e)
}

// End emits e as the span's end record: Span and Parent are set from the
// span, Time is back-stamped to the span's start, and DurationMS — when
// the caller left it zero — is measured against the tracer's clock. No-op
// when inert.
func (s Span) End(e Event) {
	if s.tr == nil {
		return
	}
	e.Span = s.id
	e.Parent = s.parent
	e.Time = s.start
	if e.DurationMS == 0 {
		e.DurationMS = float64(s.tr.Now().Sub(s.start)) / float64(time.Millisecond)
	}
	s.tr.Emit(e)
}
