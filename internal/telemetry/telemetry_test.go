package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	clock := StepClock(time.Unix(0, 0).UTC(), time.Millisecond)
	tr := NewJSONLClock(&buf, clock)
	tr.Emit(Event{Type: EventSessionStart, Session: "s1", N: 100, Dim: 8})
	tr.Emit(Event{Type: EventDecisionWait, Session: "s1", Major: 1, Minor: 2, DurationMS: 42.5, Skipped: true})

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Type != EventSessionStart || events[0].N != 100 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].DurationMS != 42.5 || !events[1].Skipped {
		t.Errorf("event 1 = %+v", events[1])
	}
	if !events[1].Time.After(events[0].Time) {
		t.Errorf("step clock did not advance: %v then %v", events[0].Time, events[1].Time)
	}
}

// TestJSONLOmitsEmptyFields pins the wire economy: an event carries only
// the fields its type uses, so streams stay jq-friendly and compact.
func TestJSONLOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONLClock(&buf, StepClock(time.Unix(0, 0).UTC(), time.Second))
	tr.Emit(Event{Type: EventIteration, Major: 3, DurationMS: 1, Overlap: 0.5})
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"session", "tau", "picked", "error", "family", "kde_build_ms"} {
		if _, ok := raw[absent]; ok {
			t.Errorf("field %q present in %s", absent, buf.String())
		}
	}
	for _, present := range []string{"ts", "event", "major", "duration_ms", "overlap"} {
		if _, ok := raw[present]; !ok {
			t.Errorf("field %q missing in %s", present, buf.String())
		}
	}
}

func TestWithIDs(t *testing.T) {
	c := NewCollector()
	tr := WithIDs(c, "sess-1", "req-9")
	tr.Emit(Event{Type: EventView})
	tr.Emit(Event{Type: EventView, Session: "other"}) // explicit session wins
	events := c.Events()
	if events[0].Session != "sess-1" || events[0].Request != "req-9" {
		t.Errorf("event 0 not stamped: %+v", events[0])
	}
	if events[1].Session != "other" || events[1].Request != "req-9" {
		t.Errorf("event 1 = %+v", events[1])
	}
	if WithIDs(nil, "s", "r") != nil {
		t.Error("WithIDs(nil) must stay nil (no-op contract)")
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	tr := Multi(nil, a, nil, b)
	tr.Emit(Event{Type: EventSelect, Picked: 7})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("fan-out failed: %d / %d", len(a.Events()), len(b.Events()))
	}
	if a.Events()[0].Time.IsZero() || !a.Events()[0].Time.Equal(b.Events()[0].Time) {
		t.Error("Multi must stamp one shared timestamp")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nothing must be nil")
	}
	if Multi(a) != Tracer(a) {
		t.Error("Multi of one sink should return it unwrapped")
	}
}

func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Emit(Event{Type: EventView, DurationMS: float64(i)})
			}
		}()
	}
	wg.Wait()
	lines := strings.Count(buf.String(), "\n")
	if lines != 400 {
		t.Fatalf("got %d lines, want 400", lines)
	}
	if _, err := ReadJSONL(&buf); err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
}

func TestCollectorZeroValue(t *testing.T) {
	var c Collector
	if c.Now().IsZero() {
		t.Fatal("zero-value Collector returned the zero time")
	}
	c.Emit(Event{Type: EventSessionStart})
	ev := c.Events()
	if len(ev) != 1 || ev[0].Time.IsZero() {
		t.Fatalf("zero-value Collector did not stamp the event: %+v", ev)
	}
}
