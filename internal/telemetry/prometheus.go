package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// This file is a minimal Prometheus text-format (version 0.0.4) writer —
// just enough exposition for a scrape endpoint, with no registry and no
// dependency. Families must be written in one shot (HELP, TYPE, samples)
// and the caller owns the ordering; the server writes them sorted so the
// exposition is byte-stable and golden-testable.

// PromWriter accumulates one exposition response.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w. Write errors are sticky and surfaced by Err.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// promFloat renders a float the way Prometheus clients do: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter writes one counter family with a single unlabeled sample.
func (p *PromWriter) Counter(name, help string, v int64) {
	p.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// Gauge writes one gauge family with a single unlabeled sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.printf("# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
}

// Histogram writes one histogram family from a snapshot: cumulative
// le-labeled buckets (including +Inf), _sum, and _count.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot) {
	p.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		p.printf("%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
	}
	cum += s.Counts[len(s.Counts)-1]
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p.printf("%s_sum %s\n%s_count %d\n", name, promFloat(s.Sum), name, s.Count)
}
