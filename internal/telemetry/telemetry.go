// Package telemetry is the observability layer shared by the engine and
// the serving subsystem: typed trace events with pluggable sinks (JSONL
// for offline analysis, in-memory for tests, fan-out for composition),
// fixed-bucket latency histograms with lock-free observation, and a
// dependency-free Prometheus text exposition writer.
//
// The engine emits events through the Tracer interface; a nil Tracer is
// the supported no-op default and instrumented code must guard on it, so
// an untraced session pays no clock reads and no allocations. All sinks
// take their timestamps from an injectable clock, which is what makes
// trace streams byte-reproducible in tests.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType names one kind of trace event. The taxonomy is documented in
// DESIGN.md ("Observability"); cmd/profileviz -trace and plain jq consume
// the JSONL streams built from these.
type EventType string

// The engine's event taxonomy. One interactive session emits exactly one
// session_start and (on any exit path) one session_end; each major
// iteration emits one iteration and one points_dropped; each minor
// iteration emits projection (preceded by one projection_stage per
// halving stage), kde_build, and view per candidate projection family,
// one decision_wait per view shown, and one select per answered view.
const (
	// EventSessionStart opens a session trace: dataset size, dimension,
	// and the effective engine configuration.
	EventSessionStart EventType = "session_start"
	// EventSessionEnd closes a session trace with the outcome (iterations,
	// convergence, views answered) or the error that aborted it.
	EventSessionEnd EventType = "session_end"
	// EventIteration marks a major-iteration boundary: duration, the
	// top-s overlap with the previous iteration, and the surviving size.
	EventIteration EventType = "iteration"
	// EventProjection times one graded subspace determination
	// (FindQueryCenteredProjection) for one projection family.
	EventProjection EventType = "projection"
	// EventProjectionStage times one halving stage inside a graded
	// subspace determination (nearest-s re-ranking plus cluster-subspace
	// scoring); Dim carries the stage's target dimensionality. A
	// projection event therefore decomposes into its projection_stage
	// events, which is what localizes regressions to a stage depth.
	EventProjectionStage EventType = "projection_stage"
	// EventKDEBuild times one kernel-density grid build (the profile
	// construction around it; the pure grid time is in KDEBuildMS).
	EventKDEBuild EventType = "kde_build"
	// EventView times the full construction of one visual profile —
	// projection search plus density estimate — i.e. the latency of one
	// interactive step as the user experiences it.
	EventView EventType = "view"
	// EventDecisionWait is the separator-decision wait: how long the
	// session blocked between serving a view and receiving the user's
	// decision (human think time for interactive users).
	EventDecisionWait EventType = "decision_wait"
	// EventSelect times the density-connected cluster selection induced
	// by an answered view's separator.
	EventSelect EventType = "select"
	// EventPointsDropped reports the pruning at the end of a major
	// iteration: how many points were removed and how many remain.
	EventPointsDropped EventType = "points_dropped"
	// EventIndexBuild times one candidate-generation index build
	// (Config.Index): Backend names the backend, N and Dim the view it
	// was built over. Sessions rebuild lazily whenever their view
	// advances, so one session emits one per view generation consulted.
	EventIndexBuild EventType = "index_build"
	// EventIndexDerive times one incremental index derivation
	// (index.Deriver): the child backend over N rows was filtered from a
	// parent built over ParentN rows instead of rebuilt — the cheap path
	// sessions take when their view narrows. Backend names the backend;
	// the span nests under the stage span like index_build.
	EventIndexDerive EventType = "index_derive"
	// EventCandidateGen times one candidate-generation query against the
	// built index: Picked is the candidate count returned, Scanned and
	// Refined the backend's work counters (see index.Stats).
	EventCandidateGen EventType = "candidate_gen"
	// EventShardScatter marks the fan-out of one engine stage across the
	// session's shards: Stage names the stage kernel ("stats", "nearest",
	// "kde", "candidates"), Shards the partition width, N the stage's
	// input rows. Emitted once per scatter, before the partials run.
	EventShardScatter EventType = "shard_scatter"
	// EventShardGather reports one shard's partial completing: Shard is
	// the shard index, Stage the stage kernel, DurationMS the partial's
	// wall time, N the shard's row count. Emitted in ascending shard
	// order after the scatter barrier (the merge order), so a trace reader
	// sees scatter → gather·P → span per sharded stage.
	EventShardGather EventType = "shard_gather"
	// EventSpan is the generic span-end record for spans that have no
	// richer event type of their own — today the scatter-stage spans the
	// shard.Coordinator closes after the gathers. Stage, Shards, and N
	// describe the stage; DurationMS is the scatter's wall time on the
	// session goroutine (fan-out through merge-ready), which per-shard
	// gather durations decompose. All other span ends ride on existing
	// events (view, kde_build, iteration, ...) via the Span/Parent fields.
	EventSpan EventType = "span"
)

// Event is one trace record. It is a flat value struct — no maps, no
// nested allocations — so building and emitting one costs nothing beyond
// the sink's own work. Unused fields are omitted from the JSONL encoding.
type Event struct {
	// Time is stamped by the sink's clock when left zero.
	Time time.Time `json:"ts"`
	Type EventType `json:"event"`
	// Session identifies the session the event belongs to; Request is the
	// ID of the HTTP request that created the session (when served), so
	// one request ID links slog lines, metrics, and the trace stream.
	Session string `json:"session,omitempty"`
	Request string `json:"request,omitempty"`
	// Major and Minor are the engine's 1-based iteration counters.
	Major int `json:"major,omitempty"`
	Minor int `json:"minor,omitempty"`
	// DurationMS is the event's measured wall time in milliseconds.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// KDEBuildMS is the pure density-grid build time inside a kde_build
	// event (DurationMS additionally covers projection of the data and
	// the discrimination scan).
	KDEBuildMS float64 `json:"kde_build_ms,omitempty"`
	// N and Dim describe the data in play when the event fired.
	N   int `json:"n,omitempty"`
	Dim int `json:"dim,omitempty"`
	// ParentN is the parent index's row count on an index_derive event —
	// the size the derivation avoided re-scanning.
	ParentN int `json:"parent_n,omitempty"`
	// Workers is the session's configured worker count (session_start).
	Workers int `json:"workers,omitempty"`
	// Family is the projection family of a projection/view event
	// ("axis" or "arbitrary").
	Family string `json:"family,omitempty"`
	// GridSize is the density grid resolution of a kde_build event.
	GridSize int `json:"grid,omitempty"`
	// Skipped marks a decision_wait whose view the user skipped.
	Skipped bool `json:"skipped,omitempty"`
	// Tau is the separator height of a select event.
	Tau float64 `json:"tau,omitempty"`
	// Cells and Examined describe the density-connected region of a
	// select event: member rectangles and rectangles tested during the
	// breadth-first search.
	Cells    int `json:"cells,omitempty"`
	Examined int `json:"examined,omitempty"`
	// Picked counts the points a select event captured.
	Picked int `json:"picked,omitempty"`
	// Dropped counts the points pruned by a points_dropped event.
	Dropped int `json:"dropped,omitempty"`
	// Overlap is the top-s overlap fraction of an iteration event.
	Overlap float64 `json:"overlap,omitempty"`
	// Backend names the candidate-generation backend of an index_build or
	// candidate_gen event; Scanned and Refined carry its work counters
	// (rows or approximations examined, exact distances computed).
	Backend string `json:"backend,omitempty"`
	Scanned int    `json:"scanned,omitempty"`
	Refined int    `json:"refined,omitempty"`
	// Stage names the stage kernel of a shard_scatter/shard_gather event;
	// Shard is the 0-based shard index of a gather (or per-shard
	// index_build) and Shards the session's partition width.
	Stage  string `json:"stage,omitempty"`
	Shard  int    `json:"shard,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Iterations, Converged, ViewsShown and ViewsAnswered summarize the
	// session on a session_end event.
	Iterations    int  `json:"iterations,omitempty"`
	Converged     bool `json:"converged,omitempty"`
	ViewsShown    int  `json:"views_shown,omitempty"`
	ViewsAnswered int  `json:"views_answered,omitempty"`
	// Err carries the abort error of a failed session_end.
	Err string `json:"error,omitempty"`
	// Span and Parent link the event into the session's span tree
	// (DESIGN.md "Causal tracing"). A non-empty Span marks the event as
	// the end record of that span — the event's DurationMS is the span's
	// duration and, for events the producer back-stamps, Time is the
	// span's start. A non-empty Parent on an event without Span is an
	// annotation attached inside the parent span (session_start,
	// points_dropped, shard_scatter). Span IDs are deterministic
	// structural paths ("s/r2/v1.axis/proj"), identical across runs and
	// worker counts for the same seed.
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
}

// Tracer is a sink for trace events. Implementations must be safe for
// concurrent use. Now is the tracer's clock; instrumented code measures
// durations against it so tests can substitute a deterministic clock.
// A nil Tracer is the no-op default: callers guard on it and skip both
// the clock reads and the event construction entirely.
type Tracer interface {
	Emit(e Event)
	Now() time.Time
}

// JSONL writes each event as one JSON line, the format consumed by
// cmd/profileviz -trace and by jq. Safe for concurrent use.
type JSONL struct {
	clock func() time.Time

	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONL returns a JSONL tracer writing to w with the real-time clock.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{clock: time.Now, enc: json.NewEncoder(w)}
}

// NewJSONLClock is NewJSONL with an explicit clock, for deterministic
// trace streams in tests.
func NewJSONLClock(w io.Writer, clock func() time.Time) *JSONL {
	return &JSONL{clock: clock, enc: json.NewEncoder(w)}
}

// Now implements Tracer.
func (t *JSONL) Now() time.Time { return t.clock() }

// Emit implements Tracer, stamping the event with the tracer's clock when
// the producer left Time zero.
func (t *JSONL) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = t.clock()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(e) // sink errors are not the instrumented code's problem
}

// Collector retains events in memory, for tests and in-process analysis.
// The zero value is ready to use and reads the real-time clock.
type Collector struct {
	clock func() time.Time

	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty collector with the real-time clock.
func NewCollector() *Collector { return &Collector{clock: time.Now} }

// NewCollectorClock is NewCollector with an explicit clock.
func NewCollectorClock(clock func() time.Time) *Collector { return &Collector{clock: clock} }

func (c *Collector) tick() time.Time {
	if c.clock == nil {
		return time.Now()
	}
	return c.clock()
}

// Now implements Tracer.
func (c *Collector) Now() time.Time { return c.tick() }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = c.tick()
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// CountByType tallies the collected events per type.
func (c *Collector) CountByType() map[EventType]int {
	out := make(map[EventType]int)
	for _, e := range c.Events() {
		out[e.Type]++
	}
	return out
}

// stamped wraps a tracer, filling in Session and Request on every event
// that does not already carry them.
type stamped struct {
	next             Tracer
	session, request string
}

// WithIDs returns a tracer that stamps session and request identifiers
// onto every event before forwarding to next. Either ID may be empty.
// A nil next yields nil, preserving the no-op contract.
func WithIDs(next Tracer, session, request string) Tracer {
	if next == nil {
		return nil
	}
	return &stamped{next: next, session: session, request: request}
}

func (s *stamped) Now() time.Time { return s.next.Now() }

func (s *stamped) Emit(e Event) {
	if e.Session == "" {
		e.Session = s.session
	}
	if e.Request == "" {
		e.Request = s.request
	}
	s.next.Emit(e)
}

// multi fans every event out to several sinks; Now comes from the first.
type multi struct{ sinks []Tracer }

// Multi composes tracers: every event goes to every non-nil sink, and the
// first sink's clock is authoritative. Nil sinks are dropped; if none
// remain, Multi returns nil.
func Multi(sinks ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multi{sinks: kept}
}

func (m *multi) Now() time.Time { return m.sinks[0].Now() }

func (m *multi) Emit(e Event) {
	if e.Time.IsZero() {
		e.Time = m.sinks[0].Now()
	}
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// StepClock returns a deterministic clock for tests: each call advances a
// fixed step from the origin, so the i-th reading is origin + i·step
// regardless of wall time. The returned func must be called from a single
// goroutine (trace instrumentation runs on the session goroutine).
func StepClock(origin time.Time, step time.Duration) func() time.Time {
	t := origin
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// ReadJSONL parses a JSONL event stream written by the JSONL tracer.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("telemetry: parse event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}
