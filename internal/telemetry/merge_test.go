package telemetry

import (
	"math"
	"testing"
	"time"
)

// TestHistogramMerge checks the aggregation used by the shard-latency
// exposition: merging per-shard histograms into a scratch must add counts
// and sums exactly and fold the maxima.
func TestHistogramMerge(t *testing.T) {
	bounds := ExponentialBounds(0.001, 2, 8)
	a := NewHistogram(bounds)
	b := NewHistogram(bounds)
	for _, v := range []float64{0.0005, 0.003, 0.01} {
		a.Observe(v)
	}
	for _, v := range []float64{0.002, 0.5} {
		b.Observe(v)
	}
	dst := NewHistogram(bounds)
	if err := dst.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := dst.Snapshot()
	if s.Count != 5 {
		t.Fatalf("merged count = %d, want 5", s.Count)
	}
	want := 0.0005 + 0.003 + 0.01 + 0.002 + 0.5
	if math.Abs(s.Sum-want) > 1e-12 {
		t.Fatalf("merged sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 0.5 {
		t.Fatalf("merged max = %v, want 0.5", s.Max)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
	// Per-bucket additivity: merging must agree with observing the union.
	ref := NewHistogram(bounds)
	for _, v := range []float64{0.0005, 0.003, 0.01, 0.002, 0.5} {
		ref.Observe(v)
	}
	rs := ref.Snapshot()
	for i := range rs.Counts {
		if rs.Counts[i] != s.Counts[i] {
			t.Fatalf("bucket %d: merged %d, direct %d", i, s.Counts[i], rs.Counts[i])
		}
	}
}

// TestHistogramMergeWindow checks the rolling-window max survives a merge:
// the source's recent max is re-observed into the destination's window.
func TestHistogramMergeWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	bounds := []float64{1, 10}
	src := NewHistogramWindow(bounds, time.Minute, clock)
	src.Observe(7)
	dst := NewHistogramWindow(bounds, time.Minute, clock)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if got := dst.Snapshot().WindowMax; got != 7 {
		t.Fatalf("window max after merge = %v, want 7", got)
	}
}

// TestHistogramMergeBoundsMismatch checks that incompatible layouts are
// rejected instead of silently misbinned.
func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with fewer bounds accepted")
	}
	c := NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge with shifted bounds accepted")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge should be a no-op, got %v", err)
	}
}

// TestHistogramMergeMismatchedCounts checks merging histograms whose
// observation counts differ wildly — including an empty source and an
// empty destination — which is the normal case for per-shard latency
// histograms under skewed shard load.
func TestHistogramMergeMismatchedCounts(t *testing.T) {
	bounds := ExponentialBounds(0.001, 2, 8)
	big := NewHistogram(bounds)
	for i := 0; i < 1000; i++ {
		big.Observe(0.002)
	}
	small := NewHistogram(bounds)
	small.Observe(0.05)

	// Small into big.
	dst := NewHistogram(bounds)
	if err := dst.Merge(big); err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(small); err != nil {
		t.Fatal(err)
	}
	s := dst.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("merged count = %d, want 1001", s.Count)
	}
	if want := 1000*0.002 + 0.05; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("merged sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 0.05 {
		t.Fatalf("merged max = %v, want the small side's 0.05", s.Max)
	}

	// Empty source: merging must be a no-op on counts, sum, and max.
	before := dst.Snapshot()
	if err := dst.Merge(NewHistogram(bounds)); err != nil {
		t.Fatal(err)
	}
	after := dst.Snapshot()
	if after.Count != before.Count || after.Sum != before.Sum || after.Max != before.Max {
		t.Fatalf("merging an empty histogram changed the destination: %+v → %+v", before, after)
	}

	// Empty destination: the merge result equals the source.
	fresh := NewHistogram(bounds)
	if err := fresh.Merge(big); err != nil {
		t.Fatal(err)
	}
	fs, bs := fresh.Snapshot(), big.Snapshot()
	if fs.Count != bs.Count || fs.Sum != bs.Sum || fs.Max != bs.Max {
		t.Fatalf("empty-destination merge = %+v, want source %+v", fs, bs)
	}
	for i := range fs.Counts {
		if fs.Counts[i] != bs.Counts[i] {
			t.Fatalf("bucket %d: merged %d, source %d", i, fs.Counts[i], bs.Counts[i])
		}
	}
}
