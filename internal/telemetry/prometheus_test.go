package telemetry

import (
	"strings"
	"testing"
)

func TestPromWriterFamilies(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("x_total", "things counted", 42)
	p.Gauge("y_bytes", "resident bytes", 1.5e6)
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)
	p.Histogram("z_seconds", "latency", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP x_total things counted
# TYPE x_total counter
x_total 42
# HELP y_bytes resident bytes
# TYPE y_bytes gauge
y_bytes 1.5e+06
# HELP z_seconds latency
# TYPE z_seconds histogram
z_seconds_bucket{le="0.001"} 1
z_seconds_bucket{le="0.01"} 1
z_seconds_bucket{le="0.1"} 2
z_seconds_bucket{le="+Inf"} 3
z_seconds_sum 3.0505
z_seconds_count 3
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.001:  "0.001",
		1.5e6:  "1.5e+06",
		0.0625: "0.0625",
	}
	for v, want := range cases {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
