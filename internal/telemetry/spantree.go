package telemetry

import (
	"sort"
	"time"
)

// This file reconstructs span trees from event streams and runs the
// critical-path analysis over them: which child dominated each span's
// wall time, which shard straggled in each scatter, and how much time
// each node spent in itself rather than its children. It is the offline
// half of the span layer — producers only stamp Span/Parent fields;
// everything here is derived.

// SpanNode is one reconstructed node of a session's span tree.
type SpanNode struct {
	// ID and ParentID are the deterministic span path and its parent
	// ("" for the root).
	ID       string
	ParentID string
	// Type is the event type that ended the span; Event is that full
	// end record.
	Type  EventType
	Event Event
	// Stage is the stage kernel for scatter-stage and shard spans.
	Stage string
	// Shard is the shard index for shard spans, -1 otherwise.
	Shard int
	// Start is the span's back-stamped start time (zero when the
	// producer could not back-stamp, e.g. shard spans).
	Start time.Time
	// DurationMS is the span's measured duration.
	DurationMS float64
	// Children are the span's child nodes in end-record order — for
	// shard children that is ascending shard order, the merge order.
	Children []*SpanNode
}

// Scatter reports whether the node is a scatter-stage span, i.e. its
// children are per-shard partials that ran in parallel rather than
// sequential sub-stages.
func (n *SpanNode) Scatter() bool {
	return len(n.Children) > 0 && n.Children[0].Type == EventShardGather
}

// Straggler returns the slowest child of a scatter node — the shard that
// bounded the stage's wall time. Ties break to the lower shard index
// (the earlier child), so the answer is deterministic for a given event
// stream. Returns nil for non-scatter nodes.
func (n *SpanNode) Straggler() *SpanNode {
	if !n.Scatter() {
		return nil
	}
	best := n.Children[0]
	for _, c := range n.Children[1:] {
		if c.DurationMS > best.DurationMS {
			best = c
		}
	}
	return best
}

// SelfMS is the node's duration not attributable to its children: for a
// scatter node the children ran in parallel, so self time is duration
// minus the slowest child (fan-out plus merge overhead); for every other
// node the children ran sequentially, so self time is duration minus the
// children's sum. Clamped at zero — overlapping child spans (a wait span
// outliving its view) would otherwise go negative.
func (n *SpanNode) SelfMS() float64 {
	covered := 0.0
	if n.Scatter() {
		covered = n.Straggler().DurationMS
	} else {
		for _, c := range n.Children {
			covered += c.DurationMS
		}
	}
	if self := n.DurationMS - covered; self > 0 {
		return self
	}
	return 0
}

// SpanTree is one session's reconstructed tree.
type SpanTree struct {
	// Session and Request are the IDs stamped on the session's events
	// (either may be empty for in-process traces).
	Session string
	Request string
	// Root is the session span ("s"), or nil if the stream held no
	// session_end for this session (a live or truncated trace).
	Root *SpanNode
	// Nodes indexes every span end seen, by ID.
	Nodes map[string]*SpanNode
	// Orphans are spans whose parent never produced an end record; a
	// complete trace has none.
	Orphans []*SpanNode
}

// BuildSpanTrees reconstructs one SpanTree per session from an event
// stream, in first-appearance order. Events without a Span field
// (annotations and pre-span traces) contribute nothing; a stream from a
// pre-span build therefore yields trees with no nodes.
func BuildSpanTrees(events []Event) []*SpanTree {
	bySession := make(map[string]*SpanTree)
	var order []string
	for _, e := range events {
		if e.Span == "" {
			continue
		}
		t := bySession[e.Session]
		if t == nil {
			t = &SpanTree{Session: e.Session, Nodes: make(map[string]*SpanNode)}
			bySession[e.Session] = t
			order = append(order, e.Session)
		}
		if t.Request == "" {
			t.Request = e.Request
		}
		shard := -1
		if e.Type == EventShardGather {
			shard = e.Shard
		}
		n := &SpanNode{
			ID:         e.Span,
			ParentID:   e.Parent,
			Type:       e.Type,
			Event:      e,
			Stage:      e.Stage,
			Shard:      shard,
			Start:      e.Time,
			DurationMS: e.DurationMS,
		}
		t.Nodes[n.ID] = n
	}
	out := make([]*SpanTree, 0, len(order))
	for _, s := range order {
		t := bySession[s]
		// Link children in the original end-record order: walk the event
		// stream again restricted to this session so child slices are
		// deterministic.
		for _, e := range events {
			if e.Span == "" || e.Session != s {
				continue
			}
			n := t.Nodes[e.Span]
			switch {
			case n.ParentID == "":
				if t.Root == nil {
					t.Root = n
				}
			case t.Nodes[n.ParentID] != nil:
				p := t.Nodes[n.ParentID]
				p.Children = append(p.Children, n)
			default:
				t.Orphans = append(t.Orphans, n)
			}
		}
		out = append(out, t)
	}
	return out
}

// PathStep is one hop of a critical path, root first.
type PathStep struct {
	Span       string
	Type       EventType
	Stage      string
	Shard      int
	DurationMS float64
	SelfMS     float64
}

// StageAttribution aggregates every scatter of one stage kernel across a
// session: how much wall time the stage cost, how much of it the slowest
// shards account for, and which shard straggled most often.
type StageAttribution struct {
	// Stage is the stage kernel name ("nearest", "kde/lattice", ...).
	Stage string
	// Scatters counts the stage's scatter spans.
	Scatters int
	// TotalMS sums the scatter spans' durations; SlowestMS sums each
	// scatter's slowest shard (the parallel lower bound); SelfMS is the
	// difference — fan-out and merge overhead on the session goroutine.
	TotalMS   float64
	SlowestMS float64
	SelfMS    float64
	// Straggler is the shard that was slowest most often (ties to the
	// lower index); Stragglers counts slowest-shard occurrences per shard.
	Straggler  int
	Stragglers map[int]int
}

// Attribution is the critical-path analysis of one session tree.
type Attribution struct {
	Session string
	Request string
	// TotalMS is the root session span's duration (0 without a root).
	TotalMS float64
	// Path walks from the root following the slowest child at each node
	// until a leaf; at a scatter node that child is the straggler shard,
	// which is how the path names a specific shard per dominated stage.
	Path []PathStep
	// Stages is the per-stage scatter rollup, sorted by descending
	// TotalMS (ties by stage name), so Stages[0] is the most expensive
	// sharded stage.
	Stages []StageAttribution
}

// Attribute runs the critical-path analysis over the tree. It is pure
// derivation: calling it twice, or on a tree rebuilt from the same
// events, yields identical results.
func (t *SpanTree) Attribute() Attribution {
	a := Attribution{Session: t.Session, Request: t.Request}
	if t.Root != nil {
		a.TotalMS = t.Root.DurationMS
		for n := t.Root; n != nil; {
			a.Path = append(a.Path, PathStep{
				Span:       n.ID,
				Type:       n.Type,
				Stage:      n.Stage,
				Shard:      n.Shard,
				DurationMS: n.DurationMS,
				SelfMS:     n.SelfMS(),
			})
			var next *SpanNode
			for _, c := range n.Children {
				if next == nil || c.DurationMS > next.DurationMS {
					next = c
				}
			}
			n = next
		}
	}
	byStage := make(map[string]*StageAttribution)
	for _, n := range t.Nodes {
		if !n.Scatter() {
			continue
		}
		sa := byStage[n.Stage]
		if sa == nil {
			sa = &StageAttribution{Stage: n.Stage, Stragglers: make(map[int]int)}
			byStage[n.Stage] = sa
		}
		worst := n.Straggler()
		sa.Scatters++
		sa.TotalMS += n.DurationMS
		sa.SlowestMS += worst.DurationMS
		sa.SelfMS += n.SelfMS()
		sa.Stragglers[worst.Shard]++
	}
	for _, sa := range byStage {
		sa.Straggler = -1
		for shard, hits := range sa.Stragglers {
			if sa.Straggler == -1 || hits > sa.Stragglers[sa.Straggler] ||
				(hits == sa.Stragglers[sa.Straggler] && shard < sa.Straggler) {
				sa.Straggler = shard
			}
		}
		a.Stages = append(a.Stages, *sa)
	}
	sort.Slice(a.Stages, func(i, j int) bool {
		if a.Stages[i].TotalMS != a.Stages[j].TotalMS {
			return a.Stages[i].TotalMS > a.Stages[j].TotalMS
		}
		return a.Stages[i].Stage < a.Stages[j].Stage
	})
	return a
}
