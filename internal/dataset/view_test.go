package dataset

import (
	"math/rand"
	"sync"
	"testing"

	"innsearch/internal/linalg"
)

func viewTestDataset(t *testing.T, n, d int, seed int64) *Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		rows[i] = row
		labels[i] = i % 3
	}
	ds, err := New(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestViewNarrowPreservesIDs(t *testing.T) {
	ds := viewTestDataset(t, 20, 4, 1)
	v := ds.View()

	first, err := v.Narrow([]int{3, 7, 11, 15, 19})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int{3, 7, 11, 15, 19}
	for i, want := range wantIDs {
		if got := first.ID(i); got != want {
			t.Errorf("first narrow ID(%d) = %d, want %d", i, got, want)
		}
		if got := first.Label(i); got != want%3 {
			t.Errorf("first narrow Label(%d) = %d, want %d", i, got, want%3)
		}
		if !first.Point(i).ApproxEqual(v.Point(want), 0) {
			t.Errorf("first narrow Point(%d) differs from store row %d", i, want)
		}
	}

	// Re-narrowing addresses positions of the narrowed view, not original
	// rows, and must keep resolving through to the original IDs.
	second, err := first.Narrow([]int{4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{19, 3, 11} {
		if got := second.ID(i); got != want {
			t.Errorf("second narrow ID(%d) = %d, want %d", i, got, want)
		}
	}
	if second.N() != 3 || second.Dim() != 4 {
		t.Errorf("second narrow shape %d×%d, want 3×4", second.N(), second.Dim())
	}

	// Narrowing never copies point data: rows must share the store's
	// backing array.
	if &second.Point(0)[0] != &v.Point(19)[0] {
		t.Error("narrowed ambient view does not share the store's backing array")
	}

	if _, err := first.Narrow(nil); err == nil {
		t.Error("empty narrow accepted")
	}
	if _, err := first.Narrow([]int{5}); err == nil {
		t.Error("out-of-range narrow position accepted")
	}
}

func TestViewComposeMatchesEagerProjection(t *testing.T) {
	ds := viewTestDataset(t, 50, 6, 2)
	sub, err := linalg.NewSubspace(6, []linalg.Vector{
		{1, 1, 0, 0, 0, 0},
		{0, 0, 1, -1, 0, 0},
		{0.3, 0, 0, 0, 1, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}

	pv, err := ds.View().Compose(sub)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := sub.ProjectRows(ds.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if pv.N() != eager.Rows || pv.Dim() != eager.Cols {
		t.Fatalf("composed shape %d×%d, eager %d×%d", pv.N(), pv.Dim(), eager.Rows, eager.Cols)
	}
	for i := 0; i < pv.N(); i++ {
		row := pv.Point(i)
		for j := 0; j < pv.Dim(); j++ {
			if row[j] != eager.At(i, j) { // bit-identical, not approximately equal
				t.Fatalf("fused row %d col %d = %v, eager %v", i, j, row[j], eager.At(i, j))
			}
		}
	}

	// A projection chain narrowed afterwards keeps per-row values: each
	// row depends only on its own base row.
	nv, err := pv.Narrow([]int{9, 4, 31})
	if err != nil {
		t.Fatal(err)
	}
	for k, orig := range []int{9, 4, 31} {
		if !nv.Point(k).ApproxEqual(pv.Point(orig), 0) {
			t.Errorf("narrowed projected row %d differs from original row %d", k, orig)
		}
		if nv.ID(k) != orig {
			t.Errorf("narrowed projected ID(%d) = %d, want %d", k, nv.ID(k), orig)
		}
	}

	if _, err := ds.View().Compose(linalg.FullSpace(4)); err == nil {
		t.Error("dimension-mismatched compose accepted")
	}
}

func TestViewComposeArenaBitIdentical(t *testing.T) {
	ds := viewTestDataset(t, 40, 5, 3)
	sub, err := linalg.NewSubspace(5, []linalg.Vector{{1, 2, 0, 0, 1}, {0, 1, 1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ds.View().Compose(sub)
	if err != nil {
		t.Fatal(err)
	}

	var a Arena
	// Cycle the arena so later compositions run on recycled buffers.
	for round := 0; round < 3; round++ {
		av, err := ds.View().ComposeArena(sub, &a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < av.N(); i++ {
			got, want := av.Point(i), plain.Point(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("round %d row %d col %d = %v, want %v", round, i, j, got[j], want[j])
				}
			}
		}
		av.Reclaim()
	}
	if len(a.bufs) != 1 {
		t.Errorf("arena holds %d buffers after reclaim cycles, want 1", len(a.bufs))
	}
}

func TestViewConcurrentReaders(t *testing.T) {
	ds := viewTestDataset(t, 200, 8, 4)
	sub, err := linalg.NewSubspace(8, []linalg.Vector{
		{1, 0, 0, 1, 0, 0, 0, 0},
		{0, 1, 0, 0, 0, 1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := ds.View()
	pv, err := v.Compose(sub) // shared lazily-materialized projection
	if err != nil {
		t.Fatal(err)
	}

	// Many goroutines hit the same store, narrowed views, and the shared
	// projected view at once; the race detector referees. Sums are
	// compared across goroutines to assert everyone saw identical data.
	const workers = 8
	sums := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nv, err := v.Narrow([]int{1, 3, 5, 7, 9})
			if err != nil {
				t.Error(err)
				return
			}
			var s float64
			for i := 0; i < pv.N(); i++ {
				row := pv.Point(i)
				s += row[0] + row[1]
			}
			for i := 0; i < nv.N(); i++ {
				s += nv.Point(i)[0] + float64(nv.ID(i))
			}
			sums[w] = s
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if sums[w] != sums[0] {
			t.Errorf("goroutine %d saw sum %v, goroutine 0 saw %v", w, sums[w], sums[0])
		}
	}
}
