package dataset

import (
	"context"
	"fmt"

	"innsearch/internal/linalg"
)

// This file holds the partial/merge decomposition of ViewStats — the
// moment kernels a scatter-gather coordinator (internal/shard) runs per
// shard and merges in ascending shard order. The decomposition is
// two-pass around the global mean rather than a one-pass streaming merge:
// pass one gathers per-shard column sums and fixes the global mean, pass
// two gathers per-shard second moments centered on that mean. Centering
// every shard on the same mean keeps the only sharding effect a
// re-association of per-entry float additions, so a single partial over
// the full row range reproduces Matrix.Mean / Matrix.CovarianceContext
// bit for bit, and any shard count agrees to ≤ 1e-10 relative.
//
// Determinism rules (the merge contract):
//   - a partial sweeps its rows in ascending view order;
//   - partials are merged in ascending shard order, serially;
//   - the finishing step (× 1/n, symmetrize) runs once, after the merge.
//
// All three kernels are plain-value in/out — a future remote shard can
// compute its partial elsewhere and ship the MomentSums / moment matrix
// over the wire.

// statsCancelStride is how many rows a moment kernel sweeps between
// context checks: frequent enough that a canceled session abandons a
// scatter mid-shard, rare enough to stay off the profile.
const statsCancelStride = 1024

// MomentSums is the first-moment partial of a row range: the per-column
// coordinate sums and the number of rows summed.
type MomentSums struct {
	N   int
	Sum linalg.Vector
}

// ColumnSums accumulates the column sums of view rows [lo, hi) in
// ascending order — the accumulation order of Matrix.Mean, so a full-range
// partial finishes to the same mean bit for bit.
func (v *View) ColumnSums(ctx context.Context, lo, hi int) (MomentSums, error) {
	if err := checkRange(v, lo, hi); err != nil {
		return MomentSums{}, err
	}
	sum := make(linalg.Vector, v.Dim())
	for i := lo; i < hi; i++ {
		if (i-lo)%statsCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return MomentSums{}, err
			}
		}
		for j, x := range v.Point(i) {
			sum[j] += x
		}
	}
	return MomentSums{N: hi - lo, Sum: sum}, nil
}

// MergeMomentSums folds first-moment partials in the order given (the
// ascending shard order). Dimensions must agree across partials.
func MergeMomentSums(parts []MomentSums) (MomentSums, error) {
	var out MomentSums
	for k, p := range parts {
		if p.Sum == nil {
			continue
		}
		if out.Sum == nil {
			out.Sum = append(linalg.Vector(nil), p.Sum...)
			out.N = p.N
			continue
		}
		if len(p.Sum) != len(out.Sum) {
			return MomentSums{}, fmt.Errorf("dataset: merge moment partial %d with dim %d into %d", k, len(p.Sum), len(out.Sum))
		}
		for j, x := range p.Sum {
			out.Sum[j] += x
		}
		out.N += p.N
	}
	return out, nil
}

// Mean finishes the first moment: sum × 1/n per column, exactly the
// finishing multiply of Matrix.Mean. Returns nil for an empty partial.
func (s MomentSums) Mean() linalg.Vector {
	if s.N == 0 {
		return nil
	}
	mean := append(linalg.Vector(nil), s.Sum...)
	inv := 1 / float64(s.N)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}

// CenteredMoment accumulates the upper-triangular second moment of view
// rows [lo, hi) about the given (global) mean: M2[a][b] = Σᵢ (xᵢₐ−μₐ)(xᵢᵦ−μᵦ)
// for b ≥ a. Rows sweep in ascending order and the zero-deviation skip
// matches Matrix.CovarianceContext, so each entry of a full-range partial
// carries the identical addition sequence. The lower triangle is left
// zero until FinishStats symmetrizes.
func (v *View) CenteredMoment(ctx context.Context, lo, hi int, mean linalg.Vector) (*linalg.Matrix, error) {
	if err := checkRange(v, lo, hi); err != nil {
		return nil, err
	}
	d := v.Dim()
	if len(mean) != d {
		return nil, fmt.Errorf("%w: mean has dim %d, rows %d", linalg.ErrDimensionMismatch, len(mean), d)
	}
	m2 := linalg.NewMatrix(d, d)
	for i := lo; i < hi; i++ {
		if (i-lo)%statsCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := v.Point(i)
		for a := 0; a < d; a++ {
			ca := row[a] - mean[a]
			if ca == 0 {
				continue
			}
			rowA := m2.Data[a*d:]
			for b := a; b < d; b++ {
				rowA[b] += ca * (row[b] - mean[b])
			}
		}
	}
	return m2, nil
}

// MergeCenteredMoments folds second-moment partials entrywise in the
// order given (the ascending shard order).
func MergeCenteredMoments(parts []*linalg.Matrix) (*linalg.Matrix, error) {
	var out *linalg.Matrix
	for k, p := range parts {
		if p == nil {
			continue
		}
		if out == nil {
			out = linalg.NewMatrix(p.Rows, p.Cols)
			copy(out.Data, p.Data)
			continue
		}
		if p.Rows != out.Rows || p.Cols != out.Cols {
			return nil, fmt.Errorf("dataset: merge moment matrix %d of shape %dx%d into %dx%d", k, p.Rows, p.Cols, out.Rows, out.Cols)
		}
		for i, x := range p.Data {
			out.Data[i] += x
		}
	}
	return out, nil
}

// FinishStats turns merged moment partials into ViewStats: mean from the
// sums, covariance as M2 × 1/n symmetrized — the finishing arithmetic of
// Matrix.CovarianceContext, including its n < 2 zero-matrix convention.
func FinishStats(sums MomentSums, m2 *linalg.Matrix) (*ViewStats, error) {
	mean := sums.Mean()
	if mean == nil {
		return nil, ErrEmpty
	}
	d := len(mean)
	if m2.Rows != d || m2.Cols != d {
		return nil, fmt.Errorf("%w: moment matrix %dx%d for dim %d", linalg.ErrDimensionMismatch, m2.Rows, m2.Cols, d)
	}
	cov := linalg.NewMatrix(d, d)
	if sums.N >= 2 {
		inv := 1 / float64(sums.N)
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				val := m2.Data[a*d+b] * inv
				cov.Set(a, b, val)
				cov.Set(b, a, val)
			}
		}
	}
	return &ViewStats{Mean: mean, Cov: cov}, nil
}

// Base exposes the projection stage of a composed view: the view it reads
// from and the subspace applied, or (nil, nil) for ambient views. The
// shard coordinator uses it to mirror Stats' pull-through shortcut —
// sharding the base sweep and projecting the merged moments — instead of
// sweeping projected coordinates.
func (v *View) Base() (*View, *linalg.Subspace) { return v.base, v.proj }

func checkRange(v *View, lo, hi int) error {
	if n := v.N(); lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("dataset: row range [%d,%d) outside [0,%d)", lo, hi, n)
	}
	return nil
}
