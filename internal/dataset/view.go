package dataset

import (
	"context"
	"fmt"
	"sync"

	"innsearch/internal/linalg"
)

// View is a lightweight window onto an immutable Store: an optional row
// narrowing (the paper's "remove never-picked points") and an optional
// fused subspace projection (the paper's D_new = Proj(D_c, E_new)),
// neither of which copies point data. Views form chains — narrowing a
// view remaps indices, composing a projection stacks a lazy stage on top
// — and every view in the chain keeps resolving original row IDs and
// labels through to the store.
//
// Projected views materialize their coordinates once, on first row
// access, with exactly the float-operation order of the eager
// Subspace.ProjectRows path, so results are bit-identical to projecting a
// copy. Materialization is guarded by a sync.Once: views are safe for
// concurrent readers at any worker count.
//
// A View never mutates its store; normalization and CSV loading — the
// places a copy still happens — build fresh stores instead.
type View struct {
	store *Store
	rows  []int // nil = all store rows; else view position → store row

	// Projected views delegate everything positional to base and read
	// coordinates from the lazily materialized mat.
	base *View
	proj *linalg.Subspace
	once sync.Once
	mat  *linalg.Matrix

	// arena, when non-nil, supplies (and reclaims) the materialization
	// buffer; see ComposeArena.
	arena *Arena

	// parent and parentRows record row provenance: the view this one was
	// narrowed from and, per narrowed row, its position in that parent.
	// They are the stable row-identity accessor the index-derivation path
	// reads (see Provenance and RowsBetween); nil parent means the view
	// was not produced by Narrow.
	parent     *View
	parentRows []int

	// statsMu guards the lazily memoized first/second moments; see Stats.
	// A mutex rather than a sync.Once so that a context-canceled attempt
	// does not poison the memo — the next caller simply retries.
	statsMu sync.Mutex
	stats   *ViewStats
}

// ViewStats are the memoized first and second moments of a view's rows:
// the column mean and the covariance Σ (MLE, normalized by n). One
// covariance pass per view generation replaces the engine's per-direction
// O(N·d) full-data variance sweeps with O(d²) quadratic forms uᵀΣu, and a
// projected view derives its Σ from its base's by the congruence B·Σ·Bᵀ
// instead of re-estimating over the data. The struct is immutable once
// published; callers must not mutate Mean or Cov.
type ViewStats struct {
	Mean linalg.Vector
	Cov  *linalg.Matrix
}

// Stats returns the view's memoized mean and covariance, computing them on
// first call: ambient views run one parallel covariance pass over their
// rows; projected views pull their base's stats through the projection
// (Mean′ = Proj(Mean), Σ′ = B·Σ·Bᵀ), which costs O(d³) instead of O(N·d²)
// down the engine's complement chains and never touches row data — so it
// stays valid even after an arena view's coordinate buffer is reclaimed,
// as long as the base's stats were computed first. Narrowing yields a
// fresh view, so pruning invalidates the memo by construction. Safe for
// concurrent callers; the memo is only written on success.
func (v *View) Stats(ctx context.Context, workers int) (*ViewStats, error) {
	v.statsMu.Lock()
	defer v.statsMu.Unlock()
	if v.stats != nil {
		return v.stats, nil
	}
	var st *ViewStats
	if v.base != nil {
		bst, err := v.base.Stats(ctx, workers)
		if err != nil {
			return nil, err
		}
		cov, err := v.proj.PullThroughCov(bst.Cov)
		if err != nil {
			return nil, err
		}
		st = &ViewStats{Mean: v.proj.Project(bst.Mean), Cov: cov}
	} else {
		m := v.Coords()
		cov, err := m.CovarianceContext(ctx, workers)
		if err != nil {
			return nil, err
		}
		st = &ViewStats{Mean: m.Mean(), Cov: cov}
	}
	v.stats = st
	return st, nil
}

// N returns the number of rows visible through the view.
func (v *View) N() int {
	if v.base != nil {
		return v.base.N()
	}
	if v.rows != nil {
		return len(v.rows)
	}
	return v.store.n
}

// Dim returns the dimensionality of the view's rows.
func (v *View) Dim() int {
	if v.proj != nil {
		return v.proj.Dim()
	}
	return v.store.dim
}

// storeRow maps a view position to its store row (ambient views only).
func (v *View) storeRow(i int) int {
	if v.rows != nil {
		return v.rows[i]
	}
	return i
}

// Point returns the i-th row of the view. Ambient views share the
// store's backing array; projected views return a row of the memoized
// materialization. Callers must not mutate the returned slice.
func (v *View) Point(i int) linalg.Vector {
	if v.base == nil {
		return v.store.Row(v.storeRow(i))
	}
	return v.materialized().Row(i)
}

// PointCopy returns a copy of the i-th row.
func (v *View) PointCopy(i int) linalg.Vector { return v.Point(i).Clone() }

// ID returns the original row ID of the i-th row.
func (v *View) ID(i int) int {
	if v.base != nil {
		return v.base.ID(i)
	}
	return v.store.ID(v.storeRow(i))
}

// IDs returns a fresh slice of all original row IDs, in view order.
func (v *View) IDs() []int {
	out := make([]int, v.N())
	for i := range out {
		out[i] = v.ID(i)
	}
	return out
}

// Labeled reports whether the underlying store carries labels.
func (v *View) Labeled() bool { return v.store.Labeled() }

// Label returns the label of the i-th row. It panics if the store is
// unlabeled.
func (v *View) Label(i int) int {
	if v.base != nil {
		return v.base.Label(i)
	}
	return v.store.Label(v.storeRow(i))
}

// Store returns the immutable store backing the view (through any chain
// of narrowings and projections).
func (v *View) Store() *Store { return v.store }

// Narrow returns a view of the rows at the given positions (positions
// into this view, not original IDs). No point data is copied: ambient
// narrowing remaps store rows, and narrowing a projected view re-anchors
// the projection chain on the narrowed base (each row's coordinates
// depend only on its own base row, so values are unchanged).
func (v *View) Narrow(positions []int) (*View, error) {
	if len(positions) == 0 {
		return nil, ErrEmpty
	}
	n := v.N()
	for _, p := range positions {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("dataset: subset position %d out of range [0,%d)", p, n)
		}
	}
	prows := make([]int, len(positions))
	copy(prows, positions)
	if v.base != nil {
		nb, err := v.base.Narrow(positions)
		if err != nil {
			return nil, err
		}
		return &View{store: v.store, base: nb, proj: v.proj, parent: v, parentRows: prows}, nil
	}
	rows := make([]int, len(positions))
	for k, p := range positions {
		rows[k] = v.storeRow(p)
	}
	return &View{store: v.store, rows: rows, parent: v, parentRows: prows}, nil
}

// Provenance returns the view this one was narrowed from and the
// position each row of this view had in that parent (aliased, read-only).
// Views not produced by Narrow return (nil, nil).
func (v *View) Provenance() (*View, []int) { return v.parent, v.parentRows }

// RowsBetween composes the provenance chain from ancestor down to v:
// ok reports whether v was produced from ancestor by a chain of Narrow
// calls, and rows maps each row of v to its position in ancestor. The
// identity chain (v == ancestor) returns (nil, true) — no mapping needed.
// This is what lets an index built over an ancestor view be derived for
// a descendant instead of rebuilt: positions translate exactly, in O(n′)
// per hop.
func RowsBetween(ancestor, v *View) (rows []int, ok bool) {
	if v == ancestor {
		return nil, true
	}
	for cur := v; cur != nil; cur = cur.parent {
		if cur.parentRows == nil {
			return nil, false
		}
		if rows == nil {
			rows = make([]int, len(cur.parentRows))
			copy(rows, cur.parentRows)
		} else {
			for i := range rows {
				rows[i] = cur.parentRows[rows[i]]
			}
		}
		if cur.parent == ancestor {
			return rows, true
		}
	}
	return nil, false
}

// Compose returns a view whose rows are this view's rows projected into
// sub (coordinates in sub's basis). The projection is applied lazily on
// first row access; until then no point data is touched.
func (v *View) Compose(sub *linalg.Subspace) (*View, error) {
	if sub.Ambient() != v.Dim() {
		return nil, fmt.Errorf("%w: rows have dim %d, ambient %d",
			linalg.ErrDimensionMismatch, v.Dim(), sub.Ambient())
	}
	return &View{store: v.store, base: v, proj: sub}, nil
}

// materialized computes (once) the projected coordinates of every base
// row through the blocked kernel, whose per-entry accumulation order is
// exactly that of Subspace.ProjectRows: rows outer, basis vectors inner,
// each entry a single sequential dot product. Safe for concurrent callers.
func (v *View) materialized() *linalg.Matrix {
	v.once.Do(func() {
		v.mat, _ = v.materializeInto(context.Background(), 1)
	})
	return v.mat
}

// materializeInto fills a fresh (or arena-recycled) coordinate matrix
// using the projection kernel. The serial background-context call cannot
// fail (shapes were validated at Compose); the only possible error is the
// context's, surfaced to eager parallel callers (ComposeArenaContext).
func (v *View) materializeInto(ctx context.Context, workers int) (*linalg.Matrix, error) {
	n := v.base.N()
	l := v.proj.Dim()
	var mat *linalg.Matrix
	if v.arena != nil {
		mat = &linalg.Matrix{Rows: n, Cols: l, Data: v.arena.take(n * l)}
	} else {
		mat = linalg.NewMatrix(n, l)
	}
	if err := v.proj.ProjectRowsInto(ctx, workers, mat, n, v.base.Point); err != nil {
		if v.arena != nil {
			v.arena.give(mat.Data)
		}
		return nil, err
	}
	return mat, nil
}

// Coords returns the view's rows as a matrix. Projected views return
// their memoized materialization and identity ambient views share the
// store's backing array — both must be treated as read-only. Narrowed
// ambient views return a fresh copy.
func (v *View) Coords() *linalg.Matrix {
	if v.base != nil {
		return v.materialized()
	}
	if v.rows == nil {
		return &linalg.Matrix{Rows: v.store.n, Cols: v.store.dim, Data: v.store.data}
	}
	out := linalg.NewMatrix(len(v.rows), v.store.dim)
	for i := range v.rows {
		copy(out.Data[i*v.store.dim:(i+1)*v.store.dim], v.store.Row(v.rows[i]))
	}
	return out
}
