package dataset

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"innsearch/internal/linalg"
)

func mustNew(t *testing.T, rows [][]float64, labels []int) *Dataset {
	t.Helper()
	d, err := New(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewBasics(t *testing.T) {
	d := mustNew(t, [][]float64{{1, 2}, {3, 4}, {5, 6}}, []int{0, 1, 0})
	if d.N() != 3 || d.Dim() != 2 {
		t.Fatalf("shape %dx%d", d.N(), d.Dim())
	}
	if !d.Point(1).ApproxEqual(linalg.Vector{3, 4}, 0) {
		t.Errorf("Point(1) = %v", d.Point(1))
	}
	if d.ID(2) != 2 {
		t.Errorf("ID(2) = %d", d.ID(2))
	}
	if !d.Labeled() || d.Label(1) != 1 {
		t.Error("labels wrong")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	if _, err := New([][]float64{{1}, {1, 2}}, nil); !errors.Is(err, ErrBadShape) {
		t.Errorf("ragged: %v", err)
	}
	if _, err := New([][]float64{{1}}, []int{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("label count: %v", err)
	}
}

func TestNewCopiesInput(t *testing.T) {
	rows := [][]float64{{1, 2}}
	d := mustNew(t, rows, nil)
	rows[0][0] = 99
	if d.Point(0)[0] != 1 {
		t.Error("dataset shares storage with input rows")
	}
}

func TestUnlabeledLabelPanics(t *testing.T) {
	d := mustNew(t, [][]float64{{1}}, nil)
	if d.Labeled() {
		t.Fatal("should be unlabeled")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Label(0)
}

func TestSubset(t *testing.T) {
	d := mustNew(t, [][]float64{{0}, {1}, {2}, {3}}, []int{10, 11, 12, 13})
	s, err := d.Subset([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 2 || s.Point(0)[0] != 3 || s.ID(0) != 3 || s.Label(1) != 11 {
		t.Fatalf("subset wrong: %v ids=%v", s.Point(0), s.IDs())
	}
	// Subset of subset keeps original IDs.
	ss, err := s.Subset([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if ss.ID(0) != 1 {
		t.Errorf("nested subset ID = %d", ss.ID(0))
	}
	if _, err := d.Subset(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty subset: %v", err)
	}
	if _, err := d.Subset([]int{7}); err == nil {
		t.Error("out-of-range subset should fail")
	}
}

func TestProjectInto(t *testing.T) {
	d := mustNew(t, [][]float64{{1, 2, 3}, {4, 5, 6}}, []int{7, 8})
	sub, err := linalg.AxisSubspace(3, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.ProjectInto(sub)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 2 || !p.Point(1).ApproxEqual(linalg.Vector{6, 4}, 0) {
		t.Fatalf("projected = %v", p.Point(1))
	}
	if p.ID(1) != 1 || p.Label(0) != 7 {
		t.Error("IDs/labels not preserved across projection")
	}
	bad, _ := linalg.AxisSubspace(5, []int{0})
	if _, err := d.ProjectInto(bad); err == nil {
		t.Error("ambient mismatch should fail")
	}
}

func TestBounds(t *testing.T) {
	d := mustNew(t, [][]float64{{1, -5}, {3, 7}, {2, 0}}, nil)
	lo, hi := d.Bounds()
	if !lo.ApproxEqual(linalg.Vector{1, -5}, 0) || !hi.ApproxEqual(linalg.Vector{3, 7}, 0) {
		t.Errorf("bounds = %v %v", lo, hi)
	}
}

func TestNormalizeMinMax(t *testing.T) {
	d := mustNew(t, [][]float64{{0, 5, 1}, {10, 5, 3}}, nil)
	tr := d.NormalizeMinMax()
	lo, hi := d.Bounds()
	if !lo.ApproxEqual(linalg.Vector{0, 0, 0}, 1e-12) {
		t.Errorf("lo = %v", lo)
	}
	// Constant column stays 0; others reach 1.
	if math.Abs(hi[0]-1) > 1e-12 || hi[1] != 0 || math.Abs(hi[2]-1) > 1e-12 {
		t.Errorf("hi = %v", hi)
	}
	// Transform applies consistently to a query.
	q := tr.Applied([]float64{5, 5, 2})
	if !linalg.Vector(q).ApproxEqual(linalg.Vector{0.5, 0, 0.5}, 1e-12) {
		t.Errorf("query transform = %v", q)
	}
}

func TestNormalizeZScore(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{r.NormFloat64()*5 + 10, 42} // second column constant
	}
	d := mustNew(t, rows, nil)
	d.NormalizeZScore()
	col := d.Column(0)
	var mean, sq float64
	for _, x := range col {
		mean += x
	}
	mean /= float64(len(col))
	for _, x := range col {
		sq += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(sq / float64(len(col)))
	if math.Abs(mean) > 1e-10 || math.Abs(sd-1) > 1e-10 {
		t.Errorf("standardized mean=%v sd=%v", mean, sd)
	}
	for _, x := range d.Column(1) {
		if x != 0 {
			t.Fatalf("constant column should center to 0, got %v", x)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := mustNew(t, [][]float64{{1.5, -2}, {0.25, 1e-7}}, []int{3, -1})
	if err := d.SetAttrNames([]string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Dim() != 2 || !back.Labeled() {
		t.Fatalf("round trip shape wrong: %d %d", back.N(), back.Dim())
	}
	for i := 0; i < 2; i++ {
		if !back.Point(i).ApproxEqual(d.Point(i), 0) {
			t.Errorf("row %d = %v, want %v", i, back.Point(i), d.Point(i))
		}
		if back.Label(i) != d.Label(i) {
			t.Errorf("label %d = %d", i, back.Label(i))
		}
	}
	if back.AttrName(0) != "alpha" {
		t.Errorf("attr name = %q", back.AttrName(0))
	}
}

func TestCSVUnlabeledRoundTripFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	d := mustNew(t, [][]float64{{1, 2, 3}}, nil)
	if err := d.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Labeled() || back.Dim() != 3 {
		t.Fatalf("unlabeled round trip: labeled=%v dim=%d", back.Labeled(), back.Dim())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"header only", "a,b\n"},
		{"bad float", "a,b\n1,x\n"},
		{"bad label", "a,label\n1,notanint\n"},
		{"label only", "label\n1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(bytes.NewBufferString(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestAttrNameFallback(t *testing.T) {
	d := mustNew(t, [][]float64{{1, 2}}, nil)
	if d.AttrName(1) != "attr1" {
		t.Errorf("fallback name = %q", d.AttrName(1))
	}
	if err := d.SetAttrNames([]string{"only-one"}); !errors.Is(err, ErrBadShape) {
		t.Errorf("SetAttrNames wrong count: %v", err)
	}
}

func TestPropertyCSVRoundTripPreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n, dim := 1+rr.Intn(20), 1+rr.Intn(6)
		rows := make([][]float64, n)
		labels := make([]int, n)
		for i := range rows {
			rows[i] = make([]float64, dim)
			for j := range rows[i] {
				rows[i][j] = rr.NormFloat64() * math.Pow(10, float64(rr.Intn(7)-3))
			}
			labels[i] = rr.Intn(5)
		}
		d, err := New(rows, labels)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !back.Point(i).ApproxEqual(d.Point(i), 0) || back.Label(i) != labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	d := mustNew(t, [][]float64{{1, 2}}, []int{5})
	c := d.Clone()
	c.Matrix().Set(0, 0, 99)
	if d.Point(0)[0] != 1 {
		t.Error("Clone shares point storage")
	}
}

func TestWithoutRow(t *testing.T) {
	d := mustNew(t, [][]float64{{0}, {1}, {2}}, []int{10, 11, 12})
	rest, err := d.WithoutRow(1)
	if err != nil {
		t.Fatal(err)
	}
	if rest.N() != 2 || rest.ID(0) != 0 || rest.ID(1) != 2 || rest.Label(1) != 12 {
		t.Fatalf("holdout wrong: ids=%v", rest.IDs())
	}
	if _, err := d.WithoutRow(5); err == nil {
		t.Error("out-of-range accepted")
	}
	single := mustNew(t, [][]float64{{1}}, nil)
	if _, err := single.WithoutRow(0); !errors.Is(err, ErrEmpty) {
		t.Errorf("single-row holdout: %v", err)
	}
}
