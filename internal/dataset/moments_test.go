package dataset

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"innsearch/internal/linalg"
)

// shardCuts splits [0, n) into p contiguous windows at random cut points.
func shardCuts(r *rand.Rand, n, p int) [][2]int {
	cuts := map[int]bool{}
	for len(cuts) < p-1 {
		cuts[1+r.Intn(n-1)] = true
	}
	bounds := []int{0}
	for c := 1; c < n; c++ {
		if cuts[c] {
			bounds = append(bounds, c)
		}
	}
	bounds = append(bounds, n)
	out := make([][2]int, 0, p)
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, [2]int{bounds[i], bounds[i+1]})
	}
	return out
}

// TestMomentPartialFullRangeBitIdentical is the P=1 contract: one partial
// over the whole view, finished, must reproduce Stats bit for bit.
func TestMomentPartialFullRangeBitIdentical(t *testing.T) {
	ds := randomViewDataset(t, 21, 300, 7)
	v := ds.View()
	ctx := context.Background()
	want, err := v.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := v.ColumnSums(ctx, 0, v.N())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeMomentSums([]MomentSums{sums})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := v.CenteredMoment(ctx, 0, v.N(), merged.Mean())
	if err != nil {
		t.Fatal(err)
	}
	st, err := FinishStats(merged, m2)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Mean {
		if st.Mean[j] != want.Mean[j] {
			t.Errorf("mean[%d] = %v, want %v (not bit-identical)", j, st.Mean[j], want.Mean[j])
		}
	}
	for k := range want.Cov.Data {
		if st.Cov.Data[k] != want.Cov.Data[k] {
			t.Errorf("cov[%d] = %v, want %v (not bit-identical)", k, st.Cov.Data[k], want.Cov.Data[k])
		}
	}
}

// TestMomentMergeMatchesUnsharded is the property test over random shard
// splits: merged partials must agree with the unsharded reference within
// 1e-10 relative at any partition width.
func TestMomentMergeMatchesUnsharded(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ds := randomViewDataset(t, 22, 400, 6)
	v := ds.View()
	ctx := context.Background()
	want, err := v.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	scale := want.Cov.MaxAbs()
	for trial := 0; trial < 20; trial++ {
		p := 2 + r.Intn(7)
		windows := shardCuts(r, v.N(), p)
		var sumParts []MomentSums
		for _, w := range windows {
			s, err := v.ColumnSums(ctx, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			sumParts = append(sumParts, s)
		}
		merged, err := MergeMomentSums(sumParts)
		if err != nil {
			t.Fatal(err)
		}
		if merged.N != v.N() {
			t.Fatalf("trial %d: merged N = %d, want %d", trial, merged.N, v.N())
		}
		mean := merged.Mean()
		m2s := make([]*linalg.Matrix, 0, len(windows))
		for _, w := range windows {
			m2, err := v.CenteredMoment(ctx, w[0], w[1], mean)
			if err != nil {
				t.Fatal(err)
			}
			m2s = append(m2s, m2)
		}
		m2, err := MergeCenteredMoments(m2s)
		if err != nil {
			t.Fatal(err)
		}
		st, err := FinishStats(merged, m2)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Mean {
			if d := math.Abs(st.Mean[j] - want.Mean[j]); d > 1e-10*math.Max(1, math.Abs(want.Mean[j])) {
				t.Errorf("trial %d (p=%d): mean[%d] = %v, want %v", trial, p, j, st.Mean[j], want.Mean[j])
			}
		}
		for k := range want.Cov.Data {
			if d := math.Abs(st.Cov.Data[k] - want.Cov.Data[k]); d > 1e-10*scale {
				t.Errorf("trial %d (p=%d): cov[%d] = %v, want %v", trial, p, k, st.Cov.Data[k], want.Cov.Data[k])
			}
		}
	}
}

// TestStorePartition checks the shard views: disjoint contiguous row
// windows covering the store, IDs resolving through, no point copies.
func TestStorePartition(t *testing.T) {
	ds := randomViewDataset(t, 23, 103, 4)
	st := ds.Store()
	shards, err := st.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	next := 0
	for _, sh := range shards {
		if sh.Store() != st {
			t.Fatal("shard view does not pin the source store")
		}
		for i := 0; i < sh.N(); i++ {
			if sh.ID(i) != next {
				t.Fatalf("shard row resolves to ID %d, want %d", sh.ID(i), next)
			}
			if &sh.Point(i)[0] != &st.Row(next)[0] {
				t.Fatal("shard row copied point data")
			}
			next++
		}
	}
	if next != st.N() {
		t.Fatalf("shards cover %d rows, store has %d", next, st.N())
	}
	one, err := st.Partition(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].N() != st.N() {
		t.Fatal("Partition(1) is not the identity view")
	}
	if _, err := st.Partition(0); err == nil {
		t.Fatal("Partition(0) accepted")
	}
	many, err := st.Partition(st.N() + 50)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range many {
		if sh.N() == 0 {
			t.Fatal("empty shard emitted")
		}
		total += sh.N()
	}
	if total != st.N() {
		t.Fatalf("oversharded partition covers %d rows, want %d", total, st.N())
	}
}

// TestMomentKernelCancellation checks that a canceled context aborts the
// sweeps with the context's error.
func TestMomentKernelCancellation(t *testing.T) {
	ds := randomViewDataset(t, 24, 50, 3)
	v := ds.View()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.ColumnSums(ctx, 0, v.N()); err == nil {
		t.Error("ColumnSums ignored cancellation")
	}
	mean := make([]float64, v.Dim())
	if _, err := v.CenteredMoment(ctx, 0, v.N(), mean); err == nil {
		t.Error("CenteredMoment ignored cancellation")
	}
}
