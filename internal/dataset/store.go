package dataset

import (
	"fmt"

	"innsearch/internal/linalg"
)

// Store is the immutable backing of a dataset: n points of dimension dim
// in one flat row-major float64 slice, plus optional per-row labels and
// original row IDs. A Store is never written after construction, which
// makes it safe for any number of concurrent readers — every session,
// view, and batch request of the serving layer reads the same resident
// copy instead of cloning it.
//
// Stores are created through the Dataset constructors (New, FromMatrix,
// ReadCSV); Views narrow and re-project them without copying point data.
type Store struct {
	data   []float64 // n×dim, row-major
	n, dim int
	labels []int // optional, one per row; nil if unlabeled
	ids    []int // optional original row IDs; nil means identity (row r has ID r)
}

// N returns the number of rows in the store.
func (st *Store) N() int { return st.n }

// Dim returns the dimensionality of the store's rows.
func (st *Store) Dim() int { return st.dim }

// Row returns row r sharing the store's backing array. The store is
// immutable: callers must not write through the returned slice.
func (st *Store) Row(r int) linalg.Vector {
	return linalg.Vector(st.data[r*st.dim : (r+1)*st.dim])
}

// ID returns the original row ID of store row r.
func (st *Store) ID(r int) int {
	if st.ids != nil {
		return st.ids[r]
	}
	return r
}

// Labeled reports whether the store carries labels.
func (st *Store) Labeled() bool { return st.labels != nil }

// Label returns the label of store row r. It panics if the store is
// unlabeled.
func (st *Store) Label(r int) int {
	if st.labels == nil {
		panic("dataset: Label on unlabeled dataset")
	}
	return st.labels[r]
}

// Bytes returns the resident memory footprint of the store's backing
// arrays — the quantity the serving layer exports as its
// resident_dataset_bytes gauge.
func (st *Store) Bytes() int64 {
	return int64(len(st.data)*8 + len(st.labels)*8 + len(st.ids)*8)
}

// newStoreFromRows validates and copies rows into a fresh store. labels,
// when non-nil, must have one entry per row.
func newStoreFromRows(rows [][]float64, labels []int) (*Store, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	d := len(rows[0])
	data := make([]float64, len(rows)*d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrBadShape, i, len(r), d)
		}
		copy(data[i*d:(i+1)*d], r)
	}
	if labels != nil && len(labels) != len(rows) {
		return nil, fmt.Errorf("%w: %d labels for %d rows", ErrBadShape, len(labels), len(rows))
	}
	var lab []int
	if labels != nil {
		lab = append([]int(nil), labels...)
	}
	return &Store{data: data, n: len(rows), dim: d, labels: lab}, nil
}
