// Package dataset provides the tabular data container shared by every
// component of the interactive nearest-neighbor system: N points in d
// dimensions with optional integer labels and attribute names, plus CSV
// persistence, normalization, and index-preserving subsetting.
//
// Points keep a stable ID (their row index in the original dataset) across
// subsetting and re-projection, because the interactive search repeatedly
// removes never-picked points (Figure 2 of the paper) while preference
// counts and meaningfulness probabilities must stay attached to the
// original rows.
package dataset

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"innsearch/internal/linalg"
)

// ErrEmpty indicates a dataset with no points where at least one is needed.
var ErrEmpty = errors.New("dataset: empty dataset")

// ErrBadShape indicates rows of inconsistent dimensionality.
var ErrBadShape = errors.New("dataset: inconsistent row dimensionality")

// Dataset is an immutable-by-convention collection of d-dimensional
// points. Labels is either nil (unlabeled) or has one entry per point.
type Dataset struct {
	points *linalg.Matrix
	ids    []int    // original row IDs, parallel to rows of points
	labels []int    // optional, parallel to rows; nil if unlabeled
	names  []string // optional attribute names; nil if unnamed
}

// New builds a dataset from rows. All rows must share the same
// dimensionality; labels, when non-nil, must have one entry per row.
func New(rows [][]float64, labels []int) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	vecs := make([]linalg.Vector, len(rows))
	d := len(rows[0])
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrBadShape, i, len(r), d)
		}
		vecs[i] = linalg.Vector(r).Clone()
	}
	m, err := linalg.MatrixFromRows(vecs)
	if err != nil {
		return nil, err
	}
	if labels != nil && len(labels) != len(rows) {
		return nil, fmt.Errorf("%w: %d labels for %d rows", ErrBadShape, len(labels), len(rows))
	}
	ids := make([]int, len(rows))
	for i := range ids {
		ids[i] = i
	}
	var lab []int
	if labels != nil {
		lab = append([]int(nil), labels...)
	}
	return &Dataset{points: m, ids: ids, labels: lab}, nil
}

// FromMatrix wraps an existing matrix (taking ownership) with fresh
// sequential IDs and no labels.
func FromMatrix(m *linalg.Matrix) (*Dataset, error) {
	if m.Rows == 0 {
		return nil, ErrEmpty
	}
	ids := make([]int, m.Rows)
	for i := range ids {
		ids[i] = i
	}
	return &Dataset{points: m, ids: ids}, nil
}

// N returns the number of points.
func (d *Dataset) N() int { return d.points.Rows }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.points.Cols }

// Point returns the i-th point (sharing storage; callers must not mutate).
func (d *Dataset) Point(i int) linalg.Vector { return d.points.Row(i) }

// PointCopy returns a copy of the i-th point.
func (d *Dataset) PointCopy(i int) linalg.Vector { return d.points.RowCopy(i) }

// ID returns the original row ID of the i-th point of this (possibly
// subsetted, possibly re-projected) dataset.
func (d *Dataset) ID(i int) int { return d.ids[i] }

// IDs returns a copy of all original row IDs.
func (d *Dataset) IDs() []int { return append([]int(nil), d.ids...) }

// Labeled reports whether the dataset carries labels.
func (d *Dataset) Labeled() bool { return d.labels != nil }

// Label returns the label of the i-th point. It panics if the dataset is
// unlabeled.
func (d *Dataset) Label(i int) int {
	if d.labels == nil {
		panic("dataset: Label on unlabeled dataset")
	}
	return d.labels[i]
}

// SetAttrNames attaches attribute names (must match Dim).
func (d *Dataset) SetAttrNames(names []string) error {
	if len(names) != d.Dim() {
		return fmt.Errorf("%w: %d names for %d dims", ErrBadShape, len(names), d.Dim())
	}
	d.names = append([]string(nil), names...)
	return nil
}

// AttrName returns the name of attribute j, or a synthesized "attr<j>".
func (d *Dataset) AttrName(j int) string {
	if d.names != nil {
		return d.names[j]
	}
	return fmt.Sprintf("attr%d", j)
}

// Matrix returns the underlying point matrix (shared storage).
func (d *Dataset) Matrix() *linalg.Matrix { return d.points }

// Subset returns a new dataset containing the rows at the given positions
// (positions into this dataset, not original IDs). IDs and labels follow.
func (d *Dataset) Subset(positions []int) (*Dataset, error) {
	if len(positions) == 0 {
		return nil, ErrEmpty
	}
	out := linalg.NewMatrix(len(positions), d.Dim())
	ids := make([]int, len(positions))
	var labels []int
	if d.labels != nil {
		labels = make([]int, len(positions))
	}
	for k, p := range positions {
		if p < 0 || p >= d.N() {
			return nil, fmt.Errorf("dataset: subset position %d out of range [0,%d)", p, d.N())
		}
		copy(out.Data[k*d.Dim():(k+1)*d.Dim()], d.points.Row(p))
		ids[k] = d.ids[p]
		if labels != nil {
			labels[k] = d.labels[p]
		}
	}
	return &Dataset{points: out, ids: ids, labels: labels, names: d.names}, nil
}

// ProjectInto returns a new dataset whose rows are the coordinates of this
// dataset's points in the given subspace; IDs and labels are preserved.
// This realizes the paper's D_new = Proj(D_c, E_new).
func (d *Dataset) ProjectInto(s *linalg.Subspace) (*Dataset, error) {
	m, err := s.ProjectRows(d.points)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		points: m,
		ids:    append([]int(nil), d.ids...),
		labels: append([]int(nil), d.labels...),
	}, nil
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	return &Dataset{
		points: d.points.Clone(),
		ids:    append([]int(nil), d.ids...),
		labels: append([]int(nil), d.labels...),
		names:  append([]string(nil), d.names...),
	}
}

// Column returns a copy of attribute j across all points.
func (d *Dataset) Column(j int) []float64 { return d.points.Col(j) }

// Bounds returns per-dimension [min, max] over all points.
func (d *Dataset) Bounds() (lo, hi linalg.Vector) {
	dim := d.Dim()
	lo = make(linalg.Vector, dim)
	hi = make(linalg.Vector, dim)
	for j := 0; j < dim; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for i := 0; i < d.N(); i++ {
		row := d.Point(i)
		for j, x := range row {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	return lo, hi
}

// NormalizeMinMax rescales every attribute to [0, 1] in place and returns
// the transform applied, so queries can be mapped consistently. Constant
// attributes are shifted to 0 and left with unit scale.
func (d *Dataset) NormalizeMinMax() *AffineTransform {
	lo, hi := d.Bounds()
	dim := d.Dim()
	tr := &AffineTransform{Offset: make([]float64, dim), Scale: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		tr.Offset[j] = lo[j]
		if span := hi[j] - lo[j]; span > 0 {
			tr.Scale[j] = 1 / span
		} else {
			tr.Scale[j] = 1
		}
	}
	d.applyTransform(tr)
	return tr
}

// NormalizeZScore standardizes every attribute to zero mean and unit
// variance in place and returns the transform. Constant attributes are
// centered and left with unit scale.
func (d *Dataset) NormalizeZScore() *AffineTransform {
	dim := d.Dim()
	tr := &AffineTransform{Offset: make([]float64, dim), Scale: make([]float64, dim)}
	mean := d.points.Mean()
	for j := 0; j < dim; j++ {
		v := d.points.VarianceAlong(linalg.Basis(dim, j))
		// VarianceAlong centers internally; recover raw second moment
		// variance of the column.
		tr.Offset[j] = mean[j]
		if sd := math.Sqrt(v); sd > 0 {
			tr.Scale[j] = 1 / sd
		} else {
			tr.Scale[j] = 1
		}
	}
	d.applyTransform(tr)
	return tr
}

func (d *Dataset) applyTransform(tr *AffineTransform) {
	for i := 0; i < d.N(); i++ {
		row := d.points.Row(i)
		tr.Apply(row)
	}
}

// AffineTransform maps x ↦ (x − Offset) ⊙ Scale per dimension.
type AffineTransform struct {
	Offset []float64
	Scale  []float64
}

// Apply transforms v in place.
func (t *AffineTransform) Apply(v []float64) {
	if len(v) != len(t.Offset) {
		panic(fmt.Sprintf("dataset: transform dim %d applied to %d", len(t.Offset), len(v)))
	}
	for j := range v {
		v[j] = (v[j] - t.Offset[j]) * t.Scale[j]
	}
}

// Applied returns a transformed copy of v.
func (t *AffineTransform) Applied(v []float64) []float64 {
	out := append([]float64(nil), v...)
	t.Apply(out)
	return out
}

// WriteCSV writes the dataset as CSV: a header with attribute names (plus
// "label" when labeled) followed by one row per point.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := d.Dim()
	header := make([]string, 0, dim+1)
	for j := 0; j < dim; j++ {
		header = append(header, d.AttrName(j))
	}
	if d.Labeled() {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, 0, dim+1)
	for i := 0; i < d.N(); i++ {
		rec = rec[:0]
		for _, x := range d.Point(i) {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if d.Labeled() {
			rec = append(rec, strconv.Itoa(d.labels[i]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to the named file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := d.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return f.Close()
}

// ReadCSV parses a dataset written by WriteCSV. A trailing "label" column
// in the header is parsed as integer labels.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: parse csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%w: need header plus at least one row", ErrEmpty)
	}
	header := records[0]
	hasLabel := len(header) > 0 && header[len(header)-1] == "label"
	dim := len(header)
	if hasLabel {
		dim--
	}
	if dim == 0 {
		return nil, fmt.Errorf("%w: no attribute columns", ErrBadShape)
	}
	rows := make([][]float64, 0, len(records)-1)
	var labels []int
	if hasLabel {
		labels = make([]int, 0, len(records)-1)
	}
	for li, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrBadShape, li+2, len(rec), len(header))
		}
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			row[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", li+2, j, err)
			}
		}
		rows = append(rows, row)
		if hasLabel {
			lab, err := strconv.Atoi(rec[dim])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d label: %w", li+2, err)
			}
			labels = append(labels, lab)
		}
	}
	ds, err := New(rows, labels)
	if err != nil {
		return nil, err
	}
	if err := ds.SetAttrNames(header[:dim]); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadCSV reads a dataset from the named file.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(bufio.NewReader(f))
}

// WithoutRow returns a new dataset excluding position i — the holdout
// operation classification protocols use. IDs and labels of the remaining
// rows are preserved.
func (d *Dataset) WithoutRow(i int) (*Dataset, error) {
	if i < 0 || i >= d.N() {
		return nil, fmt.Errorf("dataset: holdout position %d out of range [0,%d)", i, d.N())
	}
	if d.N() == 1 {
		return nil, ErrEmpty
	}
	keep := make([]int, 0, d.N()-1)
	for p := 0; p < d.N(); p++ {
		if p != i {
			keep = append(keep, p)
		}
	}
	return d.Subset(keep)
}
