// Package dataset provides the tabular data container shared by every
// component of the interactive nearest-neighbor system: N points in d
// dimensions with optional integer labels and attribute names, plus CSV
// persistence, normalization, and index-preserving subsetting.
//
// Points keep a stable ID (their row index in the original dataset) across
// subsetting and re-projection, because the interactive search repeatedly
// removes never-picked points (Figure 2 of the paper) while preference
// counts and meaningfulness probabilities must stay attached to the
// original rows.
//
// Since the zero-copy data-plane refactor, a Dataset is a thin wrapper
// around an immutable Store read through a View: Subset narrows indices
// and ProjectInto stacks a lazy projection, neither copying point data.
// Copies still happen exactly where mutation demands them — CSV loading,
// Clone, and normalization (which rebuilds the store copy-on-write so
// views handed out earlier keep reading the old values).
package dataset

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"innsearch/internal/linalg"
)

// ErrEmpty indicates a dataset with no points where at least one is needed.
var ErrEmpty = errors.New("dataset: empty dataset")

// ErrBadShape indicates rows of inconsistent dimensionality.
var ErrBadShape = errors.New("dataset: inconsistent row dimensionality")

// Dataset is an immutable collection of d-dimensional points: a View over
// a shared Store plus optional attribute names. Labels, when present,
// live on the store with one entry per point.
type Dataset struct {
	v     *View
	names []string // optional attribute names; nil if unnamed
}

// New builds a dataset from rows. All rows must share the same
// dimensionality; labels, when non-nil, must have one entry per row. The
// rows are copied into a fresh store.
func New(rows [][]float64, labels []int) (*Dataset, error) {
	st, err := newStoreFromRows(rows, labels)
	if err != nil {
		return nil, err
	}
	return &Dataset{v: &View{store: st}}, nil
}

// FromMatrix wraps an existing matrix (taking ownership of its storage)
// with fresh sequential IDs and no labels.
func FromMatrix(m *linalg.Matrix) (*Dataset, error) {
	if m.Rows == 0 {
		return nil, ErrEmpty
	}
	st := &Store{data: m.Data, n: m.Rows, dim: m.Cols}
	return &Dataset{v: &View{store: st}}, nil
}

// View returns the dataset's current view. Engine components read through
// it (narrowing and composing without copies); the view stays valid and
// unchanged even if the dataset is normalized afterwards, because
// normalization swaps in a fresh store instead of mutating this one.
func (d *Dataset) View() *View { return d.v }

// Store returns the immutable store backing the dataset's view.
func (d *Dataset) Store() *Store { return d.v.Store() }

// N returns the number of points.
func (d *Dataset) N() int { return d.v.N() }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.v.Dim() }

// Point returns the i-th point (sharing storage; callers must not mutate).
func (d *Dataset) Point(i int) linalg.Vector { return d.v.Point(i) }

// PointCopy returns a copy of the i-th point.
func (d *Dataset) PointCopy(i int) linalg.Vector { return d.v.PointCopy(i) }

// ID returns the original row ID of the i-th point of this (possibly
// subsetted, possibly re-projected) dataset.
func (d *Dataset) ID(i int) int { return d.v.ID(i) }

// IDs returns a copy of all original row IDs.
func (d *Dataset) IDs() []int { return d.v.IDs() }

// Labeled reports whether the dataset carries labels.
func (d *Dataset) Labeled() bool { return d.v.Labeled() }

// Label returns the label of the i-th point. It panics if the dataset is
// unlabeled.
func (d *Dataset) Label(i int) int { return d.v.Label(i) }

// SetAttrNames attaches attribute names (must match Dim).
func (d *Dataset) SetAttrNames(names []string) error {
	if len(names) != d.Dim() {
		return fmt.Errorf("%w: %d names for %d dims", ErrBadShape, len(names), d.Dim())
	}
	d.names = append([]string(nil), names...)
	return nil
}

// AttrName returns the name of attribute j, or a synthesized "attr<j>".
func (d *Dataset) AttrName(j int) string {
	if d.names != nil {
		return d.names[j]
	}
	return fmt.Sprintf("attr%d", j)
}

// Matrix returns the dataset's points as a matrix. For a dataset backed
// by a full identity view (the result of New, FromMatrix, ReadCSV, or
// Clone) the matrix shares the store's backing array; subsets return a
// fresh copy and projections return the view's memoized materialization.
// Treat the result as read-only unless this dataset owns its store (a
// Clone).
func (d *Dataset) Matrix() *linalg.Matrix { return d.v.Coords() }

// Subset returns a dataset viewing the rows at the given positions
// (positions into this dataset, not original IDs). IDs and labels follow;
// no point data is copied.
func (d *Dataset) Subset(positions []int) (*Dataset, error) {
	nv, err := d.v.Narrow(positions)
	if err != nil {
		return nil, err
	}
	return &Dataset{v: nv, names: d.names}, nil
}

// ProjectInto returns a dataset whose rows are the coordinates of this
// dataset's points in the given subspace; IDs and labels are preserved.
// This realizes the paper's D_new = Proj(D_c, E_new). The projection is
// applied lazily at row access, with results bit-identical to an eager
// copy.
func (d *Dataset) ProjectInto(s *linalg.Subspace) (*Dataset, error) {
	pv, err := d.v.Compose(s)
	if err != nil {
		return nil, err
	}
	return &Dataset{v: pv}, nil
}

// Clone returns a deep copy backed by its own detached store; mutating
// the clone's matrix cannot affect this dataset or any view of it.
func (d *Dataset) Clone() *Dataset {
	n, dim := d.N(), d.Dim()
	data := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		copy(data[i*dim:(i+1)*dim], d.v.Point(i))
	}
	st := &Store{data: data, n: n, dim: dim, ids: d.v.IDs()}
	if d.Labeled() {
		st.labels = make([]int, n)
		for i := range st.labels {
			st.labels[i] = d.v.Label(i)
		}
	}
	return &Dataset{v: &View{store: st}, names: append([]string(nil), d.names...)}
}

// Column returns a copy of attribute j across all points.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, d.N())
	for i := range out {
		out[i] = d.v.Point(i)[j]
	}
	return out
}

// Bounds returns per-dimension [min, max] over all points.
func (d *Dataset) Bounds() (lo, hi linalg.Vector) {
	dim := d.Dim()
	lo = make(linalg.Vector, dim)
	hi = make(linalg.Vector, dim)
	for j := 0; j < dim; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for i := 0; i < d.N(); i++ {
		row := d.Point(i)
		for j, x := range row {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	return lo, hi
}

// NormalizeMinMax rescales every attribute to [0, 1] and returns the
// transform applied, so queries can be mapped consistently. Constant
// attributes are shifted to 0 and left with unit scale. The dataset's
// store is rebuilt copy-on-write: views obtained before the call keep
// reading the untransformed values.
func (d *Dataset) NormalizeMinMax() *AffineTransform {
	lo, hi := d.Bounds()
	dim := d.Dim()
	tr := &AffineTransform{Offset: make([]float64, dim), Scale: make([]float64, dim)}
	for j := 0; j < dim; j++ {
		tr.Offset[j] = lo[j]
		if span := hi[j] - lo[j]; span > 0 {
			tr.Scale[j] = 1 / span
		} else {
			tr.Scale[j] = 1
		}
	}
	d.applyTransform(tr)
	return tr
}

// NormalizeZScore standardizes every attribute to zero mean and unit
// variance and returns the transform. Constant attributes are centered
// and left with unit scale. Copy-on-write like NormalizeMinMax.
func (d *Dataset) NormalizeZScore() *AffineTransform {
	dim := d.Dim()
	tr := &AffineTransform{Offset: make([]float64, dim), Scale: make([]float64, dim)}
	m := d.Matrix()
	mean := m.Mean()
	for j := 0; j < dim; j++ {
		v := m.VarianceAlong(linalg.Basis(dim, j))
		// VarianceAlong centers internally; recover raw second moment
		// variance of the column.
		tr.Offset[j] = mean[j]
		if sd := math.Sqrt(v); sd > 0 {
			tr.Scale[j] = 1 / sd
		} else {
			tr.Scale[j] = 1
		}
	}
	d.applyTransform(tr)
	return tr
}

// applyTransform rebuilds the store with transformed rows and swaps the
// dataset's view onto it. IDs and labels carry over, so the dataset is
// indistinguishable from one transformed in place — except that other
// views of the old store are unaffected.
func (d *Dataset) applyTransform(tr *AffineTransform) {
	n, dim := d.N(), d.Dim()
	data := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		copy(row, d.v.Point(i))
		tr.Apply(row)
	}
	st := &Store{data: data, n: n, dim: dim, ids: d.v.IDs()}
	if d.Labeled() {
		st.labels = make([]int, n)
		for i := range st.labels {
			st.labels[i] = d.v.Label(i)
		}
	}
	d.v = &View{store: st}
}

// AffineTransform maps x ↦ (x − Offset) ⊙ Scale per dimension.
type AffineTransform struct {
	Offset []float64
	Scale  []float64
}

// Apply transforms v in place.
func (t *AffineTransform) Apply(v []float64) {
	if len(v) != len(t.Offset) {
		panic(fmt.Sprintf("dataset: transform dim %d applied to %d", len(t.Offset), len(v)))
	}
	for j := range v {
		v[j] = (v[j] - t.Offset[j]) * t.Scale[j]
	}
}

// Applied returns a transformed copy of v.
func (t *AffineTransform) Applied(v []float64) []float64 {
	out := append([]float64(nil), v...)
	t.Apply(out)
	return out
}

// WriteCSV writes the dataset as CSV: a header with attribute names (plus
// "label" when labeled) followed by one row per point.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := d.Dim()
	header := make([]string, 0, dim+1)
	for j := 0; j < dim; j++ {
		header = append(header, d.AttrName(j))
	}
	if d.Labeled() {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, 0, dim+1)
	for i := 0; i < d.N(); i++ {
		rec = rec[:0]
		for _, x := range d.Point(i) {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if d.Labeled() {
			rec = append(rec, strconv.Itoa(d.Label(i)))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to the named file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := d.WriteCSV(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: flush %s: %w", path, err)
	}
	return f.Close()
}

// ReadCSV parses a dataset written by WriteCSV. A trailing "label" column
// in the header is parsed as integer labels.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: parse csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%w: need header plus at least one row", ErrEmpty)
	}
	header := records[0]
	hasLabel := len(header) > 0 && header[len(header)-1] == "label"
	dim := len(header)
	if hasLabel {
		dim--
	}
	if dim == 0 {
		return nil, fmt.Errorf("%w: no attribute columns", ErrBadShape)
	}
	rows := make([][]float64, 0, len(records)-1)
	var labels []int
	if hasLabel {
		labels = make([]int, 0, len(records)-1)
	}
	for li, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrBadShape, li+2, len(rec), len(header))
		}
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			row[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d field %d: %w", li+2, j, err)
			}
		}
		rows = append(rows, row)
		if hasLabel {
			lab, err := strconv.Atoi(rec[dim])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d label: %w", li+2, err)
			}
			labels = append(labels, lab)
		}
	}
	ds, err := New(rows, labels)
	if err != nil {
		return nil, err
	}
	if err := ds.SetAttrNames(header[:dim]); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadCSV reads a dataset from the named file.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(bufio.NewReader(f))
}

// WithoutRow returns a new dataset excluding position i — the holdout
// operation classification protocols use. IDs and labels of the remaining
// rows are preserved.
func (d *Dataset) WithoutRow(i int) (*Dataset, error) {
	if i < 0 || i >= d.N() {
		return nil, fmt.Errorf("dataset: holdout position %d out of range [0,%d)", i, d.N())
	}
	if d.N() == 1 {
		return nil, ErrEmpty
	}
	keep := make([]int, 0, d.N()-1)
	for p := 0; p < d.N(); p++ {
		if p != i {
			keep = append(keep, p)
		}
	}
	return d.Subset(keep)
}
