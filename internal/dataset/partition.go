package dataset

import (
	"fmt"

	"innsearch/internal/parallel"
)

// Partition splits the store into p row-disjoint shard views over the
// same backing array: shard i covers the contiguous row window
// parallel.ShardBounds(n, p, i), so the split depends only on (n, p) —
// never on worker counts — and two runs see identical shards. No point
// data is copied, and every shard view pins the store (its generation):
// a dataset that later normalizes swaps in a fresh store, leaving these
// shards reading the values they were cut from. Partition(1) returns the
// identity view of the whole store. p greater than n yields trailing
// empty windows, which are dropped.
func (st *Store) Partition(p int) ([]*View, error) {
	if p < 1 {
		return nil, fmt.Errorf("dataset: partition into %d shards", p)
	}
	if p == 1 {
		return []*View{{store: st}}, nil
	}
	out := make([]*View, 0, p)
	for i := 0; i < p; i++ {
		lo, hi := parallel.ShardBounds(st.n, p, i)
		if lo >= hi {
			continue
		}
		rows := make([]int, hi-lo)
		for r := range rows {
			rows[r] = lo + r
		}
		out = append(out, &View{store: st, rows: rows})
	}
	return out, nil
}
