package dataset

import (
	"context"

	"innsearch/internal/linalg"
)

// Arena recycles the materialization buffers of short-lived projected
// views. The engine's per-minor-iteration complement chains are the
// motivating case: each frame D_{k+1} = Proj(D_k, E_new) is computed from
// the previous frame's coordinates and then makes them dead, so a session
// can ping-pong between a couple of buffers instead of allocating a fresh
// n×dim matrix every minor iteration.
//
// Arena-composed views trade away the View type's headline guarantees:
// they are single-owner (one goroutine drives Compose/Reclaim; concurrent
// Point reads remain fine between those calls) and their rows become
// invalid — and are eventually overwritten — once Reclaim is called.
// Recycling only touches which backing array a materialization writes to,
// never the values written, so results are bit-identical with or without
// an arena.
//
// The zero Arena is ready to use.
type Arena struct {
	bufs [][]float64
}

// take returns a buffer of the given length, reusing a reclaimed one when
// any is large enough. Callers overwrite every element.
func (a *Arena) take(size int) []float64 {
	for i, b := range a.bufs {
		if cap(b) >= size {
			last := len(a.bufs) - 1
			a.bufs[i] = a.bufs[last]
			a.bufs = a.bufs[:last]
			return b[:size]
		}
	}
	return make([]float64, size)
}

// give returns a buffer to the arena for reuse.
func (a *Arena) give(b []float64) {
	if b != nil {
		a.bufs = append(a.bufs, b)
	}
}

// ComposeArena is Compose with eager materialization into an arena
// buffer: the projected coordinates are computed immediately (so the
// receiver's rows may be reclaimed right afterwards) and the returned
// view's own buffer can later be recycled with Reclaim. See Arena for the
// ownership rules.
func (v *View) ComposeArena(sub *linalg.Subspace, a *Arena) (*View, error) {
	return v.ComposeArenaContext(context.Background(), 1, sub, a)
}

// ComposeArenaContext is ComposeArena with cooperative cancellation and a
// worker count for the eager materialization: the projection kernel runs
// its row shards on up to `workers` goroutines (≤ 0 means GOMAXPROCS) and
// writes bit-identical coordinates at any worker count. On a canceled
// context the arena buffer is returned and no view escapes.
func (v *View) ComposeArenaContext(ctx context.Context, workers int, sub *linalg.Subspace, a *Arena) (*View, error) {
	nv, err := v.Compose(sub)
	if err != nil {
		return nil, err
	}
	nv.arena = a
	mat, err := nv.materializeInto(ctx, workers)
	if err != nil {
		return nil, err
	}
	nv.once.Do(func() { nv.mat = mat })
	return nv, nil
}

// Reclaim returns the view's materialized coordinate buffer to its arena.
// It is a no-op for views without one (ambient views, plain Compose).
// The view's rows must not be read again afterwards.
func (v *View) Reclaim() {
	if v.arena == nil || v.mat == nil {
		return
	}
	v.arena.give(v.mat.Data)
	v.mat = nil
}
