package dataset

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"innsearch/internal/linalg"
)

func randomViewDataset(t *testing.T, seed int64, n, d int) *Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64() * float64(j+1)
		}
		rows[i] = row
	}
	ds, err := New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestViewStatsMemoized checks the memo: repeated Stats calls on one view
// return the same pointer (one O(N·d²) pass per view generation), and the
// values match a direct covariance/mean of the coordinates.
func TestViewStatsMemoized(t *testing.T) {
	ds := randomViewDataset(t, 3, 120, 6)
	v := ds.View()
	ctx := context.Background()
	st, err := v.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := v.Stats(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st != again {
		t.Error("second Stats call did not return the memoized pointer")
	}
	m := v.Coords()
	wantCov, wantMean := m.Covariance(), m.Mean()
	for j := range wantMean {
		if st.Mean[j] != wantMean[j] {
			t.Errorf("mean[%d] = %v, want %v", j, st.Mean[j], wantMean[j])
		}
	}
	for k := range wantCov.Data {
		if st.Cov.Data[k] != wantCov.Data[k] {
			t.Errorf("cov entry %d = %v, want %v", k, st.Cov.Data[k], wantCov.Data[k])
		}
	}
}

// TestViewStatsPullThrough checks the congruence shortcut on composed
// views: stats pulled down through the projection chain (Σ′ = BΣBᵀ,
// mean′ = Proj(mean)) agree with a direct covariance of the projected
// coordinates to ≤ 1e-10 relative — without the projected view ever
// sweeping its row data.
func TestViewStatsPullThrough(t *testing.T) {
	ds := randomViewDataset(t, 9, 200, 8)
	sub, err := linalg.NewSubspace(8, []linalg.Vector{
		{1, 0.5, 0, 0, -1, 0, 0, 0.25},
		{0, 1, 1, 0, 0, -0.5, 0, 0},
		{0, 0, 0, 1, 0, 0, 2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	pv, err := ds.View().Compose(sub)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pv.Stats(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := pv.Coords()
	direct, directMean := m.Covariance(), m.Mean()
	scale := direct.MaxAbs()
	for k := range direct.Data {
		if d := math.Abs(st.Cov.Data[k] - direct.Data[k]); d > 1e-10*scale {
			t.Errorf("pulled cov entry %d = %v, direct %v", k, st.Cov.Data[k], direct.Data[k])
		}
	}
	for j := range directMean {
		if d := math.Abs(st.Mean[j] - directMean[j]); d > 1e-10 {
			t.Errorf("pulled mean[%d] = %v, direct %v", j, st.Mean[j], directMean[j])
		}
	}
}

// TestNarrowInvalidatesStats checks the invalidation rule: Narrow builds a
// fresh view, so its stats are recomputed over the surviving rows rather
// than inherited from the parent memo.
func TestNarrowInvalidatesStats(t *testing.T) {
	ds := randomViewDataset(t, 5, 80, 4)
	v := ds.View()
	ctx := context.Background()
	parent, err := v.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := v.Narrow([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	child, err := nv.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if child == parent {
		t.Fatal("narrowed view shares the parent's stats memo")
	}
	m := nv.Coords()
	wantCov := m.Covariance()
	for k := range wantCov.Data {
		if child.Cov.Data[k] != wantCov.Data[k] {
			t.Errorf("narrowed cov entry %d = %v, want %v", k, child.Cov.Data[k], wantCov.Data[k])
		}
	}
}

// TestStatsCancellation checks that a canceled base computation does not
// poison the memo: the canceled call errors, a later call with a live
// context succeeds.
func TestStatsCancellation(t *testing.T) {
	ds := randomViewDataset(t, 7, 5000, 8)
	v := ds.View()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.Stats(ctx, 4); err == nil {
		// Small shards may complete before the cancellation check; that is
		// fine — the point is the retry below must succeed either way.
		t.Log("canceled Stats call completed anyway")
	}
	st, err := v.Stats(context.Background(), 1)
	if err != nil {
		t.Fatalf("Stats after canceled attempt: %v", err)
	}
	if st == nil || st.Cov == nil {
		t.Fatal("nil stats after retry")
	}
}
