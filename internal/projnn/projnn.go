// Package projnn implements the fully automated projected
// nearest-neighbor baseline in the spirit of Hinneburg, Aggarwal & Keim
// (VLDB 2000), reference [15] of the paper: determine a single
// discriminating query-centered projection automatically and return the
// Euclidean nearest neighbors within it. The interactive system's
// ablations compare against this to quantify the value of the human in
// the loop and of using many projections instead of one.
package projnn

import (
	"errors"
	"fmt"

	"innsearch/internal/core"
	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/linalg"
	"innsearch/internal/metric"
)

// Config tunes the automated projected search.
type Config struct {
	// K is the number of neighbors to return (must be positive).
	K int
	// Support is the candidate-cluster size for the projection search;
	// raised to the data dimensionality when smaller.
	Support int
	// AxisParallel restricts the projection to original attributes.
	AxisParallel bool
	// ProjectionDim is the dimensionality of the single projection the
	// neighbors are computed in (default 2, the visualizable choice).
	ProjectionDim int
}

// Result is the automated baseline's answer.
type Result struct {
	// Neighbors are the K nearest points in the chosen projection.
	Neighbors []knn.Neighbor
	// Projection is the subspace that was selected.
	Projection *linalg.Subspace
	// Discrimination is the projection's variance-ratio score.
	Discrimination float64
}

// Search finds one discriminating projection for the query and returns
// the nearest neighbors within it.
func Search(ds *dataset.Dataset, query []float64, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("projnn: K must be positive")
	}
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("projnn: query dim %d, data dim %d", len(query), ds.Dim())
	}
	support := cfg.Support
	if support < ds.Dim() {
		support = ds.Dim()
	}
	if support > ds.N() {
		support = ds.N()
	}
	pdim := cfg.ProjectionDim
	if pdim == 0 {
		pdim = 2
	}
	if pdim < 1 || pdim > ds.Dim() {
		return nil, fmt.Errorf("projnn: projection dim %d outside [1, %d]", pdim, ds.Dim())
	}

	proj, err := core.FindQueryCenteredProjectionDim(ds, linalg.Vector(query), core.ProjectionSearch{
		Support:      support,
		AxisParallel: cfg.AxisParallel,
		Graded:       true,
	}, pdim)
	if err != nil {
		return nil, fmt.Errorf("projnn: projection search: %w", err)
	}

	projected, err := ds.ProjectInto(proj)
	if err != nil {
		return nil, fmt.Errorf("projnn: project data: %w", err)
	}
	qp := proj.Project(linalg.Vector(query))
	nbrs, err := knn.Search(projected, qp, cfg.K, metric.Euclidean{})
	if err != nil {
		return nil, err
	}
	return &Result{
		Neighbors:      nbrs,
		Projection:     proj,
		Discrimination: core.DiscriminationScore(ds, linalg.Vector(query), proj, support),
	}, nil
}
