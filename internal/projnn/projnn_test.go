package projnn

import (
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/synth"
)

func TestSearchFindsClusterNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pd, err := synth.Case1(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	members := pd.Members(0)
	query := pd.Data.PointCopy(members[0])
	res, err := Search(pd.Data, query, Config{K: 50, Support: 30, AxisParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 50 {
		t.Fatalf("neighbors = %d", len(res.Neighbors))
	}
	if res.Projection.Dim() != 2 {
		t.Fatalf("projection dim %d", res.Projection.Dim())
	}
	// A majority of projected neighbors should be true cluster members —
	// better than chance (cluster is ~20% of the data) but typically
	// worse than the interactive multi-projection system.
	memberSet := map[int]bool{}
	for _, m := range members {
		memberSet[pd.Data.ID(m)] = true
	}
	hits := 0
	for _, nb := range res.Neighbors {
		if memberSet[nb.ID] {
			hits++
		}
	}
	if hits < 30 {
		t.Errorf("only %d/50 projected neighbors are cluster members", hits)
	}
	if res.Discrimination <= 0 {
		t.Errorf("discrimination = %v", res.Discrimination)
	}
}

func TestSearchWiderProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pd, err := synth.Case1(800, rng)
	if err != nil {
		t.Fatal(err)
	}
	query := pd.Data.PointCopy(pd.Members(1)[0])
	res, err := Search(pd.Data, query, Config{K: 20, ProjectionDim: 6, AxisParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Projection.Dim() != 6 {
		t.Fatalf("projection dim %d, want 6", res.Projection.Dim())
	}
}

func TestSearchValidation(t *testing.T) {
	ds, _ := dataset.New([][]float64{{1, 2}, {3, 4}, {5, 6}}, nil)
	if _, err := Search(ds, []float64{0, 0}, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Search(ds, []float64{0}, Config{K: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := Search(nil, []float64{0, 0}, Config{K: 1}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Search(ds, []float64{0, 0}, Config{K: 1, ProjectionDim: 9}); err == nil {
		t.Error("oversized projection accepted")
	}
}

func TestSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pd, err := synth.Case1(600, rng)
	if err != nil {
		t.Fatal(err)
	}
	query := pd.Data.PointCopy(0)
	a, err := Search(pd.Data, query, Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(pd.Data, query, Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Neighbors {
		if a.Neighbors[i].ID != b.Neighbors[i].ID {
			t.Fatal("non-deterministic results")
		}
	}
}
