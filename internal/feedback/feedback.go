// Package feedback implements the classical relevance-feedback retrieval
// loop of the multimedia literature the paper cites ([22] MARS, [23]
// SMART/Rocchio, [28] FALCON): the user marks which of the returned
// neighbors are relevant, the query vector moves toward the relevant
// points and away from the irrelevant ones (Rocchio), and the distance
// function reweights each dimension by the inverse spread of the relevant
// set (MARS-style). It is the strongest pre-existing interactive baseline
// the paper's approach can be compared against: feedback refines a single
// global query and metric, while the paper's system harvests structure
// from many explicit projections.
package feedback

import (
	"errors"
	"fmt"
	"math"

	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/metric"
)

// Judge labels a returned neighbor as relevant or not; it stands in for
// the user of the feedback loop (e.g. ground-truth membership in the
// evaluation harness).
type Judge func(id int) bool

// Config tunes the feedback loop.
type Config struct {
	// K is how many neighbors are shown per round (must be positive).
	K int
	// Rounds is the number of feedback rounds (default 3).
	Rounds int
	// Alpha, Beta, Gamma are the Rocchio coefficients for the current
	// query, the relevant centroid, and the irrelevant centroid
	// (defaults 1, 0.75, 0.15).
	Alpha, Beta, Gamma float64
	// Reweight enables MARS-style per-dimension weights (inverse
	// standard deviation of the relevant set), default true via the
	// DisableReweight flag.
	DisableReweight bool
}

func (c Config) withDefaults() (Config, error) {
	if c.K <= 0 {
		return c, errors.New("feedback: K must be positive")
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Rounds < 0 {
		return c, errors.New("feedback: negative rounds")
	}
	if c.Alpha == 0 && c.Beta == 0 && c.Gamma == 0 {
		c.Alpha, c.Beta, c.Gamma = 1, 0.75, 0.15
	}
	return c, nil
}

// Result reports the final retrieval round.
type Result struct {
	// Neighbors is the final top-K under the refined query and weights.
	Neighbors []knn.Neighbor
	// Query is the refined query vector.
	Query []float64
	// Weights is the final per-dimension weight vector (all ones when
	// reweighting is disabled).
	Weights []float64
	// RelevantSeen counts the distinct relevant points the user marked
	// across rounds.
	RelevantSeen int
}

// Run executes the feedback loop: retrieve K, have the judge mark the
// results, refine the query and weights, repeat.
func Run(ds *dataset.Dataset, query []float64, judge Judge, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("feedback: query dim %d, data dim %d", len(query), ds.Dim())
	}
	if judge == nil {
		return nil, errors.New("feedback: nil judge")
	}

	d := ds.Dim()
	q := append([]float64(nil), query...)
	weights := make([]float64, d)
	for j := range weights {
		weights[j] = 1
	}
	seenRelevant := map[int]bool{}

	dist := func() metric.Metric {
		if cfg.DisableReweight {
			return metric.Euclidean{}
		}
		return metric.Weighted{Base: metric.Euclidean{}, Weights: append([]float64(nil), weights...)}
	}

	var nbrs []knn.Neighbor
	for round := 0; round <= cfg.Rounds; round++ {
		nbrs, err = knn.Search(ds, q, cfg.K, dist())
		if err != nil {
			return nil, err
		}
		if round == cfg.Rounds {
			break
		}
		var rel, irr [][]float64
		for _, nb := range nbrs {
			if judge(nb.ID) {
				rel = append(rel, ds.Point(nb.Pos))
				seenRelevant[nb.ID] = true
			} else {
				irr = append(irr, ds.Point(nb.Pos))
			}
		}
		if len(rel) == 0 {
			break // nothing to learn from; keep the current answer
		}
		q = rocchio(q, rel, irr, cfg)
		if !cfg.DisableReweight {
			weights = inverseSpread(rel, d)
		}
	}
	return &Result{
		Neighbors:    nbrs,
		Query:        q,
		Weights:      weights,
		RelevantSeen: len(seenRelevant),
	}, nil
}

// rocchio returns α·q + β·centroid(rel) − γ·centroid(irr).
func rocchio(q []float64, rel, irr [][]float64, cfg Config) []float64 {
	d := len(q)
	out := make([]float64, d)
	for j := 0; j < d; j++ {
		out[j] = cfg.Alpha * q[j]
	}
	addCentroid(out, rel, cfg.Beta)
	addCentroid(out, irr, -cfg.Gamma)
	norm := cfg.Alpha + boolScale(len(rel) > 0, cfg.Beta) - boolScale(len(irr) > 0, cfg.Gamma)
	if norm <= 0 {
		norm = 1
	}
	for j := range out {
		out[j] /= norm
	}
	return out
}

func addCentroid(acc []float64, pts [][]float64, scale float64) {
	if len(pts) == 0 || scale == 0 {
		return
	}
	inv := scale / float64(len(pts))
	for _, p := range pts {
		for j := range acc {
			acc[j] += inv * p[j]
		}
	}
}

func boolScale(b bool, v float64) float64 {
	if b {
		return v
	}
	return 0
}

// inverseSpread computes MARS-style weights: 1/(σⱼ + ε) over the relevant
// set, normalized to mean 1 so distance scales stay comparable.
func inverseSpread(rel [][]float64, d int) []float64 {
	w := make([]float64, d)
	if len(rel) < 2 {
		for j := range w {
			w[j] = 1
		}
		return w
	}
	for j := 0; j < d; j++ {
		var sum, sq float64
		for _, p := range rel {
			sum += p[j]
		}
		mean := sum / float64(len(rel))
		for _, p := range rel {
			dv := p[j] - mean
			sq += dv * dv
		}
		sd := math.Sqrt(sq / float64(len(rel)))
		w[j] = 1 / (sd + 1e-9)
	}
	// Normalize to mean 1.
	var total float64
	for _, x := range w {
		total += x
	}
	scale := float64(d) / total
	for j := range w {
		w[j] *= scale
	}
	return w
}
