package feedback

import (
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/metric"
	"innsearch/internal/synth"
)

// plantedDS builds data with a cluster in the first 3 of d dims.
func plantedDS(t *testing.T, n, clusterN, d int, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			if i < clusterN && j < 3 {
				row[j] = 50 + r.NormFloat64()
			} else {
				row[j] = r.Float64() * 100
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunValidation(t *testing.T) {
	ds := plantedDS(t, 50, 10, 5, 1)
	judge := func(int) bool { return true }
	if _, err := Run(ds, make([]float64, 5), judge, Config{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, make([]float64, 3), judge, Config{K: 5}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := Run(ds, make([]float64, 5), nil, Config{K: 5}); err == nil {
		t.Error("nil judge accepted")
	}
	if _, err := Run(nil, make([]float64, 5), judge, Config{K: 5}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, make([]float64, 5), judge, Config{K: 5, Rounds: -1}); err == nil {
		t.Error("negative rounds accepted")
	}
}

func TestFeedbackImprovesOverPlainKNN(t *testing.T) {
	ds := plantedDS(t, 1500, 80, 16, 2)
	query := ds.PointCopy(0)
	judge := func(id int) bool { return id < 80 }
	const k = 60

	plain, err := knn.Search(ds, query, k, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	plainHits := 0
	for _, nb := range plain {
		if judge(nb.ID) {
			plainHits++
		}
	}

	res, err := Run(ds, query, judge, Config{K: k, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	fbHits := 0
	for _, nb := range res.Neighbors {
		if judge(nb.ID) {
			fbHits++
		}
	}
	t.Logf("plain %d/%d, feedback %d/%d (relevant seen %d)", plainHits, k, fbHits, k, res.RelevantSeen)
	if fbHits <= plainHits {
		t.Errorf("feedback %d hits did not beat plain %d", fbHits, plainHits)
	}
	// The learned weights must emphasize the informative dims 0–2.
	wInfo := (res.Weights[0] + res.Weights[1] + res.Weights[2]) / 3
	var wNoise float64
	for j := 3; j < len(res.Weights); j++ {
		wNoise += res.Weights[j]
	}
	wNoise /= float64(len(res.Weights) - 3)
	if wInfo <= wNoise {
		t.Errorf("informative weight %v not above noise weight %v", wInfo, wNoise)
	}
}

func TestFeedbackWithoutRelevantStops(t *testing.T) {
	ds := plantedDS(t, 200, 10, 6, 3)
	res, err := Run(ds, ds.PointCopy(150), func(int) bool { return false }, Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelevantSeen != 0 {
		t.Errorf("relevant seen = %d", res.RelevantSeen)
	}
	if len(res.Neighbors) != 10 {
		t.Errorf("neighbors = %d", len(res.Neighbors))
	}
	for _, w := range res.Weights {
		if w != 1 {
			t.Errorf("weights changed without feedback: %v", res.Weights)
			break
		}
	}
}

func TestFeedbackNoRelevantEqualsPlainKNN(t *testing.T) {
	// When the judge never marks anything relevant, the loop learns
	// nothing and the answer must equal plain k-NN.
	ds := plantedDS(t, 300, 30, 8, 4)
	query := ds.PointCopy(5)
	res, err := Run(ds, query, func(int) bool { return false }, Config{K: 15})
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Search(ds, query, 15, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Neighbors[i].Pos != want[i].Pos {
			t.Fatalf("no-feedback run differs from plain k-NN at rank %d", i)
		}
	}
}

func TestFeedbackDisableReweight(t *testing.T) {
	ds := plantedDS(t, 400, 40, 10, 5)
	judge := func(id int) bool { return id < 40 }
	res, err := Run(ds, ds.PointCopy(0), judge, Config{K: 30, Rounds: 2, DisableReweight: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Weights {
		if w != 1 {
			t.Fatal("weights changed with reweighting disabled")
		}
	}
}

func TestFeedbackOnCase1VsInteractiveRegime(t *testing.T) {
	// Not a strict comparison (that lives in the experiments package) —
	// just assert the baseline is functional on the paper's workload.
	rng := rand.New(rand.NewSource(6))
	pd, err := synth.Case1(1200, rng)
	if err != nil {
		t.Fatal(err)
	}
	members := pd.Members(0)
	rel := map[int]bool{}
	for _, m := range members {
		rel[pd.Data.ID(m)] = true
	}
	res, err := Run(pd.Data, pd.Data.PointCopy(members[0]), func(id int) bool { return rel[id] },
		Config{K: len(members), Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, nb := range res.Neighbors {
		if rel[nb.ID] {
			hits++
		}
	}
	if hits*3 < len(members) {
		t.Errorf("feedback recovered only %d of %d", hits, len(members))
	}
}
