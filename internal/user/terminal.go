package user

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"innsearch/internal/core"
	"innsearch/internal/grid"
	"innsearch/internal/kde"
	"innsearch/internal/viz"
)

// Terminal is the real human interface: it renders each visual profile as
// an ASCII density map on Out and runs the paper's AdjustDensitySeparator
// loop (Figure 6) over In. Commands at the prompt:
//
//	<fraction>        move the separator to fraction × query density
//	a (or empty)      accept the current separator
//	s                 skip this view
//	h                 show 1-D marginal density sketches
//	l x1,y1,x2,y2     add a separating line (polygonal selection)
//	c                 clear the separating lines
//
// When separating lines are present, accepting answers with the polygonal
// region instead of the density separator.
type Terminal struct {
	In  io.Reader
	Out io.Writer
	// Width, Height are the ASCII canvas size (defaults 72×26).
	Width, Height int

	scanner *bufio.Scanner
}

// SeparateCluster implements core.User.
func (t *Terminal) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	if t.scanner == nil {
		t.scanner = bufio.NewScanner(t.In)
	}
	fmt.Fprintf(t.Out, "\n--- major %d, minor %d: query-centered projection (discrimination %.2f, query/peak %.2f) ---\n",
		p.Major, p.Minor, p.Discrimination, p.PeakRatio())

	frac := 0.5
	var lines []grid.Line
	for {
		tau := frac * p.QueryDensity
		t.render(p, tau)
		if len(lines) > 0 {
			if sel, err := p.SelectLines(lines); err == nil {
				fmt.Fprintf(t.Out, "%d separating line(s): polygonal region holds %d of %d points\n",
					len(lines), len(sel), p.Points.Rows)
			}
		} else if reg := preview(tau); reg != nil {
			sel := reg.SelectPoints(p.Points.Col(0), p.Points.Col(1))
			fmt.Fprintf(t.Out, "separator at %.2f × query density selects %d of %d points\n",
				frac, len(sel), p.Points.Rows)
		}
		fmt.Fprint(t.Out, "τ fraction (0..1), 'a' accept, 's' skip, 'h' marginals, 'l x1,y1,x2,y2' add line, 'c' clear lines > ")
		if !t.scanner.Scan() {
			return core.Decision{Skip: true} // EOF: treat as skip
		}
		line := strings.TrimSpace(t.scanner.Text())
		switch {
		case line == "a" || line == "":
			if len(lines) > 0 {
				return core.Decision{Lines: lines, Confidence: 0.5}
			}
			return core.Decision{Tau: tau, Confidence: 0.5}
		case line == "s":
			return core.Decision{Skip: true}
		case line == "h":
			t.marginals(p)
		case line == "c":
			lines = nil
		case strings.HasPrefix(line, "l "):
			l, err := parseLine(strings.TrimPrefix(line, "l "))
			if err != nil {
				fmt.Fprintln(t.Out, err)
				continue
			}
			lines = append(lines, l)
		default:
			v, err := strconv.ParseFloat(line, 64)
			if err != nil || v <= 0 || v >= 1 {
				fmt.Fprintln(t.Out, "enter a fraction in (0,1), or one of a/s/h/l/c")
				continue
			}
			frac = v
		}
	}
}

// parseLine reads "x1,y1,x2,y2" into a separating line.
func parseLine(spec string) (grid.Line, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 4 {
		return grid.Line{}, fmt.Errorf("expected x1,y1,x2,y2, got %q", spec)
	}
	vals := make([]float64, 4)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return grid.Line{}, fmt.Errorf("bad coordinate %q", part)
		}
		vals[i] = v
	}
	return grid.Line{X1: vals[0], Y1: vals[1], X2: vals[2], Y2: vals[3]}, nil
}

// marginals prints 1-D density sketches of the two projected coordinates.
func (t *Terminal) marginals(p *core.VisualProfile) {
	for axis, name := range []string{"x", "y"} {
		g, err := kde.Estimate1D(p.Points.Col(axis), 60, 0)
		if err != nil {
			fmt.Fprintf(t.Out, "marginal %s: %v\n", name, err)
			continue
		}
		peak := g.MaxDensity()
		fmt.Fprintf(t.Out, "%s marginal [%.3g, %.3g]: ", name, g.Min, g.Max)
		ramp := " .:-=+*#%@"
		for i := 0; i < g.P; i++ {
			idx := 0
			if peak > 0 {
				idx = int(g.Density[i] / peak * float64(len(ramp)))
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			fmt.Fprintf(t.Out, "%c", ramp[idx])
		}
		fmt.Fprintln(t.Out)
	}
}

func (t *Terminal) render(p *core.VisualProfile, tau float64) {
	w, h := t.Width, t.Height
	if w == 0 {
		w = 72
	}
	if h == 0 {
		h = 26
	}
	ascii, err := viz.ASCIIHeatmap(p.Grid, viz.ASCIIOptions{
		Width: w, Height: h,
		MarkQuery: true, QueryX: p.QueryX, QueryY: p.QueryY,
		Tau: tau, ShowScale: true,
	})
	if err != nil {
		fmt.Fprintf(t.Out, "render error: %v\n", err)
		return
	}
	fmt.Fprint(t.Out, ascii)
}
