package user

import (
	"math/rand"
	"testing"

	"innsearch/internal/core"
	"innsearch/internal/synth"
)

// runHeuristicSession runs one full engine session on a planted-cluster
// dataset with the label-blind Heuristic and returns the transcript plus
// the result.
func runHeuristicSession(t *testing.T, pd *synth.ProjectedData, queryRow int, mode core.ProjectionMode) (*core.Transcript, *core.Result) {
	t.Helper()
	tr, obs := core.NewTranscript(false)
	sess, err := core.NewSession(pd.Data, pd.Data.PointCopy(queryRow), &Heuristic{}, core.Config{
		Mode:               mode,
		GridSize:           32,
		MaxMajorIterations: 3,
		Observer:           obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// acceptSkipMix summarizes a transcript as its per-view accept/skip
// sequence (true = answered).
func acceptSkipMix(tr *core.Transcript) (seq []bool, accepted int) {
	for _, v := range tr.Views {
		seq = append(seq, !v.Skipped)
		if !v.Skipped {
			accepted++
		}
	}
	return seq, accepted
}

// TestHeuristicOnPlantedClusters drives the label-blind Heuristic through
// full sessions on the paper's two synthetic workloads (Case 1
// axis-parallel, Case 2 arbitrarily oriented planted clusters) and checks
// that it terminates, answers at least one view on each (the planted
// clusters are visually separable by construction), and reports a
// deterministic accept/skip mix under a fixed seed.
func TestHeuristicOnPlantedClusters(t *testing.T) {
	cases := []struct {
		name string
		gen  func(n int, rng *rand.Rand) (*synth.ProjectedData, error)
		mode core.ProjectionMode
	}{
		{"case1_axis", synth.Case1, core.ModeAxis},
		{"case2_arbitrary", synth.Case2, core.ModeArbitrary},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pd, err := tc.gen(600, rand.New(rand.NewSource(20020612)))
			if err != nil {
				t.Fatal(err)
			}
			// Query inside the first planted cluster: the paper's protocol
			// places the query in a known projected cluster.
			queryRow := pd.Members(0)[0]

			tr1, res1 := runHeuristicSession(t, pd, queryRow, tc.mode)
			if res1.Iterations < 1 {
				t.Fatalf("session terminated without completing an iteration: %+v", res1)
			}
			if res1.ViewsShown == 0 {
				t.Fatal("session showed no views")
			}
			seq1, accepted1 := acceptSkipMix(tr1)
			if accepted1 == 0 {
				t.Errorf("heuristic answered 0/%d views on a planted-cluster dataset", len(seq1))
			}
			if accepted1 != res1.ViewsAnswered {
				t.Errorf("transcript accepts %d != result ViewsAnswered %d", accepted1, res1.ViewsAnswered)
			}

			// Same seed, same dataset, same engine config: the accept/skip
			// sequence must be identical — the Heuristic is deterministic
			// and so is the engine.
			tr2, res2 := runHeuristicSession(t, pd, queryRow, tc.mode)
			seq2, accepted2 := acceptSkipMix(tr2)
			if len(seq1) != len(seq2) || accepted1 != accepted2 {
				t.Fatalf("rerun mix drifted: %d/%d vs %d/%d", accepted1, len(seq1), accepted2, len(seq2))
			}
			for i := range seq1 {
				if seq1[i] != seq2[i] {
					t.Fatalf("rerun accept/skip sequence diverged at view %d", i)
				}
			}
			if res1.ViewsShown != res2.ViewsShown || res1.Iterations != res2.Iterations {
				t.Fatalf("rerun session shape drifted: %+v vs %+v", res1, res2)
			}
		})
	}
}
