package user

import (
	"bytes"
	"strings"
	"testing"

	"innsearch/internal/core"
)

func terminalOver(input string) (*Terminal, *bytes.Buffer) {
	out := &bytes.Buffer{}
	return &Terminal{In: strings.NewReader(input), Out: out, Width: 32, Height: 10}, out
}

func TestTerminalAcceptDefault(t *testing.T) {
	p, _ := makeProfile(t, 300, 60, true, 30)
	term, out := terminalOver("a\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("accept produced a skip")
	}
	if d.Tau <= 0 || d.Tau >= p.QueryDensity {
		t.Errorf("tau = %v (query density %v)", d.Tau, p.QueryDensity)
	}
	if !strings.Contains(out.String(), "separator at") {
		t.Error("selection preview not printed")
	}
}

func TestTerminalAdjustThenAccept(t *testing.T) {
	p, _ := makeProfile(t, 300, 60, true, 31)
	term, _ := terminalOver("0.8\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	want := 0.8 * p.QueryDensity
	if d.Tau != want {
		t.Errorf("tau = %v, want %v", d.Tau, want)
	}
}

func TestTerminalSkip(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 32)
	term, _ := terminalOver("s\n")
	if d := term.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("skip command ignored")
	}
}

func TestTerminalEOFSkips(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 33)
	term, _ := terminalOver("")
	if d := term.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("EOF should skip")
	}
}

func TestTerminalInvalidInputReprompts(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 34)
	term, out := terminalOver("bogus\n2.5\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	if !strings.Contains(out.String(), "enter a fraction") {
		t.Error("no reprompt message for invalid input")
	}
}

func TestTerminalMarginals(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 35)
	term, out := terminalOver("h\na\n")
	if d := term.SeparateCluster(p, previewFor(p)); d.Skip {
		t.Fatal("skip")
	}
	if !strings.Contains(out.String(), "x marginal") || !strings.Contains(out.String(), "y marginal") {
		t.Error("marginals not printed")
	}
}

func TestTerminalPolygonFlow(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 36)
	term, out := terminalOver("l 0,-100,0,100\nl bad\nl 1,2,3\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	if len(d.Lines) != 1 {
		t.Fatalf("lines = %d, want 1 (malformed ones rejected)", len(d.Lines))
	}
	if !strings.Contains(out.String(), "polygonal region holds") {
		t.Error("polygonal preview not printed")
	}
	if !strings.Contains(out.String(), "bad coordinate") && !strings.Contains(out.String(), "expected x1,y1,x2,y2") {
		t.Error("malformed line not reported")
	}
}

func TestTerminalClearLines(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 37)
	term, _ := terminalOver("l 0,-100,0,100\nc\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip || len(d.Lines) != 0 {
		t.Errorf("after clear, decision = %+v", d)
	}
	if d.Tau <= 0 {
		t.Error("cleared lines should fall back to the density separator")
	}
}

func TestTerminalDrivesFullSession(t *testing.T) {
	// Feed a full session's worth of commands through the terminal user.
	p, ds := makeProfile(t, 100, 20, true, 38)
	_ = p
	script := strings.Repeat("a\n", 20)
	term, _ := terminalOver(script)
	sess, err := core.NewSession(ds, []float64{5, 5}, term, core.Config{
		Support: 10, GridSize: 16, MaxMajorIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewsShown == 0 {
		t.Error("terminal session showed no views")
	}
}
