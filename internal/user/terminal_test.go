package user

import (
	"bytes"
	"strings"
	"testing"

	"innsearch/internal/core"
)

func terminalOver(input string) (*Terminal, *bytes.Buffer) {
	out := &bytes.Buffer{}
	return &Terminal{In: strings.NewReader(input), Out: out, Width: 32, Height: 10}, out
}

func TestTerminalAcceptDefault(t *testing.T) {
	p, _ := makeProfile(t, 300, 60, true, 30)
	term, out := terminalOver("a\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("accept produced a skip")
	}
	if d.Tau <= 0 || d.Tau >= p.QueryDensity {
		t.Errorf("tau = %v (query density %v)", d.Tau, p.QueryDensity)
	}
	if !strings.Contains(out.String(), "separator at") {
		t.Error("selection preview not printed")
	}
}

func TestTerminalAdjustThenAccept(t *testing.T) {
	p, _ := makeProfile(t, 300, 60, true, 31)
	term, _ := terminalOver("0.8\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	want := 0.8 * p.QueryDensity
	if d.Tau != want {
		t.Errorf("tau = %v, want %v", d.Tau, want)
	}
}

func TestTerminalSkip(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 32)
	term, _ := terminalOver("s\n")
	if d := term.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("skip command ignored")
	}
}

func TestTerminalEOFSkips(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 33)
	term, _ := terminalOver("")
	if d := term.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("EOF should skip")
	}
}

func TestTerminalInvalidInputReprompts(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 34)
	term, out := terminalOver("bogus\n2.5\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	if !strings.Contains(out.String(), "enter a fraction") {
		t.Error("no reprompt message for invalid input")
	}
}

func TestTerminalMarginals(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 35)
	term, out := terminalOver("h\na\n")
	if d := term.SeparateCluster(p, previewFor(p)); d.Skip {
		t.Fatal("skip")
	}
	if !strings.Contains(out.String(), "x marginal") || !strings.Contains(out.String(), "y marginal") {
		t.Error("marginals not printed")
	}
}

func TestTerminalPolygonFlow(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 36)
	term, out := terminalOver("l 0,-100,0,100\nl bad\nl 1,2,3\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	if len(d.Lines) != 1 {
		t.Fatalf("lines = %d, want 1 (malformed ones rejected)", len(d.Lines))
	}
	if !strings.Contains(out.String(), "polygonal region holds") {
		t.Error("polygonal preview not printed")
	}
	if !strings.Contains(out.String(), "bad coordinate") && !strings.Contains(out.String(), "expected x1,y1,x2,y2") {
		t.Error("malformed line not reported")
	}
}

func TestTerminalClearLines(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 37)
	term, _ := terminalOver("l 0,-100,0,100\nc\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip || len(d.Lines) != 0 {
		t.Errorf("after clear, decision = %+v", d)
	}
	if d.Tau <= 0 {
		t.Error("cleared lines should fall back to the density separator")
	}
}

func TestParseLine(t *testing.T) {
	cases := []struct {
		spec   string
		want   string // substring of the error, "" for success
		x1, y2 float64
	}{
		{"0,-100,0,100", "", 0, 100},
		{" 1.5 , -2 , 3 , 4.25 ", "", 1.5, 4.25},
		{"1e2,-1e-2,0,3", "", 100, 3},
		{"", "expected x1,y1,x2,y2", 0, 0},
		{"1,2,3", "expected x1,y1,x2,y2", 0, 0},
		{"1,2,3,4,5", "expected x1,y1,x2,y2", 0, 0},
		{"1,2,,4", "bad coordinate", 0, 0},
		{"1,2,x,4", "bad coordinate", 0, 0},
		{"0.5.5,2,3,4", "bad coordinate", 0, 0},
		{"NaN,NaN,NaN,nah", "bad coordinate", 0, 0},
	}
	for _, c := range cases {
		l, err := parseLine(c.spec)
		if c.want == "" {
			if err != nil {
				t.Errorf("parseLine(%q): unexpected error %v", c.spec, err)
				continue
			}
			if l.X1 != c.x1 || l.Y2 != c.y2 {
				t.Errorf("parseLine(%q) = %+v", c.spec, l)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseLine(%q): err = %v, want %q", c.spec, err, c.want)
		}
	}
}

// TestTerminalFractionBounds checks the separator fraction must lie
// strictly inside (0,1): the boundary values, negatives, and malformed
// floats all reprompt instead of moving the separator.
func TestTerminalFractionBounds(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 39)
	term, out := terminalOver("0\n1\n-0.3\n0.5.5\n1e\n0.25\na\n")
	d := term.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("skip")
	}
	if want := 0.25 * p.QueryDensity; d.Tau != want {
		t.Errorf("tau = %v, want %v (only the valid 0.25 should have applied)", d.Tau, want)
	}
	if n := strings.Count(out.String(), "enter a fraction"); n != 5 {
		t.Errorf("reprompts = %d, want 5 (one per rejected input)", n)
	}
}

// TestTerminalEOFMidAdjustment loses the input stream after a valid
// adjustment but before an accept: the view must resolve as a skip, not
// an accept of the pending separator.
func TestTerminalEOFMidAdjustment(t *testing.T) {
	p, _ := makeProfile(t, 200, 40, true, 40)
	term, _ := terminalOver("0.8\n")
	if d := term.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Errorf("EOF mid-adjustment returned %+v, want skip", d)
	}
	// A second view on the same exhausted terminal also skips.
	if d := term.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("subsequent view on exhausted input did not skip")
	}
}

func TestTerminalDrivesFullSession(t *testing.T) {
	// Feed a full session's worth of commands through the terminal user.
	p, ds := makeProfile(t, 100, 20, true, 38)
	_ = p
	script := strings.Repeat("a\n", 20)
	term, _ := terminalOver(script)
	sess, err := core.NewSession(ds, []float64{5, 5}, term, core.Config{
		Support: 10, GridSize: 16, MaxMajorIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewsShown == 0 {
		t.Error("terminal session showed no views")
	}
}
