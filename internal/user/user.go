// Package user provides implementations of the human side of the
// interactive nearest-neighbor loop. The paper's experiments assume an
// attentive person looking at density profiles and placing a density
// separator; in this offline reproduction that person is simulated:
//
//   - Oracle models a user who can visually tell the query cluster apart
//     because it really is visually distinct (the paper's synthetic
//     protocol places the query inside a known projected cluster, so the
//     pattern the human sees coincides with ground-truth membership).
//     It scans candidate separator heights and keeps the one whose
//     density-connected region best matches the ground truth, skipping
//     views where no height works — exactly what a person does when a
//     view looks like Figure 1(b) or 1(c).
//
//   - Heuristic models unaided visual intuition: it only looks at the
//     density profile. It skips projections where the query sits in a
//     sparse region or where the view shows no contrast, and otherwise
//     lowers the separator from the query's own density until the
//     region's growth stabilizes.
//
//   - Noisy wraps another user with random sloppiness, for robustness
//     ablations.
//
//   - QualityWeighted wraps another user, weighting each answer by the
//     view's discrimination (the optional wᵢ of §2.3).
//
//   - Scripted replays a fixed decision sequence, for deterministic tests.
//
//   - Terminal is the real human interface: ASCII density profiles, the
//     Figure 6 separator-adjustment loop, marginal histograms, and
//     polygonal line input, all over any io.Reader/io.Writer pair.
package user

import (
	"math/rand"

	"innsearch/internal/core"
	"innsearch/internal/grid"
	"innsearch/internal/stats"
)

// Oracle is a simulated attentive user with ground-truth knowledge of
// which original rows are truly related to the query.
type Oracle struct {
	// Relevant is the set of original row IDs forming the true query
	// cluster.
	Relevant map[int]bool
	// MinF1 is the smallest acceptable agreement between a candidate
	// separation and the ground truth; below it the view is skipped, the
	// way a person ignores views like Figures 1(b)/1(c) (default 0.55).
	MinF1 float64
	// Beta weights recall against precision when scoring candidate
	// separations (default 1.5): an attentive user would rather include
	// a few fringe points than cut off part of the pattern, and the
	// cross-projection coherence statistic cleans up the extras.
	Beta float64
	// MaxFraction caps the selected set at this fraction of the
	// *original* data set (default 0.5): no attentive user calls most of
	// the data "the query cluster", however well it scores. The cap
	// anchors at the original size because session pruning concentrates
	// the remaining data around the query, where the true cluster may
	// legitimately be the majority.
	MaxFraction float64
	// TauFractions are the candidate separator heights as fractions of
	// the density at the query point (the separator must sit below the
	// query's own density for its region to be non-empty, so the query
	// density — not the global maximum, which may belong to a different,
	// denser cluster — is the right reference). A default ladder is used
	// when nil.
	TauFractions []float64
}

// NewOracle builds an oracle user from a list of relevant original IDs.
func NewOracle(relevantIDs []int) *Oracle {
	rel := make(map[int]bool, len(relevantIDs))
	for _, id := range relevantIDs {
		rel[id] = true
	}
	return &Oracle{Relevant: rel}
}

var defaultTauLadder = []float64{0.97, 0.92, 0.85, 0.78, 0.7, 0.62, 0.55, 0.47, 0.4, 0.33,
	0.27, 0.21, 0.16, 0.12, 0.09, 0.06, 0.04, 0.02}

// SeparateCluster implements core.User.
func (o *Oracle) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	minF1 := o.MinF1
	if minF1 == 0 {
		minF1 = 0.55
	}
	maxFrac := o.MaxFraction
	if maxFrac == 0 {
		maxFrac = 0.5
	}
	beta := o.Beta
	if beta == 0 {
		beta = 1.5
	}
	ladder := o.TauFractions
	if ladder == nil {
		ladder = defaultTauLadder
	}
	// Ground truth restricted to the rows present in this profile.
	var relevantHere []int
	for _, id := range p.IDs {
		if o.Relevant[id] {
			relevantHere = append(relevantHere, id)
		}
	}
	if len(relevantHere) == 0 {
		return core.Decision{Skip: true}
	}
	ref := p.QueryDensity
	if ref <= 0 {
		return core.Decision{Skip: true} // query in a dead zone
	}
	bestTau, bestF1 := 0.0, -1.0
	xs, ys := p.Points.Col(0), p.Points.Col(1)
	for _, frac := range ladder {
		tau := frac * ref
		reg := preview(tau)
		if reg == nil || reg.Empty() {
			continue
		}
		positions := reg.SelectPoints(xs, ys)
		if float64(len(positions)) > maxFrac*float64(p.OriginalN) {
			continue
		}
		if len(positions) >= p.Points.Rows*95/100 && len(positions) > 1 {
			// Selecting essentially the whole view separates nothing.
			continue
		}
		picked := make([]int, len(positions))
		for i, pos := range positions {
			picked[i] = p.IDs[pos]
		}
		score := stats.EvalRetrieval(picked, relevantHere).FBeta(beta)
		if score > bestF1 {
			bestF1, bestTau = score, tau
		}
	}
	if bestF1 < minF1 {
		return core.Decision{Skip: true}
	}
	return core.Decision{Tau: bestTau, Confidence: bestF1}
}

// Heuristic is a simulated user without ground truth: it reads only the
// density profile, mimicking unaided visual intuition.
type Heuristic struct {
	// MinPeakRatio is the minimum query-density/max-density ratio for a
	// view to be considered query-centered; below it the query sits in a
	// sparse region à la Figure 1(b) and the view is skipped
	// (default 0.15).
	MinPeakRatio float64
	// MinDiscrimination is the minimum projection discrimination score;
	// below it the view is noise à la Figure 1(c) and skipped
	// (default 0.25).
	MinDiscrimination float64
	// MaxFraction bounds the selected set: a "cluster" containing more
	// than this fraction of the original data distinguishes nothing and
	// the separator is raised (default 0.35).
	MaxFraction float64
	// MinPoints is the smallest selection worth reporting (default 2).
	MinPoints int
	// MaxGrowth is the largest step-to-step growth factor of the
	// region's point count for two adjacent separator heights to count
	// as "stable" (default 1.35), and MinStableSteps is how many
	// consecutive stable transitions a genuine cluster must show
	// (default 2). A separated cluster sits in a density valley: over a
	// wide range of τ the region barely changes, which is how a person
	// "interactively converges at the most intuitively appropriate
	// value" (§2.2). A smooth hump — the signature of projected
	// high-dimensional noise, Figure 12 — grows continuously with every
	// lowering of the separator and never stabilizes below MaxFraction.
	MaxGrowth      float64
	MinStableSteps int
}

func (h *Heuristic) params() (peakRatio, disc, maxFrac, maxGrowth float64, minPts, minStable int) {
	peakRatio = h.MinPeakRatio
	if peakRatio == 0 {
		peakRatio = 0.15
	}
	disc = h.MinDiscrimination
	if disc == 0 {
		disc = 0.25
	}
	maxFrac = h.MaxFraction
	if maxFrac == 0 {
		maxFrac = 0.35
	}
	maxGrowth = h.MaxGrowth
	if maxGrowth == 0 {
		maxGrowth = 1.35
	}
	minPts = h.MinPoints
	if minPts == 0 {
		minPts = 2
	}
	minStable = h.MinStableSteps
	if minStable == 0 {
		minStable = 2
	}
	return peakRatio, disc, maxFrac, maxGrowth, minPts, minStable
}

// SeparateCluster implements core.User. The separator starts just below
// the query's own density and is lowered step by step — the interactive
// convergence of Figure 6. The view is answered only when the region's
// point count stays nearly constant across several adjacent heights (the
// region sits in a density valley, i.e. it is a separated cluster); the
// answer is the lowest height of the longest such stable stretch.
func (h *Heuristic) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	minPeakRatio, minDisc, maxFrac, maxGrowth, minPts, minStable := h.params()
	if p.PeakRatio() < minPeakRatio {
		return core.Decision{Skip: true} // query in a sparse region
	}
	if p.Discrimination < minDisc {
		return core.Decision{Skip: true} // no contrast anywhere
	}
	refN := p.OriginalN
	if refN < p.Points.Rows {
		refN = p.Points.Rows
	}
	xs, ys := p.Points.Col(0), p.Points.Col(1)
	mults := []float64{0.95, 0.85, 0.75, 0.65, 0.55, 0.45, 0.35, 0.25, 0.18, 0.12}
	taus := make([]float64, len(mults))
	counts := make([]int, len(mults))
	for i, mult := range mults {
		taus[i] = mult * p.QueryDensity
		if reg := preview(taus[i]); reg != nil && !reg.Empty() {
			counts[i] = len(reg.SelectPoints(xs, ys))
		}
	}
	// Longest run of stable transitions with admissible counts.
	bestStart, bestEnd := -1, -1
	runStart := 0
	admissible := func(i int) bool {
		return counts[i] >= minPts && float64(counts[i]) <= maxFrac*float64(refN)
	}
	for i := 0; i < len(mults); i++ {
		stable := i > runStart && admissible(i) && admissible(i-1) &&
			float64(counts[i]) <= maxGrowth*float64(counts[i-1])
		if !stable {
			runStart = i
			continue
		}
		if i-runStart >= bestEnd-bestStart {
			bestStart, bestEnd = runStart, i
		}
	}
	if bestStart < 0 || bestEnd-bestStart < minStable {
		return core.Decision{Skip: true}
	}
	// Confidence grows with the length of the stable stretch: the longer
	// the separator can move without changing the answer, the more
	// clearly the view separates the query cluster.
	confidence := float64(bestEnd-bestStart) / float64(len(mults)-1)
	return core.Decision{Tau: taus[bestEnd], Confidence: confidence}
}

// Noisy wraps another user and injects human sloppiness: random view
// skips and multiplicative jitter on the separator height.
type Noisy struct {
	Base core.User
	// SkipProb is the chance of ignoring a view the base user would have
	// answered.
	SkipProb float64
	// TauJitter is the relative magnitude of the multiplicative noise
	// applied to the separator height (e.g. 0.3 → τ scaled by a factor
	// in [0.7, 1.3]).
	TauJitter float64
	// Rng drives the noise; required.
	Rng *rand.Rand
}

// SeparateCluster implements core.User.
func (u *Noisy) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	if u.Rng.Float64() < u.SkipProb {
		return core.Decision{Skip: true}
	}
	d := u.Base.SeparateCluster(p, preview)
	if d.Skip {
		return d
	}
	jitter := 1 + u.TauJitter*(2*u.Rng.Float64()-1)
	if jitter < 0.05 {
		jitter = 0.05
	}
	d.Tau *= jitter
	return d
}

// QualityWeighted wraps another user and sets each answered decision's
// weight to the view's discrimination score, realizing the paper's
// optional per-projection importance weights wᵢ (§2.3: "it is also
// possible to weight different query clusters by importance"). Sharper
// views then count for more in the meaningfulness statistic.
type QualityWeighted struct {
	Base core.User
	// MinWeight floors the weight so an answered view never counts for
	// nothing (default 0.1).
	MinWeight float64
}

// SeparateCluster implements core.User.
func (u *QualityWeighted) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	d := u.Base.SeparateCluster(p, preview)
	if d.Skip {
		return d
	}
	w := p.Discrimination
	floor := u.MinWeight
	if floor == 0 {
		floor = 0.1
	}
	if w < floor {
		w = floor
	}
	d.Weight = w
	return d
}

// Scripted replays a fixed sequence of decisions, then skips forever.
type Scripted struct {
	Decisions []core.Decision
	next      int
}

// SeparateCluster implements core.User.
func (u *Scripted) SeparateCluster(*core.VisualProfile, func(tau float64) *grid.Region) core.Decision {
	if u.next >= len(u.Decisions) {
		return core.Decision{Skip: true}
	}
	d := u.Decisions[u.next]
	u.next++
	return d
}
