package user

import (
	"math/rand"
	"testing"

	"innsearch/internal/core"
	"innsearch/internal/dataset"
	"innsearch/internal/grid"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
	"innsearch/internal/stats"
	"innsearch/internal/synth"
)

// makeProfile builds a VisualProfile over 2-D data with a planted cluster
// (first clusterN points around (5,5), rest uniform in [0,10]²).
func makeProfile(t *testing.T, n, clusterN int, queryOnCluster bool, seed int64) (*core.VisualProfile, *dataset.Dataset) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		if i < clusterN {
			rows[i] = []float64{5 + r.NormFloat64()*0.3, 5 + r.NormFloat64()*0.3}
		} else {
			rows[i] = []float64{r.Float64() * 10, r.Float64() * 10}
		}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := linalg.Vector{5, 5}
	if !queryOnCluster {
		q = linalg.Vector{1, 9}
	}
	proj := linalg.FullSpace(2)
	p, err := core.BuildProfile(ds, q, proj, clusterN, kde.Options{GridSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return p, ds
}

func previewFor(p *core.VisualProfile) func(float64) *grid.Region {
	return func(tau float64) *grid.Region {
		reg, err := p.Region(tau)
		if err != nil {
			return nil
		}
		return reg
	}
}

func TestOraclePicksCluster(t *testing.T) {
	p, _ := makeProfile(t, 500, 80, true, 1)
	relevant := make([]int, 80)
	for i := range relevant {
		relevant[i] = i
	}
	o := NewOracle(relevant)
	d := o.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("oracle skipped a clean cluster view")
	}
	positions, err := p.SelectAt(d.Tau)
	if err != nil {
		t.Fatal(err)
	}
	picked := make([]int, len(positions))
	for i, pos := range positions {
		picked[i] = p.IDs[pos]
	}
	r := stats.EvalRetrieval(picked, relevant)
	if r.F1() < 0.7 {
		t.Errorf("oracle separation F1 = %v (precision %v recall %v)", r.F1(), r.Precision(), r.Recall())
	}
}

func TestOracleSkipsWhenNoRelevantPresent(t *testing.T) {
	p, _ := makeProfile(t, 300, 50, true, 2)
	o := NewOracle([]int{9999}) // relevant points not in the data
	if d := o.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("oracle answered a view with no relevant points")
	}
}

func TestOracleSkipsHopelessView(t *testing.T) {
	// Query far from the cluster; the relevant points cannot be separated
	// around the query, so the best F1 stays low.
	p, _ := makeProfile(t, 400, 60, false, 3)
	relevant := make([]int, 60)
	for i := range relevant {
		relevant[i] = i
	}
	o := NewOracle(relevant)
	o.MinF1 = 0.5
	if d := o.SeparateCluster(p, previewFor(p)); !d.Skip {
		tau := d.Tau
		positions, _ := p.SelectAt(tau)
		picked := make([]int, len(positions))
		for i, pos := range positions {
			picked[i] = p.IDs[pos]
		}
		f1 := stats.EvalRetrieval(picked, relevant).F1()
		if f1 < 0.5 {
			t.Errorf("oracle answered with F1 %v below its own floor", f1)
		}
	}
}

func TestHeuristicPicksClusterWhenQueryOnPeak(t *testing.T) {
	p, _ := makeProfile(t, 500, 80, true, 4)
	h := &Heuristic{}
	d := h.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatalf("heuristic skipped a good view (peak ratio %v, discrimination %v)",
			p.PeakRatio(), p.Discrimination)
	}
	positions, err := p.SelectAt(d.Tau)
	if err != nil {
		t.Fatal(err)
	}
	// Mostly cluster members.
	hits := 0
	for _, pos := range positions {
		if p.IDs[pos] < 80 {
			hits++
		}
	}
	if len(positions) == 0 || hits*2 < len(positions) {
		t.Errorf("heuristic picked %d points, %d from cluster", len(positions), hits)
	}
}

func TestHeuristicSkipsSparseQuery(t *testing.T) {
	p, _ := makeProfile(t, 500, 150, false, 5)
	h := &Heuristic{}
	if p.PeakRatio() >= 0.15 {
		t.Skip("query unexpectedly dense; geometry-dependent")
	}
	if d := h.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("heuristic answered a sparse-query view (Figure 1(b) case)")
	}
}

func TestHeuristicSkipsNoisyView(t *testing.T) {
	// Pure uniform data: no discrimination anywhere (Figure 1(c)).
	r := rand.New(rand.NewSource(6))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{r.Float64() * 10, r.Float64() * 10}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildProfile(ds, linalg.Vector{5, 5}, linalg.FullSpace(2), 40, kde.Options{GridSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	h := &Heuristic{}
	if d := h.SeparateCluster(p, previewFor(p)); !d.Skip {
		if p.Discrimination >= 0.25 {
			t.Skip("random view happened to show contrast")
		}
		t.Error("heuristic answered a noisy view")
	}
}

func TestNoisyUserSkipsAndJitters(t *testing.T) {
	p, _ := makeProfile(t, 300, 60, true, 7)
	base := core.UserFunc(func(pr *core.VisualProfile, _ func(float64) *grid.Region) core.Decision {
		return core.Decision{Tau: 1.0}
	})
	always := &Noisy{Base: base, SkipProb: 1, Rng: rand.New(rand.NewSource(1))}
	if d := always.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("SkipProb=1 did not skip")
	}
	never := &Noisy{Base: base, SkipProb: 0, TauJitter: 0.5, Rng: rand.New(rand.NewSource(2))}
	d := never.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("SkipProb=0 skipped")
	}
	if d.Tau == 1.0 {
		t.Error("jitter did not perturb tau")
	}
	if d.Tau < 0.05 {
		t.Errorf("jittered tau %v below floor", d.Tau)
	}
}

func TestScriptedUser(t *testing.T) {
	u := &Scripted{Decisions: []core.Decision{{Tau: 1}, {Skip: true}}}
	p, _ := makeProfile(t, 100, 20, true, 8)
	if d := u.SeparateCluster(p, previewFor(p)); d.Skip || d.Tau != 1 {
		t.Errorf("first decision = %+v", d)
	}
	if d := u.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("second decision should skip")
	}
	if d := u.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("exhausted script should skip")
	}
}

// TestOracleSessionOnCase1 is the end-to-end integration test: a full
// interactive session on the paper's Case 1 workload with an oracle user
// must recover the query's projected cluster with high precision and
// recall (Table 1's regime).
func TestOracleSessionOnCase1(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pd, err := synth.Case1(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	clusterID := 0
	members := pd.Members(clusterID)
	queryPos := members[0]
	query := pd.Data.PointCopy(queryPos)

	relevant := make([]int, len(members))
	for i, m := range members {
		relevant[i] = pd.Data.ID(m)
	}
	oracle := NewOracle(relevant)

	sess, err := core.NewSession(pd.Data, query, oracle, core.Config{
		Support:            int(0.005*2000) + 20,
		GridSize:           32,
		MaxMajorIterations: 3,
		Mode:               core.ModeAxis, // Case 1's clusters live in original attributes
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diagnosis.Meaningful {
		t.Fatalf("clustered data diagnosed not meaningful: %+v", res.Diagnosis)
	}
	nat := res.NaturalNeighbors()
	if len(nat) == 0 {
		t.Fatal("no natural neighbors")
	}
	got := make([]int, len(nat))
	for i, nb := range nat {
		got[i] = nb.ID
	}
	r := stats.EvalRetrieval(got, relevant)
	t.Logf("natural size %d (true cluster %d): precision %.2f recall %.2f",
		len(nat), len(relevant), r.Precision(), r.Recall())
	if r.Precision() < 0.6 || r.Recall() < 0.6 {
		t.Errorf("precision %.2f / recall %.2f too low", r.Precision(), r.Recall())
	}
}

// TestOracleSessionOnUniform verifies the diagnosis path of §4.2: on
// uniform data even an oracle cannot behave coherently, and the session
// must report the search as not meaningful.
func TestOracleSessionOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ds, err := synth.Uniform(1500, 20, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	query := ds.PointCopy(0)
	// The "oracle" believes some arbitrary points are relevant; on uniform
	// data no projection coherently isolates them.
	h := &Heuristic{}
	sess, err := core.NewSession(ds, query, h, core.Config{
		Support:            30,
		GridSize:           32,
		MaxMajorIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnosis.Meaningful {
		t.Errorf("uniform data diagnosed meaningful: %+v (max %v drop %v)",
			res.Diagnosis, res.Diagnosis.MaxProb, res.Diagnosis.Drop)
	}
}

func TestQualityWeightedSetsWeights(t *testing.T) {
	p, _ := makeProfile(t, 400, 70, true, 11)
	base := core.UserFunc(func(pr *core.VisualProfile, _ func(float64) *grid.Region) core.Decision {
		return core.Decision{Tau: 0.5 * pr.QueryDensity}
	})
	u := &QualityWeighted{Base: base}
	d := u.SeparateCluster(p, previewFor(p))
	if d.Skip {
		t.Fatal("wrapped decision skipped")
	}
	if d.Weight <= 0 || d.Weight > 1 {
		t.Errorf("weight = %v", d.Weight)
	}
	// Skips pass through unweighted.
	skipper := &QualityWeighted{Base: core.UserFunc(func(*core.VisualProfile, func(float64) *grid.Region) core.Decision {
		return core.Decision{Skip: true}
	})}
	if d := skipper.SeparateCluster(p, previewFor(p)); !d.Skip {
		t.Error("skip not passed through")
	}
	// The floor applies on hopeless views.
	floored := &QualityWeighted{Base: base, MinWeight: 0.4}
	d = floored.SeparateCluster(p, previewFor(p))
	if d.Weight < 0.4 {
		t.Errorf("floored weight = %v", d.Weight)
	}
}
