package user

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/grid"
)

// Remote adapter errors. ErrViewExpired and ErrSessionClosed are the
// contract of SubmitDecision: a decision that misses its view — because
// the view timed out, was already answered, or the whole session ended —
// is rejected with one of these, never delivered to a dead session.
var (
	// ErrViewExpired rejects a decision whose view is no longer awaiting
	// one (stale sequence number, already answered, or timed out).
	ErrViewExpired = errors.New("user: view is no longer awaiting a decision")
	// ErrSessionClosed rejects interaction with a session that has
	// finished, failed, or been evicted.
	ErrSessionClosed = errors.New("user: remote session closed")
	// ErrViewTimeout is the cancellation cause when a view's decision
	// deadline elapses; the session context is canceled with it so the
	// session goroutine unwinds instead of idling forever.
	ErrViewTimeout = errors.New("user: view decision deadline exceeded")
)

// RemoteView is a snapshot of the view currently awaiting a decision.
type RemoteView struct {
	// Seq numbers views 1, 2, … across the whole session; a decision must
	// quote the sequence number of the view it answers.
	Seq     int
	Profile *core.VisualProfile
	// Deadline is when the view expires (zero when no per-view deadline
	// is configured).
	Deadline time.Time
}

// Remote inverts the User callback for serving: the session goroutine
// calling SeparateCluster blocks on a channel until a decision arrives
// from the network (SubmitDecision), the per-view deadline elapses, or
// the session context is canceled. A server polls CurrentView/Changed to
// surface views to remote clients and forwards their decisions back in.
//
// Exactly-once delivery: each view accepts at most one decision. The
// timeout, cancellation, and submission paths all claim the view under
// one mutex, so a decision raced against the deadline is either delivered
// to the still-live view or rejected with ErrViewExpired — never both,
// and never applied to a later view.
type Remote struct {
	viewTimeout time.Duration
	ctx         context.Context
	abort       context.CancelCauseFunc

	// now is the adapter's clock (time.Now outside tests).
	now func() time.Time

	mu      sync.Mutex
	seq     int
	profile *core.VisualProfile
	preview func(float64) *grid.Region
	decCh   chan core.Decision // non-nil iff a view awaits a decision
	shownAt time.Time
	// firstServed is when CurrentView first handed this view to a client —
	// the moment the human could actually start thinking. SubmitDecision
	// measures the reported wait from here (falling back to shownAt for
	// decisions on never-polled views), so long-poll turnaround gaps do not
	// inflate the think time.
	firstServed time.Time
	deadline    time.Time
	bell        chan struct{} // closed and replaced on every state change
	closed      bool
}

// NewRemote builds a remote user for one session. ctx is the session's
// lifetime: when it is canceled every blocked SeparateCluster returns and
// further interaction fails with ErrSessionClosed (after Close). abort
// cancels that same context with a cause; the adapter calls it with
// ErrViewTimeout when a view's deadline elapses, so an abandoned session
// unwinds instead of blocking a slot forever. viewTimeout ≤ 0 disables
// the per-view deadline.
func NewRemote(ctx context.Context, abort context.CancelCauseFunc, viewTimeout time.Duration) *Remote {
	if abort == nil {
		abort = func(error) {}
	}
	return &Remote{
		viewTimeout: viewTimeout,
		ctx:         ctx,
		abort:       abort,
		now:         time.Now,
		bell:        make(chan struct{}),
	}
}

// setClock overrides the adapter's clock; tests use it to make the
// reported decision waits deterministic.
func (r *Remote) setClock(clock func() time.Time) { r.now = clock }

// SeparateCluster implements core.User: it publishes the profile as the
// current view and blocks until a decision is submitted, the view times
// out, or the session context is canceled. Timeout aborts the session
// (via the cancel cause ErrViewTimeout); cancellation returns a skip and
// lets the session loop observe ctx.Err() at its next checkpoint.
func (r *Remote) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return core.Decision{Skip: true}
	}
	r.seq++
	seq := r.seq
	r.profile = p
	r.preview = preview
	dec := make(chan core.Decision, 1)
	r.decCh = dec
	r.shownAt = r.now()
	r.firstServed = time.Time{}
	r.deadline = time.Time{}
	var timeout <-chan time.Time
	if r.viewTimeout > 0 {
		r.deadline = r.shownAt.Add(r.viewTimeout)
		t := time.NewTimer(r.viewTimeout)
		defer t.Stop()
		timeout = t.C
	}
	r.ring()
	r.mu.Unlock()

	select {
	case d := <-dec:
		return d
	case <-timeout:
		if d, ok := r.claimExpired(seq, dec); ok {
			return d // the decision won the race against the deadline
		}
		r.abort(fmt.Errorf("%w (view %d)", ErrViewTimeout, seq))
		return core.Decision{Skip: true}
	case <-r.ctx.Done():
		if d, ok := r.claimExpired(seq, dec); ok {
			return d
		}
		return core.Decision{Skip: true}
	}
}

// claimExpired retires view seq after a timeout or cancellation. If a
// decision slipped into the buffered channel before the view could be
// claimed, that decision is honored instead (it was accepted by
// SubmitDecision while the view was still live).
func (r *Remote) claimExpired(seq int, dec chan core.Decision) (core.Decision, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case d := <-dec:
		return d, true
	default:
	}
	if r.seq == seq && r.decCh != nil {
		r.decCh = nil
		r.profile = nil
		r.preview = nil
		r.ring()
	}
	return core.Decision{}, false
}

// SubmitDecision delivers a decision to the view with sequence number
// seq. It returns how long the view waited, or ErrViewExpired /
// ErrSessionClosed when the decision can no longer be delivered — the
// caller must surface that to the client rather than retry.
func (r *Remote) SubmitDecision(seq int, d core.Decision) (time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrSessionClosed
	}
	switch {
	case seq != r.seq:
		return 0, fmt.Errorf("%w: decision for view %d, current view is %d", ErrViewExpired, seq, r.seq)
	case r.decCh == nil:
		return 0, fmt.Errorf("%w: view %d was already answered or timed out", ErrViewExpired, seq)
	}
	r.decCh <- d // buffered; exactly one send per view
	r.decCh = nil
	r.profile = nil
	r.preview = nil
	r.ring()
	base := r.shownAt
	if !r.firstServed.IsZero() {
		base = r.firstServed
	}
	return r.now().Sub(base), nil
}

// CurrentView returns the view awaiting a decision, if any, stamping the
// first time each view is actually served (see firstServed).
func (r *Remote) CurrentView() (RemoteView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.decCh == nil || r.profile == nil {
		return RemoteView{}, false
	}
	if r.firstServed.IsZero() {
		r.firstServed = r.now()
	}
	return RemoteView{Seq: r.seq, Profile: r.profile, Deadline: r.deadline}, true
}

// Changed returns a channel closed at the next state change (view shown,
// answered, expired, or session closed). Long-poll loops use it: read
// CurrentView, and when nothing is pending wait on Changed before
// re-reading.
func (r *Remote) Changed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bell
}

// Preview computes the density-separated region a candidate τ would
// induce on the view with sequence number seq — the remote form of the
// Figure 6 separator-adjustment loop. The underlying region search is
// pure, so previews may run concurrently with each other and with the
// blocked session goroutine.
func (r *Remote) Preview(seq int, tau float64) (*grid.Region, *core.VisualProfile, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, ErrSessionClosed
	}
	if r.decCh == nil || seq != r.seq {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: preview for view %d, current view is %d", ErrViewExpired, seq, r.seq)
	}
	preview, profile := r.preview, r.profile
	r.mu.Unlock()
	reg := preview(tau)
	if reg == nil {
		return nil, nil, fmt.Errorf("user: no region at τ=%v", tau)
	}
	return reg, profile, nil
}

// Close marks the session over: pending and future SubmitDecision calls
// fail with ErrSessionClosed and long-pollers are woken. The owner calls
// it once the session goroutine has returned.
func (r *Remote) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	r.decCh = nil
	r.profile = nil
	r.preview = nil
	r.ring()
}

// ring wakes everyone waiting on Changed. Callers hold r.mu.
func (r *Remote) ring() {
	close(r.bell)
	r.bell = make(chan struct{})
}
