package user

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/grid"
)

// startView runs SeparateCluster on a background goroutine (standing in
// for the session engine) and waits until the view is on display.
func startView(t *testing.T, r *Remote, p *core.VisualProfile, preview func(float64) *grid.Region) <-chan core.Decision {
	t.Helper()
	out := make(chan core.Decision, 1)
	ready := r.Changed()
	go func() { out <- r.SeparateCluster(p, preview) }()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("view never published")
	}
	if _, ok := r.CurrentView(); !ok {
		t.Fatal("Changed fired but no view pending")
	}
	return out
}

func nilPreview(float64) *grid.Region { return &grid.Region{} }

func TestRemoteDeliversDecision(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	r := NewRemote(ctx, cancel, 0)
	p, _ := makeProfile(t, 60, 20, true, 50)

	done := startView(t, r, p, nilPreview)
	v, ok := r.CurrentView()
	if !ok || v.Seq != 1 || v.Profile != p {
		t.Fatalf("CurrentView = %+v, %v", v, ok)
	}
	want := core.Decision{Tau: 0.125, Weight: 2}
	latency, err := r.SubmitDecision(1, want)
	if err != nil {
		t.Fatal(err)
	}
	if latency < 0 {
		t.Errorf("negative latency %v", latency)
	}
	if got := <-done; got.Skip != want.Skip || got.Tau != want.Tau || got.Weight != want.Weight {
		t.Errorf("session received %+v, want %+v", got, want)
	}
	if _, ok := r.CurrentView(); ok {
		t.Error("answered view still pending")
	}
}

func TestRemoteRejectsStaleAndDoubleDecisions(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	r := NewRemote(ctx, cancel, 0)
	p, _ := makeProfile(t, 60, 20, true, 51)

	// No view yet: any decision is expired.
	if _, err := r.SubmitDecision(1, core.Decision{Tau: 1}); !errors.Is(err, ErrViewExpired) {
		t.Fatalf("pre-view decision: err = %v, want ErrViewExpired", err)
	}

	done := startView(t, r, p, nilPreview)
	// Wrong sequence number.
	if _, err := r.SubmitDecision(7, core.Decision{Tau: 1}); !errors.Is(err, ErrViewExpired) {
		t.Fatalf("stale seq: err = %v, want ErrViewExpired", err)
	}
	if _, err := r.SubmitDecision(1, core.Decision{Tau: 1}); err != nil {
		t.Fatal(err)
	}
	<-done
	// Second decision for the already answered view.
	if _, err := r.SubmitDecision(1, core.Decision{Tau: 2}); !errors.Is(err, ErrViewExpired) {
		t.Fatalf("double decision: err = %v, want ErrViewExpired", err)
	}
}

func TestRemoteViewTimeoutAbortsSession(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	r := NewRemote(ctx, cancel, 30*time.Millisecond)
	p, _ := makeProfile(t, 60, 20, true, 52)

	done := startView(t, r, p, nilPreview)
	d := <-done // deadline elapses with no decision
	if !d.Skip {
		t.Errorf("timed-out view returned %+v, want skip", d)
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("view timeout did not cancel the session context")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrViewTimeout) {
		t.Errorf("cancel cause = %v, want ErrViewTimeout", cause)
	}
	// The late decision must be rejected, never delivered.
	if _, err := r.SubmitDecision(1, core.Decision{Tau: 1}); !errors.Is(err, ErrViewExpired) {
		t.Errorf("late decision: err = %v, want ErrViewExpired", err)
	}
}

func TestRemoteContextCancelUnblocks(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	r := NewRemote(ctx, cancel, 0)
	p, _ := makeProfile(t, 60, 20, true, 53)

	done := startView(t, r, p, nilPreview)
	cancel(errors.New("client went away"))
	if d := <-done; !d.Skip {
		t.Errorf("canceled view returned %+v, want skip", d)
	}
}

func TestRemoteCloseRejectsEverything(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	r := NewRemote(ctx, cancel, 0)
	r.Close()
	r.Close() // idempotent
	if _, err := r.SubmitDecision(1, core.Decision{Tau: 1}); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("decision after close: err = %v, want ErrSessionClosed", err)
	}
	if _, _, err := r.Preview(1, 0.5); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("preview after close: err = %v, want ErrSessionClosed", err)
	}
	p, _ := makeProfile(t, 60, 20, true, 54)
	if d := r.SeparateCluster(p, nilPreview); !d.Skip {
		t.Errorf("SeparateCluster after close = %+v, want skip", d)
	}
}

func TestRemotePreview(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	r := NewRemote(ctx, cancel, 0)
	p, _ := makeProfile(t, 200, 60, true, 55)

	done := startView(t, r, p, previewFor(p))
	tau := 0.5 * p.QueryDensity
	reg, prof, err := r.Preview(1, tau)
	if err != nil {
		t.Fatal(err)
	}
	if prof != p {
		t.Error("preview returned a different profile")
	}
	if reg.Empty() {
		t.Error("preview region empty at half query density on a clustered view")
	}
	if _, _, err := r.Preview(2, tau); !errors.Is(err, ErrViewExpired) {
		t.Errorf("stale preview: err = %v, want ErrViewExpired", err)
	}
	if _, err := r.SubmitDecision(1, core.Decision{Tau: tau}); err != nil {
		t.Fatal(err)
	}
	<-done
	if _, _, err := r.Preview(1, tau); !errors.Is(err, ErrViewExpired) {
		t.Errorf("preview after answer: err = %v, want ErrViewExpired", err)
	}
}

// TestRemoteRacedDecisionExactlyOnce races a decision POST against the
// view deadline many times: whatever the interleaving, the decision is
// either delivered to the live view (SubmitDecision nil, session receives
// it, no abort) or rejected with ErrViewExpired (session skipped and
// aborted) — never both, never lost.
func TestRemoteRacedDecisionExactlyOnce(t *testing.T) {
	p, _ := makeProfile(t, 60, 20, true, 56)
	for i := 0; i < 300; i++ {
		ctx, cancel := context.WithCancelCause(context.Background())
		r := NewRemote(ctx, cancel, time.Duration(i%5)*100*time.Microsecond+50*time.Microsecond)

		sessionOut := make(chan core.Decision, 1)
		go func() { sessionOut <- r.SeparateCluster(p, nilPreview) }()

		// Wait for the view, then race the submission against the
		// deadline without any synchronization.
		for {
			if _, ok := r.CurrentView(); ok {
				break
			}
			select {
			case <-r.Changed():
			case <-time.After(time.Second):
				t.Fatal("view never published")
			}
		}
		var wg sync.WaitGroup
		wg.Add(1)
		var submitErr error
		go func() {
			defer wg.Done()
			_, submitErr = r.SubmitDecision(1, core.Decision{Tau: 42})
		}()
		got := <-sessionOut
		wg.Wait()

		delivered := !got.Skip && got.Tau == 42
		switch {
		case submitErr == nil && !delivered:
			t.Fatalf("iter %d: decision accepted but session saw %+v", i, got)
		case submitErr != nil && delivered:
			t.Fatalf("iter %d: decision rejected (%v) but session saw it", i, submitErr)
		case submitErr != nil && !errors.Is(submitErr, ErrViewExpired) && !errors.Is(submitErr, ErrSessionClosed):
			t.Fatalf("iter %d: unexpected rejection error %v", i, submitErr)
		case submitErr == nil:
			// Delivered: the deadline must NOT have aborted the session.
			if cause := context.Cause(ctx); cause != nil && errors.Is(cause, ErrViewTimeout) {
				t.Fatalf("iter %d: decision delivered yet session aborted: %v", i, cause)
			}
		}
		cancel(nil)
	}
}

// TestRemoteLatencyFromFirstServe checks the think-time semantics of the
// reported decision wait: it measures from the moment the view was first
// actually served to a client (CurrentView), not from when the engine
// published it, and falls back to publish time for never-polled views.
// An injected clock makes the expectations exact.
func TestRemoteLatencyFromFirstServe(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	r := NewRemote(ctx, cancel, 0)
	now := time.Unix(1000, 0)
	r.setClock(func() time.Time { return now })
	p, _ := makeProfile(t, 60, 20, true, 50)

	// View 1: published at t0, first served 10s later, answered 2s after
	// that. The reported wait is the 2s of think time, not 12s.
	bell := r.Changed()
	done := make(chan core.Decision, 1)
	go func() { done <- r.SeparateCluster(p, nilPreview) }()
	select {
	case <-bell:
	case <-time.After(5 * time.Second):
		t.Fatal("view never published")
	}
	now = now.Add(10 * time.Second)
	v, ok := r.CurrentView()
	if !ok {
		t.Fatal("no view pending")
	}
	now = now.Add(2 * time.Second)
	lat, err := r.SubmitDecision(v.Seq, core.Decision{Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if lat != 2*time.Second {
		t.Errorf("served-view latency = %v, want 2s", lat)
	}
	<-done

	// View 2: answered without ever being polled — the wait falls back to
	// the publish time.
	bell = r.Changed()
	go func() { done <- r.SeparateCluster(p, nilPreview) }()
	select {
	case <-bell:
	case <-time.After(5 * time.Second):
		t.Fatal("second view never published")
	}
	now = now.Add(3 * time.Second)
	lat, err = r.SubmitDecision(2, core.Decision{Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if lat != 3*time.Second {
		t.Errorf("never-polled latency = %v, want 3s", lat)
	}
	<-done
}
