package user

import (
	"errors"
	"fmt"
	"math/rand"

	"innsearch/internal/core"
	"innsearch/internal/grid"
)

// NoisyHuman simulates a realistic, imperfect human in the loop: it reads
// views the way Heuristic does, but with seeded sloppiness layered on top —
// an occasional ignored view, a perturbed separator height, and the
// occasional bad accept of a view an attentive user would have skipped.
// Unlike Noisy (which only degrades a base user), NoisyHuman also makes
// the positive mistake of answering junk views, which is what stresses the
// engine's cross-projection coherence cleanup under load.
//
// All randomness comes from Rng, so a seeded NoisyHuman produces an
// identical decision sequence for an identical sequence of views — the
// property the load fleet's determinism contract rests on. The number of
// Rng draws per view depends only on the view's content and the base
// user's (deterministic) answer, never on timing.
type NoisyHuman struct {
	// Base answers the views NoisyHuman doesn't mangle (default
	// &Heuristic{}: the label-blind visual-intuition model).
	Base core.User
	// SkipProb is the chance of ignoring a view the base user would have
	// answered (default 0.05).
	SkipProb float64
	// BadAcceptProb is the chance of answering a view the base user
	// skipped, placing the separator at an uninformed height — the
	// "looks good enough to me" error (default 0.05).
	BadAcceptProb float64
	// TauJitter is the relative magnitude of the multiplicative noise on
	// answered separator heights, e.g. 0.15 → τ scaled by a factor in
	// [0.85, 1.15] (default 0.15).
	TauJitter float64
	// Rng drives all the sloppiness; required.
	Rng *rand.Rand
}

func (u *NoisyHuman) params() (skip, badAccept, jitter float64) {
	skip = u.SkipProb
	if skip == 0 {
		skip = 0.05
	}
	badAccept = u.BadAcceptProb
	if badAccept == 0 {
		badAccept = 0.05
	}
	jitter = u.TauJitter
	if jitter == 0 {
		jitter = 0.15
	}
	return skip, badAccept, jitter
}

// SeparateCluster implements core.User.
func (u *NoisyHuman) SeparateCluster(p *core.VisualProfile, preview func(tau float64) *grid.Region) core.Decision {
	skipProb, badAcceptProb, tauJitter := u.params()
	base := u.Base
	if base == nil {
		base = &Heuristic{}
	}
	// The skip draw happens up front so the Rng consumption per view is
	// independent of whether it ends up being used.
	skipDraw := u.Rng.Float64()
	d := base.SeparateCluster(p, preview)
	if d.Skip {
		if u.Rng.Float64() < badAcceptProb && p.QueryDensity > 0 {
			// Bad accept: separate at an uninformed fraction of the query
			// density. Only views whose region is non-empty get the bogus
			// answer — even a sloppy human notices selecting nothing.
			tau := (0.3 + 0.5*u.Rng.Float64()) * p.QueryDensity
			if reg := preview(tau); reg != nil && !reg.Empty() {
				return core.Decision{Tau: tau, Confidence: 0.1}
			}
		}
		return core.Decision{Skip: true}
	}
	if skipDraw < skipProb {
		return core.Decision{Skip: true}
	}
	jitter := 1 + tauJitter*(2*u.Rng.Float64()-1)
	if jitter < 0.05 {
		jitter = 0.05
	}
	d.Tau *= jitter
	return d
}

// PolicyConfig parameterizes NewPolicy. Zero values take the documented
// defaults; fields irrelevant to the chosen policy are ignored.
type PolicyConfig struct {
	// Seed drives every random draw of stochastic policies (noisyhuman).
	// Two policies built with the same seed produce identical decision
	// sequences for identical view sequences.
	Seed int64
	// Relevant is the ground-truth set of original row IDs for the oracle
	// policy; required by "oracle", ignored by the rest.
	Relevant []int
	// Transcript is the recorded session the replay policy re-drives;
	// required by "replay", ignored by the rest.
	Transcript *core.Transcript
	// SkipProb, BadAcceptProb, and TauJitter tune the noisyhuman policy
	// (0 takes the NoisyHuman defaults).
	SkipProb      float64
	BadAcceptProb float64
	TauJitter     float64
}

// PolicyNames lists the separator policies NewPolicy accepts, in the
// order they are documented.
func PolicyNames() []string {
	return []string{"heuristic", "noisyhuman", "oracle", "replay"}
}

// NewPolicy builds a named separator policy — the decomposition of the
// interactive protocol into engine + pluggable decision policy that both
// cmd/innsearch (in-process) and cmd/loadgen (over the wire) select from:
//
//	heuristic   label-blind visual intuition (Heuristic)
//	noisyhuman  seeded Heuristic with skips, τ jitter, and bad accepts
//	oracle      attentive user with planted ground truth (Oracle)
//	replay      re-drives a recorded transcript's decisions (core.ReplayUser)
//
// Every policy is deterministic given its configuration: heuristic and
// oracle by construction, noisyhuman via the seed, replay via the
// transcript.
func NewPolicy(name string, cfg PolicyConfig) (core.User, error) {
	switch name {
	case "heuristic":
		return &Heuristic{}, nil
	case "noisyhuman":
		return &NoisyHuman{
			SkipProb:      cfg.SkipProb,
			BadAcceptProb: cfg.BadAcceptProb,
			TauJitter:     cfg.TauJitter,
			Rng:           rand.New(rand.NewSource(cfg.Seed)),
		}, nil
	case "oracle":
		if len(cfg.Relevant) == 0 {
			return nil, errors.New("user: oracle policy needs ground-truth relevant IDs (labeled dataset)")
		}
		return NewOracle(cfg.Relevant), nil
	case "replay":
		if cfg.Transcript == nil {
			return nil, errors.New("user: replay policy needs a recorded transcript")
		}
		return &core.ReplayUser{Transcript: cfg.Transcript}, nil
	default:
		return nil, fmt.Errorf("user: unknown policy %q (want heuristic, noisyhuman, oracle, or replay)", name)
	}
}
