package user

import (
	"math/rand"
	"testing"

	"innsearch/internal/core"
)

func TestPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		cfg := PolicyConfig{Seed: 7}
		switch name {
		case "oracle":
			cfg.Relevant = []int{1, 2, 3}
		case "replay":
			cfg.Transcript = &core.Transcript{}
		}
		u, err := NewPolicy(name, cfg)
		if err != nil {
			t.Fatalf("NewPolicy(%q) = %v", name, err)
		}
		if u == nil {
			t.Fatalf("NewPolicy(%q) returned nil user", name)
		}
	}
	if _, err := NewPolicy("oracle", PolicyConfig{}); err == nil {
		t.Fatal("oracle without ground truth should fail")
	}
	if _, err := NewPolicy("replay", PolicyConfig{}); err == nil {
		t.Fatal("replay without transcript should fail")
	}
	if _, err := NewPolicy("psychic", PolicyConfig{}); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

// TestNoisyHumanDeterministicPerSeed drives a NoisyHuman through the same
// sequence of views twice with equal seeds and once with a different
// seed: equal seeds must produce identical decision sequences, and the
// jitter must actually perturb the base heuristic's separator heights.
func TestNoisyHumanDeterministicPerSeed(t *testing.T) {
	p, _ := makeProfile(t, 500, 80, true, 3)
	sparse, _ := makeProfile(t, 500, 80, false, 3)
	views := []*core.VisualProfile{p, sparse, p, p, sparse, p, p, p}

	run := func(seed int64) []core.Decision {
		u, err := NewPolicy("noisyhuman", PolicyConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]core.Decision, len(views))
		for i, v := range views {
			out[i] = u.SeparateCluster(v, previewFor(v))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i].Skip != b[i].Skip || a[i].Tau != b[i].Tau {
			t.Fatalf("view %d: same seed diverged: %+v vs %+v", i, a[i], b[i])
		}
	}

	base := &Heuristic{}
	jittered := false
	for i, v := range views {
		bd := base.SeparateCluster(v, previewFor(v))
		if !a[i].Skip && !bd.Skip && a[i].Tau != bd.Tau {
			jittered = true
		}
	}
	if !jittered {
		t.Error("noisyhuman never perturbed an answered separator height")
	}
}

// TestNoisyHumanInjectsMistakes checks that over many seeds the policy
// sometimes skips views the heuristic answers and sometimes answers views
// the heuristic skips — the two failure modes the load fleet needs to
// exercise against the engine's coherence cleanup.
func TestNoisyHumanInjectsMistakes(t *testing.T) {
	clean, _ := makeProfile(t, 500, 80, true, 3)   // heuristic answers this
	sparse, _ := makeProfile(t, 500, 80, false, 3) // heuristic skips this
	base := &Heuristic{}
	if base.SeparateCluster(clean, previewFor(clean)).Skip {
		t.Skip("fixture drifted: heuristic no longer answers the clean view")
	}
	if !base.SeparateCluster(sparse, previewFor(sparse)).Skip {
		t.Skip("fixture drifted: heuristic no longer skips the sparse view")
	}
	var skips, badAccepts int
	for seed := int64(0); seed < 200; seed++ {
		u := &NoisyHuman{SkipProb: 0.2, BadAcceptProb: 0.2, Rng: rand.New(rand.NewSource(seed))}
		if u.SeparateCluster(clean, previewFor(clean)).Skip {
			skips++
		}
		u = &NoisyHuman{SkipProb: 0.2, BadAcceptProb: 0.2, Rng: rand.New(rand.NewSource(seed))}
		if !u.SeparateCluster(sparse, previewFor(sparse)).Skip {
			badAccepts++
		}
	}
	if skips == 0 {
		t.Error("noisyhuman never skipped a view the heuristic answers")
	}
	if badAccepts == 0 {
		t.Error("noisyhuman never bad-accepted a view the heuristic skips")
	}
	if skips > 100 || badAccepts > 100 {
		t.Errorf("mistake rates implausibly high for p=0.2: skips=%d badAccepts=%d / 200", skips, badAccepts)
	}
}
