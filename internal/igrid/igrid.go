// Package igrid implements an IGrid-style proximity function after
// Aggarwal & Yu, "The IGrid Index: Reversing the Dimensionality Curse for
// Similarity Indexing in High Dimensional Space" (KDD 2000) — reference
// [6] of the paper, its representative for the "redesign the distance
// function in a data-driven way" family of automated approaches.
//
// Each dimension is discretized into kd equi-depth bands. Two points are
// proximate in a dimension only when they fall in the same band; their
// similarity accumulates (1 − |xᵢ−yᵢ|/width(band))^p over exactly those
// dimensions. Ignoring the non-shared dimensions is what restores
// contrast in high dimensionality: similarity is driven by the dimensions
// where points genuinely agree instead of being averaged away by the
// ones where everything is far from everything.
package igrid

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"innsearch/internal/dataset"
)

// ErrBadConfig flags invalid construction parameters.
var ErrBadConfig = errors.New("igrid: bad configuration")

// Index holds the equi-depth banding of a dataset.
type Index struct {
	ds    *dataset.Dataset
	kd    int
	p     float64
	dim   int
	edges [][]float64 // per dimension: kd+1 band edges
	// band[i*dim+j] is point i's band in dimension j.
	band []uint16
}

// Build discretizes each dimension of ds into kd equi-depth bands (the
// paper recommends kd proportional to the dimensionality; a common choice
// is kd = ⌈d/2⌉…d) and uses exponent p in the per-dimension similarity.
func Build(ds *dataset.Dataset, kd int, p float64) (*Index, error) {
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if kd < 1 || kd > 1<<15 {
		return nil, fmt.Errorf("%w: kd=%d", ErrBadConfig, kd)
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: p=%v", ErrBadConfig, p)
	}
	if kd > ds.N() {
		kd = ds.N()
	}
	d := ds.Dim()
	idx := &Index{ds: ds, kd: kd, p: p, dim: d}
	idx.edges = make([][]float64, d)
	for j := 0; j < d; j++ {
		col := ds.Column(j)
		sort.Float64s(col)
		e := make([]float64, kd+1)
		for b := 0; b <= kd; b++ {
			pos := float64(b) / float64(kd) * float64(len(col)-1)
			lo := int(pos)
			hi := lo
			if hi < len(col)-1 {
				hi++
			}
			frac := pos - float64(lo)
			e[b] = col[lo]*(1-frac) + col[hi]*frac
		}
		idx.edges[j] = e
	}
	idx.band = make([]uint16, ds.N()*d)
	for i := 0; i < ds.N(); i++ {
		pt := ds.Point(i)
		for j := 0; j < d; j++ {
			idx.band[i*d+j] = uint16(idx.bandOf(j, pt[j]))
		}
	}
	return idx, nil
}

// bandOf locates the equi-depth band of value x in dimension j.
func (idx *Index) bandOf(j int, x float64) int {
	e := idx.edges[j]
	b := sort.SearchFloat64s(e, x)
	if b > 0 && (b >= len(e) || e[b] != x) {
		b--
	}
	if b >= idx.kd {
		b = idx.kd - 1
	}
	return b
}

// Similarity returns the IGrid similarity between the query and point i:
// the sum over shared-band dimensions of (1 − |Δ|/bandwidth)^p, in
// [0, dim]. Degenerate zero-width bands contribute a full 1 when the
// values coincide.
func (idx *Index) Similarity(query []float64, i int) (float64, error) {
	if len(query) != idx.dim {
		return 0, fmt.Errorf("igrid: query dim %d, index dim %d", len(query), idx.dim)
	}
	pt := idx.ds.Point(i)
	var sim float64
	for j := 0; j < idx.dim; j++ {
		qb := idx.bandOf(j, query[j])
		if qb != int(idx.band[i*idx.dim+j]) {
			continue
		}
		width := idx.edges[j][qb+1] - idx.edges[j][qb]
		if width <= 0 {
			sim++
			continue
		}
		frac := 1 - math.Abs(query[j]-pt[j])/width
		if frac < 0 {
			frac = 0
		}
		sim += math.Pow(frac, idx.p)
	}
	return sim, nil
}

// Neighbor is one result of a similarity search.
type Neighbor struct {
	Pos        int
	ID         int
	Similarity float64
}

// Search returns the k points most similar to the query, descending by
// similarity (ties broken by position).
func (idx *Index) Search(query []float64, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadConfig, k)
	}
	n := idx.ds.N()
	if k > n {
		k = n
	}
	all := make([]Neighbor, n)
	for i := 0; i < n; i++ {
		s, err := idx.Similarity(query, i)
		if err != nil {
			return nil, err
		}
		all[i] = Neighbor{Pos: i, ID: idx.ds.ID(i), Similarity: s}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Similarity != all[b].Similarity {
			return all[a].Similarity > all[b].Similarity
		}
		return all[a].Pos < all[b].Pos
	})
	return all[:k], nil
}
