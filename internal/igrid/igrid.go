// Package igrid implements an IGrid-style proximity function after
// Aggarwal & Yu, "The IGrid Index: Reversing the Dimensionality Curse for
// Similarity Indexing in High Dimensional Space" (KDD 2000) — reference
// [6] of the paper, its representative for the "redesign the distance
// function in a data-driven way" family of automated approaches.
//
// Each dimension is discretized into kd equi-depth bands. Two points are
// proximate in a dimension only when they fall in the same band; their
// similarity accumulates (1 − |xᵢ−yᵢ|/width(band))^p over exactly those
// dimensions. Ignoring the non-shared dimensions is what restores
// contrast in high dimensionality: similarity is driven by the dimensions
// where points genuinely agree instead of being averaged away by the
// ones where everything is far from everything.
package igrid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// ErrBadConfig flags invalid construction parameters.
var ErrBadConfig = errors.New("igrid: bad configuration")

// Source is the row-accessor interface the index builds over: any
// indexed collection of points with original row IDs. Both
// *dataset.Dataset and *dataset.View satisfy it, so the similarity scan
// reads rows in place from the shared immutable store.
type Source interface {
	N() int
	Dim() int
	Point(i int) linalg.Vector
	ID(i int) int
}

// ctxCheckEvery is how many rows a scan processes between context polls.
const ctxCheckEvery = 1024

// Index holds the equi-depth banding of a point source.
type Index struct {
	src   Source
	kd    int
	p     float64
	dim   int
	edges [][]float64 // per dimension: kd+1 band edges
	// band[i*dim+j] is point i's band in dimension j.
	band []uint16
}

// Build discretizes each dimension of src into kd equi-depth bands (the
// paper recommends kd proportional to the dimensionality; a common choice
// is kd = ⌈d/2⌉…d) and uses exponent p in the per-dimension similarity.
// It is BuildContext with a background context.
func Build(src Source, kd int, p float64) (*Index, error) {
	return BuildContext(context.Background(), src, kd, p)
}

// BuildContext is Build with cooperative cancellation: both the
// per-dimension sorting pass and the banding pass poll ctx.
func BuildContext(ctx context.Context, src Source, kd int, p float64) (*Index, error) {
	if src == nil || src.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if kd < 1 || kd > 1<<15 {
		return nil, fmt.Errorf("%w: kd=%d", ErrBadConfig, kd)
	}
	if p <= 0 {
		return nil, fmt.Errorf("%w: p=%v", ErrBadConfig, p)
	}
	n := src.N()
	if kd > n {
		kd = n
	}
	d := src.Dim()
	idx := &Index{src: src, kd: kd, p: p, dim: d}
	idx.edges = make([][]float64, d)
	// One scratch column reused across dimensions: equi-depth quantiles
	// need a sorted copy, but never more than one at a time.
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			col[i] = src.Point(i)[j]
		}
		sort.Float64s(col)
		e := make([]float64, kd+1)
		for b := 0; b <= kd; b++ {
			pos := float64(b) / float64(kd) * float64(len(col)-1)
			lo := int(pos)
			hi := lo
			if hi < len(col)-1 {
				hi++
			}
			frac := pos - float64(lo)
			e[b] = col[lo]*(1-frac) + col[hi]*frac
		}
		idx.edges[j] = e
	}
	idx.band = make([]uint16, n*d)
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pt := src.Point(i)
		for j := 0; j < d; j++ {
			idx.band[i*d+j] = uint16(idx.bandOf(j, pt[j]))
		}
	}
	return idx, nil
}

// N returns the number of indexed points.
func (idx *Index) N() int { return idx.src.N() }

// bandOf locates the equi-depth band of value x in dimension j.
func (idx *Index) bandOf(j int, x float64) int {
	e := idx.edges[j]
	b := sort.SearchFloat64s(e, x)
	if b > 0 && (b >= len(e) || e[b] != x) {
		b--
	}
	if b >= idx.kd {
		b = idx.kd - 1
	}
	return b
}

// Similarity returns the IGrid similarity between the query and point i:
// the sum over shared-band dimensions of (1 − |Δ|/bandwidth)^p, in
// [0, dim]. Degenerate zero-width bands contribute a full 1 when the
// values coincide.
func (idx *Index) Similarity(query []float64, i int) (float64, error) {
	if len(query) != idx.dim {
		return 0, fmt.Errorf("igrid: query dim %d, index dim %d", len(query), idx.dim)
	}
	pt := idx.src.Point(i)
	var sim float64
	for j := 0; j < idx.dim; j++ {
		qb := idx.bandOf(j, query[j])
		if qb != int(idx.band[i*idx.dim+j]) {
			continue
		}
		width := idx.edges[j][qb+1] - idx.edges[j][qb]
		if width <= 0 {
			sim++
			continue
		}
		frac := 1 - math.Abs(query[j]-pt[j])/width
		if frac < 0 {
			frac = 0
		}
		sim += math.Pow(frac, idx.p)
	}
	return sim, nil
}

// Neighbor is one result of a similarity search.
type Neighbor struct {
	Pos        int
	ID         int
	Similarity float64
}

// Search returns the k points most similar to the query, descending by
// similarity (ties broken by position). It is SearchContext with a
// background context.
func (idx *Index) Search(query []float64, k int) ([]Neighbor, error) {
	return idx.SearchContext(context.Background(), query, k)
}

// SearchContext is Search with cooperative cancellation: the similarity
// scan polls ctx between row blocks.
func (idx *Index) SearchContext(ctx context.Context, query []float64, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadConfig, k)
	}
	n := idx.src.N()
	if k > n {
		k = n
	}
	all := make([]Neighbor, n)
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s, err := idx.Similarity(query, i)
		if err != nil {
			return nil, err
		}
		all[i] = Neighbor{Pos: i, ID: idx.src.ID(i), Similarity: s}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].Similarity != all[b].Similarity {
			return all[a].Similarity > all[b].Similarity
		}
		return all[a].Pos < all[b].Pos
	})
	return all[:k], nil
}
