package igrid

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/metric"
)

func mustDS(t testing.TB, rows [][]float64) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildValidation(t *testing.T) {
	ds := mustDS(t, [][]float64{{1, 2}, {3, 4}})
	if _, err := Build(nil, 2, 1); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Build(ds, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("kd=0: %v", err)
	}
	if _, err := Build(ds, 2, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("p=0: %v", err)
	}
}

func TestSimilaritySelfIsMaximal(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ds := mustDS(t, rows)
	idx, err := Build(ds, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	self, err := idx.Similarity(ds.PointCopy(7), 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(self-3) > 1e-9 {
		t.Errorf("self similarity = %v, want dim=3", self)
	}
}

func TestSimilarityIgnoresNonSharedBands(t *testing.T) {
	// Two dims; points placed so bands are predictable with kd=2.
	rows := [][]float64{{0, 0}, {1, 0}, {10, 0}, {11, 0}, {0, 10}, {1, 10}, {10, 10}, {11, 10}}
	ds := mustDS(t, rows)
	idx, err := Build(ds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Query at (0.5, 0.2): shares the low band with points 0,1 in both
	// dims; with point 2 it shares only dim 1.
	simSame, err := idx.Similarity([]float64{0.5, 0.2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	simHalf, err := idx.Similarity([]float64{0.5, 0.2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if simSame <= simHalf {
		t.Errorf("same-band similarity %v not above cross-band %v", simSame, simHalf)
	}
}

func TestSearchRecoversSubspaceCluster(t *testing.T) {
	// A cluster tight in dims 0–2 of 12, noise elsewhere: IGrid should
	// rank cluster members above random points, beating plain L2.
	r := rand.New(rand.NewSource(2))
	n, d, clusterN := 1200, 12, 70
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			if i < clusterN && j < 3 {
				row[j] = 50 + r.NormFloat64()*0.5
			} else {
				row[j] = r.Float64() * 100
			}
		}
		rows[i] = row
	}
	ds := mustDS(t, rows)
	idx, err := Build(ds, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	query := ds.PointCopy(0)
	got, err := idx.Search(query, clusterN)
	if err != nil {
		t.Fatal(err)
	}
	igridHits := 0
	for _, nb := range got {
		if nb.ID < clusterN {
			igridHits++
		}
	}
	l2, err := knn.Search(ds, query, clusterN, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	l2Hits := 0
	for _, nb := range l2 {
		if nb.ID < clusterN {
			l2Hits++
		}
	}
	t.Logf("igrid %d/%d, L2 %d/%d", igridHits, clusterN, l2Hits, clusterN)
	if igridHits <= l2Hits {
		t.Errorf("IGrid hits %d not above L2 hits %d", igridHits, l2Hits)
	}
}

func TestSearchValidation(t *testing.T) {
	ds := mustDS(t, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	idx, err := Build(ds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search([]float64{1, 2}, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := idx.Search([]float64{1}, 2); err == nil {
		t.Error("dim mismatch accepted")
	}
	got, err := idx.Search([]float64{1, 2}, 99)
	if err != nil || len(got) != 3 {
		t.Errorf("clamp: %d, %v", len(got), err)
	}
}

func TestConstantAttribute(t *testing.T) {
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	ds := mustDS(t, rows)
	idx, err := Build(ds, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := idx.Similarity([]float64{1, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identical in both dims; constant dim contributes its full unit.
	if math.Abs(s-2) > 1e-9 {
		t.Errorf("similarity = %v, want 2", s)
	}
}

func TestPropertySimilarityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n, d := 10+rr.Intn(80), 1+rr.Intn(8)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rr.NormFloat64() * 10
			}
		}
		ds, err := dataset.New(rows, nil)
		if err != nil {
			return false
		}
		idx, err := Build(ds, 1+rr.Intn(6), 0.5+rr.Float64()*3)
		if err != nil {
			return false
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rr.NormFloat64() * 10
		}
		for i := 0; i < n; i++ {
			s, err := idx.Similarity(q, i)
			if err != nil || s < 0 || s > float64(d)+1e-9 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
