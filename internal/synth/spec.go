package synth

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// FromSpec builds a synthetic dataset from a compact textual spec of the
// form "kind[:n=N][:d=D][:seed=S]" — the format of innsearchd's -synth
// flag (minus the name= prefix) and loadgen's -synth ground-truth flag.
// Kinds: case1, case2, uniform, gaussmix. Defaults: n=2000, d=20,
// seed=20020612.
//
// The generation is deterministic in the spec: a loadgen client that
// regenerates the same spec the server preloaded holds the identical
// dataset, labels included, which is what makes client-side planted
// ground truth (oracle policies, precision/recall scoring) possible
// without shipping labels over the wire.
func FromSpec(spec string) (*ProjectedData, error) {
	parts := strings.Split(spec, ":")
	kind := parts[0]
	n, d, seed := 2000, 20, int64(20020612)
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("synth: spec %q: bad option %q", spec, part)
		}
		v, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("synth: spec %q: bad %s %q", spec, key, val)
		}
		switch key {
		case "n":
			n = v
		case "d":
			d = v
		case "seed":
			seed = int64(v)
		default:
			return nil, fmt.Errorf("synth: spec %q: unknown option %q", spec, key)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "case1":
		return Case1(n, rng)
	case "case2":
		return Case2(n, rng)
	case "uniform":
		ds, err := Uniform(n, d, 100, rng)
		if err != nil {
			return nil, err
		}
		return &ProjectedData{Data: ds}, nil
	case "gaussmix":
		ds, err := GaussianMixture(n, d, 5, 100, 2, rng)
		if err != nil {
			return nil, err
		}
		return &ProjectedData{Data: ds}, nil
	default:
		return nil, fmt.Errorf("synth: unknown kind %q (want case1, case2, uniform, gaussmix)", kind)
	}
}
