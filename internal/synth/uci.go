package synth

import (
	"fmt"
	"math/rand"

	"innsearch/internal/dataset"
)

// UCISurrogateConfig describes a labeled dataset whose classes live in
// low-dimensional subspaces of a noisy high-dimensional space. It stands
// in for the UCI data sets used in the paper's Table 2, which are not
// available in this offline environment; the surrogates match the
// originals' row counts, dimensionalities and class counts, and preserve
// the property Table 2 depends on (class structure concentrated in
// subspaces so that full-dimensional L2 is partially blinded by noise
// attributes while subspace-aware search is not).
type UCISurrogateConfig struct {
	Name         string
	N            int
	Dim          int
	Classes      int
	ClassDims    int     // informative attributes per class
	Spread       float64 // σ of a class inside its informative attributes
	Domain       float64
	LabelNoise   float64   // fraction of points whose geometry ignores their label
	ClassWeights []float64 // optional relative class sizes; uniform when nil
	// ModesPerClass is the number of Gaussian modes each class is drawn
	// from (default 1). More modes make classes geometrically harder.
	ModesPerClass int
	// AnchorLo and AnchorHi bound the class-mode centers as fractions of
	// the domain (defaults 0.05 and 0.95). A narrow band makes classes
	// close together per attribute, which blinds full-dimensional L2
	// while leaving tight blobs resolvable in low-dimensional views.
	AnchorLo, AnchorHi float64
}

// Validate reports the first configuration error, if any.
func (c UCISurrogateConfig) Validate() error {
	switch {
	case c.N <= 0 || c.Dim <= 0 || c.Classes <= 0:
		return fmt.Errorf("synth: invalid surrogate shape N=%d Dim=%d Classes=%d", c.N, c.Dim, c.Classes)
	case c.ClassDims <= 0 || c.ClassDims > c.Dim:
		return fmt.Errorf("synth: ClassDims %d outside (0, %d]", c.ClassDims, c.Dim)
	case c.Spread <= 0 || c.Domain <= 0:
		return fmt.Errorf("synth: Spread and Domain must be positive")
	case c.LabelNoise < 0 || c.LabelNoise >= 1:
		return fmt.Errorf("synth: LabelNoise %v outside [0, 1)", c.LabelNoise)
	case c.ClassWeights != nil && len(c.ClassWeights) != c.Classes:
		return fmt.Errorf("synth: %d weights for %d classes", len(c.ClassWeights), c.Classes)
	case c.ModesPerClass < 0:
		return fmt.Errorf("synth: ModesPerClass %d negative", c.ModesPerClass)
	case c.AnchorLo < 0 || c.AnchorHi > 1 || (c.AnchorHi != 0 && c.AnchorLo >= c.AnchorHi):
		return fmt.Errorf("synth: anchor band [%v, %v] invalid", c.AnchorLo, c.AnchorHi)
	}
	return nil
}

// GenerateUCISurrogate produces the labeled dataset described by cfg.
// Each class owns a random set of ClassDims informative attributes where
// its members cluster tightly (possibly around several per-class modes);
// every other attribute is uniform noise.
func GenerateUCISurrogate(cfg UCISurrogateConfig, rng *rand.Rand) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := classSizes(cfg)

	rows := make([][]float64, 0, cfg.N)
	labels := make([]int, 0, cfg.N)
	for class := 0; class < cfg.Classes; class++ {
		dims := rng.Perm(cfg.Dim)[:cfg.ClassDims]
		informative := make([]bool, cfg.Dim)
		for _, j := range dims {
			informative[j] = true
		}
		modes := cfg.ModesPerClass
		if modes == 0 {
			modes = 1
		}
		lo, hi := cfg.AnchorLo, cfg.AnchorHi
		if hi == 0 {
			lo, hi = 0.05, 0.95
		}
		centers := make([][]float64, modes)
		for m := range centers {
			c := make([]float64, cfg.Dim)
			for j := range c {
				c[j] = cfg.Domain * (lo + (hi-lo)*rng.Float64())
			}
			centers[m] = c
		}
		for i := 0; i < sizes[class]; i++ {
			p := make([]float64, cfg.Dim)
			noisy := rng.Float64() < cfg.LabelNoise
			center := centers[rng.Intn(modes)]
			for j := 0; j < cfg.Dim; j++ {
				if informative[j] && !noisy {
					p[j] = center[j] + rng.NormFloat64()*cfg.Spread
				} else {
					p[j] = rng.Float64() * cfg.Domain
				}
			}
			rows = append(rows, p)
			labels = append(labels, class)
		}
	}
	return dataset.New(rows, labels)
}

func classSizes(cfg UCISurrogateConfig) []int {
	weights := cfg.ClassWeights
	if weights == nil {
		weights = make([]float64, cfg.Classes)
		for i := range weights {
			weights[i] = 1
		}
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	sizes := make([]int, cfg.Classes)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(cfg.N) * weights[i] / total)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	largest := 0
	for i := range sizes {
		if sizes[i] > sizes[largest] {
			largest = i
		}
	}
	sizes[largest] += cfg.N - assigned
	return sizes
}

// IonosphereLike returns a surrogate for the UCI ionosphere data set:
// 351 radar returns in 34 dimensions, 2 classes ("good" ≈ 64%, "bad").
func IonosphereLike(rng *rand.Rand) (*dataset.Dataset, error) {
	return GenerateUCISurrogate(UCISurrogateConfig{
		Name:          "ionosphere-like",
		N:             351,
		Dim:           34,
		Classes:       2,
		ClassDims:     8,
		Spread:        3.5,
		Domain:        100,
		LabelNoise:    0.30,
		AnchorLo:      0.25,
		AnchorHi:      0.75,
		ClassWeights:  []float64{0.64, 0.36},
		ModesPerClass: 2,
	}, rng)
}

// SegmentationLike returns a surrogate for the UCI image segmentation
// data set: 2310 instances in 19 dimensions, 7 balanced classes.
func SegmentationLike(rng *rand.Rand) (*dataset.Dataset, error) {
	return GenerateUCISurrogate(UCISurrogateConfig{
		Name:       "segmentation-like",
		N:          2310,
		Dim:        19,
		Classes:    7,
		ClassDims:  5,
		Spread:     2.5,
		AnchorLo:   0.30,
		AnchorHi:   0.70,
		Domain:     100,
		LabelNoise: 0.20,
	}, rng)
}
