package synth

import (
	"math"
	"math/rand"
	"testing"

	"innsearch/internal/linalg"
	"innsearch/internal/stats"
)

func TestProjectedConfigValidate(t *testing.T) {
	base := ProjectedConfig{N: 100, Dim: 10, Clusters: 2, SubspaceDim: 3,
		OutlierFrac: 0.05, Domain: 100, Spread: 2}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*ProjectedConfig){
		func(c *ProjectedConfig) { c.N = 0 },
		func(c *ProjectedConfig) { c.Dim = -1 },
		func(c *ProjectedConfig) { c.Clusters = 0 },
		func(c *ProjectedConfig) { c.SubspaceDim = 0 },
		func(c *ProjectedConfig) { c.SubspaceDim = 11 },
		func(c *ProjectedConfig) { c.OutlierFrac = 1 },
		func(c *ProjectedConfig) { c.OutlierFrac = -0.1 },
		func(c *ProjectedConfig) { c.Domain = 0 },
		func(c *ProjectedConfig) { c.Spread = 0 },
	}
	for i, mut := range mutations {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateProjectedClustersAxisParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pd, err := GenerateProjectedClusters(ProjectedConfig{
		N: 1000, Dim: 12, Clusters: 3, SubspaceDim: 4,
		OutlierFrac: 0.1, Domain: 100, Spread: 1.5,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Data.N() != 1000 || pd.Data.Dim() != 12 {
		t.Fatalf("shape %dx%d", pd.Data.N(), pd.Data.Dim())
	}
	// Labels cover clusters and outliers; sizes sum correctly.
	counts := map[int]int{}
	for i := 0; i < pd.Data.N(); i++ {
		counts[pd.Data.Label(i)]++
	}
	if counts[OutlierLabel] != 100 {
		t.Errorf("outliers = %d, want 100", counts[OutlierLabel])
	}
	totalClustered := 0
	for c := 0; c < 3; c++ {
		if counts[c] != pd.Sizes[c] {
			t.Errorf("cluster %d count %d != size %d", c, counts[c], pd.Sizes[c])
		}
		totalClustered += counts[c]
	}
	if totalClustered != 900 {
		t.Errorf("clustered total %d", totalClustered)
	}
	if len(pd.AxisDims) != 3 || len(pd.AxisDims[0]) != 4 {
		t.Fatalf("axis dims %v", pd.AxisDims)
	}
}

func TestProjectedClusterTightInSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pd, err := Case1(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < len(pd.Sizes); c++ {
		members := pd.Members(c)
		if len(members) == 0 {
			t.Fatalf("cluster %d empty", c)
		}
		sub := pd.Subspaces[c]
		anchorProj := sub.Project(pd.Anchors[c])
		// Within its subspace every member stays within ~6σ of the anchor.
		var maxIn float64
		for _, m := range members {
			d := linalg.Vector(anchorProj).Dist(sub.Project(pd.Data.Point(m)))
			if d > maxIn {
				maxIn = d
			}
		}
		// 6-dim Gaussian with σ=2: distances beyond 6·σ·√6 ≈ 29 would be
		// astronomically unlikely.
		if maxIn > 30 {
			t.Errorf("cluster %d: member %v from anchor in subspace", c, maxIn)
		}
	}
}

func TestProjectedClusterSpreadOutsideSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pd, err := Case1(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// In a non-member dimension, a cluster's coordinates should look
	// uniform over the domain: variance near 100²/12 ≈ 833.
	c := 0
	inCluster := map[int]bool{}
	for _, j := range pd.AxisDims[c] {
		inCluster[j] = true
	}
	var noiseDim = -1
	for j := 0; j < pd.Data.Dim(); j++ {
		if !inCluster[j] {
			noiseDim = j
			break
		}
	}
	if noiseDim == -1 {
		t.Skip("cluster spans all dims")
	}
	var vals []float64
	for _, m := range pd.Members(c) {
		vals = append(vals, pd.Data.Point(m)[noiseDim])
	}
	v, err := stats.Variance(vals)
	if err != nil {
		t.Fatal(err)
	}
	if v < 400 || v > 1400 {
		t.Errorf("noise-dim variance %v, want near 833", v)
	}
}

func TestCase2ArbitraryOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pd, err := Case2(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pd.AxisDims != nil {
		t.Error("Case 2 should have no axis dims")
	}
	if pd.Data.Dim() != 20 {
		t.Fatalf("dim %d", pd.Data.Dim())
	}
	// Tightness inside the oriented subspace still holds.
	for c := range pd.Sizes {
		sub := pd.Subspaces[c]
		if sub.Dim() != 6 {
			t.Fatalf("subspace dim %d", sub.Dim())
		}
		anchorProj := sub.Project(pd.Anchors[c])
		for _, m := range pd.Members(c) {
			if d := linalg.Vector(anchorProj).Dist(sub.Project(pd.Data.Point(m))); d > 30 {
				t.Fatalf("cluster %d member at %v in tight subspace", c, d)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Case1(300, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Case1(300, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Data.N(); i++ {
		if !a.Data.Point(i).ApproxEqual(b.Data.Point(i), 0) {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, err := Uniform(500, 8, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 500 || ds.Dim() != 8 || ds.Labeled() {
		t.Fatalf("uniform shape %dx%d labeled=%v", ds.N(), ds.Dim(), ds.Labeled())
	}
	lo, hi := ds.Bounds()
	for j := 0; j < 8; j++ {
		if lo[j] < 0 || hi[j] > 50 {
			t.Errorf("dim %d out of domain: [%v, %v]", j, lo[j], hi[j])
		}
	}
	if _, err := Uniform(0, 3, 1, rng); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGaussianBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := GaussianBlob(nil, 100, []float64{10, -5}, 0.5, rng)
	if len(rows) != 100 {
		t.Fatalf("len %d", len(rows))
	}
	var mx, my float64
	for _, r := range rows {
		mx += r[0]
		my += r[1]
	}
	mx /= 100
	my /= 100
	if math.Abs(mx-10) > 0.3 || math.Abs(my+5) > 0.3 {
		t.Errorf("blob mean (%v, %v)", mx, my)
	}
}

func TestUCISurrogates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ion, err := IonosphereLike(rng)
	if err != nil {
		t.Fatal(err)
	}
	if ion.N() != 351 || ion.Dim() != 34 {
		t.Fatalf("ionosphere shape %dx%d", ion.N(), ion.Dim())
	}
	classes := map[int]int{}
	for i := 0; i < ion.N(); i++ {
		classes[ion.Label(i)]++
	}
	if len(classes) != 2 {
		t.Fatalf("ionosphere classes %v", classes)
	}
	if classes[0] < classes[1] {
		t.Errorf("class balance %v, want majority class 0", classes)
	}

	seg, err := SegmentationLike(rng)
	if err != nil {
		t.Fatal(err)
	}
	if seg.N() != 2310 || seg.Dim() != 19 {
		t.Fatalf("segmentation shape %dx%d", seg.N(), seg.Dim())
	}
	segClasses := map[int]int{}
	for i := 0; i < seg.N(); i++ {
		segClasses[seg.Label(i)]++
	}
	if len(segClasses) != 7 {
		t.Fatalf("segmentation classes %v", segClasses)
	}
	for c, n := range segClasses {
		if n < 300 || n > 360 {
			t.Errorf("class %d size %d, want ≈330", c, n)
		}
	}
}

func TestUCISurrogateValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := UCISurrogateConfig{N: 10, Dim: 5, Classes: 2, ClassDims: 9, Spread: 1, Domain: 10}
	if _, err := GenerateUCISurrogate(bad, rng); err == nil {
		t.Error("ClassDims > Dim accepted")
	}
	bad2 := UCISurrogateConfig{N: 10, Dim: 5, Classes: 2, ClassDims: 2, Spread: 1, Domain: 10,
		ClassWeights: []float64{1}}
	if _, err := GenerateUCISurrogate(bad2, rng); err == nil {
		t.Error("weight count mismatch accepted")
	}
	bad3 := UCISurrogateConfig{N: 10, Dim: 5, Classes: 2, ClassDims: 2, Spread: 1, Domain: 10,
		LabelNoise: 1.5}
	if _, err := GenerateUCISurrogate(bad3, rng); err == nil {
		t.Error("label noise out of range accepted")
	}
}

func TestMembersMatchesLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pd, err := GenerateProjectedClusters(ProjectedConfig{
		N: 200, Dim: 6, Clusters: 2, SubspaceDim: 2,
		OutlierFrac: 0.1, Domain: 10, Spread: 0.5,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := 0; c < 2; c++ {
		for _, m := range pd.Members(c) {
			if pd.Data.Label(m) != c {
				t.Fatalf("member %d of cluster %d has label %d", m, c, pd.Data.Label(m))
			}
		}
		total += len(pd.Members(c))
	}
	if total+len(pd.Members(OutlierLabel)) != pd.Data.N() {
		t.Error("members don't partition dataset")
	}
}

func TestGaussianMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds, err := GaussianMixture(600, 10, 3, 100, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 600 || ds.Dim() != 10 || !ds.Labeled() {
		t.Fatalf("shape %dx%d labeled=%v", ds.N(), ds.Dim(), ds.Labeled())
	}
	counts := map[int]int{}
	for i := 0; i < ds.N(); i++ {
		counts[ds.Label(i)]++
	}
	if len(counts) != 3 || counts[0] != 200 {
		t.Errorf("cluster sizes %v", counts)
	}
	// Every point should be far closer to its own cluster's centroid
	// than to the others' (full-dimensional tightness).
	if _, err := GaussianMixture(0, 1, 1, 1, 1, rng); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := GaussianMixture(10, 2, 1, -1, 1, rng); err == nil {
		t.Error("negative domain accepted")
	}
}

func TestFromSpec(t *testing.T) {
	pd, err := FromSpec("case1:n=300:seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if pd.Data.N() != 300 || pd.Data.Dim() != 20 || !pd.Data.Labeled() {
		t.Fatalf("case1 spec: n=%d dim=%d labeled=%v", pd.Data.N(), pd.Data.Dim(), pd.Data.Labeled())
	}
	// Same spec regenerates the identical dataset, labels included — the
	// property client-side ground truth depends on.
	again, err := FromSpec("case1:n=300:seed=9")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pd.Data.N(); i++ {
		if pd.Data.Label(i) != again.Data.Label(i) {
			t.Fatalf("label %d drifted across regenerations", i)
		}
		a, b := pd.Data.PointCopy(i), again.Data.PointCopy(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("point %d dim %d drifted across regenerations", i, j)
			}
		}
	}
	if _, err := FromSpec("uniform:n=50:d=4"); err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec("gaussmix:n=50:d=4:seed=1"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nope", "case1:n=x", "case1:q=3", "case1:n"} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("FromSpec(%q) should fail", bad)
		}
	}
}
