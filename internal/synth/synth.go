// Package synth generates the synthetic workloads of the paper's empirical
// section: sparse high-dimensional data with low-dimensional projected
// clusters ("Case 1" axis-parallel and "Case 2" arbitrarily oriented, after
// the generator of Aggarwal & Yu, SIGMOD 2000, which the paper reuses with
// N = 5000, d = 20 and 6-dimensional hidden clusters), uniformly
// distributed noise data (§4.2), and offline surrogates for the two UCI
// data sets of Table 2 (ionosphere: 351×34, 2 classes; image
// segmentation: 2310×19, 7 classes).
//
// Every generator takes an explicit *rand.Rand so that experiments are
// reproducible run-to-run.
package synth

import (
	"errors"
	"fmt"
	"math/rand"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// OutlierLabel marks points that belong to no cluster.
const OutlierLabel = -1

// ProjectedConfig parameterizes the projected-cluster generator.
type ProjectedConfig struct {
	N           int     // total number of points
	Dim         int     // full dimensionality d
	Clusters    int     // number of projected clusters k
	SubspaceDim int     // hidden dimensionality l of each cluster
	OutlierFrac float64 // fraction of uniform outliers in [0, 1)
	Domain      float64 // attribute domain is [0, Domain]
	Spread      float64 // Gaussian σ of a cluster inside its subspace
	// Arbitrary, when true, orients each cluster's hidden subspace along
	// a random orthonormal basis instead of coordinate axes ("Case 2").
	Arbitrary bool
}

// Validate reports the first configuration error, if any.
func (c ProjectedConfig) Validate() error {
	switch {
	case c.N <= 0:
		return errors.New("synth: N must be positive")
	case c.Dim <= 0:
		return errors.New("synth: Dim must be positive")
	case c.Clusters <= 0:
		return errors.New("synth: Clusters must be positive")
	case c.SubspaceDim <= 0 || c.SubspaceDim > c.Dim:
		return fmt.Errorf("synth: SubspaceDim %d outside (0, %d]", c.SubspaceDim, c.Dim)
	case c.OutlierFrac < 0 || c.OutlierFrac >= 1:
		return fmt.Errorf("synth: OutlierFrac %v outside [0, 1)", c.OutlierFrac)
	case c.Domain <= 0:
		return errors.New("synth: Domain must be positive")
	case c.Spread <= 0:
		return errors.New("synth: Spread must be positive")
	}
	return nil
}

// ProjectedData is a generated dataset together with its ground truth.
type ProjectedData struct {
	Data *dataset.Dataset // labels: cluster index, or OutlierLabel

	// Anchors[c] is the center of cluster c in ambient coordinates.
	Anchors []linalg.Vector
	// Subspaces[c] is the hidden subspace in which cluster c is tight;
	// axis-parallel in Case 1, arbitrarily oriented in Case 2.
	Subspaces []*linalg.Subspace
	// AxisDims[c] lists the member attributes of cluster c's subspace in
	// the axis-parallel case; nil when Arbitrary.
	AxisDims [][]int
	// Sizes[c] is the number of points generated for cluster c.
	Sizes []int
}

// Members returns the positions (row indices) of the points of cluster c.
func (p *ProjectedData) Members(c int) []int {
	var out []int
	for i := 0; i < p.Data.N(); i++ {
		if p.Data.Label(i) == c {
			out = append(out, i)
		}
	}
	return out
}

// GenerateProjectedClusters produces a dataset per the configuration.
func GenerateProjectedClusters(cfg ProjectedConfig, rng *rand.Rand) (*ProjectedData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.Dim

	// Cluster sizes: proportional to 0.5+U[0,1) shares of the non-outlier
	// mass, so clusters differ in size but none vanishes.
	nOut := int(float64(cfg.N) * cfg.OutlierFrac)
	nClustered := cfg.N - nOut
	shares := make([]float64, cfg.Clusters)
	var total float64
	for i := range shares {
		shares[i] = 0.5 + rng.Float64()
		total += shares[i]
	}
	sizes := make([]int, cfg.Clusters)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(nClustered) * shares[i] / total)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Adjust the largest cluster so totals match exactly.
	largest := 0
	for i, s := range sizes {
		if s > sizes[largest] {
			largest = i
		}
	}
	sizes[largest] += nClustered - assigned
	if sizes[largest] < 1 {
		return nil, fmt.Errorf("synth: N=%d too small for %d clusters", cfg.N, cfg.Clusters)
	}

	anchors := make([]linalg.Vector, cfg.Clusters)
	subspaces := make([]*linalg.Subspace, cfg.Clusters)
	var axisDims [][]int
	if !cfg.Arbitrary {
		axisDims = make([][]int, cfg.Clusters)
	}

	rows := make([][]float64, 0, cfg.N)
	labels := make([]int, 0, cfg.N)

	for c := 0; c < cfg.Clusters; c++ {
		// Anchor away from the domain boundary so clusters stay inside.
		anchor := make(linalg.Vector, d)
		for j := range anchor {
			anchor[j] = cfg.Domain * (0.15 + 0.7*rng.Float64())
		}
		anchors[c] = anchor

		if cfg.Arbitrary {
			basis, err := randomOrthonormalBasis(d, rng)
			if err != nil {
				return nil, err
			}
			tight, err := linalg.NewSubspace(d, basis[:cfg.SubspaceDim])
			if err != nil {
				return nil, fmt.Errorf("synth: cluster %d subspace: %w", c, err)
			}
			subspaces[c] = tight
			for i := 0; i < sizes[c]; i++ {
				p := anchor.Clone()
				for j, b := range basis {
					var coef float64
					if j < cfg.SubspaceDim {
						coef = rng.NormFloat64() * cfg.Spread
					} else {
						coef = (rng.Float64() - 0.5) * cfg.Domain
					}
					p.AXPY(coef, linalg.Vector(b))
				}
				rows = append(rows, p)
				labels = append(labels, c)
			}
		} else {
			dims := rng.Perm(d)[:cfg.SubspaceDim]
			axisDims[c] = append([]int(nil), dims...)
			tight, err := linalg.AxisSubspace(d, dims)
			if err != nil {
				return nil, fmt.Errorf("synth: cluster %d axis subspace: %w", c, err)
			}
			subspaces[c] = tight
			inCluster := make([]bool, d)
			for _, j := range dims {
				inCluster[j] = true
			}
			for i := 0; i < sizes[c]; i++ {
				p := make(linalg.Vector, d)
				for j := 0; j < d; j++ {
					if inCluster[j] {
						p[j] = anchor[j] + rng.NormFloat64()*cfg.Spread
					} else {
						p[j] = rng.Float64() * cfg.Domain
					}
				}
				rows = append(rows, p)
				labels = append(labels, c)
			}
		}
	}

	for i := 0; i < nOut; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * cfg.Domain
		}
		rows = append(rows, p)
		labels = append(labels, OutlierLabel)
	}

	ds, err := dataset.New(rows, labels)
	if err != nil {
		return nil, err
	}
	return &ProjectedData{
		Data:      ds,
		Anchors:   anchors,
		Subspaces: subspaces,
		AxisDims:  axisDims,
		Sizes:     sizes,
	}, nil
}

// randomOrthonormalBasis returns d orthonormal random directions in R^d,
// built by Gram–Schmidt over Gaussian vectors (retrying the astronomically
// unlikely dependent draws).
func randomOrthonormalBasis(d int, rng *rand.Rand) ([]linalg.Vector, error) {
	var basis []linalg.Vector
	work, err := linalg.NewSubspace(d, nil)
	if err != nil {
		return nil, err
	}
	for len(basis) < d {
		v := make(linalg.Vector, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		next, err := linalg.NewSubspace(d, append(work.Basis(), v))
		if err != nil {
			continue // dependent draw; retry
		}
		work = next
		basis = work.Basis()
	}
	return basis, nil
}

// Case1 returns the paper's first synthetic workload: axis-parallel
// 6-dimensional projected clusters embedded in 20-dimensional data.
func Case1(n int, rng *rand.Rand) (*ProjectedData, error) {
	return GenerateProjectedClusters(ProjectedConfig{
		N:           n,
		Dim:         20,
		Clusters:    5,
		SubspaceDim: 6,
		OutlierFrac: 0.05,
		Domain:      100,
		Spread:      2,
	}, rng)
}

// Case2 returns the paper's second synthetic workload: arbitrarily
// oriented 6-dimensional projected clusters in 20 dimensions.
func Case2(n int, rng *rand.Rand) (*ProjectedData, error) {
	return GenerateProjectedClusters(ProjectedConfig{
		N:           n,
		Dim:         20,
		Clusters:    5,
		SubspaceDim: 6,
		OutlierFrac: 0.05,
		Domain:      100,
		Spread:      2,
		Arbitrary:   true,
	}, rng)
}

// Uniform returns n points distributed uniformly over [0, domain]^d — the
// paper's poorly behaved workload for which nearest-neighbor search is
// truly meaningless (§4.2).
func Uniform(n, d int, domain float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if n <= 0 || d <= 0 || domain <= 0 {
		return nil, fmt.Errorf("synth: invalid uniform config n=%d d=%d domain=%v", n, d, domain)
	}
	rows := make([][]float64, n)
	for i := range rows {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * domain
		}
		rows[i] = p
	}
	return dataset.New(rows, nil)
}

// GaussianBlob appends n points from an isotropic Gaussian at the given
// center; used to compose small illustrative datasets for the figures.
func GaussianBlob(rows [][]float64, n int, center []float64, sigma float64, rng *rand.Rand) [][]float64 {
	for i := 0; i < n; i++ {
		p := make([]float64, len(center))
		for j := range p {
			p[j] = center[j] + rng.NormFloat64()*sigma
		}
		rows = append(rows, p)
	}
	return rows
}

// GaussianMixture generates n points from k isotropic Gaussian clusters
// that are tight in EVERY dimension — the benign full-dimensional case in
// which conventional L2 nearest-neighbor search already works. The
// interactive system should diagnose such data as meaningful and agree
// with L2, which the sanity experiment verifies. Labels are cluster
// indices.
func GaussianMixture(n, d, k int, domain, sigma float64, rng *rand.Rand) (*dataset.Dataset, error) {
	if n <= 0 || d <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("synth: invalid mixture n=%d d=%d k=%d", n, d, k)
	}
	if domain <= 0 || sigma <= 0 {
		return nil, errors.New("synth: domain and sigma must be positive")
	}
	centers := make([][]float64, k)
	for c := range centers {
		center := make([]float64, d)
		for j := range center {
			center[j] = domain * (0.15 + 0.7*rng.Float64())
		}
		centers[c] = center
	}
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := range rows {
		c := i % k
		row := make([]float64, d)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*sigma
		}
		rows[i] = row
		labels[i] = c
	}
	return dataset.New(rows, labels)
}
