package knn

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"innsearch/internal/dataset"
	"innsearch/internal/metric"
)

func lineDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.New([][]float64{{0}, {1}, {2}, {3}, {10}}, []int{0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSearchBasic(t *testing.T) {
	ds := lineDataset(t)
	nbrs, err := Search(ds, []float64{1.2}, 2, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 || nbrs[0].Pos != 1 || nbrs[1].Pos != 2 {
		t.Fatalf("neighbors = %+v", nbrs)
	}
	if math.Abs(nbrs[0].Dist-0.2) > 1e-12 {
		t.Errorf("dist = %v", nbrs[0].Dist)
	}
}

func TestSearchKClamped(t *testing.T) {
	ds := lineDataset(t)
	nbrs, err := Search(ds, []float64{0}, 99, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("len %d", len(nbrs))
	}
	// Sorted ascending by distance.
	if !sort.SliceIsSorted(nbrs, func(a, b int) bool { return nbrs[a].Dist < nbrs[b].Dist }) {
		t.Error("results not sorted")
	}
}

func TestSearchErrors(t *testing.T) {
	ds := lineDataset(t)
	if _, err := Search(ds, []float64{0}, 0, metric.Euclidean{}); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := Search(ds, []float64{0, 0}, 1, metric.Euclidean{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestSearchTieDeterminism(t *testing.T) {
	ds, err := dataset.New([][]float64{{1}, {-1}, {1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := Search(ds, []float64{0}, 3, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	// All at distance 1: ties break by position.
	if nbrs[0].Pos != 0 || nbrs[1].Pos != 1 || nbrs[2].Pos != 2 {
		t.Errorf("tie order = %+v", nbrs)
	}
}

func TestSearchPreservesIDsThroughSubset(t *testing.T) {
	ds := lineDataset(t)
	sub, err := ds.Subset([]int{4, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := Search(sub, []float64{9}, 1, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].ID != 4 {
		t.Errorf("ID = %d, want original 4", nbrs[0].ID)
	}
}

func TestDistances(t *testing.T) {
	ds := lineDataset(t)
	d, err := Distances(ds, []float64{2}, metric.Manhattan{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 0, 1, 8}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if _, err := Distances(ds, []float64{1, 2}, metric.Euclidean{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestClassify(t *testing.T) {
	ds := lineDataset(t)
	label, err := Classify(ds, []float64{0.4}, 2, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("label = %d, want 0", label)
	}
	label, err = Classify(ds, []float64{2.6}, 3, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("label = %d, want 1", label)
	}
}

func TestClassifyUnlabeled(t *testing.T) {
	ds, _ := dataset.New([][]float64{{1}}, nil)
	if _, err := Classify(ds, []float64{1}, 1, metric.Euclidean{}); err == nil {
		t.Error("unlabeled classify accepted")
	}
}

func TestClassifyTieBreaksTowardSmallerLabel(t *testing.T) {
	ds, err := dataset.New([][]float64{{0}, {2}}, []int{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	label, err := Classify(ds, []float64{1}, 2, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if label != 3 {
		t.Errorf("tie label = %d, want 3", label)
	}
}

func TestVoteAmong(t *testing.T) {
	ds := lineDataset(t)
	label, err := VoteAmong(ds, []int{2, 3, 4})
	if err != nil || label != 1 {
		t.Errorf("vote = %d, %v", label, err)
	}
	if _, err := VoteAmong(ds, nil); err == nil {
		t.Error("empty vote accepted")
	}
	un, _ := dataset.New([][]float64{{1}}, nil)
	if _, err := VoteAmong(un, []int{0}); err == nil {
		t.Error("unlabeled vote accepted")
	}
}

func TestPropertySearchMatchesFullSort(t *testing.T) {
	// Heap-based top-k must agree with sorting all distances.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n, d := 5+rr.Intn(80), 1+rr.Intn(6)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rr.NormFloat64()
			}
		}
		ds, err := dataset.New(rows, nil)
		if err != nil {
			return false
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rr.NormFloat64()
		}
		k := 1 + rr.Intn(n)
		got, err := Search(ds, q, k, metric.Euclidean{})
		if err != nil {
			return false
		}
		dists, _ := Distances(ds, q, metric.Euclidean{})
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			if dists[idx[a]] != dists[idx[b]] {
				return dists[idx[a]] < dists[idx[b]]
			}
			return idx[a] < idx[b]
		})
		for i := 0; i < k; i++ {
			if got[i].Pos != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearch5000x20(b *testing.B) {
	rr := rand.New(rand.NewSource(1))
	rows := make([][]float64, 5000)
	for i := range rows {
		rows[i] = make([]float64, 20)
		for j := range rows[i] {
			rows[i][j] = rr.Float64()
		}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := rows[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(ds, q, 10, metric.Euclidean{}); err != nil {
			b.Fatal(err)
		}
	}
}
