// Package knn provides exact brute-force k-nearest-neighbor search under
// arbitrary metrics, plus the full-dimensional k-NN majority-vote
// classifier the paper uses as the baseline in Table 2. For the data
// sizes of the paper's evaluation (N ≤ a few thousand) a linear scan with
// a bounded max-heap is both exact and fast, which keeps baseline quality
// arguments free of index-approximation confounders.
package knn

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"innsearch/internal/linalg"
	"innsearch/internal/metric"
)

// ErrBadK is returned when k is not positive.
var ErrBadK = errors.New("knn: k must be positive")

// Source is the row-accessor interface the search functions scan: any
// indexed collection of points with original row IDs. Both
// *dataset.Dataset and *dataset.View satisfy it, so searches run directly
// over shared immutable stores and narrowed views without copying points.
type Source interface {
	N() int
	Dim() int
	Point(i int) linalg.Vector
	ID(i int) int
}

// LabeledSource extends Source with per-row class labels, as required by
// the classification baselines.
type LabeledSource interface {
	Source
	Labeled() bool
	Label(i int) int
}

// Neighbor is one search result: the position of the point in the source
// it was searched in, its original ID, and its distance from the query.
type Neighbor struct {
	Pos  int
	ID   int
	Dist float64
}

// maxHeap keeps the k closest candidates with the farthest on top.
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Dist > h[j].Dist }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search returns the k nearest neighbors of query in ds under m, ordered
// by increasing distance (ties broken by position for determinism). When
// k exceeds the source size, all points are returned.
func Search(ds Source, query []float64, k int, m metric.Metric) ([]Neighbor, error) {
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("knn: query dim %d, dataset dim %d", len(query), ds.Dim())
	}
	if k > ds.N() {
		k = ds.N()
	}
	h := make(maxHeap, 0, k+1)
	for i := 0; i < ds.N(); i++ {
		d := m.Distance(query, ds.Point(i))
		if len(h) < k {
			heap.Push(&h, Neighbor{Pos: i, ID: ds.ID(i), Dist: d})
		} else if d < h[0].Dist {
			h[0] = Neighbor{Pos: i, ID: ds.ID(i), Dist: d}
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Pos < out[b].Pos
	})
	return out, nil
}

// Distances returns the distance from query to every point of ds under m,
// indexed by position. It is the building block for the contrast
// diagnostics.
func Distances(ds Source, query []float64, m metric.Metric) ([]float64, error) {
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("knn: query dim %d, dataset dim %d", len(query), ds.Dim())
	}
	out := make([]float64, ds.N())
	for i := range out {
		out[i] = m.Distance(query, ds.Point(i))
	}
	return out, nil
}

// Classify predicts a label for the query by majority vote among its k
// nearest neighbors under m; ties break toward the smaller label for
// determinism. The source must be labeled.
func Classify(ds LabeledSource, query []float64, k int, m metric.Metric) (int, error) {
	if !ds.Labeled() {
		return 0, errors.New("knn: classify on unlabeled dataset")
	}
	nbrs, err := Search(ds, query, k, m)
	if err != nil {
		return 0, err
	}
	votes := map[int]int{}
	for _, nb := range nbrs {
		votes[ds.Label(nb.Pos)]++
	}
	best, bestVotes := 0, -1
	for label, v := range votes {
		if v > bestVotes || (v == bestVotes && label < best) {
			best, bestVotes = label, v
		}
	}
	return best, nil
}

// VoteAmong predicts a label by majority vote over an explicit set of
// source positions (used to classify from an interactive session's
// result set). Ties break toward the smaller label.
func VoteAmong(ds LabeledSource, positions []int) (int, error) {
	if !ds.Labeled() {
		return 0, errors.New("knn: vote on unlabeled dataset")
	}
	if len(positions) == 0 {
		return 0, errors.New("knn: vote over empty set")
	}
	votes := map[int]int{}
	for _, p := range positions {
		votes[ds.Label(p)]++
	}
	best, bestVotes := 0, -1
	for label, v := range votes {
		if v > bestVotes || (v == bestVotes && label < best) {
			best, bestVotes = label, v
		}
	}
	return best, nil
}
