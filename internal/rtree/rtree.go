// Package rtree implements an in-memory R-tree with quadratic splitting
// (Guttman 1984) and exact best-first k-nearest-neighbor search — the
// family of hierarchical access methods ([9] X-tree, [18] SR-tree,
// [21] TV-tree descend from it) whose high-dimensional breakdown
// motivates the paper. The kNN search is exact for any dimensionality;
// what degrades is its selectivity: as d grows, minimum distances to
// bounding rectangles stop pruning anything and the search visits nearly
// every node, which the motivation experiment quantifies.
package rtree

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// Source is the row-accessor interface the tree builds over: any indexed
// collection of points with original row IDs. Both *dataset.Dataset and
// *dataset.View satisfy it, so the tree reads rows in place from the
// shared immutable store — no per-row copies.
type Source interface {
	N() int
	Dim() int
	Point(i int) linalg.Vector
	ID(i int) int
}

// ctxCheckEvery is how many frontier pops a search does between context
// polls.
const ctxCheckEvery = 256

// Degree bounds: each node holds in [minEntries, maxEntries] children.
const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5
)

// rect is an axis-aligned bounding box.
type rect struct {
	lo, hi []float64
}

// pointRect views a point as its degenerate rectangle without copying:
// both faces alias the row's backing storage. This is safe because every
// mutation of a rect goes through clone() first (enlarge is only ever
// called on cloned storage), so build cost is zero allocations per row.
func pointRect(p []float64) rect {
	return rect{lo: p, hi: p}
}

func (r rect) clone() rect {
	return rect{lo: append([]float64(nil), r.lo...), hi: append([]float64(nil), r.hi...)}
}

// enlarge grows r in place to cover o.
func (r *rect) enlarge(o rect) {
	for j := range r.lo {
		if o.lo[j] < r.lo[j] {
			r.lo[j] = o.lo[j]
		}
		if o.hi[j] > r.hi[j] {
			r.hi[j] = o.hi[j]
		}
	}
}

// area returns the rectangle volume (0 for points).
func (r rect) area() float64 {
	a := 1.0
	for j := range r.lo {
		a *= r.hi[j] - r.lo[j]
	}
	return a
}

// enlargement returns how much r's area would grow to include o.
func (r rect) enlargement(o rect) float64 {
	a := 1.0
	for j := range r.lo {
		lo, hi := r.lo[j], r.hi[j]
		if o.lo[j] < lo {
			lo = o.lo[j]
		}
		if o.hi[j] > hi {
			hi = o.hi[j]
		}
		a *= hi - lo
	}
	return a - r.area()
}

// minDist returns the squared L2 distance from q to the rectangle.
func (r rect) minDist(q []float64) float64 {
	var s float64
	for j := range q {
		switch {
		case q[j] < r.lo[j]:
			d := r.lo[j] - q[j]
			s += d * d
		case q[j] > r.hi[j]:
			d := q[j] - r.hi[j]
			s += d * d
		}
	}
	return s
}

type node struct {
	leaf     bool
	mbr      rect
	children []*node // internal nodes
	entries  []int   // leaf nodes: dataset positions
}

// Tree is an R-tree over a point source.
type Tree struct {
	src   Source
	root  *node
	dim   int
	size  int
	nodes int
}

// Stats reports the work a query did.
type Stats struct {
	// NodesVisited counts tree nodes popped from the search frontier.
	NodesVisited int
	// TotalNodes is the tree's node count, for computing visit fractions.
	TotalNodes int
}

// Build inserts every point of src. It is BuildContext with a background
// context.
func Build(src Source) (*Tree, error) {
	return BuildContext(context.Background(), src)
}

// BuildContext is Build with cooperative cancellation: the insertion loop
// polls ctx between row blocks.
func BuildContext(ctx context.Context, src Source) (*Tree, error) {
	if src == nil || src.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	t := &Tree{src: src, dim: src.Dim()}
	t.root = &node{leaf: true}
	t.nodes = 1
	for i := 0; i < src.N(); i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		t.insert(i)
	}
	return t, nil
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// NodeCount returns the number of tree nodes.
func (t *Tree) NodeCount() int { return t.nodes }

// insert adds dataset position i.
func (t *Tree) insert(i int) {
	r := pointRect(t.src.Point(i))
	leaf := t.chooseLeaf(t.root, r)
	leaf.entries = append(leaf.entries, i)
	if len(leaf.mbr.lo) == 0 {
		leaf.mbr = r.clone()
	} else {
		leaf.mbr.enlarge(r)
	}
	t.size++
	if len(leaf.entries) > maxEntries {
		t.splitUpward(leaf)
	} else {
		t.refreshPath(t.root, leaf, r)
	}
}

// chooseLeaf descends to the leaf whose MBR needs least enlargement.
func (t *Tree) chooseLeaf(n *node, r rect) *node {
	for !n.leaf {
		var best *node
		bestGrow := math.Inf(1)
		for _, c := range n.children {
			g := c.mbr.enlargement(r)
			if g < bestGrow || (g == bestGrow && best != nil && c.mbr.area() < best.mbr.area()) {
				best, bestGrow = c, g
			}
		}
		n = best
	}
	return n
}

// refreshPath enlarges every MBR from root down to target to cover r.
func (t *Tree) refreshPath(n, target *node, r rect) bool {
	if n == target {
		return true
	}
	if n.leaf {
		return false
	}
	for _, c := range n.children {
		if t.refreshPath(c, target, r) {
			if len(n.mbr.lo) == 0 {
				n.mbr = r.clone()
			} else {
				n.mbr.enlarge(r)
			}
			return true
		}
	}
	return false
}

// splitUpward splits an overflowing node, propagating to the root.
func (t *Tree) splitUpward(n *node) {
	path := t.pathTo(t.root, n)
	for level := len(path) - 1; level >= 0; level-- {
		cur := path[level]
		if (cur.leaf && len(cur.entries) <= maxEntries) ||
			(!cur.leaf && len(cur.children) <= maxEntries) {
			t.recomputeMBR(cur)
			continue
		}
		a, b := t.split(cur)
		t.nodes++ // one node became two
		if level == 0 {
			newRoot := &node{leaf: false, children: []*node{a, b}}
			t.recomputeMBR(newRoot)
			t.root = newRoot
			t.nodes++
		} else {
			parent := path[level-1]
			// Replace cur with a and b.
			for ci, c := range parent.children {
				if c == cur {
					parent.children[ci] = a
					break
				}
			}
			parent.children = append(parent.children, b)
		}
	}
	// MBRs along the path may be stale after splits.
	t.recomputeAll(t.root)
}

// pathTo returns the chain of nodes from root to target inclusive.
func (t *Tree) pathTo(n, target *node) []*node {
	if n == target {
		return []*node{n}
	}
	if n.leaf {
		return nil
	}
	for _, c := range n.children {
		if sub := t.pathTo(c, target); sub != nil {
			return append([]*node{n}, sub...)
		}
	}
	return nil
}

// split performs Guttman's quadratic split on an overflowing node.
func (t *Tree) split(n *node) (*node, *node) {
	if n.leaf {
		groups := quadraticSplit(len(n.entries), func(i int) rect { return pointRect(t.src.Point(n.entries[i])) })
		a := &node{leaf: true}
		b := &node{leaf: true}
		for _, i := range groups[0] {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range groups[1] {
			b.entries = append(b.entries, n.entries[i])
		}
		t.recomputeMBR(a)
		t.recomputeMBR(b)
		return a, b
	}
	groups := quadraticSplit(len(n.children), func(i int) rect { return n.children[i].mbr })
	a := &node{leaf: false}
	b := &node{leaf: false}
	for _, i := range groups[0] {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range groups[1] {
		b.children = append(b.children, n.children[i])
	}
	t.recomputeMBR(a)
	t.recomputeMBR(b)
	return a, b
}

// quadraticSplit partitions indices 0..n-1 into two groups per Guttman.
func quadraticSplit(n int, rectOf func(int) rect) [2][]int {
	// Pick the pair wasting the most area as seeds.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			combined := rectOf(i).clone()
			combined.enlarge(rectOf(j))
			waste := combined.area() - rectOf(i).area() - rectOf(j).area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	groups := [2][]int{{seedA}, {seedB}}
	mbrs := [2]rect{rectOf(seedA).clone(), rectOf(seedB).clone()}
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		remaining := n - len(groups[0]) - len(groups[1])
		// Force assignment when a group must take the rest to reach the
		// minimum fill.
		switch {
		case len(groups[0])+remaining <= minEntries:
			groups[0] = append(groups[0], i)
			mbrs[0].enlarge(rectOf(i))
			continue
		case len(groups[1])+remaining <= minEntries:
			groups[1] = append(groups[1], i)
			mbrs[1].enlarge(rectOf(i))
			continue
		}
		g := 0
		if mbrs[1].enlargement(rectOf(i)) < mbrs[0].enlargement(rectOf(i)) {
			g = 1
		}
		groups[g] = append(groups[g], i)
		mbrs[g].enlarge(rectOf(i))
	}
	return groups
}

// recomputeMBR rebuilds a node's MBR from its contents.
func (t *Tree) recomputeMBR(n *node) {
	n.mbr = rect{}
	first := true
	grow := func(r rect) {
		if first {
			n.mbr = r.clone()
			first = false
		} else {
			n.mbr.enlarge(r)
		}
	}
	if n.leaf {
		for _, e := range n.entries {
			grow(pointRect(t.src.Point(e)))
		}
	} else {
		for _, c := range n.children {
			grow(c.mbr)
		}
	}
}

func (t *Tree) recomputeAll(n *node) {
	if !n.leaf {
		for _, c := range n.children {
			t.recomputeAll(c)
		}
	}
	t.recomputeMBR(n)
}

// Neighbor is one kNN result.
type Neighbor struct {
	Pos  int
	ID   int
	Dist float64
}

// frontier orders search items by ascending minimum distance.
type frontierItem struct {
	n       *node
	pos     int // dataset position when n == nil
	minDist float64
}
type frontier []frontierItem

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].minDist != f[j].minDist {
		return f[i].minDist < f[j].minDist
	}
	// Equal distance: expand nodes before emitting points (a node at the
	// same distance may still contain an equal-distance point with a
	// smaller position), then emit points in ascending position — the
	// engine's strict total order, so the returned k-set is deterministic.
	if (f[i].n == nil) != (f[j].n == nil) {
		return f[i].n != nil
	}
	return f[i].pos < f[j].pos
}
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(frontierItem)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	x := old[n-1]
	*f = old[:n-1]
	return x
}

// Search returns the exact k nearest neighbors of query under L2. It is
// SearchContext with a background context.
func (t *Tree) Search(query []float64, k int) ([]Neighbor, Stats, error) {
	return t.SearchContext(context.Background(), query, k)
}

// SearchContext returns the exact k nearest neighbors of query under L2,
// using best-first traversal (Hjaltason–Samet): the frontier pops nodes
// and points by ascending minimum distance, so the first k points popped
// are the answer. The traversal polls ctx between frontier-pop blocks and
// returns its error once canceled.
func (t *Tree) SearchContext(ctx context.Context, query []float64, k int) ([]Neighbor, Stats, error) {
	if len(query) != t.dim {
		return nil, Stats{}, fmt.Errorf("rtree: query dim %d, index dim %d", len(query), t.dim)
	}
	if k <= 0 {
		return nil, Stats{}, errors.New("rtree: k must be positive")
	}
	if k > t.size {
		k = t.size
	}
	st := Stats{TotalNodes: t.nodes}
	f := frontier{{n: t.root, minDist: t.root.mbr.minDist(query)}}
	heap.Init(&f)
	var out []Neighbor
	pops := 0
	for len(f) > 0 && len(out) < k {
		if pops%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, Stats{}, err
			}
		}
		pops++
		item := heap.Pop(&f).(frontierItem)
		if item.n == nil {
			out = append(out, Neighbor{
				Pos:  item.pos,
				ID:   t.src.ID(item.pos),
				Dist: math.Sqrt(item.minDist),
			})
			continue
		}
		st.NodesVisited++
		if item.n.leaf {
			for _, e := range item.n.entries {
				heap.Push(&f, frontierItem{n: nil, pos: e, minDist: sqDist(query, t.src.Point(e))})
			}
		} else {
			for _, c := range item.n.children {
				heap.Push(&f, frontierItem{n: c, minDist: c.mbr.minDist(query)})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Pos < out[b].Pos
	})
	return out, st, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
