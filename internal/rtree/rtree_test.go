package rtree

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/metric"
)

func uniformDS(t testing.TB, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.Float64() * 100
		}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestTreeShape(t *testing.T) {
	ds := uniformDS(t, 1000, 4, 1)
	tr, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1000 {
		t.Errorf("size = %d", tr.Size())
	}
	// With maxEntries=16, 1000 points need at least 63 leaves.
	if tr.NodeCount() < 63 {
		t.Errorf("nodes = %d, implausibly few", tr.NodeCount())
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	ds := uniformDS(t, 800, 6, 2)
	tr, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	query := ds.PointCopy(11)
	got, st, err := tr.Search(query, 15)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Search(ds, query, 15, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Pos != want[i].Pos {
			t.Fatalf("rank %d: rtree %d (%.4f), brute %d (%.4f)",
				i, got[i].Pos, got[i].Dist, want[i].Pos, want[i].Dist)
		}
	}
	if st.NodesVisited >= st.TotalNodes {
		t.Errorf("no pruning at d=6: visited %d of %d", st.NodesVisited, st.TotalNodes)
	}
}

func TestSearchValidation(t *testing.T) {
	ds := uniformDS(t, 30, 3, 3)
	tr, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Search([]float64{1}, 3); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := tr.Search(make([]float64, 3), 0); err == nil {
		t.Error("k=0 accepted")
	}
	got, _, err := tr.Search(make([]float64, 3), 99)
	if err != nil || len(got) != 30 {
		t.Errorf("clamp: %d, %v", len(got), err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{7, 7}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tr.Search([]float64{7, 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0].Dist != 0 {
		t.Errorf("duplicate search = %+v", got)
	}
}

func TestPruningDegradesWithDimensionality(t *testing.T) {
	// The classic breakdown: the fraction of nodes visited approaches 1
	// as dimensionality grows on uniform data.
	fracAt := func(d int) float64 {
		ds := uniformDS(t, 2000, d, 4)
		tr, err := Build(ds)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := tr.Search(ds.PointCopy(0), 10)
		if err != nil {
			t.Fatal(err)
		}
		return float64(st.NodesVisited) / float64(st.TotalNodes)
	}
	low := fracAt(2)
	high := fracAt(30)
	if high <= 2*low {
		t.Errorf("node-visit fraction did not blow up: d=2 → %.3f, d=30 → %.3f", low, high)
	}
}

func TestPropertyRTreeExactness(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 20 + rr.Intn(200)
		d := 1 + rr.Intn(8)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rr.NormFloat64() * 10
			}
		}
		ds, err := dataset.New(rows, nil)
		if err != nil {
			return false
		}
		tr, err := Build(ds)
		if err != nil {
			return false
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rr.NormFloat64() * 10
		}
		k := 1 + rr.Intn(n)
		got, _, err := tr.Search(q, k)
		if err != nil {
			return false
		}
		want, err := knn.Search(ds, q, k, metric.Euclidean{})
		if err != nil {
			return false
		}
		for i := range want {
			const eps = 1e-9
			if diff := got[i].Dist - want[i].Dist; diff > eps || diff < -eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRTreeBuild5000x20(b *testing.B) {
	ds := uniformDS(b, 5000, 20, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRTreeSearch5000x20(b *testing.B) {
	ds := uniformDS(b, 5000, 20, 6)
	tr, err := Build(ds)
	if err != nil {
		b.Fatal(err)
	}
	q := ds.PointCopy(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// sinkDist defeats dead-code elimination in the allocation probes below.
var sinkDist float64

// TestPointRectAliasesRow pins the zero-copy representation: a point's
// degenerate rectangle shares the row's backing storage on both faces.
func TestPointRectAliasesRow(t *testing.T) {
	p := []float64{1, 2, 3}
	r := pointRect(p)
	p[1] = 42
	if r.lo[1] != 42 || r.hi[1] != 42 {
		t.Errorf("pointRect copied the row: lo=%v hi=%v", r.lo, r.hi)
	}
}

// TestPointRectAllocFree asserts the per-row access path — viewing a row
// as its rectangle and computing a minimum distance — allocates nothing.
func TestPointRectAllocFree(t *testing.T) {
	ds := uniformDS(t, 256, 32, 9)
	q := ds.PointCopy(0)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r := pointRect(ds.Point(i))
			sinkDist += r.minDist(q)
		}
	})
	if allocs != 0 {
		t.Errorf("pointRect+minDist allocated %v times per 64-row block, want 0", allocs)
	}
}

// TestBuildRetainsNoRowCopies bounds the tree's retained memory below one
// raw copy of the point data: entries are row positions and only node
// MBRs own storage, so the old copy-per-row build cost cannot sneak back.
func TestBuildRetainsNoRowCopies(t *testing.T) {
	const n, d = 2000, 64
	ds := uniformDS(t, n, d, 11)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	tr, err := Build(ds)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	retained := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	raw := int64(n * d * 8)
	if retained >= raw {
		t.Errorf("tree retains %d bytes, not below one raw data copy (%d bytes)", retained, raw)
	}
	runtime.KeepAlive(tr)
}
