// Package shard is the scatter-gather layer of the engine: a Coordinator
// that runs every per-row stage kernel — moment statistics, top-s nearest
// positions, density-grid contributions, candidate generation — as
// partial(shard) → mergeInOrder(partials) over P row-disjoint shards of
// the session's current working set.
//
// The merge layer is the point of the package (the FLANN distributed-
// matching shape: any local algorithm plus a merge): Shard is an
// interface whose methods take and return plain values, so a future
// remote shard can compute its partials in another process and ship them
// over a wire. This package ships the in-process implementation, Local,
// which reads a row window of a dataset view in place.
//
// Determinism contract (shared with the kernels in internal/dataset and
// internal/kde):
//
//   - the shard split depends only on (rows, P) via parallel.ShardBounds,
//     never on worker counts;
//   - each partial sweeps its rows in ascending order;
//   - partials merge serially in ascending shard order;
//   - any finishing arithmetic runs once, after the merge.
//
// Under these rules a P-sharded stage is bit-identical across runs and
// worker counts for fixed P; P=1 reproduces the unsharded kernels bit
// for bit (sessions bypass the coordinator entirely at Shards ≤ 1, so
// the parity there is trivially byte-level); and different P disagree
// only by re-association of per-entry float additions (≤ 1e-10
// relative), with top-s membership exactly preserved.
package shard

import (
	"context"
	"fmt"
	"sort"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

// Cand is one nearest-position candidate: a row position in the stage's
// input view and its exact projected distance to the query.
type Cand struct {
	Pos  int
	Dist float64
}

// candLess is the engine's strict total order on candidates: ascending
// distance, ascending position on ties — the tie-break that makes top-s
// merges deterministic.
func candLess(a, b Cand) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Pos < b.Pos
}

// Shard executes stage partials over one row window of the session's
// working set. Methods take and return plain values (vectors, moment
// structs, lattices, candidate lists) so that an implementation backed by
// a remote process only needs a serializable view of its own rows; Local
// is the in-process implementation. Every method honors context
// cancellation.
type Shard interface {
	// ID is the shard's index in the partition (0 … P−1); merges fold
	// results in ascending ID order.
	ID() int
	// Rows returns the shard's row window [lo, hi) in the stage input.
	Rows() (lo, hi int)

	// ColumnSums is the first-moment stats partial (dataset.ColumnSums).
	ColumnSums(ctx context.Context) (dataset.MomentSums, error)
	// CenteredMoment is the second-moment stats partial about the global
	// mean (dataset.CenteredMoment).
	CenteredMoment(ctx context.Context, mean linalg.Vector) (*linalg.Matrix, error)

	// Nearest returns the shard's k nearest rows to the projected query
	// qp under sub's projected distance, ascending (dist, pos).
	Nearest(ctx context.Context, sub *linalg.Subspace, qp linalg.Vector, k int) ([]Cand, error)

	// DensityExtent, DensitySpread and DensityLattice are the three
	// density partials (kde.CollectExtent / CollectSpread, and
	// kde.BinnedPartial or kde.ExactPartial per the grid's estimator).
	DensityExtent(ctx context.Context) (kde.Extent, error)
	DensitySpread(ctx context.Context, meanX, meanY float64) (kde.Spread, error)
	DensityLattice(ctx context.Context, g *kde.Grid) ([]float64, error)

	// BuildIndex (re)builds the shard's candidate-generation backend over
	// its rows; Candidates queries it for up to k candidates with
	// positions global to the stage input. CandidatesAxis is the
	// axis-subspace variant (index.AxisSearcher), erroring when the
	// shard's backend does not support axis masks.
	BuildIndex(ctx context.Context, cfg index.Config) error
	Candidates(ctx context.Context, q linalg.Vector, k int) ([]index.Candidate, index.Stats, error)
	CandidatesAxis(ctx context.Context, qaxis []float64, axes []int, k int) ([]index.Candidate, index.Stats, error)
}

// cancelStride is how many rows Local's sweep kernels process between
// context checks, so a canceled session abandons a scatter mid-shard.
const cancelStride = 1024

// Local is the in-process Shard: a row window over a dataset view (the
// stats and nearest stages), an XY source (the density stages), or both.
// Locals are cheap to construct — the coordinator builds a fresh set per
// stage input — except when they carry a built index backend, which the
// coordinator reuses across calls (and shares across sessions through
// index.Cache).
type Local struct {
	id, lo, hi int
	view       *dataset.View
	xy         kde.XYSource
	backend    index.Backend
}

// NewLocal returns a Local shard with the given ID over rows [lo, hi) of
// view v (may be nil for density-only shards) and XY source xy (may be
// nil for view-only shards).
func NewLocal(id int, lo, hi int, v *dataset.View, xy kde.XYSource) *Local {
	return &Local{id: id, lo: lo, hi: hi, view: v, xy: xy}
}

// ID implements Shard.
func (l *Local) ID() int { return l.id }

// Rows implements Shard.
func (l *Local) Rows() (lo, hi int) { return l.lo, l.hi }

func (l *Local) needView(stage string) error {
	if l.view == nil {
		return fmt.Errorf("shard %d: %s stage on a shard without a view", l.id, stage)
	}
	return nil
}

func (l *Local) needXY(stage string) error {
	if l.xy == nil {
		return fmt.Errorf("shard %d: %s stage on a shard without coordinates", l.id, stage)
	}
	return nil
}

// ColumnSums implements Shard.
func (l *Local) ColumnSums(ctx context.Context) (dataset.MomentSums, error) {
	if err := l.needView("stats"); err != nil {
		return dataset.MomentSums{}, err
	}
	return l.view.ColumnSums(ctx, l.lo, l.hi)
}

// CenteredMoment implements Shard.
func (l *Local) CenteredMoment(ctx context.Context, mean linalg.Vector) (*linalg.Matrix, error) {
	if err := l.needView("stats"); err != nil {
		return nil, err
	}
	return l.view.CenteredMoment(ctx, l.lo, l.hi, mean)
}

// Nearest implements Shard: an ascending sweep of the window computing
// exact projected distances, finished with the strict (dist, pos) order.
func (l *Local) Nearest(ctx context.Context, sub *linalg.Subspace, qp linalg.Vector, k int) ([]Cand, error) {
	if err := l.needView("nearest"); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	cands := make([]Cand, 0, l.hi-l.lo)
	for i := l.lo; i < l.hi; i++ {
		if (i-l.lo)%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cands = append(cands, Cand{Pos: i, Dist: sub.ProjDistTo(qp, l.view.Point(i))})
	}
	sort.Slice(cands, func(a, b int) bool { return candLess(cands[a], cands[b]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands, nil
}

// DensityExtent implements Shard.
func (l *Local) DensityExtent(ctx context.Context) (kde.Extent, error) {
	if err := l.needXY("density"); err != nil {
		return kde.Extent{}, err
	}
	if err := ctx.Err(); err != nil {
		return kde.Extent{}, err
	}
	return kde.CollectExtent(l.xy, l.lo, l.hi), nil
}

// DensitySpread implements Shard.
func (l *Local) DensitySpread(ctx context.Context, meanX, meanY float64) (kde.Spread, error) {
	if err := l.needXY("density"); err != nil {
		return kde.Spread{}, err
	}
	if err := ctx.Err(); err != nil {
		return kde.Spread{}, err
	}
	return kde.CollectSpread(l.xy, l.lo, l.hi, meanX, meanY), nil
}

// DensityLattice implements Shard, choosing the estimator the grid was
// planned for: CIC weights for binned grids, raw node sums for exact.
func (l *Local) DensityLattice(ctx context.Context, g *kde.Grid) ([]float64, error) {
	if err := l.needXY("density"); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if g.Binned {
		return kde.BinnedPartial(g, l.xy, l.lo, l.hi), nil
	}
	// Parallelism lives across shards; within a shard the exact kernel
	// runs serially.
	return kde.ExactPartial(ctx, g, l.xy, l.lo, l.hi, 1)
}

// windowSource adapts the shard's view window to index.Source: positions
// are local to the window, IDs resolve through to original rows.
type windowSource struct {
	v      *dataset.View
	lo, hi int
}

func (s windowSource) N() int                    { return s.hi - s.lo }
func (s windowSource) Dim() int                  { return s.v.Dim() }
func (s windowSource) Point(i int) linalg.Vector { return s.v.Point(s.lo + i) }
func (s windowSource) ID(i int) int              { return s.v.ID(s.lo + i) }

// BuildIndex implements Shard.
func (l *Local) BuildIndex(ctx context.Context, cfg index.Config) error {
	if err := l.needView("candidates"); err != nil {
		return err
	}
	b, err := index.New(cfg.Name)
	if err != nil {
		return err
	}
	if err := b.Build(ctx, windowSource{v: l.view, lo: l.lo, hi: l.hi}, cfg.Options); err != nil {
		return err
	}
	l.backend = b
	return nil
}

// SetBackend installs an already built backend (an index.Cache hit) in
// place of BuildIndex.
func (l *Local) SetBackend(b index.Backend) { l.backend = b }

// Backend returns the shard's built backend, or nil.
func (l *Local) Backend() index.Backend { return l.backend }

// Candidates implements Shard, translating window-local positions to
// stage-global ones.
func (l *Local) Candidates(ctx context.Context, q linalg.Vector, k int) ([]index.Candidate, index.Stats, error) {
	if l.backend == nil {
		return nil, index.Stats{}, fmt.Errorf("shard %d: candidates before BuildIndex", l.id)
	}
	cands, st, err := l.backend.KNN(ctx, q, k)
	if err != nil {
		return nil, st, err
	}
	for i := range cands {
		cands[i].Pos += l.lo
	}
	return cands, st, nil
}

// CandidatesAxis implements Shard: the backend's KNNAxis partial with
// positions translated to stage-global, like Candidates.
func (l *Local) CandidatesAxis(ctx context.Context, qaxis []float64, axes []int, k int) ([]index.Candidate, index.Stats, error) {
	if l.backend == nil {
		return nil, index.Stats{}, fmt.Errorf("shard %d: candidates before BuildIndex", l.id)
	}
	as, ok := l.backend.(index.AxisSearcher)
	if !ok {
		return nil, index.Stats{}, fmt.Errorf("shard %d: backend %s cannot serve axis scans", l.id, l.backend.Name())
	}
	cands, st, err := as.KNNAxis(ctx, qaxis, axes, k)
	if err != nil {
		return nil, st, err
	}
	for i := range cands {
		cands[i].Pos += l.lo
	}
	return cands, st, nil
}
