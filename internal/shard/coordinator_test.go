package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
	"innsearch/internal/telemetry"
)

func testDataset(t *testing.T, seed int64, n, d int) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64() * float64(j+1)
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testXY(t *testing.T, seed int64, n int) kde.MatrixXY {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		m.Set(i, 0, r.NormFloat64()*2+1)
		m.Set(i, 1, r.Float64()*8-4)
	}
	return kde.MatrixXY{M: m}
}

// recordTracer collects events for assertions; Emit may be called from
// the coordinator's driving goroutine only, but a mutex keeps it safe for
// any future concurrent use.
type recordTracer struct {
	mu     sync.Mutex
	events []telemetry.Event
}

func (r *recordTracer) Emit(e telemetry.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recordTracer) Now() time.Time { return time.Now() }

// TestCoordinatorStatsParity checks the stats stage against View.Stats:
// bit-identical at P=1, ≤ 1e-10 relative at P=4, pull-through for
// projected views, and per-view memoization.
func TestCoordinatorStatsParity(t *testing.T) {
	ctx := context.Background()
	v := testDataset(t, 7, 500, 6).View()
	want, err := v.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}

	c1 := New(Config{Shards: 1})
	got1, err := c1.Stats(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Mean {
		if got1.Mean[j] != want.Mean[j] {
			t.Fatalf("P=1 mean[%d] = %v, want %v (not bit-identical)", j, got1.Mean[j], want.Mean[j])
		}
	}
	for i := range want.Cov.Data {
		if got1.Cov.Data[i] != want.Cov.Data[i] {
			t.Fatalf("P=1 cov[%d] = %v, want %v (not bit-identical)", i, got1.Cov.Data[i], want.Cov.Data[i])
		}
	}

	c4 := New(Config{Shards: 4, Workers: 4})
	got4, err := c4.Stats(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	scale := want.Cov.MaxAbs()
	for i := range want.Cov.Data {
		if d := math.Abs(got4.Cov.Data[i] - want.Cov.Data[i]); d > 1e-10*scale {
			t.Fatalf("P=4 cov[%d] off by %v", i, d)
		}
	}

	// Projected views pull through the base's sharded stats.
	sub, err := linalg.AxisSubspace(6, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	pv, err := v.Compose(sub)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := pv.Stats(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := c4.Stats(ctx, pv)
	if err != nil {
		t.Fatal(err)
	}
	pscale := wantP.Cov.MaxAbs()
	for i := range wantP.Cov.Data {
		if d := math.Abs(gotP.Cov.Data[i] - wantP.Cov.Data[i]); d > 1e-10*pscale {
			t.Fatalf("projected cov[%d] off by %v", i, d)
		}
	}

	// Memoized: same pointer on the second ask.
	again, err := c4.Stats(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if again != got4 {
		t.Fatal("stats were recomputed instead of memoized")
	}
}

// TestCoordinatorNearestParity checks the top-s stage: the sharded merge
// must return exactly the unsharded top-k (positions and distances
// bitwise) in the strict (dist, pos) order.
func TestCoordinatorNearestParity(t *testing.T) {
	ctx := context.Background()
	v := testDataset(t, 11, 400, 5).View()
	sub, err := linalg.AxisSubspace(5, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	q := append(linalg.Vector(nil), v.Point(5)...)
	qp := sub.Project(q)
	const k = 17

	want := make([]Cand, 0, v.N())
	for i := 0; i < v.N(); i++ {
		want = append(want, Cand{Pos: i, Dist: sub.ProjDistTo(qp, v.Point(i))})
	}
	sort.Slice(want, func(a, b int) bool { return candLess(want[a], want[b]) })
	want = want[:k]

	for _, p := range []int{1, 4, 7} {
		c := New(Config{Shards: p, Workers: 3})
		got, err := c.Nearest(ctx, v, sub, qp, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("P=%d: nearest = %v, want %v", p, got, want)
		}
	}
}

// TestCoordinatorEstimate2DParity checks the density stage against the
// unsharded estimator for both estimators: bit-identical at P=1,
// ≤ 1e-10 relative at P=5, identical grid geometry at any P.
func TestCoordinatorEstimate2DParity(t *testing.T) {
	ctx := context.Background()
	src := testXY(t, 13, 600)
	for _, exact := range []bool{false, true} {
		opts := kde.Options{GridSize: 24, Exact: exact}
		want, err := kde.Estimate2DSourceContext(ctx, src, opts)
		if err != nil {
			t.Fatal(err)
		}

		got1, err := New(Config{Shards: 1}).Estimate2D(ctx, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Density {
			if got1.Density[i] != want.Density[i] {
				t.Fatalf("exact=%v P=1: density[%d] not bit-identical", exact, i)
			}
		}

		got5, err := New(Config{Shards: 5, Workers: 3}).Estimate2D(ctx, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Geometry derives from the merged coordinate sums (mean →
		// bandwidth → margins), so at P>1 it agrees to tolerance, not
		// bitwise.
		relClose := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-10*math.Max(math.Abs(a), math.Abs(b))
		}
		if !relClose(got5.MinX, want.MinX) || !relClose(got5.MaxX, want.MaxX) ||
			!relClose(got5.Hx, want.Hx) || !relClose(got5.Hy, want.Hy) {
			t.Fatalf("exact=%v P=5: grid geometry differs", exact)
		}
		scale := want.MaxDensity()
		for i := range want.Density {
			if d := math.Abs(got5.Density[i] - want.Density[i]); d > 1e-10*scale {
				t.Fatalf("exact=%v P=5: density[%d] off by %v", exact, i, d)
			}
		}
	}
}

// TestCoordinatorDeterministicAcrossWorkers is the acceptance-criteria
// determinism check: at fixed P every stage's result is bitwise identical
// at worker counts 1, 4 and 8.
func TestCoordinatorDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	v := testDataset(t, 17, 300, 4).View()
	src := testXY(t, 19, 300)
	sub, err := linalg.AxisSubspace(4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	qp := sub.Project(append(linalg.Vector(nil), v.Point(0)...))

	type result struct {
		stats   *dataset.ViewStats
		near    []Cand
		density []float64
	}
	run := func(workers int) result {
		c := New(Config{Shards: 3, Workers: workers})
		st, err := c.Stats(ctx, v)
		if err != nil {
			t.Fatal(err)
		}
		near, err := c.Nearest(ctx, v, sub, qp, 11)
		if err != nil {
			t.Fatal(err)
		}
		g, err := c.Estimate2D(ctx, src, kde.Options{GridSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		return result{stats: st, near: near, density: g.Density}
	}
	base := run(1)
	for _, w := range []int{4, 8} {
		got := run(w)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: results differ from workers=1 at fixed P", w)
		}
	}
}

// blockingShard wedges its first stats partial until its context is
// canceled — the fake remote shard of the cancellation acceptance test.
type blockingShard struct {
	*Local
	started chan struct{}
}

func (b *blockingShard) ColumnSums(ctx context.Context) (dataset.MomentSums, error) {
	close(b.started)
	<-ctx.Done()
	return dataset.MomentSums{}, ctx.Err()
}

// TestCoordinatorCancellationMidScatter checks that canceling the session
// context while a scatter is in flight aborts the stage with the
// context's error instead of hanging on the barrier.
func TestCoordinatorCancellationMidScatter(t *testing.T) {
	v := testDataset(t, 23, 200, 3).View()
	c := New(Config{Shards: 2, Workers: 2})
	blocked := &blockingShard{Local: NewLocal(1, 100, 200, v, nil), started: make(chan struct{})}
	c.mkShards = func(view *dataset.View, _ kde.XYSource, n int) []Shard {
		return []Shard{NewLocal(0, 0, 100, view, nil), blocked}
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Stats(ctx, v)
		errc <- err
	}()
	<-blocked.started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not abort a mid-scatter cancellation")
	}

	// A pre-canceled context never starts the scatter.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	c2 := New(Config{Shards: 2})
	if _, err := c2.Stats(pre, v); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Stats: got %v, want context.Canceled", err)
	}
}

// TestCoordinatorTelemetry checks the event protocol: per sharded stage
// one shard_scatter annotation followed by exactly P shard_gather span
// ends in ascending shard order and one closing scatter-stage span, with
// shard row counts summing to n and every event linked into the span the
// scatter opened.
func TestCoordinatorTelemetry(t *testing.T) {
	ctx := context.Background()
	v := testDataset(t, 29, 250, 4).View()
	tr := &recordTracer{}
	c := New(Config{Shards: 4, Workers: 2, Tracer: tr})
	c.SetSpan("s/r1/v1.axis/proj")
	if _, err := c.Stats(ctx, v); err != nil {
		t.Fatal(err)
	}

	wantStages := []string{"stats/sums", "stats/moments"}
	i := 0
	for seq, stage := range wantStages {
		if i >= len(tr.events) {
			t.Fatalf("missing scatter for stage %q", stage)
		}
		spanID := fmt.Sprintf("s/r1/v1.axis/proj/%s#%d", stage, seq+1)
		e := tr.events[i]
		if e.Type != telemetry.EventShardScatter || e.Stage != stage || e.Shards != 4 || e.N != 250 {
			t.Fatalf("event %d = %+v, want scatter of %q over 4 shards / 250 rows", i, e, stage)
		}
		if e.Span != "" || e.Parent != spanID {
			t.Fatalf("scatter %d span/parent = %q/%q, want annotation under %q", i, e.Span, e.Parent, spanID)
		}
		i++
		rows := 0
		for s := 0; s < 4; s++ {
			g := tr.events[i]
			if g.Type != telemetry.EventShardGather || g.Stage != stage || g.Shard != s {
				t.Fatalf("event %d = %+v, want gather of %q shard %d", i, g, stage, s)
			}
			if want := fmt.Sprintf("%s/sh%d", spanID, s); g.Span != want || g.Parent != spanID {
				t.Fatalf("gather %d span/parent = %q/%q, want shard span %q", i, g.Span, g.Parent, want)
			}
			rows += g.N
			i++
		}
		if rows != 250 {
			t.Fatalf("stage %q gathered %d rows, want 250", stage, rows)
		}
		end := tr.events[i]
		if end.Type != telemetry.EventSpan || end.Stage != stage || end.Shards != 4 || end.N != 250 {
			t.Fatalf("event %d = %+v, want scatter-stage span end for %q", i, end, stage)
		}
		if end.Span != spanID || end.Parent != "s/r1/v1.axis/proj" {
			t.Fatalf("stage span end span/parent = %q/%q, want %q under the configured parent", end.Span, end.Parent, spanID)
		}
		i++
	}
	if i != len(tr.events) {
		t.Fatalf("unexpected trailing events: %+v", tr.events[i:])
	}
}

// TestCoordinatorTelemetryUnparented checks scatter span IDs without a
// configured parent: bare "stage#seq" roots, still unique via the
// monotonic ordinal.
func TestCoordinatorTelemetryUnparented(t *testing.T) {
	ctx := context.Background()
	v := testDataset(t, 31, 120, 3).View()
	tr := &recordTracer{}
	c := New(Config{Shards: 2, Workers: 2, Tracer: tr})
	if _, err := c.Stats(ctx, v); err != nil {
		t.Fatal(err)
	}
	var ends []telemetry.Event
	for _, e := range tr.events {
		if e.Type == telemetry.EventSpan {
			ends = append(ends, e)
		}
	}
	if len(ends) != 2 {
		t.Fatalf("got %d scatter-stage spans, want 2", len(ends))
	}
	if ends[0].Span != "stats/sums#1" || ends[1].Span != "stats/moments#2" || ends[0].Parent != "" {
		t.Fatalf("unparented span IDs = %q (parent %q), %q", ends[0].Span, ends[0].Parent, ends[1].Span)
	}
}

// TestCoordinatorIndexStage checks candidate generation: per-shard exact
// backends must reproduce the unsharded exact top-k member set, builds
// are reused while the view is unchanged, and a shared cache turns a
// second coordinator's builds into hits.
func TestCoordinatorIndexStage(t *testing.T) {
	ctx := context.Background()
	v := testDataset(t, 31, 300, 4).View()
	cfg := index.Config{Name: "exact"}
	q := append(linalg.Vector(nil), v.Point(42)...)
	const k = 9

	ref, err := index.New("exact")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Build(ctx, windowSource{v: v, lo: 0, hi: v.N()}, cfg.Options); err != nil {
		t.Fatal(err)
	}
	want, _, err := ref.KNN(ctx, q, k)
	if err != nil {
		t.Fatal(err)
	}

	cache := index.NewCache(0)
	c := New(Config{Shards: 4, Workers: 2, Cache: cache})
	if _, _, err := c.Candidates(ctx, v, q, k); err == nil {
		t.Fatal("Candidates before EnsureIndex succeeded")
	}
	builds, err := c.EnsureIndex(ctx, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(builds) != 4 {
		t.Fatalf("%d builds, want 4", len(builds))
	}
	for _, b := range builds {
		if b.Hit {
			t.Fatalf("shard %d build was a cache hit on a cold cache", b.Shard)
		}
	}
	got, _, err := c.Candidates(ctx, v, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded candidates = %v, want %v", got, want)
	}

	// Unchanged view: no rebuild.
	if again, err := c.EnsureIndex(ctx, v, cfg); err != nil || again != nil {
		t.Fatalf("re-ensure: builds=%v err=%v, want nil/nil", again, err)
	}

	// A second coordinator sharing the cache hits every shard.
	c2 := New(Config{Shards: 4, Workers: 2, Cache: cache})
	builds2, err := c2.EnsureIndex(ctx, v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range builds2 {
		if !b.Hit {
			t.Fatalf("shard %d rebuilt despite a warm shared cache", b.Shard)
		}
	}
	got2, _, err := c2.Candidates(ctx, v, q, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("cache-served candidates differ")
	}

	// InvalidateIndex drops the shard set; the next ensure rebuilds (all
	// hits, served by the cache).
	c.InvalidateIndex()
	if builds3, err := c.EnsureIndex(ctx, v, cfg); err != nil || builds3 == nil {
		t.Fatalf("ensure after invalidate: builds=%v err=%v", builds3, err)
	}
}
