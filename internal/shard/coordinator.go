package shard

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
	"innsearch/internal/parallel"
	"innsearch/internal/telemetry"
)

// Config tunes a Coordinator.
type Config struct {
	// Shards is P, the number of row-disjoint partitions every stage
	// scatters over. Values ≤ 1 are legal (the coordinator degenerates to
	// one full-range shard), but sessions bypass the coordinator entirely
	// at Shards ≤ 1 so the legacy single-partition path stays byte-level
	// identical.
	Shards int
	// Workers bounds the goroutines running shard partials concurrently;
	// ≤ 0 means GOMAXPROCS. Worker count never affects results — the
	// partition depends only on (rows, Shards) and merges are serial.
	Workers int
	// Tracer, when non-nil, receives shard_scatter / shard_gather events.
	Tracer telemetry.Tracer
	// Cache, when non-nil, shares built per-shard index backends across
	// sessions on the same view generation.
	Cache *index.Cache
}

// Coordinator scatter-gathers stage partials over P row-disjoint shards
// and merges them in ascending shard order. It is owned by a single
// session goroutine, like the session itself: methods must not be called
// concurrently (the parallelism lives inside the scatter).
type Coordinator struct {
	p       int
	workers int
	tr      telemetry.Tracer
	cache   *index.Cache

	// stats memoizes per-view statistics for the session's view chain —
	// the sharded mirror of View.Stats' own memo, needed here because the
	// sharded moments must not fall back to the view's unsharded pass.
	stats map[*dataset.View]*dataset.ViewStats

	// idxView/idxShards pin the shard set whose index backends are built,
	// so candidate queries reuse builds until the view changes.
	idxView   *dataset.View
	idxShards []Shard

	// span is the parent span ID the next scatter links under (set by the
	// session as it moves through stages, "" when untraced); seq is the
	// monotonic scatter ordinal that makes scatter span IDs unique. Both
	// live on the session goroutine, like everything else here.
	span string
	seq  int

	// mkShards overrides shard construction in tests (e.g. to inject a
	// blocking shard and prove mid-scatter cancellation).
	mkShards func(v *dataset.View, xy kde.XYSource, n int) []Shard
}

// New returns a coordinator for cfg.
func New(cfg Config) *Coordinator {
	return &Coordinator{
		p:       cfg.Shards,
		workers: cfg.Workers,
		tr:      cfg.Tracer,
		cache:   cfg.Cache,
		stats:   make(map[*dataset.View]*dataset.ViewStats),
	}
}

// Shards returns P as configured.
func (c *Coordinator) Shards() int { return c.p }

// SetSpan sets the parent span subsequent scatters link under, "" to
// unlink. Sessions call it as they enter each traced stage; untraced
// sessions never call it, so the coordinator stays allocation-free.
func (c *Coordinator) SetSpan(parent string) { c.span = parent }

// shardsFor builds the stage's shard set: min(P, n) windows cut by
// parallel.ShardBounds — a function of (n, P) only, never of workers, so
// the partition (and therefore every merge) is identical across runs and
// worker counts.
func (c *Coordinator) shardsFor(v *dataset.View, xy kde.XYSource, n int) []Shard {
	if c.mkShards != nil {
		return c.mkShards(v, xy, n)
	}
	p := c.p
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	out := make([]Shard, p)
	for i := range out {
		lo, hi := parallel.ShardBounds(n, p, i)
		out[i] = NewLocal(i, lo, hi, v, xy)
	}
	return out
}

// scatter fans run out over the shards with the session's worker budget
// and waits for all of them. Telemetry: one scatter-stage span per call
// with one shard span per shard — a shard_scatter annotation before the
// fan-out, then, after the barrier in ascending shard order (the merge
// order), one shard_gather span end per shard carrying the partial's
// wall time, then the stage's own span end, so a trace reader sees
// scatter → gather·P → span per sharded stage. Everything is emitted
// from the calling goroutine, so injected single-goroutine tracer clocks
// stay safe; the per-shard durations are measured with the real clock
// inside the workers (the only non-deterministic field of the stream).
func (c *Coordinator) scatter(ctx context.Context, stage string, shards []Shard, n int, run func(ctx context.Context, s Shard) error) error {
	var span telemetry.Span
	if c.tr != nil {
		c.seq++
		id := stage + "#" + strconv.Itoa(c.seq)
		if c.span != "" {
			id = c.span + "/" + id
		}
		span = telemetry.StartSpan(c.tr, id, c.span)
		span.Annotate(telemetry.Event{
			Type:   telemetry.EventShardScatter,
			Stage:  stage,
			Shards: len(shards),
			N:      n,
		})
	}
	durs := make([]time.Duration, len(shards))
	err := parallel.For(ctx, c.workers, len(shards), func(ctx context.Context, i int) error {
		start := time.Now()
		err := run(ctx, shards[i])
		durs[i] = time.Since(start)
		return err
	})
	if err != nil {
		return err
	}
	if c.tr != nil {
		for i, s := range shards {
			lo, hi := s.Rows()
			span.ChildEnd("sh"+strconv.Itoa(s.ID()), telemetry.Event{
				Type:       telemetry.EventShardGather,
				Stage:      stage,
				Shard:      s.ID(),
				Shards:     len(shards),
				N:          hi - lo,
				DurationMS: float64(durs[i]) / float64(time.Millisecond),
			})
		}
		span.End(telemetry.Event{
			Type:   telemetry.EventSpan,
			Stage:  stage,
			Shards: len(shards),
			N:      n,
		})
	}
	return nil
}

// Stats is the sharded mirror of View.Stats: projected views pull their
// base's statistics through the projection (no row data touched), ambient
// views run the two-pass scattered moment kernels. Results are memoized
// per view, like the view's own memo.
func (c *Coordinator) Stats(ctx context.Context, v *dataset.View) (*dataset.ViewStats, error) {
	if st, ok := c.stats[v]; ok {
		return st, nil
	}
	base, proj := v.Base()
	var st *dataset.ViewStats
	if base != nil {
		bst, err := c.Stats(ctx, base)
		if err != nil {
			return nil, err
		}
		cov, err := proj.PullThroughCov(bst.Cov)
		if err != nil {
			return nil, err
		}
		st = &dataset.ViewStats{Mean: proj.Project(bst.Mean), Cov: cov}
	} else {
		var err error
		st, err = c.momentStats(ctx, v)
		if err != nil {
			return nil, err
		}
	}
	c.stats[v] = st
	return st, nil
}

// momentStats runs the two scattered moment passes: per-shard column sums
// → global mean, then per-shard centered second moments about that mean,
// merged in shard order and finished once.
func (c *Coordinator) momentStats(ctx context.Context, v *dataset.View) (*dataset.ViewStats, error) {
	n := v.N()
	shards := c.shardsFor(v, nil, n)
	sums := make([]dataset.MomentSums, len(shards))
	err := c.scatter(ctx, "stats/sums", shards, n, func(ctx context.Context, s Shard) error {
		ms, err := s.ColumnSums(ctx)
		if err != nil {
			return err
		}
		sums[s.ID()] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged, err := dataset.MergeMomentSums(sums)
	if err != nil {
		return nil, err
	}
	mean := merged.Mean()
	m2s := make([]*linalg.Matrix, len(shards))
	err = c.scatter(ctx, "stats/moments", shards, n, func(ctx context.Context, s Shard) error {
		m2, err := s.CenteredMoment(ctx, mean)
		if err != nil {
			return err
		}
		m2s[s.ID()] = m2
		return nil
	})
	if err != nil {
		return nil, err
	}
	m2, err := dataset.MergeCenteredMoments(m2s)
	if err != nil {
		return nil, err
	}
	return dataset.FinishStats(merged, m2)
}

// Nearest scatter-gathers the top-s stage: per-shard exact top-k under
// the strict (dist, pos) order, merged by re-sorting the ≤ P·k survivors
// under the same order and truncating — the member set is exactly the
// unsharded top-k because every distance is computed by the same kernel.
func (c *Coordinator) Nearest(ctx context.Context, v *dataset.View, sub *linalg.Subspace, qp linalg.Vector, k int) ([]Cand, error) {
	n := v.N()
	shards := c.shardsFor(v, nil, n)
	parts := make([][]Cand, len(shards))
	err := c.scatter(ctx, "nearest", shards, n, func(ctx context.Context, s Shard) error {
		cs, err := s.Nearest(ctx, sub, qp, k)
		if err != nil {
			return err
		}
		parts[s.ID()] = cs
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []Cand
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Slice(all, func(a, b int) bool { return candLess(all[a], all[b]) })
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// Estimate2D scatter-gathers the density stage over src's rows: extent →
// spread → lattice partials, merged in shard order, planned and finished
// once — the composition Estimate2DSourceContext runs as a single
// full-range partial.
func (c *Coordinator) Estimate2D(ctx context.Context, src kde.XYSource, opts kde.Options) (*kde.Grid, error) {
	n := src.Len()
	shards := c.shardsFor(nil, src, n)
	exts := make([]kde.Extent, len(shards))
	err := c.scatter(ctx, "kde/extent", shards, n, func(ctx context.Context, s Shard) error {
		e, err := s.DensityExtent(ctx)
		if err != nil {
			return err
		}
		exts[s.ID()] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	ext := kde.MergeExtents(exts)
	if ext.N == 0 || ext.BadRow >= 0 {
		// PlanGrid produces the estimator's error for both degenerate
		// merges (and for invalid options, checked first, as in the
		// unsharded entry points).
		_, err := kde.PlanGrid(ext, kde.Spread{N: ext.N}, opts)
		if err == nil {
			err = fmt.Errorf("shard: degenerate extent not rejected")
		}
		return nil, err
	}
	meanX, meanY := ext.Mean()
	sprs := make([]kde.Spread, len(shards))
	err = c.scatter(ctx, "kde/spread", shards, n, func(ctx context.Context, s Shard) error {
		sp, err := s.DensitySpread(ctx, meanX, meanY)
		if err != nil {
			return err
		}
		sprs[s.ID()] = sp
		return nil
	})
	if err != nil {
		return nil, err
	}
	g, err := kde.PlanGrid(ext, kde.MergeSpreads(sprs), opts)
	if err != nil {
		return nil, err
	}
	var start time.Time
	if opts.Clock != nil {
		start = opts.Clock()
	}
	parts := make([][]float64, len(shards))
	err = c.scatter(ctx, "kde/lattice", shards, n, func(ctx context.Context, s Shard) error {
		l, err := s.DensityLattice(ctx, g)
		if err != nil {
			return err
		}
		parts[s.ID()] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	lattice, err := kde.MergeLattices(parts)
	if err != nil {
		return nil, err
	}
	if g.Binned {
		if err := kde.FinishBinned(ctx, g, lattice, opts.Workers); err != nil {
			return nil, err
		}
	} else {
		kde.FinishExact(g, lattice)
	}
	if opts.Clock != nil {
		g.BuildTime = opts.Clock().Sub(start)
	}
	return g, nil
}

// IndexBuild describes one shard's backend build from EnsureIndex.
type IndexBuild struct {
	Shard int
	// N is the shard's row count.
	N int
	// Hit reports a cache reuse (no build ran).
	Hit bool
	// Derived reports that the shard's backend was derived from the
	// previous view's shard (index.Deriver) instead of built fresh;
	// ParentN is that parent shard's row count.
	Derived bool
	ParentN int
	// DurationMS is the build (or cache wait) wall time.
	DurationMS float64
}

// EnsureIndex builds the per-shard candidate backends over v, reusing
// them while the view is unchanged and sharing builds across sessions
// through the cache when one is configured. It returns per-shard build
// records (nil when the shard set was already in place).
//
// When v is a pure row narrowing of the view the current shard set was
// built over and the backend can derive (index.Deriver), the new shards
// inherit the parent partition's boundaries: child rows are grouped by
// which parent shard window their parent position falls into, so every
// child shard derives from exactly one parent shard in O(n′). The child
// windows are contiguous (prune rows are ascending) but possibly uneven;
// parent shards that lost every row produce no child shard. Only the
// index shard set uses inherited boundaries — every other stage keeps
// its fresh ShardBounds cut.
func (c *Coordinator) EnsureIndex(ctx context.Context, v *dataset.View, cfg index.Config) ([]IndexBuild, error) {
	if c.idxView == v && c.idxShards != nil {
		return nil, nil
	}
	if builds, ok, err := c.deriveIndex(ctx, v, cfg); ok || err != nil {
		return builds, err
	}
	n := v.N()
	shards := c.shardsFor(v, nil, n)
	builds := make([]IndexBuild, len(shards))
	err := c.scatter(ctx, "index/build", shards, n, func(ctx context.Context, s Shard) error {
		lo, hi := s.Rows()
		start := time.Now()
		hit := false
		if l, ok := s.(*Local); ok && c.cache != nil {
			key := index.CacheKey{Source: v, Shard: s.ID(), Shards: len(shards), Name: cfg.Name, Options: cfg.Options}
			b, h, err := c.cache.Get(ctx, key, func(ctx context.Context) (index.Backend, error) {
				if err := l.BuildIndex(ctx, cfg); err != nil {
					return nil, err
				}
				return l.Backend(), nil
			})
			if err != nil {
				return err
			}
			hit = h
			l.SetBackend(b)
		} else if err := s.BuildIndex(ctx, cfg); err != nil {
			return err
		}
		builds[s.ID()] = IndexBuild{
			Shard:      s.ID(),
			N:          hi - lo,
			Hit:        hit,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.idxView, c.idxShards = v, shards
	return builds, nil
}

// deriveIndex attempts the inherited-boundary derivation described on
// EnsureIndex. ok reports whether it applied; when false (no parent shard
// set, not a row narrowing, rows not ascending, or a backend that cannot
// derive) the caller builds fresh.
func (c *Coordinator) deriveIndex(ctx context.Context, v *dataset.View, cfg index.Config) ([]IndexBuild, bool, error) {
	if c.idxView == nil || c.idxShards == nil {
		return nil, false, nil
	}
	rows, ok := dataset.RowsBetween(c.idxView, v)
	if !ok || rows == nil {
		return nil, false, nil
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] <= rows[i-1] {
			return nil, false, nil // not an ascending narrowing; rebuild
		}
	}
	parents := make([]*Local, 0, len(c.idxShards))
	for _, s := range c.idxShards {
		l, isLocal := s.(*Local)
		if !isLocal || l.backend == nil {
			return nil, false, nil
		}
		if _, canDerive := l.backend.(index.Deriver); !canDerive {
			return nil, false, nil
		}
		parents = append(parents, l)
	}
	parentView := c.idxView
	// Partition child rows by parent shard window: contiguous because the
	// rows are ascending and the parent windows tile [0, parentN).
	type window struct {
		parent   *Local
		clo, chi int // child row window
	}
	var wins []window
	t := 0
	for _, p := range parents {
		plo, phi := p.Rows()
		clo := t
		for t < len(rows) && rows[t] < phi {
			if rows[t] < plo {
				return nil, false, nil // row behind its window; malformed chain
			}
			t++
		}
		if t > clo {
			wins = append(wins, window{parent: p, clo: clo, chi: t})
		}
	}
	if t != len(rows) || len(wins) == 0 {
		return nil, false, nil // rows outside every parent window
	}
	shards := make([]Shard, len(wins))
	for i, w := range wins {
		shards[i] = NewLocal(i, w.clo, w.chi, v, nil)
	}
	builds := make([]IndexBuild, len(shards))
	err := c.scatter(ctx, "index/build", shards, v.N(), func(ctx context.Context, s Shard) error {
		w := wins[s.ID()]
		l := s.(*Local)
		plo, phi := w.parent.Rows()
		der := w.parent.backend.(index.Deriver)
		// Window-local mapping: child row t of this shard sits at parent
		// window position rows[clo+t]−plo.
		childRows := make([]int, w.chi-w.clo)
		for i := range childRows {
			childRows[i] = rows[w.clo+i] - plo
		}
		child := windowSource{v: v, lo: w.clo, hi: w.chi}
		start := time.Now()
		hit := false
		if c.cache != nil {
			key := index.CacheKey{Source: v, Shard: s.ID(), Shards: len(shards), Name: cfg.Name, Options: cfg.Options, Parent: parentView}
			b, h, err := c.cache.Get(ctx, key, func(ctx context.Context) (index.Backend, error) {
				return der.Derive(ctx, w.parent.backend, child, childRows)
			})
			if err != nil {
				return err
			}
			hit = h
			l.SetBackend(b)
		} else {
			b, err := der.Derive(ctx, w.parent.backend, child, childRows)
			if err != nil {
				return err
			}
			l.SetBackend(b)
		}
		builds[s.ID()] = IndexBuild{
			Shard:      s.ID(),
			N:          w.chi - w.clo,
			Hit:        hit,
			Derived:    true,
			ParentN:    phi - plo,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	c.idxView, c.idxShards = v, shards
	return builds, true, nil
}

// Candidates scatter-gathers the candidate-generation stage over the
// backends EnsureIndex built: per-shard KNN with globally translated
// positions, merged under (dist, pos) and truncated to k. Per-shard query
// stats accumulate in shard order.
func (c *Coordinator) Candidates(ctx context.Context, v *dataset.View, q linalg.Vector, k int) ([]index.Candidate, index.Stats, error) {
	if c.idxView != v || c.idxShards == nil {
		return nil, index.Stats{}, fmt.Errorf("shard: Candidates before EnsureIndex for this view")
	}
	shards := c.idxShards
	parts := make([][]index.Candidate, len(shards))
	stats := make([]index.Stats, len(shards))
	err := c.scatter(ctx, "candidates", shards, v.N(), func(ctx context.Context, s Shard) error {
		cs, st, err := s.Candidates(ctx, q, k)
		if err != nil {
			return err
		}
		parts[s.ID()], stats[s.ID()] = cs, st
		return nil
	})
	if err != nil {
		return nil, index.Stats{}, err
	}
	var all []index.Candidate
	var total index.Stats
	for i, p := range parts {
		all = append(all, p...)
		total.Add(stats[i])
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Pos < all[b].Pos
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, total, nil
}

// CandidatesAxis scatter-gathers the axis-subspace candidate stage over
// the backends EnsureIndex built: per-shard KNNAxis with globally
// translated positions, merged under (dist, pos) and truncated to k —
// the same merge as Candidates.
func (c *Coordinator) CandidatesAxis(ctx context.Context, v *dataset.View, qaxis []float64, axes []int, k int) ([]index.Candidate, index.Stats, error) {
	if c.idxView != v || c.idxShards == nil {
		return nil, index.Stats{}, fmt.Errorf("shard: CandidatesAxis before EnsureIndex for this view")
	}
	shards := c.idxShards
	parts := make([][]index.Candidate, len(shards))
	stats := make([]index.Stats, len(shards))
	err := c.scatter(ctx, "candidates", shards, v.N(), func(ctx context.Context, s Shard) error {
		cs, st, err := s.CandidatesAxis(ctx, qaxis, axes, k)
		if err != nil {
			return err
		}
		parts[s.ID()], stats[s.ID()] = cs, st
		return nil
	})
	if err != nil {
		return nil, index.Stats{}, err
	}
	var all []index.Candidate
	var total index.Stats
	for i, p := range parts {
		all = append(all, p...)
		total.Add(stats[i])
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Dist != all[b].Dist {
			return all[a].Dist < all[b].Dist
		}
		return all[a].Pos < all[b].Pos
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, total, nil
}

// InvalidateIndex drops the coordinator's built shard backends (the view
// changed, e.g. rows were pruned).
func (c *Coordinator) InvalidateIndex() {
	c.idxView, c.idxShards = nil, nil
}
