package contrast

import (
	"errors"
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/metric"
)

func uniformDS(t *testing.T, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.Float64()
		}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRelativeContrastKnown(t *testing.T) {
	ds, err := dataset.New([][]float64{{0}, {1}, {3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Query at 0: distances {0, 1, 3}; zero excluded → (3−1)/1 = 2.
	rc, err := RelativeContrast(ds, []float64{0}, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if rc != 2 {
		t.Errorf("contrast = %v, want 2", rc)
	}
}

func TestRelativeContrastDegenerate(t *testing.T) {
	ds, _ := dataset.New([][]float64{{5}, {5}, {5}}, nil)
	rc, err := RelativeContrast(ds, []float64{5}, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if rc != 0 {
		t.Errorf("all-identical contrast = %v", rc)
	}
	one, _ := dataset.New([][]float64{{1}}, nil)
	if _, err := RelativeContrast(one, []float64{0}, metric.Euclidean{}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("single point: %v", err)
	}
}

func TestContrastCollapsesWithDimension(t *testing.T) {
	// The headline motivation: contrast at d=2 far exceeds contrast at
	// d=100 for uniform data.
	low := uniformDS(t, 500, 2, 1)
	high := uniformDS(t, 500, 100, 1)
	qLow := low.PointCopy(0)
	qHigh := high.PointCopy(0)
	rcLow, err := RelativeContrast(low, qLow, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	rcHigh, err := RelativeContrast(high, qHigh, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if rcLow < 3*rcHigh {
		t.Errorf("contrast low-d %v vs high-d %v: no collapse", rcLow, rcHigh)
	}
}

func TestInstability(t *testing.T) {
	// One very close point, the rest far: stable query.
	ds, _ := dataset.New([][]float64{{0.01}, {10}, {11}, {12}}, nil)
	inst, err := Instability(ds, []float64{0}, metric.Euclidean{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if inst != 0.25 {
		t.Errorf("stable instability = %v, want 0.25", inst)
	}
	// All points nearly equidistant: unstable.
	ds2, _ := dataset.New([][]float64{{1}, {1.01}, {1.02}, {0.99}}, nil)
	inst2, err := Instability(ds2, []float64{0}, metric.Euclidean{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if inst2 != 1 {
		t.Errorf("unstable instability = %v, want 1", inst2)
	}
	if _, err := Instability(ds, []float64{0}, metric.Euclidean{}, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestInstabilityGrowsWithDimension(t *testing.T) {
	low := uniformDS(t, 400, 2, 3)
	high := uniformDS(t, 400, 80, 3)
	iLow, err := Instability(low, low.PointCopy(0), metric.Euclidean{}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	iHigh, err := Instability(high, high.PointCopy(0), metric.Euclidean{}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if iHigh <= iLow {
		t.Errorf("instability low %v vs high %v: no growth", iLow, iHigh)
	}
}

func TestRankDisagreement(t *testing.T) {
	ds := uniformDS(t, 200, 30, 4)
	q := ds.PointCopy(0)
	same, err := RankDisagreement(ds, q, metric.Euclidean{}, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if same != 0 {
		t.Errorf("self-disagreement = %v", same)
	}
	diff, err := RankDisagreement(ds, q, metric.Euclidean{}, metric.Chebyshev{})
	if err != nil {
		t.Fatal(err)
	}
	if diff <= 0 || diff > 1 {
		t.Errorf("L2-vs-Linf disagreement = %v", diff)
	}
	// In high dimensions fractional and max metrics disagree more than
	// L1 and L2 do.
	frac, err := RankDisagreement(ds, q, metric.LP{P: 0.5}, metric.Chebyshev{})
	if err != nil {
		t.Fatal(err)
	}
	l1l2, err := RankDisagreement(ds, q, metric.Manhattan{}, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if frac <= l1l2 {
		t.Errorf("L0.5-vs-Linf %v should exceed L1-vs-L2 %v", frac, l1l2)
	}
}

func TestSweepDims(t *testing.T) {
	ds := uniformDS(t, 300, 50, 5)
	res, err := SweepDims(ds, 0, []int{2, 10, 50}, metric.Euclidean{}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("rows = %d", len(res))
	}
	if res[0].RelativeContrast <= res[2].RelativeContrast {
		t.Errorf("sweep contrast did not fall: %v vs %v",
			res[0].RelativeContrast, res[2].RelativeContrast)
	}
	if res[0].Dim != 2 || res[2].Dim != 50 {
		t.Errorf("dims = %v", res)
	}
}

func TestSweepDimsErrors(t *testing.T) {
	ds := uniformDS(t, 50, 10, 6)
	if _, err := SweepDims(ds, -1, []int{2}, metric.Euclidean{}, 0.2); err == nil {
		t.Error("bad query row accepted")
	}
	if _, err := SweepDims(ds, 0, []int{5, 2}, metric.Euclidean{}, 0.2); err == nil {
		t.Error("unsorted dims accepted")
	}
	if _, err := SweepDims(ds, 0, []int{0}, metric.Euclidean{}, 0.2); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := SweepDims(ds, 0, []int{99}, metric.Euclidean{}, 0.2); err == nil {
		t.Error("oversized dim accepted")
	}
}

func TestMetricTau(t *testing.T) {
	ds := uniformDS(t, 150, 30, 7)
	q := ds.PointCopy(0)
	self, err := MetricTau(ds, q, metric.Euclidean{}, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if self != 1 {
		t.Errorf("self tau = %v", self)
	}
	// L1 and L2 stay far more concordant than L0.5 and L∞.
	close, err := MetricTau(ds, q, metric.Manhattan{}, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	far, err := MetricTau(ds, q, metric.LP{P: 0.5}, metric.Chebyshev{})
	if err != nil {
		t.Fatal(err)
	}
	if close <= far {
		t.Errorf("tau(L1,L2)=%v should exceed tau(L0.5,Linf)=%v", close, far)
	}
	one, _ := dataset.New([][]float64{{1}}, nil)
	if _, err := MetricTau(one, []float64{0}, metric.Euclidean{}, metric.Euclidean{}); err == nil {
		t.Error("single point accepted")
	}
}
