// Package contrast implements the meaningfulness diagnostics from the
// theory the paper builds on (Beyer et al., ICDT 1999; Hinneburg,
// Aggarwal & Keim, VLDB 2000): relative distance contrast, query
// instability, and cross-metric rank disagreement. These quantify §1.1's
// motivation — that in high dimensions the nearest and farthest neighbors
// converge and different metrics order the data differently — and drive
// the dimensionality-sweep experiment.
package contrast

import (
	"errors"
	"fmt"
	"sort"

	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/metric"
	"innsearch/internal/stats"
)

// ErrTooFewPoints indicates a dataset too small to measure contrast.
var ErrTooFewPoints = errors.New("contrast: need at least two points")

// RelativeContrast returns (Dmax − Dmin) / Dmin for the distances from
// query to every point of ds under m — the classic meaningfulness
// statistic. It tends to 0 as dimensionality grows for i.i.d. data.
// Identical points (Dmin = 0) are excluded from the minimum; if every
// distance is zero the contrast is 0.
func RelativeContrast(ds *dataset.Dataset, query []float64, m metric.Metric) (float64, error) {
	if ds.N() < 2 {
		return 0, ErrTooFewPoints
	}
	dists, err := knn.Distances(ds, query, m)
	if err != nil {
		return 0, err
	}
	dmin, dmax := -1.0, 0.0
	for _, d := range dists {
		if d == 0 {
			continue // the query itself, or an exact duplicate
		}
		if dmin < 0 || d < dmin {
			dmin = d
		}
		if d > dmax {
			dmax = d
		}
	}
	if dmin <= 0 {
		return 0, nil
	}
	return (dmax - dmin) / dmin, nil
}

// Instability measures how precarious the nearest-neighbor answer is: the
// fraction of the data set lying within (1+eps)·Dmin of the query. When
// this fraction is large, a small perturbation of the query reorders the
// answer — the paper's "unstable query" notion. eps must be positive.
func Instability(ds *dataset.Dataset, query []float64, m metric.Metric, eps float64) (float64, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("contrast: eps %v must be positive", eps)
	}
	if ds.N() < 2 {
		return 0, ErrTooFewPoints
	}
	dists, err := knn.Distances(ds, query, m)
	if err != nil {
		return 0, err
	}
	dmin := -1.0
	for _, d := range dists {
		if d == 0 {
			continue
		}
		if dmin < 0 || d < dmin {
			dmin = d
		}
	}
	if dmin <= 0 {
		return 1, nil // everything coincides with the query: fully unstable
	}
	within := 0
	total := 0
	for _, d := range dists {
		if d == 0 {
			continue
		}
		total++
		if d <= (1+eps)*dmin {
			within++
		}
	}
	if total == 0 {
		return 1, nil
	}
	return float64(within) / float64(total), nil
}

// RankDisagreement quantifies how differently two metrics order the data
// around the query: the mean normalized absolute difference of each
// point's rank under the two metrics, in [0, 1]. 0 means identical
// orderings; values near 1/3 already indicate near-independent orderings
// (the expected value for random permutations).
func RankDisagreement(ds *dataset.Dataset, query []float64, m1, m2 metric.Metric) (float64, error) {
	n := ds.N()
	if n < 2 {
		return 0, ErrTooFewPoints
	}
	d1, err := knn.Distances(ds, query, m1)
	if err != nil {
		return 0, err
	}
	d2, err := knn.Distances(ds, query, m2)
	if err != nil {
		return 0, err
	}
	r1 := ranks(d1)
	r2 := ranks(d2)
	var sum float64
	for i := range r1 {
		diff := r1[i] - r2[i]
		if diff < 0 {
			diff = -diff
		}
		sum += float64(diff)
	}
	// Normalize by the maximum possible mean absolute rank difference
	// (n/2 for reversal-like disagreement… use n−1 to bound in [0,1]).
	return sum / float64(n) / float64(n-1), nil
}

func ranks(dists []float64) []int {
	order := stats.ArgsortAsc(dists)
	r := make([]int, len(dists))
	for rank, idx := range order {
		r[idx] = rank
	}
	return r
}

// SweepResult is one row of a dimensionality sweep.
type SweepResult struct {
	Dim              int
	RelativeContrast float64
	Instability      float64
}

// SweepDims measures contrast and instability on prefixes of the data's
// dimensions, reproducing the "contrast collapses with dimensionality"
// motivation curve. dims must be ascending and within the data's
// dimensionality; the query is taken per-dataset row 0 unless queryRow
// is valid.
func SweepDims(ds *dataset.Dataset, queryRow int, dims []int, m metric.Metric, eps float64) ([]SweepResult, error) {
	if queryRow < 0 || queryRow >= ds.N() {
		return nil, fmt.Errorf("contrast: query row %d out of range", queryRow)
	}
	if !sort.IntsAreSorted(dims) {
		return nil, errors.New("contrast: dims must be ascending")
	}
	out := make([]SweepResult, 0, len(dims))
	for _, d := range dims {
		if d < 1 || d > ds.Dim() {
			return nil, fmt.Errorf("contrast: dim %d outside [1, %d]", d, ds.Dim())
		}
		attrs := make([]int, d)
		for j := range attrs {
			attrs[j] = j
		}
		sub, err := prefixDataset(ds, attrs)
		if err != nil {
			return nil, err
		}
		q := sub.PointCopy(queryRow)
		rc, err := RelativeContrast(sub, q, m)
		if err != nil {
			return nil, err
		}
		inst, err := Instability(sub, q, m, eps)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepResult{Dim: d, RelativeContrast: rc, Instability: inst})
	}
	return out, nil
}

// prefixDataset extracts the given attribute columns as a new dataset.
func prefixDataset(ds *dataset.Dataset, attrs []int) (*dataset.Dataset, error) {
	rows := make([][]float64, ds.N())
	for i := 0; i < ds.N(); i++ {
		p := ds.Point(i)
		row := make([]float64, len(attrs))
		for j, a := range attrs {
			row[j] = p[a]
		}
		rows[i] = row
	}
	return dataset.New(rows, nil)
}

// MetricTau returns Kendall's τ between the orderings two metrics induce
// on the distances from query to every point of ds: 1 means the metrics
// rank the data identically, 0 means unrelated orderings, −1 reversed.
// In high dimensions τ between, e.g., fractional and max norms drops
// toward 0 — the §1 observation that "the use of different distance
// metrics can result in widely varying ordering".
func MetricTau(ds *dataset.Dataset, query []float64, m1, m2 metric.Metric) (float64, error) {
	if ds.N() < 2 {
		return 0, ErrTooFewPoints
	}
	d1, err := knn.Distances(ds, query, m1)
	if err != nil {
		return 0, err
	}
	d2, err := knn.Distances(ds, query, m2)
	if err != nil {
		return 0, err
	}
	return stats.KendallTau(d1, d2)
}
