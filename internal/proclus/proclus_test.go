package proclus

import (
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/synth"
)

func TestRunValidation(t *testing.T) {
	ds, err := dataset.New([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(nil, Config{K: 1, AvgDims: 2, Rng: rng}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Run(ds, Config{K: 0, AvgDims: 2, Rng: rng}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Run(ds, Config{K: 2, AvgDims: 1, Rng: rng}); err == nil {
		t.Error("AvgDims=1 accepted")
	}
	if _, err := Run(ds, Config{K: 2, AvgDims: 9, Rng: rng}); err == nil {
		t.Error("AvgDims > dim accepted")
	}
	if _, err := Run(ds, Config{K: 2, AvgDims: 2}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRecoverProjectedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pd, err := synth.GenerateProjectedClusters(synth.ProjectedConfig{
		N: 1200, Dim: 16, Clusters: 3, SubspaceDim: 4,
		OutlierFrac: 0.02, Domain: 100, Spread: 1.5,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pd.Data, Config{K: 3, AvgDims: 4, Rng: rng, Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	// Every point assigned, partition consistent.
	total := 0
	for ci, c := range res.Clusters {
		total += len(c.Members)
		if len(c.Dims) < 2 {
			t.Errorf("cluster %d has %d dims", ci, len(c.Dims))
		}
		for _, m := range c.Members {
			if res.Assignment[m] != ci {
				t.Fatalf("assignment mismatch at %d", m)
			}
		}
	}
	if total != pd.Data.N() {
		t.Fatalf("assigned %d of %d", total, pd.Data.N())
	}
	// Cluster purity: the dominant true label of each found cluster
	// should cover most of it.
	pureTotal := 0
	for _, c := range res.Clusters {
		counts := map[int]int{}
		for _, m := range c.Members {
			counts[pd.Data.Label(m)]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		pureTotal += best
	}
	purity := float64(pureTotal) / float64(pd.Data.N())
	t.Logf("purity = %.2f", purity)
	if purity < 0.7 {
		t.Errorf("purity %.2f too low", purity)
	}
}

func TestSelectedDimsMatchTrueSubspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pd, err := synth.GenerateProjectedClusters(synth.ProjectedConfig{
		N: 900, Dim: 12, Clusters: 2, SubspaceDim: 3,
		OutlierFrac: 0.02, Domain: 100, Spread: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pd.Data, Config{K: 2, AvgDims: 3, Rng: rng, Iterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	// For each found cluster, its selected dims should overlap the true
	// dims of its dominant label.
	matched := 0
	for _, c := range res.Clusters {
		counts := map[int]int{}
		for _, m := range c.Members {
			counts[pd.Data.Label(m)]++
		}
		bestLabel, bestN := -1, 0
		for l, n := range counts {
			if n > bestN {
				bestLabel, bestN = l, n
			}
		}
		if bestLabel < 0 || bestLabel >= len(pd.AxisDims) {
			continue
		}
		trueDims := map[int]bool{}
		for _, dd := range pd.AxisDims[bestLabel] {
			trueDims[dd] = true
		}
		for _, dd := range c.Dims {
			if trueDims[dd] {
				matched++
			}
		}
	}
	if matched < 3 {
		t.Errorf("selected dims barely overlap true subspaces: %d matches", matched)
	}
}

func TestQueryCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pd, err := synth.GenerateProjectedClusters(synth.ProjectedConfig{
		N: 800, Dim: 10, Clusters: 2, SubspaceDim: 3,
		OutlierFrac: 0.02, Domain: 100, Spread: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pd.Data, Config{K: 2, AvgDims: 3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	qPos := pd.Members(0)[0]
	cl, err := res.QueryCluster(pd.Data, pd.Data.PointCopy(qPos))
	if err != nil {
		t.Fatal(err)
	}
	// The query's own point should be a member of its assigned cluster.
	found := false
	for _, m := range cl.Members {
		if m == qPos {
			found = true
		}
	}
	if !found {
		t.Error("query's own row not in its assigned cluster")
	}
	if _, err := res.QueryCluster(pd.Data, []float64{1}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	gen := func() *Result {
		rng := rand.New(rand.NewSource(21))
		pd, err := synth.GenerateProjectedClusters(synth.ProjectedConfig{
			N: 400, Dim: 8, Clusters: 2, SubspaceDim: 3,
			OutlierFrac: 0.02, Domain: 100, Spread: 1,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pd.Data, Config{K: 2, AvgDims: 3, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := gen(), gen()
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("non-deterministic clustering")
		}
	}
}
