// Package proclus implements a PROCLUS-style projected clustering
// algorithm after Aggarwal, Procopiuc, Wolf, Yu & Park (SIGMOD 1999) —
// reference [1] of the paper and, with [4], the foundation of its premise
// that sparse high-dimensional data still carries tight clusters in
// low-dimensional projections. The algorithm is medoid-based: it picks k
// well-separated medoids, selects for each a small set of dimensions in
// which its locality is unusually tight, assigns every point to the
// medoid nearest in that medoid's dimensions, and iteratively replaces
// the medoids of poor clusters.
//
// The experiments use it as the "cluster first, then answer queries from
// the query's cluster" automated baseline.
package proclus

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"innsearch/internal/dataset"
)

// Config tunes Run.
type Config struct {
	// K is the number of clusters (must be positive).
	K int
	// AvgDims is the average number of dimensions per cluster (≥ 2).
	AvgDims int
	// Iterations bounds the medoid-improvement loop (default 10).
	Iterations int
	// Rng drives sampling; required.
	Rng *rand.Rand
}

// Cluster is one projected cluster.
type Cluster struct {
	// Medoid is the dataset position of the cluster's medoid.
	Medoid int
	// Dims are the cluster's selected dimensions.
	Dims []int
	// Members are dataset positions assigned to the cluster.
	Members []int
}

// Result is a completed clustering.
type Result struct {
	Clusters []Cluster
	// Assignment[i] is the cluster index of point i (-1 for none; the
	// algorithm assigns every point).
	Assignment []int
}

// Run clusters ds.
func Run(ds *dataset.Dataset, cfg Config) (*Result, error) {
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if cfg.K <= 0 || cfg.K > ds.N() {
		return nil, fmt.Errorf("proclus: K=%d outside (0, %d]", cfg.K, ds.N())
	}
	if cfg.AvgDims < 2 || cfg.AvgDims > ds.Dim() {
		return nil, fmt.Errorf("proclus: AvgDims=%d outside [2, %d]", cfg.AvgDims, ds.Dim())
	}
	if cfg.Rng == nil {
		return nil, errors.New("proclus: nil Rng")
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 10
	}

	medoids := greedyMedoids(ds, cfg.K, cfg.Rng)
	best := assignAll(ds, medoids, cfg)
	bestCost := cost(ds, best)
	for it := 0; it < cfg.Iterations; it++ {
		// Replace the medoid of the worst (smallest) cluster with a
		// random point and keep the change if the cost improves.
		worst := 0
		for c := range best.Clusters {
			if len(best.Clusters[c].Members) < len(best.Clusters[worst].Members) {
				worst = c
			}
		}
		trial := append([]int(nil), medoids...)
		trial[worst] = cfg.Rng.Intn(ds.N())
		if duplicated(trial) {
			continue
		}
		cand := assignAll(ds, trial, cfg)
		if c := cost(ds, cand); c < bestCost {
			best, bestCost, medoids = cand, c, trial
		}
	}
	return best, nil
}

// greedyMedoids picks K far-apart seeds: the first at random, each next
// maximizing its distance to the chosen set.
func greedyMedoids(ds *dataset.Dataset, k int, rng *rand.Rand) []int {
	medoids := []int{rng.Intn(ds.N())}
	for len(medoids) < k {
		bestPos, bestDist := -1, -1.0
		for i := 0; i < ds.N(); i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				if dm := l2(ds.Point(i), ds.Point(m)); dm < d {
					d = dm
				}
			}
			if d > bestDist {
				bestDist, bestPos = d, i
			}
		}
		medoids = append(medoids, bestPos)
	}
	return medoids
}

func duplicated(xs []int) bool {
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}

// assignAll selects per-medoid dimensions and assigns every point to the
// nearest medoid under that medoid's dimensions (Manhattan distance, as
// in the original algorithm).
func assignAll(ds *dataset.Dataset, medoids []int, cfg Config) *Result {
	d := ds.Dim()
	k := len(medoids)

	// Locality of each medoid: points within its nearest-other-medoid
	// distance.
	dimSets := make([][]int, k)
	type scoredDim struct {
		medoid, dim int
		z           float64
	}
	var all []scoredDim
	for mi, m := range medoids {
		radius := math.Inf(1)
		for mj, o := range medoids {
			if mi == mj {
				continue
			}
			if dm := l2(ds.Point(m), ds.Point(o)); dm < radius {
				radius = dm
			}
		}
		// Average per-dimension deviation over the locality.
		var local []int
		for i := 0; i < ds.N(); i++ {
			if l2(ds.Point(i), ds.Point(m)) <= radius {
				local = append(local, i)
			}
		}
		if len(local) == 0 {
			local = []int{m}
		}
		avg := make([]float64, d)
		for _, i := range local {
			p := ds.Point(i)
			mp := ds.Point(m)
			for j := 0; j < d; j++ {
				avg[j] += math.Abs(p[j] - mp[j])
			}
		}
		var mean, sq float64
		for j := 0; j < d; j++ {
			avg[j] /= float64(len(local))
			mean += avg[j]
		}
		mean /= float64(d)
		for j := 0; j < d; j++ {
			dv := avg[j] - mean
			sq += dv * dv
		}
		sd := math.Sqrt(sq / float64(d))
		if sd == 0 {
			sd = 1
		}
		for j := 0; j < d; j++ {
			all = append(all, scoredDim{medoid: mi, dim: j, z: (avg[j] - mean) / sd})
		}
	}
	// Greedily take the k·AvgDims most negative z-scores, guaranteeing
	// each medoid at least two dimensions (the original's constraint).
	sort.Slice(all, func(a, b int) bool { return all[a].z < all[b].z })
	need := k * cfg.AvgDims
	taken := 0
	for _, sdim := range all {
		if len(dimSets[sdim.medoid]) < 2 {
			dimSets[sdim.medoid] = append(dimSets[sdim.medoid], sdim.dim)
			taken++
		}
	}
	for _, sdim := range all {
		if taken >= need {
			break
		}
		if len(dimSets[sdim.medoid]) >= 2 && contains(dimSets[sdim.medoid], sdim.dim) {
			continue
		}
		if !contains(dimSets[sdim.medoid], sdim.dim) {
			dimSets[sdim.medoid] = append(dimSets[sdim.medoid], sdim.dim)
			taken++
		}
	}
	for mi := range dimSets {
		sort.Ints(dimSets[mi])
	}

	res := &Result{
		Clusters:   make([]Cluster, k),
		Assignment: make([]int, ds.N()),
	}
	for mi, m := range medoids {
		res.Clusters[mi] = Cluster{Medoid: m, Dims: dimSets[mi]}
	}
	for i := 0; i < ds.N(); i++ {
		bestC, bestD := 0, math.Inf(1)
		for mi, m := range medoids {
			d := segDist(ds.Point(i), ds.Point(m), dimSets[mi])
			if d < bestD {
				bestD, bestC = d, mi
			}
		}
		res.Assignment[i] = bestC
		res.Clusters[bestC].Members = append(res.Clusters[bestC].Members, i)
	}
	return res
}

// contains reports membership of x in xs.
func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// segDist is the per-dimension-normalized Manhattan ("segmental")
// distance over the selected dims.
func segDist(a, b []float64, dims []int) float64 {
	if len(dims) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, j := range dims {
		s += math.Abs(a[j] - b[j])
	}
	return s / float64(len(dims))
}

// cost is the mean segmental distance of points to their cluster medoid.
func cost(ds *dataset.Dataset, r *Result) float64 {
	var s float64
	for i, c := range r.Assignment {
		cl := r.Clusters[c]
		s += segDist(ds.Point(i), ds.Point(cl.Medoid), cl.Dims)
	}
	return s / float64(ds.N())
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// QueryCluster assigns a query vector to its nearest cluster (by
// segmental distance to each medoid over that medoid's dims) and returns
// the cluster — the "cluster first, answer from the cluster" baseline.
func (r *Result) QueryCluster(ds *dataset.Dataset, query []float64) (*Cluster, error) {
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("proclus: query dim %d, data dim %d", len(query), ds.Dim())
	}
	bestC, bestD := -1, math.Inf(1)
	for ci, c := range r.Clusters {
		d := segDist(query, ds.Point(c.Medoid), c.Dims)
		if d < bestD {
			bestD, bestC = d, ci
		}
	}
	if bestC < 0 {
		return nil, errors.New("proclus: no clusters")
	}
	return &r.Clusters[bestC], nil
}
