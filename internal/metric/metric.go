// Package metric defines the distance functions used throughout the
// system: the Minkowski Lp family (including the fractional p < 1
// "distance" functions whose behaviour in high dimensions motivates the
// paper), the Chebyshev L∞ metric, and weighted variants.
//
// All distances panic on dimension mismatch, mirroring the convention in
// internal/linalg; callers work with fixed-dimensionality datasets where a
// mismatch is a programming error, not an input error.
package metric

import (
	"fmt"
	"math"
)

// Metric computes a distance between two equal-length float vectors.
type Metric interface {
	// Distance returns the distance between a and b.
	Distance(a, b []float64) float64
	// Name returns a short human-readable name such as "L2".
	Name() string
}

// LP is the Minkowski metric of order P: (Σ|aᵢ−bᵢ|^P)^(1/P). P must be
// positive; 0 < P < 1 gives the fractional distance functions studied in
// the high-dimensional meaningfulness literature (they violate the
// triangle inequality but still rank neighbors).
type LP struct{ P float64 }

// Distance implements Metric.
func (m LP) Distance(a, b []float64) float64 {
	checkDims(a, b)
	if m.P <= 0 {
		panic(fmt.Sprintf("metric: non-positive order %v", m.P))
	}
	if m.P == 2 {
		return Euclidean{}.Distance(a, b)
	}
	var s float64
	for i := range a {
		s += math.Pow(math.Abs(a[i]-b[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name implements Metric.
func (m LP) Name() string { return fmt.Sprintf("L%g", m.P) }

// Euclidean is the L2 metric, special-cased for speed since it dominates
// the system's inner loops.
type Euclidean struct{}

// Distance implements Metric.
func (Euclidean) Distance(a, b []float64) float64 {
	checkDims(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Metric.
func (Euclidean) Name() string { return "L2" }

// SquaredEuclidean returns the squared L2 distance; it induces the same
// neighbor ordering as Euclidean and avoids the square root in ranking
// loops.
func SquaredEuclidean(a, b []float64) float64 {
	checkDims(a, b)
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance implements Metric.
func (Manhattan) Distance(a, b []float64) float64 {
	checkDims(a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "L1" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance implements Metric.
func (Chebyshev) Distance(a, b []float64) float64 {
	checkDims(a, b)
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// Name implements Metric.
func (Chebyshev) Name() string { return "Linf" }

// Weighted scales each coordinate difference by a per-dimension weight
// before delegating to the base metric. Weights must match the vector
// dimensionality at call time.
type Weighted struct {
	Base    Metric
	Weights []float64
}

// Distance implements Metric.
func (m Weighted) Distance(a, b []float64) float64 {
	checkDims(a, b)
	if len(m.Weights) != len(a) {
		panic(fmt.Sprintf("metric: %d weights for %d dims", len(m.Weights), len(a)))
	}
	wa := make([]float64, len(a))
	wb := make([]float64, len(b))
	for i := range a {
		wa[i] = a[i] * m.Weights[i]
		wb[i] = b[i] * m.Weights[i]
	}
	return m.Base.Distance(wa, wb)
}

// Name implements Metric.
func (m Weighted) Name() string { return "weighted-" + m.Base.Name() }

func checkDims(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metric: dimension mismatch %d vs %d", len(a), len(b)))
	}
}
