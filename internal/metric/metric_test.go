package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownDistances(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, -2}
	tests := []struct {
		m    Metric
		want float64
	}{
		{Euclidean{}, 3},
		{Manhattan{}, 5},
		{Chebyshev{}, 2},
		{LP{P: 2}, 3},
		{LP{P: 1}, 5},
		{LP{P: 0.5}, math.Pow(1+math.Sqrt2+math.Sqrt2, 2)},
	}
	for _, tc := range tests {
		t.Run(tc.m.Name(), func(t *testing.T) {
			if got := tc.m.Distance(a, b); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("%s = %v, want %v", tc.m.Name(), got, tc.want)
			}
		})
	}
}

func TestSquaredEuclidean(t *testing.T) {
	a, b := []float64{1, 1}, []float64{4, 5}
	if got := SquaredEuclidean(a, b); got != 25 {
		t.Errorf("SquaredEuclidean = %v", got)
	}
}

func TestWeighted(t *testing.T) {
	m := Weighted{Base: Euclidean{}, Weights: []float64{1, 0}}
	got := m.Distance([]float64{0, 100}, []float64{3, -100})
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("weighted = %v, want 3", got)
	}
	if m.Name() != "weighted-L2" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"dim mismatch", func() { Euclidean{}.Distance([]float64{1}, []float64{1, 2}) }},
		{"bad order", func() { LP{P: 0}.Distance([]float64{1}, []float64{2}) }},
		{"bad weights", func() {
			Weighted{Base: Euclidean{}, Weights: []float64{1}}.Distance([]float64{1, 2}, []float64{3, 4})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestNames(t *testing.T) {
	if (LP{P: 0.5}).Name() != "L0.5" {
		t.Errorf("LP name = %q", LP{P: 0.5}.Name())
	}
	if (Manhattan{}).Name() != "L1" || (Chebyshev{}).Name() != "Linf" {
		t.Error("bad metric names")
	}
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestPropertyMetricAxioms(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, LP{P: 3}}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(20)
		a, b, c := randVec(rr, n), randVec(rr, n), randVec(rr, n)
		for _, m := range metrics {
			dab, dba := m.Distance(a, b), m.Distance(b, a)
			if dab < 0 || math.Abs(dab-dba) > 1e-12 {
				return false
			}
			if m.Distance(a, a) > 1e-12 {
				return false
			}
			// Triangle inequality (holds for p ≥ 1).
			if m.Distance(a, c) > dab+m.Distance(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLpMonotoneInP(t *testing.T) {
	// For fixed vectors, Lp norm is non-increasing in p.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(15)
		a, b := randVec(rr, n), randVec(rr, n)
		d1 := LP{P: 1}.Distance(a, b)
		d2 := LP{P: 2}.Distance(a, b)
		d4 := LP{P: 4}.Distance(a, b)
		dInf := Chebyshev{}.Distance(a, b)
		return d1 >= d2-1e-9 && d2 >= d4-1e-9 && d4 >= dInf-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLPMatchesSpecialCases(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(15)
		a, b := randVec(rr, n), randVec(rr, n)
		if math.Abs(LP{P: 1}.Distance(a, b)-Manhattan{}.Distance(a, b)) > 1e-10 {
			return false
		}
		return math.Abs(LP{P: 2}.Distance(a, b)-Euclidean{}.Distance(a, b)) <= 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
