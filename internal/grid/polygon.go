package grid

import (
	"errors"
	"fmt"
	"math"

	"innsearch/internal/kde"
)

// Line is a separating line through two distinct points, used by the
// paper's alternative interaction (§2.2): instead of a density separator,
// the user draws lines on the lateral density plot, and the answer is the
// set of points in the same polygonal region as the query — the
// intersection of the half-planes (one per line) that contain the query.
type Line struct {
	X1, Y1, X2, Y2 float64
}

// ErrDegenerateLine indicates a line whose two defining points coincide.
var ErrDegenerateLine = errors.New("grid: degenerate separating line")

// side returns the signed area test of (x, y) against the line: positive
// on one side, negative on the other, 0 on the line.
func (l Line) side(x, y float64) float64 {
	return (l.X2-l.X1)*(y-l.Y1) - (l.Y2-l.Y1)*(x-l.X1)
}

// valid reports whether the line's defining points are distinct.
func (l Line) valid() bool {
	dx, dy := l.X2-l.X1, l.Y2-l.Y1
	return dx*dx+dy*dy > 0
}

// PolygonSelect returns the indices of the points (xs[i], ys[i]) lying in
// the same polygonal region as the query (qx, qy): for every line, a
// point must be strictly on the query's side (points exactly on a line
// are treated as inside, because the region is closed). With no lines
// every point is selected. A degenerate line (identical endpoints) is an
// error.
func PolygonSelect(xs, ys []float64, qx, qy float64, lines []Line) ([]int, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("grid: polygon select length mismatch %d vs %d", len(xs), len(ys))
	}
	return PolygonSelectSource(slicesXY{xs, ys}, qx, qy, lines)
}

// PolygonSelectSource is PolygonSelect over a kde.XYSource — the
// row-accessor form used to select directly from projected dataset views.
func PolygonSelectSource(pts kde.XYSource, qx, qy float64, lines []Line) ([]int, error) {
	sides := make([]float64, len(lines))
	for i, l := range lines {
		if !l.valid() {
			return nil, fmt.Errorf("%w: line %d", ErrDegenerateLine, i)
		}
		sides[i] = l.side(qx, qy)
		if sides[i] == 0 {
			// The query sits exactly on the line; such a line separates
			// nothing from the query's perspective and is ignored.
			sides[i] = math.NaN()
		}
	}
	n := pts.Len()
	var out []int
pointLoop:
	for i := 0; i < n; i++ {
		x, y := pts.XY(i)
		for li, l := range lines {
			ref := sides[li]
			if math.IsNaN(ref) {
				continue
			}
			if s := l.side(x, y); s != 0 && (s > 0) != (ref > 0) {
				continue pointLoop
			}
		}
		out = append(out, i)
	}
	return out, nil
}
