package grid

import (
	"math/rand"
	"testing"

	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

func benchGrid(b *testing.B, p int) *kde.Grid {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	m := linalg.NewMatrix(5000, 2)
	for i := 0; i < 2500; i++ {
		m.Set(i, 0, r.NormFloat64())
		m.Set(i, 1, r.NormFloat64())
	}
	for i := 2500; i < 5000; i++ {
		m.Set(i, 0, 10+r.NormFloat64())
		m.Set(i, 1, 10+r.NormFloat64())
	}
	g, err := kde.Estimate2D(m, kde.Options{GridSize: p})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkFindRegion48(b *testing.B) {
	g := benchGrid(b, 48)
	tau := 0.2 * g.MaxDensity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindRegion(g, 0, 0, tau); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindRegion96(b *testing.B) {
	g := benchGrid(b, 96)
	tau := 0.2 * g.MaxDensity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindRegion(g, 0, 0, tau); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentCount48(b *testing.B) {
	g := benchGrid(b, 48)
	tau := 0.2 * g.MaxDensity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComponentCount(g, tau)
	}
}

func BenchmarkPolygonSelect(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.NormFloat64(), r.NormFloat64()
	}
	lines := []Line{
		{X1: 1, Y1: -9, X2: 1, Y2: 9},
		{X1: -1, Y1: -9, X2: -1, Y2: 9},
		{X1: -9, Y1: 1, X2: 9, Y2: 1},
		{X1: -9, Y1: -1, X2: 9, Y2: -1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PolygonSelect(xs, ys, 0, 0, lines); err != nil {
			b.Fatal(err)
		}
	}
}
