// Package grid implements the density-connectivity machinery of §2.3 of
// the paper: given a kernel density grid and a noise threshold τ, it
// computes R(τ, Q) — the set of elementary grid rectangles connected to
// the rectangle containing the query point through adjacent rectangles
// having at least three corners with density above τ (Definition 2.2) —
// and classifies data points by membership in that region.
package grid

import (
	"context"
	"errors"
	"fmt"
	"math"

	"innsearch/internal/kde"
	"innsearch/internal/parallel"
)

// ErrQueryOutsideGrid is returned when the query point does not fall on
// the density grid.
var ErrQueryOutsideGrid = errors.New("grid: query point outside density grid")

// Region is the set of elementary rectangles R(τ, Q) for one density grid.
type Region struct {
	Grid *kde.Grid
	Tau  float64
	// member[cy*(P-1)+cx] reports whether cell (cx, cy) belongs to the
	// region.
	member []bool
	// QueryCX, QueryCY locate the rectangle containing the query point.
	QueryCX, QueryCY int
	// Cells is the number of member rectangles (0 when even the query's
	// own rectangle fails the corner test).
	Cells int
	// Examined counts the rectangles whose corner test ran during the
	// breadth-first search — the region search's work metric, surfaced in
	// select trace events so operators can see how much of the grid a
	// separator setting explores.
	Examined int
}

// FindRegion computes R(τ, Q) by breadth-first search from the rectangle
// containing (qx, qy) over side-adjacent rectangles satisfying the
// ≥3-corners-above-τ rule. Definition 2.2 requires every rectangle on the
// connecting path — including the query's own — to satisfy the rule, so
// when the query rectangle fails the region is empty.
func FindRegion(g *kde.Grid, qx, qy, tau float64) (*Region, error) {
	if math.IsNaN(tau) {
		return nil, fmt.Errorf("grid: NaN noise threshold")
	}
	cx, cy, ok := g.CellOf(qx, qy)
	if !ok {
		return nil, fmt.Errorf("%w: (%v, %v)", ErrQueryOutsideGrid, qx, qy)
	}
	side := g.P - 1
	r := &Region{
		Grid:    g,
		Tau:     tau,
		member:  make([]bool, side*side),
		QueryCX: cx,
		QueryCY: cy,
	}
	r.Examined = 1
	if !cellQualifies(g, cx, cy, tau) {
		return r, nil
	}
	// BFS over side-adjacent qualifying rectangles.
	type cell struct{ x, y int }
	queue := []cell{{cx, cy}}
	r.member[cy*side+cx] = true
	r.Cells = 1
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, nb := range [4]cell{{c.x - 1, c.y}, {c.x + 1, c.y}, {c.x, c.y - 1}, {c.x, c.y + 1}} {
			if nb.x < 0 || nb.y < 0 || nb.x >= side || nb.y >= side {
				continue
			}
			idx := nb.y*side + nb.x
			if r.member[idx] {
				continue
			}
			r.Examined++
			if !cellQualifies(g, nb.x, nb.y, tau) {
				continue
			}
			r.member[idx] = true
			r.Cells++
			queue = append(queue, nb)
		}
	}
	return r, nil
}

// cellQualifies reports whether at least three of the four corners of the
// elementary rectangle (cx, cy) have density strictly above tau. With
// τ = 0 every rectangle qualifies (Gaussian kernels are everywhere
// positive), matching the paper's "τ = 0 includes all points".
func cellQualifies(g *kde.Grid, cx, cy int, tau float64) bool {
	if tau <= 0 {
		// Gaussian density is positive everywhere in exact arithmetic;
		// far tails underflow to 0 in floating point, so τ ≤ 0 admits
		// every rectangle explicitly.
		return true
	}
	above := 0
	if g.At(cx, cy) > tau {
		above++
	}
	if g.At(cx+1, cy) > tau {
		above++
	}
	if g.At(cx, cy+1) > tau {
		above++
	}
	if g.At(cx+1, cy+1) > tau {
		above++
	}
	return above >= 3
}

// ContainsCell reports whether rectangle (cx, cy) belongs to the region.
func (r *Region) ContainsCell(cx, cy int) bool {
	side := r.Grid.P - 1
	if cx < 0 || cy < 0 || cx >= side || cy >= side {
		return false
	}
	return r.member[cy*side+cx]
}

// ContainsPoint reports whether the 2-D point (x, y) falls inside a member
// rectangle.
func (r *Region) ContainsPoint(x, y float64) bool {
	cx, cy, ok := r.Grid.CellOf(x, y)
	if !ok {
		return false
	}
	return r.ContainsCell(cx, cy)
}

// Empty reports whether the region has no member rectangles.
func (r *Region) Empty() bool { return r.Cells == 0 }

// Area returns the total area covered by the member rectangles.
func (r *Region) Area() float64 {
	return float64(r.Cells) * r.Grid.StepX() * r.Grid.StepY()
}

// Mass returns the approximate probability mass inside the region,
// integrating the mean corner density over each member rectangle.
func (r *Region) Mass() float64 {
	side := r.Grid.P - 1
	cell := r.Grid.StepX() * r.Grid.StepY()
	var mass float64
	for cy := 0; cy < side; cy++ {
		for cx := 0; cx < side; cx++ {
			if !r.member[cy*side+cx] {
				continue
			}
			avg := (r.Grid.At(cx, cy) + r.Grid.At(cx+1, cy) +
				r.Grid.At(cx, cy+1) + r.Grid.At(cx+1, cy+1)) / 4
			mass += avg * cell
		}
	}
	return mass
}

// SelectPoints returns the indices (rows of pts, an n×2 matrix of projected
// coordinates) of points lying inside the region.
func (r *Region) SelectPoints(xs, ys []float64) []int {
	out, _ := r.SelectPointsContext(context.Background(), 1, xs, ys)
	return out
}

// SelectPointsContext is SelectPoints with cooperative cancellation and a
// worker count (≤ 0 means GOMAXPROCS): the per-point membership pass is
// sharded into contiguous index ranges whose matches are concatenated in
// shard order, so the returned indices are identical — same values, same
// ascending order — at any worker count. The only possible error is the
// context's.
func (r *Region) SelectPointsContext(ctx context.Context, workers int, xs, ys []float64) ([]int, error) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("grid: SelectPoints length mismatch %d vs %d", len(xs), len(ys)))
	}
	return r.SelectSourceContext(ctx, workers, slicesXY{xs, ys})
}

// slicesXY adapts a pair of coordinate slices to kde.XYSource.
type slicesXY struct{ xs, ys []float64 }

func (s slicesXY) Len() int                  { return len(s.xs) }
func (s slicesXY) XY(i int) (float64, float64) { return s.xs[i], s.ys[i] }

// SelectSourceContext is SelectPointsContext over a kde.XYSource — the
// row-accessor form the engine feeds its projected dataset views through,
// avoiding the per-call column copies of the slice API.
func (r *Region) SelectSourceContext(ctx context.Context, workers int, pts kde.XYSource) ([]int, error) {
	n := pts.Len()
	shards := parallel.NumShards(workers, n)
	parts := make([][]int, shards)
	err := parallel.ForShards(ctx, workers, n, func(_ context.Context, shard, lo, hi int) error {
		for i := lo; i < hi; i++ {
			x, y := pts.XY(i)
			if r.ContainsPoint(x, y) {
				parts[shard] = append(parts[shard], i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if shards == 1 {
		return parts[0], nil
	}
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// ComponentCount returns the number of connected components of qualifying
// rectangles over the whole grid at threshold tau (not just the query's
// component). The paper's density-separated views show several closed
// contours; this statistic lets automated users and tests reason about
// how many clusters a threshold separates.
func ComponentCount(g *kde.Grid, tau float64) int {
	side := g.P - 1
	seen := make([]bool, side*side)
	count := 0
	type cell struct{ x, y int }
	for sy := 0; sy < side; sy++ {
		for sx := 0; sx < side; sx++ {
			if seen[sy*side+sx] || !cellQualifies(g, sx, sy, tau) {
				continue
			}
			count++
			queue := []cell{{sx, sy}}
			seen[sy*side+sx] = true
			for len(queue) > 0 {
				c := queue[0]
				queue = queue[1:]
				for _, nb := range [4]cell{{c.x - 1, c.y}, {c.x + 1, c.y}, {c.x, c.y - 1}, {c.x, c.y + 1}} {
					if nb.x < 0 || nb.y < 0 || nb.x >= side || nb.y >= side {
						continue
					}
					idx := nb.y*side + nb.x
					if seen[idx] || !cellQualifies(g, nb.x, nb.y, tau) {
						continue
					}
					seen[idx] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return count
}
