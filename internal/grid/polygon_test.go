package grid

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolygonSelectSingleLine(t *testing.T) {
	xs := []float64{-1, 1, 2, -3}
	ys := []float64{0, 0, 5, -5}
	// Vertical line x = 0; query on the negative side.
	lines := []Line{{X1: 0, Y1: -10, X2: 0, Y2: 10}}
	got, err := PolygonSelect(xs, ys, -5, 0, lines)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("selected %v, want %v", got, want)
	}
}

func TestPolygonSelectBox(t *testing.T) {
	// Four lines forming a unit box around the query at the origin.
	lines := []Line{
		{X1: 1, Y1: -9, X2: 1, Y2: 9},   // x = 1
		{X1: -1, Y1: -9, X2: -1, Y2: 9}, // x = −1
		{X1: -9, Y1: 1, X2: 9, Y2: 1},   // y = 1
		{X1: -9, Y1: -1, X2: 9, Y2: -1}, // y = −1
	}
	xs := []float64{0, 0.5, -0.5, 2, 0, -2}
	ys := []float64{0, 0.5, -0.9, 0, 3, -3}
	got, err := PolygonSelect(xs, ys, 0, 0, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("selected %v, want [0 1 2]", got)
	}
}

func TestPolygonSelectNoLines(t *testing.T) {
	got, err := PolygonSelect([]float64{1, 2}, []float64{3, 4}, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("no-lines selection = %v", got)
	}
}

func TestPolygonSelectOnLineIsInside(t *testing.T) {
	lines := []Line{{X1: 0, Y1: -1, X2: 0, Y2: 1}}
	got, err := PolygonSelect([]float64{0}, []float64{5}, -1, 0, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("point on the separating line should be inside")
	}
}

func TestPolygonSelectQueryOnLineIgnoresIt(t *testing.T) {
	// The query sits exactly on the line: the line separates nothing.
	lines := []Line{{X1: 0, Y1: -1, X2: 0, Y2: 1}}
	got, err := PolygonSelect([]float64{-3, 3}, []float64{0, 0}, 0, 0, lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("query-on-line selection = %v, want both points", got)
	}
}

func TestPolygonSelectErrors(t *testing.T) {
	if _, err := PolygonSelect([]float64{1}, []float64{1, 2}, 0, 0, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := []Line{{X1: 1, Y1: 1, X2: 1, Y2: 1}}
	if _, err := PolygonSelect([]float64{1}, []float64{1}, 0, 0, bad); !errors.Is(err, ErrDegenerateLine) {
		t.Errorf("degenerate line: %v", err)
	}
}

func TestPropertyPolygonQueryAlwaysSelected(t *testing.T) {
	// The query's own location must always be inside its region.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		qx, qy := rr.NormFloat64(), rr.NormFloat64()
		lines := make([]Line, 1+rr.Intn(4))
		for i := range lines {
			lines[i] = Line{
				X1: rr.NormFloat64()*3 + 1, Y1: rr.NormFloat64() * 3,
				X2: rr.NormFloat64() * 3, Y2: rr.NormFloat64()*3 + 1,
			}
		}
		got, err := PolygonSelect([]float64{qx}, []float64{qy}, qx, qy, lines)
		return err == nil && len(got) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPolygonMonotoneInLines(t *testing.T) {
	// Adding a line can only shrink the selection.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 5 + rr.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = rr.NormFloat64()*5, rr.NormFloat64()*5
		}
		var lines []Line
		prev := n + 1
		for step := 0; step < 3; step++ {
			lines = append(lines, Line{
				X1: rr.NormFloat64()*4 + 2, Y1: rr.NormFloat64() * 4,
				X2: rr.NormFloat64() * 4, Y2: rr.NormFloat64()*4 + 2,
			})
			got, err := PolygonSelect(xs, ys, 0, 0, lines)
			if err != nil {
				return false
			}
			if len(got) > prev {
				return false
			}
			prev = len(got)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
