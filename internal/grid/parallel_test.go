package grid

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

// TestSelectPointsContextMatchesSerial checks that the sharded membership
// pass returns exactly the serial result (same indices, same ascending
// order) at every worker count.
func TestSelectPointsContextMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1500
	pts := linalg.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		pts.Set(i, 0, rng.NormFloat64())
		pts.Set(i, 1, rng.NormFloat64())
	}
	g, err := kde.Estimate2D(pts, kde.Options{GridSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := FindRegion(g, 0, 0, 0.3*g.MaxDensity())
	if err != nil {
		t.Fatal(err)
	}
	xs, ys := pts.Col(0), pts.Col(1)
	serial := reg.SelectPoints(xs, ys)
	if len(serial) == 0 {
		t.Fatal("test region selected nothing; adjust tau")
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := reg.SelectPointsContext(context.Background(), workers, xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: selection differs from serial (%d vs %d points)", workers, len(got), len(serial))
		}
	}
}
