package grid

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

// twoClusterGrid builds a density grid from two well-separated Gaussian
// clusters, returning the grid and the cluster centers.
func twoClusterGrid(t *testing.T, seed int64) (*kde.Grid, *linalg.Matrix) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := linalg.NewMatrix(600, 2)
	for i := 0; i < 300; i++ {
		m.Set(i, 0, r.NormFloat64()*0.5)
		m.Set(i, 1, r.NormFloat64()*0.5)
	}
	for i := 300; i < 600; i++ {
		m.Set(i, 0, 10+r.NormFloat64()*0.5)
		m.Set(i, 1, 10+r.NormFloat64()*0.5)
	}
	g, err := kde.Estimate2D(m, kde.Options{GridSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

func TestFindRegionSeparatesClusters(t *testing.T) {
	g, m := twoClusterGrid(t, 1)
	tau := 0.3 * g.MaxDensity()
	reg, err := FindRegion(g, 0, 0, tau)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Empty() {
		t.Fatal("region empty at cluster center")
	}
	xs, ys := m.Col(0), m.Col(1)
	sel := reg.SelectPoints(xs, ys)
	// All selected points must come from the first cluster (indices <300).
	for _, i := range sel {
		if i >= 300 {
			t.Fatalf("point %d from the far cluster selected", i)
		}
	}
	// The bulk of the first cluster should be selected.
	if len(sel) < 150 {
		t.Errorf("only %d points selected from cluster of 300", len(sel))
	}
}

func TestFindRegionQueryInSparseArea(t *testing.T) {
	g, _ := twoClusterGrid(t, 2)
	tau := 0.3 * g.MaxDensity()
	// Query between the clusters: density is far below τ there.
	reg, err := FindRegion(g, 5, 5, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Empty() {
		t.Errorf("expected empty region in sparse area, got %d cells", reg.Cells)
	}
	if reg.ContainsPoint(0, 0) {
		t.Error("empty region claims to contain points")
	}
}

func TestFindRegionTauZeroIncludesEverything(t *testing.T) {
	g, m := twoClusterGrid(t, 3)
	reg, err := FindRegion(g, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	side := g.P - 1
	if reg.Cells != side*side {
		t.Errorf("τ=0 region has %d cells, want all %d", reg.Cells, side*side)
	}
	sel := reg.SelectPoints(m.Col(0), m.Col(1))
	if len(sel) != m.Rows {
		t.Errorf("τ=0 selected %d of %d points", len(sel), m.Rows)
	}
}

func TestFindRegionHugeTauEmpty(t *testing.T) {
	g, _ := twoClusterGrid(t, 4)
	reg, err := FindRegion(g, 0, 0, g.MaxDensity()*2)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Empty() {
		t.Error("region should be empty above the max density")
	}
}

func TestFindRegionQueryOutside(t *testing.T) {
	g, _ := twoClusterGrid(t, 5)
	if _, err := FindRegion(g, 1e6, 0, 0.1); !errors.Is(err, ErrQueryOutsideGrid) {
		t.Errorf("want ErrQueryOutsideGrid, got %v", err)
	}
	if _, err := FindRegion(g, 0, 0, math.NaN()); err == nil {
		t.Error("NaN tau accepted")
	}
}

func TestRegionMonotoneInTau(t *testing.T) {
	g, _ := twoClusterGrid(t, 6)
	peak := g.MaxDensity()
	prev := math.MaxInt
	for _, frac := range []float64{0.05, 0.2, 0.4, 0.6, 0.8} {
		reg, err := FindRegion(g, 0, 0, frac*peak)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Cells > prev {
			t.Errorf("region grew when τ increased: %d > %d at frac %v", reg.Cells, prev, frac)
		}
		prev = reg.Cells
	}
}

func TestComponentCount(t *testing.T) {
	g, _ := twoClusterGrid(t, 7)
	tau := 0.3 * g.MaxDensity()
	if got := ComponentCount(g, tau); got != 2 {
		t.Errorf("components at mid τ = %d, want 2", got)
	}
	if got := ComponentCount(g, 0); got != 1 {
		t.Errorf("components at τ=0 = %d, want 1", got)
	}
	if got := ComponentCount(g, g.MaxDensity()*2); got != 0 {
		t.Errorf("components above peak = %d, want 0", got)
	}
}

func TestRegionAreaAndMass(t *testing.T) {
	g, _ := twoClusterGrid(t, 8)
	reg, err := FindRegion(g, 0, 0, 0.25*g.MaxDensity())
	if err != nil {
		t.Fatal(err)
	}
	if reg.Area() <= 0 {
		t.Error("positive region with zero area")
	}
	m := reg.Mass()
	// One of two equal clusters: mass near 0.5, certainly within (0, 1).
	if m <= 0.1 || m >= 0.9 {
		t.Errorf("query cluster mass = %v, want around 0.5", m)
	}
	full, err := FindRegion(g, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fm := full.Mass(); math.Abs(fm-1) > 0.1 {
		t.Errorf("full-region mass = %v, want ≈1", fm)
	}
}

func TestSelectPointsMismatchPanics(t *testing.T) {
	g, _ := twoClusterGrid(t, 9)
	reg, _ := FindRegion(g, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	reg.SelectPoints([]float64{1, 2}, []float64{1})
}

func TestContainsCellBounds(t *testing.T) {
	g, _ := twoClusterGrid(t, 10)
	reg, _ := FindRegion(g, 0, 0, 0)
	if reg.ContainsCell(-1, 0) || reg.ContainsCell(0, g.P) {
		t.Error("out-of-range cells reported as members")
	}
}

func TestPropertyRegionConnectivity(t *testing.T) {
	// Every member cell must be reachable: the number of member cells in
	// the query's component equals Cells (BFS correctness), and all
	// member cells qualify.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 50 + rr.Intn(200)
		m := linalg.NewMatrix(n, 2)
		for i := 0; i < n; i++ {
			m.Set(i, 0, rr.NormFloat64()*3)
			m.Set(i, 1, rr.NormFloat64()*3)
		}
		g, err := kde.Estimate2D(m, kde.Options{GridSize: 12 + rr.Intn(20)})
		if err != nil {
			return false
		}
		tau := rr.Float64() * g.MaxDensity()
		reg, err := FindRegion(g, m.At(0, 0), m.At(0, 1), tau)
		if err != nil {
			return false
		}
		side := g.P - 1
		count := 0
		for cy := 0; cy < side; cy++ {
			for cx := 0; cx < side; cx++ {
				if !reg.ContainsCell(cx, cy) {
					continue
				}
				count++
				// Member cells must satisfy the corner rule.
				above := 0
				for _, c := range [4][2]int{{cx, cy}, {cx + 1, cy}, {cx, cy + 1}, {cx + 1, cy + 1}} {
					if g.At(c[0], c[1]) > tau {
						above++
					}
				}
				if above < 3 {
					return false
				}
			}
		}
		return count == reg.Cells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertySelectedPointsHaveQualifiedDensity(t *testing.T) {
	// Any point selected at high τ must sit in a cell whose corners are
	// mostly above τ — i.e. selected points genuinely live in dense areas.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 100 + rr.Intn(100)
		m := linalg.NewMatrix(n, 2)
		for i := 0; i < n; i++ {
			m.Set(i, 0, rr.NormFloat64())
			m.Set(i, 1, rr.NormFloat64())
		}
		g, err := kde.Estimate2D(m, kde.Options{GridSize: 20})
		if err != nil {
			return false
		}
		tau := 0.5 * g.MaxDensity()
		reg, err := FindRegion(g, m.At(0, 0), m.At(0, 1), tau)
		if err != nil {
			return false
		}
		for _, i := range reg.SelectPoints(m.Col(0), m.Col(1)) {
			// The interpolated density at a selected point should be at
			// least within a kernel-width of the threshold; use a loose
			// sanity factor.
			if g.InterpAt(m.At(i, 0), m.At(i, 1)) < tau*0.2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
