package linalg

import (
	"context"
	"math/rand"
	"testing"
)

// TestCovarianceContextBitIdentical checks the determinism contract: the
// parallel covariance must equal the serial one bit for bit, because each
// entry accumulates over data rows in the same order. The 600×40 shape is
// above the internal serial-fallback threshold, so the parallel path
// really runs.
func TestCovarianceContextBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMatrix(600, 40)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * float64(1+i%7)
	}
	serial := m.Covariance()
	for _, workers := range []int{2, 4, 8} {
		par, err := m.CovarianceContext(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("workers=%d: cov[%d] = %v, serial %v", workers, i, par.Data[i], serial.Data[i])
			}
		}
	}
}

func TestCovarianceContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMatrix(600, 40)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.CovarianceContext(ctx, 4); err == nil {
		t.Fatal("want error from canceled context")
	}
}
