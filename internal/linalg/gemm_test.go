package linalg

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomSubspace orthonormalizes l random vectors in R^d.
func randomSubspace(t *testing.T, r *rand.Rand, d, l int) *Subspace {
	t.Helper()
	span := make([]Vector, l)
	for i := range span {
		v := make(Vector, d)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		span[i] = v
	}
	s, err := NewSubspace(d, span)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomMatrix(r *rand.Rand, n, d int) *Matrix {
	m := NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// naiveProjectRows is the reference the kernel must reproduce bit for bit:
// rows outer, basis vectors inner, each entry one sequential dot product.
func naiveProjectRows(s *Subspace, m *Matrix) *Matrix {
	out := NewMatrix(m.Rows, s.Dim())
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := 0; j < s.Dim(); j++ {
			out.Set(i, j, row.Dot(s.BasisVector(j)))
		}
	}
	return out
}

// TestProjectRowsKernelBitIdentical pins the determinism contract of the
// blocked kernel: for row counts that exercise the 4-row micro-tile and
// its remainder, and at several worker counts, the output must equal the
// naive loop bit for bit.
func TestProjectRowsKernelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 4, 5, 17, 64, 101} {
		for _, l := range []int{1, 2, 5} {
			s := randomSubspace(t, r, 9, l)
			m := randomMatrix(r, n, 9)
			want := naiveProjectRows(s, m)
			for _, workers := range []int{1, 4, 8} {
				got, err := s.ProjectRowsContext(context.Background(), workers, m)
				if err != nil {
					t.Fatal(err)
				}
				for k := range want.Data {
					if math.Float64bits(got.Data[k]) != math.Float64bits(want.Data[k]) {
						t.Fatalf("n=%d l=%d workers=%d entry %d: %v != %v",
							n, l, workers, k, got.Data[k], want.Data[k])
					}
				}
			}
		}
	}
}

// TestProjectRowsAxisFastPathBitIdentical checks that the axis-aligned
// gather produces exactly the bits of the dot-product path, including on
// data containing negative zeros (x·e_a yields +0 for x[a] = −0, and the
// gather's "+0" reproduces that).
func TestProjectRowsAxisFastPathBitIdentical(t *testing.T) {
	s, err := AxisSubspace(6, []int{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.AxisAligned() {
		t.Fatal("AxisSubspace not detected as axis-aligned")
	}
	r := rand.New(rand.NewSource(3))
	m := randomMatrix(r, 33, 6)
	m.Set(0, 4, math.Copysign(0, -1)) // −0 must gather as +0
	m.Set(7, 1, math.Copysign(0, -1))
	want := naiveProjectRows(s, m)
	got, err := s.ProjectRows(m)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Data {
		if math.Float64bits(got.Data[k]) != math.Float64bits(want.Data[k]) {
			t.Fatalf("entry %d: bits %x != %x", k,
				math.Float64bits(got.Data[k]), math.Float64bits(want.Data[k]))
		}
	}
	// Project and ProjDistTo must agree bitwise with the general path too.
	y := make(Vector, 6)
	for j := range y {
		y[j] = r.NormFloat64()
	}
	y[4] = math.Copysign(0, -1)
	general := make(Vector, s.Dim())
	for i := 0; i < s.Dim(); i++ {
		general[i] = y.Dot(s.BasisVector(i))
	}
	fast := s.Project(y)
	for i := range general {
		if math.Float64bits(fast[i]) != math.Float64bits(general[i]) {
			t.Fatalf("Project coord %d: %v != %v", i, fast[i], general[i])
		}
	}
	coords := Vector{0.25, -1.5}
	var sum float64
	for j := range general {
		d := coords[j] - general[j]
		sum += d * d
	}
	if want, got := math.Sqrt(sum), s.ProjDistTo(coords, y); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("ProjDistTo = %v, want %v", got, want)
	}
}

// TestAxisAlignedDetection covers the classifier: full spaces, axis
// subspaces, and Gram–Schmidt-reproduced standard bases are axis-aligned;
// rotated bases are not.
func TestAxisAlignedDetection(t *testing.T) {
	if !FullSpace(5).AxisAligned() {
		t.Error("FullSpace not axis-aligned")
	}
	// Orthonormalizing scaled standard vectors reproduces them exactly.
	s, err := NewSubspace(4, []Vector{{0, 3, 0, 0}, {0, 0, 0, -2}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.AxisAligned() {
		t.Skip("Gram–Schmidt of scaled standard vectors did not reproduce the standard basis")
	}
	rot, err := NewSubspace(3, []Vector{{1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if rot.AxisAligned() {
		t.Error("rotated basis claimed axis-aligned")
	}
}

func TestQuadForm(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := randomMatrix(r, 40, 6)
	cov := m.Covariance()
	u := make(Vector, 6)
	for j := range u {
		u[j] = r.NormFloat64()
	}
	u.Normalize()
	// uᵀΣu must match the explicit double sum.
	var want float64
	for a := 0; a < 6; a++ {
		var row float64
		for b := 0; b < 6; b++ {
			row += cov.At(a, b) * u[b]
		}
		want += u[a] * row
	}
	got := cov.QuadForm(u)
	if math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("QuadForm = %v, want %v", got, want)
	}
	// And match the data-sweep variance to high relative accuracy.
	sweep := m.VarianceAlong(u)
	if rel := math.Abs(got-sweep) / sweep; rel > 1e-10 {
		t.Fatalf("QuadForm vs sweep relative error %v", rel)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("QuadForm with mismatched dim did not panic")
		}
	}()
	cov.QuadForm(make(Vector, 3))
}

// TestNegativeZeroQuadFormSkip ensures the ua==0 early-out also fires for
// −0 entries (the comparison matches both zeros) without changing results.
func TestNegativeZeroQuadFormSkip(t *testing.T) {
	cov := Identity(2)
	u := Vector{math.Copysign(0, -1), 2}
	if got := cov.QuadForm(u); got != 4 {
		t.Fatalf("QuadForm = %v, want 4", got)
	}
}

func TestPullThroughCov(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	m := randomMatrix(r, 200, 8)
	cov := m.Covariance()
	for name, s := range map[string]*Subspace{
		"arbitrary": randomSubspace(t, r, 8, 3),
		"axis":      mustAxis(t, 8, []int{6, 0, 3}),
	} {
		pulled, err := s.PullThroughCov(cov)
		if err != nil {
			t.Fatal(err)
		}
		proj, err := s.ProjectRows(m)
		if err != nil {
			t.Fatal(err)
		}
		direct := proj.Covariance()
		scale := direct.MaxAbs()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if d := math.Abs(pulled.At(i, j) - direct.At(i, j)); d > 1e-10*scale {
					t.Errorf("%s: Σ′[%d][%d] = %v, direct %v (Δ=%v)",
						name, i, j, pulled.At(i, j), direct.At(i, j), d)
				}
				if pulled.At(i, j) != pulled.At(j, i) {
					t.Errorf("%s: pulled covariance not exactly symmetric at (%d,%d)", name, i, j)
				}
			}
		}
	}
	if _, err := randomSubspace(t, r, 4, 2).PullThroughCov(cov); err == nil {
		t.Error("ambient mismatch accepted")
	}
}

func mustAxis(t *testing.T, d int, attrs []int) *Subspace {
	t.Helper()
	s, err := AxisSubspace(d, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestColumnVariances pins the single-pass column variances against
// VarianceAlong over each standard basis direction — equal bits, because
// both run the same sum/sumSq accumulation in row order.
func TestColumnVariances(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	m := randomMatrix(r, 57, 5)
	got := m.ColumnVariances()
	for j := 0; j < 5; j++ {
		want := m.VarianceAlong(Basis(5, j))
		if math.Float64bits(got[j]) != math.Float64bits(want) {
			t.Errorf("column %d: %v != VarianceAlong %v", j, got[j], want)
		}
	}
	if v := NewMatrix(1, 3).ColumnVariances(); v[0] != 0 || v[1] != 0 || v[2] != 0 {
		t.Errorf("single-row variances = %v, want zeros", v)
	}
}

// TestVarianceCancellationClamp is the numerical-stability regression test
// for the E[X²]−E[X]² formulation shared by Matrix.VarianceAlong, the
// engine's sweep, and the memoized-covariance quadratic form. Data at a
// large offset with tiny spread makes sumSq/n and mean² agree to nearly
// all their bits; the subtraction can then dip below zero, and every
// variance path must clamp that noise at exactly zero rather than return
// a negative variance (which would flip the sign of a λ/γ ratio).
func TestVarianceCancellationClamp(t *testing.T) {
	const offset = 1e9
	n := 64
	m := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		// Spread ~1e-5 around a 1e9 offset: variance ~1e-10, nine orders
		// below the cancellation magnitude of offset².
		m.Set(i, 0, offset+1e-5*float64(i%2))
		m.Set(i, 1, offset) // constant column: true variance 0
	}
	u := Basis(2, 1)
	if v := m.VarianceAlong(u); v != 0 {
		t.Errorf("constant column sweep variance = %v, want exactly 0 (clamped)", v)
	}
	if v := m.ColumnVariances()[1]; v != 0 {
		t.Errorf("constant column one-pass variance = %v, want exactly 0", v)
	}
	cov := m.Covariance()
	if g := cov.QuadForm(u); g < 0 {
		t.Errorf("uᵀΣu = %v, want ≥ 0 (covariance centers before squaring)", g)
	}
	// The spread column survives: centered covariance accumulation keeps
	// the 1e-10-scale variance that the raw-moment subtraction destroys.
	// (The input values themselves round at the 1e9 scale, so allow a few
	// percent around the ideal 2.5e-11.)
	if g := cov.QuadForm(Basis(2, 0)); g < 2.3e-11 || g > 2.7e-11 {
		t.Errorf("offset-robust variance = %v, want ≈2.5e-11", g)
	}
	// Document the sweep's limitation at the same offset: whatever it
	// returns must at least be clamped non-negative.
	if v := m.VarianceAlong(Basis(2, 0)); v < 0 {
		t.Errorf("sweep variance = %v, want clamp at 0", v)
	}
}
