// Package linalg provides the dense linear-algebra substrate used by the
// interactive nearest-neighbor system: vectors, matrices, covariance
// estimation, a Jacobi eigensolver for symmetric matrices, Gram–Schmidt
// orthonormalization, and orthonormal subspaces with projection and
// orthogonal-complement operations.
//
// The package is deliberately self-contained (standard library only) and
// tuned for the moderate sizes that arise in the system: dimensionalities
// in the tens to low hundreds and data sets in the thousands of rows.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible
// dimensions.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector of float64 components.
type Vector []float64

// NewVector returns a zero vector of dimension n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dim returns the number of components of v.
func (v Vector) Dim() int { return len(v) }

// Dot returns the inner product <v, w>. It panics if dimensions differ;
// use DotChecked when the dimensions are not statically guaranteed.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// DotChecked returns the inner product or ErrDimensionMismatch.
func (v Vector) DotChecked(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: dot %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	return v.Dot(w), nil
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	// Scaled accumulation avoids overflow/underflow for extreme values.
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic("linalg: Add dimension mismatch")
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic("linalg: Sub dimension mismatch")
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c·v as a new vector.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AXPY performs v += c·w in place.
func (v Vector) AXPY(c float64, w Vector) {
	if len(v) != len(w) {
		panic("linalg: AXPY dimension mismatch")
	}
	for i := range v {
		v[i] += c * w[i]
	}
}

// Normalize scales v in place to unit Euclidean norm and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func (v Vector) Normalize() float64 {
	n := v.Norm()
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 {
	if len(v) != len(w) {
		panic("linalg: Dist dimension mismatch")
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ApproxEqual reports whether v and w agree component-wise within tol.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every component of v is finite (no NaN/Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Basis returns the i-th standard basis vector of dimension n.
func Basis(n, i int) Vector {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("linalg: Basis index %d out of range [0,%d)", i, n))
	}
	v := make(Vector, n)
	v[i] = 1
	return v
}
