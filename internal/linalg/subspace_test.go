package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSubspaceOrthonormalizes(t *testing.T) {
	s, err := NewSubspace(3, []Vector{{1, 1, 0}, {1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 || s.Ambient() != 3 {
		t.Fatalf("dim %d ambient %d", s.Dim(), s.Ambient())
	}
	if e := s.OrthonormalityError(); e > 1e-12 {
		t.Errorf("orthonormality error %v", e)
	}
}

func TestNewSubspaceRejectsDependent(t *testing.T) {
	_, err := NewSubspace(3, []Vector{{1, 0, 0}, {2, 0, 0}})
	if !errors.Is(err, ErrDegenerateBasis) {
		t.Errorf("want ErrDegenerateBasis, got %v", err)
	}
	_, err = NewSubspace(3, []Vector{{0, 0, 0}})
	if !errors.Is(err, ErrDegenerateBasis) {
		t.Errorf("zero vector: want ErrDegenerateBasis, got %v", err)
	}
	_, err = NewSubspace(3, []Vector{{1, 0}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("want ErrDimensionMismatch, got %v", err)
	}
}

func TestFullSpace(t *testing.T) {
	s := FullSpace(4)
	if s.Dim() != 4 {
		t.Fatalf("dim %d", s.Dim())
	}
	v := Vector{1, 2, 3, 4}
	if got := s.Project(v); !got.ApproxEqual(v, 0) {
		t.Errorf("full-space projection changed vector: %v", got)
	}
}

func TestAxisSubspace(t *testing.T) {
	s, err := AxisSubspace(5, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got := s.Project(Vector{10, 20, 30, 40, 50})
	if !got.ApproxEqual(Vector{20, 40}, 0) {
		t.Errorf("Project = %v", got)
	}
	if _, err := AxisSubspace(3, []int{5}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := AxisSubspace(3, []int{1, 1}); !errors.Is(err, ErrDegenerateBasis) {
		t.Errorf("repeated axis: got %v", err)
	}
}

func TestProjectAndLiftRoundTrip(t *testing.T) {
	s, err := NewSubspace(3, []Vector{{1, 1, 0}, {0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// A vector inside the subspace must survive project→lift.
	in := Vector{2, 2, 5}
	back := s.Lift(s.Project(in))
	if !back.ApproxEqual(in, 1e-12) {
		t.Errorf("round trip %v -> %v", in, back)
	}
	// A vector outside loses only its orthogonal part.
	out := Vector{1, -1, 0} // orthogonal to (1,1,0) and (0,0,1)
	if got := s.Lift(s.Project(out)); got.Norm() > 1e-12 {
		t.Errorf("orthogonal vector projected to %v", got)
	}
}

func TestProjectRows(t *testing.T) {
	s, _ := AxisSubspace(3, []int{0, 2})
	m, _ := MatrixFromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	p, err := s.ProjectRows(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 2 || p.Cols != 2 || p.At(1, 1) != 6 {
		t.Fatalf("ProjectRows = %v", p)
	}
	if _, err := s.ProjectRows(NewMatrix(2, 5)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("want mismatch, got %v", err)
	}
}

func TestPDist(t *testing.T) {
	s, _ := AxisSubspace(3, []int{0})
	a := Vector{0, 100, -7}
	b := Vector{3, -100, 7}
	if got := s.PDist(a, b); math.Abs(got-3) > 1e-12 {
		t.Errorf("PDist = %v, want 3", got)
	}
	full := FullSpace(3)
	if got, want := full.PDist(a, b), a.Dist(b); math.Abs(got-want) > 1e-12 {
		t.Errorf("full PDist = %v, want %v", got, want)
	}
}

func TestComplement(t *testing.T) {
	whole := FullSpace(4)
	s, _ := NewSubspace(4, []Vector{{1, 1, 0, 0}, {0, 0, 1, 0}})
	comp, err := s.Complement(whole)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Dim() != 2 {
		t.Fatalf("complement dim %d", comp.Dim())
	}
	// Every complement basis vector must be orthogonal to every s basis vector.
	for i := 0; i < comp.Dim(); i++ {
		for j := 0; j < s.Dim(); j++ {
			if d := math.Abs(comp.BasisVector(i).Dot(s.BasisVector(j))); d > 1e-10 {
				t.Errorf("complement not orthogonal: %v", d)
			}
		}
	}
	// s ∪ complement must span whole: any vector reconstructs.
	v := Vector{1, 2, 3, 4}
	rec := s.Lift(s.Project(v)).Add(comp.Lift(comp.Project(v)))
	if !rec.ApproxEqual(v, 1e-10) {
		t.Errorf("span incomplete: %v", rec)
	}
}

func TestComplementWithinSmallerWhole(t *testing.T) {
	// Complement within a 3-D subspace of R^4.
	whole, _ := NewSubspace(4, []Vector{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}})
	s, _ := NewSubspace(4, []Vector{{1, 1, 0, 0}})
	comp, err := s.Complement(whole)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Dim() != 2 {
		t.Fatalf("dim %d, want 2", comp.Dim())
	}
	for i := 0; i < comp.Dim(); i++ {
		b := comp.BasisVector(i)
		if math.Abs(b[3]) > 1e-10 {
			t.Errorf("complement leaked outside whole: %v", b)
		}
		if math.Abs(b.Dot(s.BasisVector(0))) > 1e-10 {
			t.Errorf("complement not orthogonal to s")
		}
	}
}

func TestContains(t *testing.T) {
	s, _ := NewSubspace(3, []Vector{{1, 0, 0}, {0, 1, 0}})
	if !s.Contains(Vector{3, -2, 0}, 1e-10) {
		t.Error("in-plane vector not contained")
	}
	if s.Contains(Vector{0, 0, 1}, 1e-10) {
		t.Error("orthogonal vector reported contained")
	}
	if !s.Contains(Vector{0, 0, 0}, 1e-10) {
		t.Error("zero vector should be contained")
	}
}

func TestPropertyProjectionContraction(t *testing.T) {
	// ‖Proj(v)‖ ≤ ‖v‖ and PDist ≤ Dist for any subspace.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(10)
		l := 1 + rr.Intn(d)
		span := make([]Vector, l)
		for i := range span {
			span[i] = randomVector(rr, d)
		}
		s, err := NewSubspace(d, span)
		if err != nil {
			return true // dependent random span; skip
		}
		a, b := randomVector(rr, d), randomVector(rr, d)
		if s.Project(a).Norm() > a.Norm()*(1+1e-10) {
			return false
		}
		return s.PDist(a, b) <= a.Dist(b)*(1+1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyComplementDecomposition(t *testing.T) {
	// v = Proj_s(v) ⊕ Proj_comp(v) and Pythagoras holds.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := 2 + rr.Intn(8)
		l := 1 + rr.Intn(d-1)
		span := make([]Vector, l)
		for i := range span {
			span[i] = randomVector(rr, d)
		}
		s, err := NewSubspace(d, span)
		if err != nil {
			return true
		}
		comp, err := s.Complement(FullSpace(d))
		if err != nil {
			return false
		}
		v := randomVector(rr, d)
		rec := s.Lift(s.Project(v)).Add(comp.Lift(comp.Project(v)))
		if !rec.ApproxEqual(v, 1e-8*(1+v.Norm())) {
			return false
		}
		ps, pc := s.Project(v).Norm(), comp.Project(v).Norm()
		return math.Abs(ps*ps+pc*pc-v.Dot(v)) <= 1e-7*(1+v.Dot(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
