package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrDegenerateBasis is returned when a set of vectors cannot be
// orthonormalized because it is (numerically) linearly dependent.
var ErrDegenerateBasis = errors.New("linalg: degenerate basis")

// Subspace is an l-dimensional linear subspace of R^d represented by an
// orthonormal basis {e1 … el}. It corresponds directly to the paper's
// subspace E and supports the projection operator Proj(y, E) = (y·e1 … y·el)
// and the projected distance Pdist.
type Subspace struct {
	ambient int
	basis   []Vector // orthonormal, each of dimension ambient

	// axes memoizes axisIndices: when every basis vector is exactly a
	// standard basis vector (FullSpace, AxisSubspace, and — because
	// Gram–Schmidt of standard vectors reproduces them bit for bit — the
	// axis-parallel subspaces and complements the engine derives), the
	// projection kernels skip the d-length dot products and gather the
	// coordinate directly. Resolved once, lazily; a Subspace is immutable
	// after construction, so the memo is safe for concurrent readers.
	axesOnce sync.Once
	axes     []int
	axesOK   bool
}

// axisIndices returns, for a basis consisting solely of standard basis
// vectors, the axis index of each basis vector in order; ok is false for
// any other basis. The scan runs once per subspace.
func (s *Subspace) axisIndices() (axes []int, ok bool) {
	s.axesOnce.Do(func() {
		idx := make([]int, len(s.basis))
		for i, b := range s.basis {
			axis := -1
			for j, x := range b {
				switch {
				case x == 0: // matches both +0 and −0
				case x == 1 && axis < 0:
					axis = j
				default:
					return
				}
			}
			if axis < 0 {
				return
			}
			idx[i] = axis
		}
		s.axes, s.axesOK = idx, true
	})
	return s.axes, s.axesOK
}

// AxisAligned reports whether every basis vector of s is exactly a
// standard basis vector (an axis-parallel subspace in the paper's sense).
func (s *Subspace) AxisAligned() bool {
	_, ok := s.axisIndices()
	return ok
}

// AxisIndices exposes the axis decomposition to callers outside the
// package (the engine's axis-subspace index routing): for an axis-aligned
// basis it returns the axis index of each basis vector in order; ok is
// false for any other basis. The returned slice is the memo itself —
// read-only, do not mutate.
func (s *Subspace) AxisIndices() (axes []int, ok bool) {
	return s.axisIndices()
}

// Identity reports whether s is exactly the full space with the standard
// basis in natural order — what FullSpace constructs. Projection through
// an identity subspace is the identity map and its projected distance is
// plain L2 over the ambient coordinates in natural accumulation order, so
// callers (the engine's candidate-generation gate) may substitute an
// L2-based index without changing a single bit of the ranking. A permuted
// axis basis is NOT an identity: it changes the floating-point
// accumulation order.
func (s *Subspace) Identity() bool {
	if len(s.basis) != s.ambient {
		return false
	}
	axes, ok := s.axisIndices()
	if !ok {
		return false
	}
	for i, a := range axes {
		if a != i {
			return false
		}
	}
	return true
}

// NewSubspace orthonormalizes the given spanning vectors (modified copies;
// the inputs are not mutated) via modified Gram–Schmidt and returns the
// resulting subspace. Vectors that are numerically dependent on earlier
// ones are rejected with ErrDegenerateBasis.
func NewSubspace(ambient int, span []Vector) (*Subspace, error) {
	s := &Subspace{ambient: ambient}
	for i, v := range span {
		if len(v) != ambient {
			return nil, fmt.Errorf("%w: span vector %d has dim %d, ambient %d",
				ErrDimensionMismatch, i, len(v), ambient)
		}
		if err := s.append(v); err != nil {
			return nil, fmt.Errorf("span vector %d: %w", i, err)
		}
	}
	return s, nil
}

// FullSpace returns R^d itself, i.e. the universal subspace U of the paper,
// with the standard basis.
func FullSpace(d int) *Subspace {
	s := &Subspace{ambient: d, basis: make([]Vector, d)}
	for i := 0; i < d; i++ {
		s.basis[i] = Basis(d, i)
	}
	return s
}

// AxisSubspace returns the axis-parallel subspace spanned by the given
// attribute indices of R^d.
func AxisSubspace(d int, attrs []int) (*Subspace, error) {
	s := &Subspace{ambient: d}
	seen := make(map[int]bool, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= d {
			return nil, fmt.Errorf("linalg: axis %d out of range [0,%d)", a, d)
		}
		if seen[a] {
			return nil, fmt.Errorf("%w: repeated axis %d", ErrDegenerateBasis, a)
		}
		seen[a] = true
		s.basis = append(s.basis, Basis(d, a))
	}
	return s, nil
}

// append orthonormalizes v against the current basis and appends it.
func (s *Subspace) append(v Vector) error {
	u := v.Clone()
	orig := u.Norm()
	if orig == 0 {
		return fmt.Errorf("%w: zero vector", ErrDegenerateBasis)
	}
	// Two passes of modified Gram–Schmidt for numerical robustness.
	for pass := 0; pass < 2; pass++ {
		for _, b := range s.basis {
			u.AXPY(-u.Dot(b), b)
		}
	}
	if u.Norm() < 1e-10*orig {
		return fmt.Errorf("%w: vector dependent on existing basis", ErrDegenerateBasis)
	}
	u.Normalize()
	s.basis = append(s.basis, u)
	return nil
}

// Ambient returns the dimension d of the containing space.
func (s *Subspace) Ambient() int { return s.ambient }

// Dim returns the dimension l of the subspace.
func (s *Subspace) Dim() int { return len(s.basis) }

// BasisVector returns the i-th orthonormal basis vector (not a copy;
// callers must not mutate it).
func (s *Subspace) BasisVector(i int) Vector { return s.basis[i] }

// Basis returns copies of all basis vectors.
func (s *Subspace) Basis() []Vector {
	out := make([]Vector, len(s.basis))
	for i, b := range s.basis {
		out[i] = b.Clone()
	}
	return out
}

// Project returns Proj(y, E) = (y·e1 … y·el): the coordinates of y in the
// subspace basis. This is the paper's projection operator.
func (s *Subspace) Project(y Vector) Vector {
	if len(y) != s.ambient {
		panic(fmt.Sprintf("linalg: Project dim %d into ambient %d", len(y), s.ambient))
	}
	out := make(Vector, len(s.basis))
	if axes, ok := s.axisIndices(); ok {
		// y·e_a accumulates zeros around y[a]; "+0" reproduces the one
		// observable difference (−0 dotted with a standard vector is +0),
		// so the gather is bit-identical to the dot products.
		for i, a := range axes {
			out[i] = y[a] + 0
		}
		return out
	}
	for i, b := range s.basis {
		out[i] = y.Dot(b)
	}
	return out
}

// ProjectRows projects every row of m (shape n×ambient) into the subspace,
// returning an n×Dim matrix of subspace coordinates. It runs the blocked
// kernel serially; see ProjectRowsInto for the parallel form.
func (s *Subspace) ProjectRows(m *Matrix) (*Matrix, error) {
	return s.ProjectRowsContext(context.Background(), 1, m)
}

// Lift maps subspace coordinates back into ambient space: Σ cᵢ eᵢ.
func (s *Subspace) Lift(coords Vector) Vector {
	if len(coords) != len(s.basis) {
		panic(fmt.Sprintf("linalg: Lift coords dim %d, subspace dim %d", len(coords), len(s.basis)))
	}
	out := make(Vector, s.ambient)
	for i, c := range coords {
		out.AXPY(c, s.basis[i])
	}
	return out
}

// PDist returns the projected distance Pdist(x1, x2, E): the Euclidean
// distance between Proj(x1, E) and Proj(x2, E).
func (s *Subspace) PDist(x1, x2 Vector) float64 {
	var sum float64
	diff := x1.Sub(x2)
	for _, b := range s.basis {
		p := diff.Dot(b)
		sum += p * p
	}
	return math.Sqrt(sum)
}

// ProjDistTo returns the Euclidean distance between coords — a point
// already expressed in the subspace basis, i.e. Proj(q, E) — and the
// projection of the ambient point x, without materializing Proj(x, E).
// It performs exactly the operations of coords.Dist(s.Project(x)) in the
// same order, so results are bit-identical to the allocating form; this
// is the engine's per-point distance in the query-cluster scans.
func (s *Subspace) ProjDistTo(coords, x Vector) float64 {
	if len(coords) != len(s.basis) {
		panic(fmt.Sprintf("linalg: ProjDistTo coords dim %d, subspace dim %d", len(coords), len(s.basis)))
	}
	if len(x) != s.ambient {
		panic(fmt.Sprintf("linalg: ProjDistTo point dim %d, ambient %d", len(x), s.ambient))
	}
	var sum float64
	if axes, ok := s.axisIndices(); ok {
		// Axis-aligned fast path: O(l) gathers instead of l dot products
		// of length d, bit-identical to the general loop (see Project).
		for j, a := range axes {
			d := coords[j] - (x[a] + 0)
			sum += d * d
		}
		return math.Sqrt(sum)
	}
	for j, b := range s.basis {
		d := coords[j] - x.Dot(b)
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Complement returns the orthogonal complement of s within the subspace
// whole (i.e. whole ⊖ s, the paper's E_new = E_c − E_p). Every basis vector
// of s must lie in whole; the result has dimension whole.Dim() − s.Dim().
func (s *Subspace) Complement(whole *Subspace) (*Subspace, error) {
	if whole.ambient != s.ambient {
		return nil, fmt.Errorf("%w: ambient %d vs %d", ErrDimensionMismatch, whole.ambient, s.ambient)
	}
	out := &Subspace{ambient: s.ambient}
	// Seed with s's basis, then extend with whole's basis; the extension
	// vectors (those accepted after the seed) form the complement.
	work := &Subspace{ambient: s.ambient}
	for _, b := range s.basis {
		if err := work.append(b); err != nil {
			return nil, fmt.Errorf("linalg: complement seed: %w", err)
		}
	}
	for _, b := range whole.basis {
		if err := work.append(b); err != nil {
			// Dependent on span so far: lies (numerically) inside; skip.
			continue
		}
		out.basis = append(out.basis, work.basis[len(work.basis)-1])
	}
	want := whole.Dim() - s.Dim()
	if out.Dim() != want {
		return nil, fmt.Errorf("%w: complement dim %d, want %d (subspace not contained in whole?)",
			ErrDegenerateBasis, out.Dim(), want)
	}
	return out, nil
}

// Contains reports whether v lies in the subspace within tolerance tol,
// measured as the relative norm of the residual after projection.
func (s *Subspace) Contains(v Vector, tol float64) bool {
	if len(v) != s.ambient {
		return false
	}
	n := v.Norm()
	if n == 0 {
		return true
	}
	res := v.Clone()
	for _, b := range s.basis {
		res.AXPY(-res.Dot(b), b)
	}
	return res.Norm() <= tol*n
}

// OrthonormalityError returns the largest deviation |<eᵢ,eⱼ> − δᵢⱼ| over all
// basis pairs; used by tests to assert basis quality.
func (s *Subspace) OrthonormalityError() float64 {
	var mx float64
	for i := range s.basis {
		for j := i; j < len(s.basis); j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e := math.Abs(s.basis[i].Dot(s.basis[j]) - want); e > mx {
				mx = e
			}
		}
	}
	return mx
}
