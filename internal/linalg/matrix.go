package linalg

import (
	"context"
	"fmt"
	"math"
	"strings"

	"innsearch/internal/parallel"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatrixFromRows builds a matrix whose rows are the given vectors, which
// must all share the same dimension.
func MatrixFromRows(rows []Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), c)
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector sharing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// RowCopy returns a copy of row i.
func (m *Matrix) RowCopy(i int) Vector { return m.Row(i).Clone() }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	v := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns m·v for a column vector v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: mulvec %dx%d by %d", ErrDimensionMismatch, m.Rows, m.Cols, len(v))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(v)
	}
	return out, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders a small matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Matrix %dx%d\n", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&sb, "% .4g ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Mean returns the column-wise mean of the rows of m.
func (m *Matrix) Mean() Vector {
	mean := make(Vector, m.Cols)
	if m.Rows == 0 {
		return mean
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			mean[j] += x
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range mean {
		mean[j] *= inv
	}
	return mean
}

// Covariance returns the sample covariance matrix of the rows of m
// (normalized by n, the maximum-likelihood estimator, matching the paper's
// usage where only ratios of variances matter). The matrix has shape
// Cols×Cols and is exactly symmetric by construction. An empty or
// single-row input yields the zero matrix.
func (m *Matrix) Covariance() *Matrix {
	cov, _ := m.CovarianceContext(context.Background(), 1)
	return cov
}

// covParallelMinOps is the approximate accumulation-op count (rows ×
// cols²/2) below which CovarianceContext stays serial: goroutine fan-out
// costs more than it saves on tiny matrices.
const covParallelMinOps = 1 << 15

// CovarianceContext is Covariance with cooperative cancellation and a
// worker count (≤ 0 means GOMAXPROCS). The upper-triangular output rows
// are sharded across workers; every entry accumulates over the data rows
// in the same order as the serial path, so the result is bit-identical at
// any worker count. The only possible error is the context's.
func (m *Matrix) CovarianceContext(ctx context.Context, workers int) (*Matrix, error) {
	d := m.Cols
	cov := NewMatrix(d, d)
	n := m.Rows
	if n < 2 {
		return cov, ctx.Err()
	}
	if n*d*d/2 < covParallelMinOps {
		workers = 1
	}
	mean := m.Mean()
	err := parallel.ForShards(ctx, workers, d, func(_ context.Context, _, lo, hi int) error {
		for a := lo; a < hi; a++ {
			rowA := cov.Data[a*d:]
			for i := 0; i < n; i++ {
				row := m.Data[i*d : (i+1)*d]
				ca := row[a] - mean[a]
				if ca == 0 {
					continue
				}
				for b := a; b < d; b++ {
					rowA[b] += ca * (row[b] - mean[b])
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	inv := 1 / float64(n)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, nil
}

// ColumnVariances returns the per-column variance of the rows of m in one
// pass (normalized by n, clamped at zero like VarianceAlong). Column j of
// the result equals the variance of the rows along the j-th standard basis
// direction, which is what the axis-parallel projection scoring reads.
func (m *Matrix) ColumnVariances() Vector {
	out := make(Vector, m.Cols)
	if m.Rows < 2 {
		return out
	}
	sum := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			sum[j] += x
			out[j] += x * x
		}
	}
	n := float64(m.Rows)
	for j := range out {
		mean := sum[j] / n
		v := out[j]/n - mean*mean
		if v < 0 { // numeric noise
			v = 0
		}
		out[j] = v
	}
	return out
}

// VarianceAlong returns the variance of the rows of m when projected onto
// the (not necessarily unit) direction dir, normalized by n. The direction
// is normalized internally; a zero direction yields 0.
func (m *Matrix) VarianceAlong(dir Vector) float64 {
	if len(dir) != m.Cols {
		panic("linalg: VarianceAlong dimension mismatch")
	}
	u := dir.Clone()
	if u.Normalize() == 0 || m.Rows < 2 {
		return 0
	}
	var sum, sumSq float64
	for i := 0; i < m.Rows; i++ {
		p := Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(u)
		sum += p
		sumSq += p * p
	}
	n := float64(m.Rows)
	mean := sum / n
	v := sumSq/n - mean*mean
	if v < 0 { // numeric noise
		v = 0
	}
	return v
}
