package linalg

import (
	"context"
	"fmt"

	"innsearch/internal/parallel"
)

// This file holds the batched coordinate kernel behind every "project many
// rows into a subspace" loop in the system: Subspace.ProjectRows, the
// dataset view materialization, and the member-coordinate stage of the
// query-cluster subspace search.
//
// The kernel computes dst(i, j) = row(i)·basis[j] with two levels of
// blocking that both preserve the bit-exact result of the naive
// rows-outer/basis-inner loop:
//
//   - contiguous row shards across workers (each entry belongs to exactly
//     one shard, so output is independent of the worker count), and
//   - a 4-row micro-tile inside each shard that streams every basis
//     vector once per four rows instead of once per row; each of the four
//     accumulators still sums in ascending k order, i.e. exactly the
//     float-operation order of Vector.Dot.
//
// Axis-aligned subspaces (standard-basis vectors) skip the dot products
// entirely and gather coordinates, which turns the projection into a
// copy with stride — see Subspace.axisIndices for why the gather is
// bit-identical to the dots.

// gemmRowTile is the micro-tile height: basis vectors are streamed once
// per tile rather than once per row.
const gemmRowTile = 4

// ProjectRowsInto writes the subspace coordinates of rows 0 … n−1 into
// dst (shape n×Dim), reading each row through the row accessor. Row
// shards run on up to `workers` goroutines (≤ 0 means GOMAXPROCS); every
// entry is one sequential inner product, so the output is bit-identical
// at any worker count. dst must be preallocated by the caller, which is
// what lets the engine's hot loops reuse scratch matrices and allocate
// nothing steady-state.
func (s *Subspace) ProjectRowsInto(ctx context.Context, workers int, dst *Matrix, n int, row func(int) Vector) error {
	if dst.Rows < n || dst.Cols != len(s.basis) {
		return fmt.Errorf("%w: dst %dx%d for %d rows into %d-dim subspace",
			ErrDimensionMismatch, dst.Rows, dst.Cols, n, len(s.basis))
	}
	axes, axisOK := s.axisIndices()
	l := len(s.basis)
	return parallel.ForShards(ctx, workers, n, func(_ context.Context, _, lo, hi int) error {
		if axisOK {
			for i := lo; i < hi; i++ {
				r := row(i)
				out := dst.Data[i*l : i*l+l]
				for j, a := range axes {
					out[j] = r[a] + 0
				}
			}
			return nil
		}
		i := lo
		for ; i+gemmRowTile <= hi; i += gemmRowTile {
			r0, r1, r2, r3 := row(i), row(i+1), row(i+2), row(i+3)
			o0 := dst.Data[i*l : i*l+l]
			o1 := dst.Data[(i+1)*l : (i+1)*l+l]
			o2 := dst.Data[(i+2)*l : (i+2)*l+l]
			o3 := dst.Data[(i+3)*l : (i+3)*l+l]
			for j, b := range s.basis {
				r0, r1, r2, r3 := r0[:len(b)], r1[:len(b)], r2[:len(b)], r3[:len(b)]
				var s0, s1, s2, s3 float64
				for k, bk := range b {
					s0 += r0[k] * bk
					s1 += r1[k] * bk
					s2 += r2[k] * bk
					s3 += r3[k] * bk
				}
				o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
			}
		}
		for ; i < hi; i++ {
			r := row(i)
			out := dst.Data[i*l : i*l+l]
			for j, b := range s.basis {
				out[j] = r.Dot(b)
			}
		}
		return nil
	})
}

// ProjectRowsContext is ProjectRows with cooperative cancellation and a
// worker count; see ProjectRowsInto for the determinism contract.
func (s *Subspace) ProjectRowsContext(ctx context.Context, workers int, m *Matrix) (*Matrix, error) {
	if m.Cols != s.ambient {
		return nil, fmt.Errorf("%w: rows have dim %d, ambient %d", ErrDimensionMismatch, m.Cols, s.ambient)
	}
	out := NewMatrix(m.Rows, len(s.basis))
	if err := s.ProjectRowsInto(ctx, workers, out, m.Rows, m.Row); err != nil {
		return nil, err
	}
	return out, nil
}

// QuadForm returns the quadratic form uᵀ·m·u of a square matrix, the
// O(d²) evaluation behind the covariance pull-through: for Σ the
// covariance of a point set, QuadForm(u) of a unit u is the variance of
// the points along u without an O(N·d) data sweep. Row dot products run
// in ascending index order, so the result is deterministic.
func (m *Matrix) QuadForm(u Vector) float64 {
	if m.Rows != m.Cols || m.Cols != len(u) {
		panic(fmt.Sprintf("linalg: QuadForm %dx%d with vector dim %d", m.Rows, m.Cols, len(u)))
	}
	var sum float64
	for a, ua := range u {
		if ua == 0 {
			continue
		}
		sum += ua * Vector(m.Data[a*m.Cols:(a+1)*m.Cols]).Dot(u)
	}
	return sum
}

// PullThroughCov maps the covariance Σ of ambient-space rows to the
// covariance of their projections into s: Σ′ = B·Σ·Bᵀ with B the basis
// rows. Combined with View-level memoization this replaces the O(N·d²)
// re-estimation after every re-projection of the engine's complement
// chain by an O(d³) congruence. The result is exactly symmetric by
// construction. Axis-aligned subspaces reduce to a gather of Σ entries.
func (s *Subspace) PullThroughCov(cov *Matrix) (*Matrix, error) {
	d := s.ambient
	if cov.Rows != d || cov.Cols != d {
		return nil, fmt.Errorf("%w: covariance %dx%d, ambient %d", ErrDimensionMismatch, cov.Rows, cov.Cols, d)
	}
	l := len(s.basis)
	out := NewMatrix(l, l)
	if axes, ok := s.axisIndices(); ok {
		for i, a := range axes {
			for j := i; j < l; j++ {
				v := cov.At(a, axes[j])
				out.Set(i, j, v)
				out.Set(j, i, v)
			}
		}
		return out, nil
	}
	t := make(Vector, d) // t = Σ·bᵢ, reused per basis vector
	for i, bi := range s.basis {
		for a := 0; a < d; a++ {
			t[a] = Vector(cov.Data[a*d : (a+1)*d]).Dot(bi)
		}
		for j := i; j < l; j++ {
			v := s.basis[j].Dot(t)
			out.Set(i, j, v)
			out.Set(j, i, v)
		}
	}
	return out, nil
}
