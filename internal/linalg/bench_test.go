package linalg

import (
	"math/rand"
	"testing"
)

func benchSymmetric(b *testing.B, n int) {
	r := rand.New(rand.NewSource(1))
	a := randomSymmetric(r, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen10(b *testing.B) { benchSymmetric(b, 10) }
func BenchmarkSymEigen20(b *testing.B) { benchSymmetric(b, 20) }
func BenchmarkSymEigen50(b *testing.B) { benchSymmetric(b, 50) }

func BenchmarkCovariance5000x20(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	m := NewMatrix(5000, 20)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Covariance()
	}
}

func BenchmarkProjectRows5000x20to2(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	m := NewMatrix(5000, 20)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	span := []Vector{randomVector(r, 20), randomVector(r, 20)}
	s, err := NewSubspace(20, span)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ProjectRows(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComplement20minus2(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	span := []Vector{randomVector(r, 20), randomVector(r, 20)}
	s, err := NewSubspace(20, span)
	if err != nil {
		b.Fatal(err)
	}
	whole := FullSpace(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Complement(whole); err != nil {
			b.Fatal(err)
		}
	}
}
