package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want float64
	}{
		{"zero", Vector{0, 0}, Vector{1, 2}, 0},
		{"unit", Vector{1, 0, 0}, Vector{5, 7, 9}, 5},
		{"general", Vector{1, 2, 3}, Vector{4, 5, 6}, 32},
		{"negative", Vector{-1, 2}, Vector{3, -4}, -11},
		{"empty", Vector{}, Vector{}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dot(tc.b); got != tc.want {
				t.Errorf("Dot = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestVectorDotCheckedMismatch(t *testing.T) {
	_, err := Vector{1, 2}.DotChecked(Vector{1})
	if err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1, 2}.Dot(Vector{1})
}

func TestVectorNorm(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"zero", Vector{0, 0, 0}, 0},
		{"axis", Vector{0, -3, 0}, 3},
		{"pythagorean", Vector{3, 4}, 5},
		{"tiny", Vector{1e-200, 1e-200}, math.Sqrt2 * 1e-200},
		{"huge", Vector{3e200, 4e200}, 5e200},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.v.Norm()
			if math.Abs(got-tc.want) > 1e-9*math.Max(tc.want, 1e-300) {
				t.Errorf("Norm = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestVectorArithmetic(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{10, 20, 30}
	if got := a.Add(b); !got.ApproxEqual(Vector{11, 22, 33}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.ApproxEqual(Vector{9, 18, 27}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(-2); !got.ApproxEqual(Vector{-2, -4, -6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	c := a.Clone()
	c.AXPY(2, b)
	if !c.ApproxEqual(Vector{21, 42, 63}, 0) {
		t.Errorf("AXPY = %v", c)
	}
	// a must be untouched by Clone-based ops.
	if !a.ApproxEqual(Vector{1, 2, 3}, 0) {
		t.Errorf("source mutated: %v", a)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{3, 4}
	n := v.Normalize()
	if n != 5 {
		t.Errorf("Normalize returned %v, want 5", n)
	}
	if !v.ApproxEqual(Vector{0.6, 0.8}, 1e-15) {
		t.Errorf("normalized = %v", v)
	}
	z := Vector{0, 0}
	if z.Normalize() != 0 {
		t.Error("zero vector should return norm 0")
	}
	if !z.ApproxEqual(Vector{0, 0}, 0) {
		t.Error("zero vector should be unchanged")
	}
}

func TestVectorDist(t *testing.T) {
	a := Vector{1, 1}
	b := Vector{4, 5}
	if got := a.Dist(b); math.Abs(got-5) > 1e-15 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Errorf("self distance = %v", got)
	}
}

func TestVectorIsFinite(t *testing.T) {
	if !(Vector{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN not detected")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf not detected")
	}
}

func TestBasis(t *testing.T) {
	b := Basis(4, 2)
	if !b.ApproxEqual(Vector{0, 0, 1, 0}, 0) {
		t.Errorf("Basis = %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	Basis(3, 3)
}

// randomVector produces a bounded random vector for property tests.
func randomVector(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.NormFloat64() * 10
	}
	return v
}

func TestPropertyCauchySchwarz(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(30)
		a, b := randomVector(r, n), randomVector(r, n)
		return math.Abs(a.Dot(b)) <= a.Norm()*b.Norm()*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(30)
		a, b, c := randomVector(rr, n), randomVector(rr, n), randomVector(rr, n)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormalizeUnit(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := randomVector(rr, 1+rr.Intn(20))
		if v.Norm() == 0 {
			return true
		}
		v.Normalize()
		return math.Abs(v.Norm()-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
