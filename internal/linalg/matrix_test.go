package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 5)
	m.Set(1, 1, -2)
	if m.At(0, 2) != 5 || m.At(1, 1) != -2 || m.At(1, 0) != 0 {
		t.Fatalf("At/Set wrong: %v", m)
	}
	if got := m.Row(0); !got.ApproxEqual(Vector{1, 0, 5}, 0) {
		t.Errorf("Row = %v", got)
	}
	if got := m.Col(1); !got.ApproxEqual(Vector{0, -2}, 0) {
		t.Errorf("Col = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("bad matrix: %v", m)
	}
	if _, err := MatrixFromRows([]Vector{{1, 2}, {3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("want ErrDimensionMismatch, got %v", err)
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("empty: %v %v", empty, err)
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([]Vector{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([]Vector{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MatrixFromRows([]Vector{{19, 22}, {43, 50}})
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", got, want)
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("want mismatch error, got %v", err)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a, _ := MatrixFromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec(Vector{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(Vector{-2, -2}, 0) {
		t.Errorf("MulVec = %v", got)
	}
	if _, err := a.MulVec(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("want mismatch error, got %v", err)
	}
}

func TestMatrixMean(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{{1, 10}, {3, 20}, {5, 30}})
	if got := m.Mean(); !got.ApproxEqual(Vector{3, 20}, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := NewMatrix(0, 2).Mean(); !got.ApproxEqual(Vector{0, 0}, 0) {
		t.Errorf("empty Mean = %v", got)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Points on a line y = 2x: cov = [[var(x), 2var(x)], [2var(x), 4var(x)]].
	m, _ := MatrixFromRows([]Vector{{-1, -2}, {0, 0}, {1, 2}})
	cov := m.Covariance()
	varX := 2.0 / 3.0 // ML estimator over {-1,0,1}
	want := [][]float64{{varX, 2 * varX}, {2 * varX, 4 * varX}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(cov.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("cov[%d][%d] = %v, want %v", i, j, cov.At(i, j), want[i][j])
			}
		}
	}
	if !cov.IsSymmetric(0) {
		t.Error("covariance not exactly symmetric")
	}
}

func TestCovarianceDegenerate(t *testing.T) {
	for _, rows := range [][]Vector{nil, {{1, 2}}} {
		m, _ := MatrixFromRows(rows)
		cov := m.Covariance()
		if cov.MaxAbs() != 0 {
			t.Errorf("degenerate covariance should be zero, got %v", cov)
		}
	}
}

func TestVarianceAlong(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{{-1, 5}, {0, 5}, {1, 5}})
	// Along x: variance 2/3. Along y (constant): 0.
	if got := m.VarianceAlong(Vector{1, 0}); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("var along x = %v", got)
	}
	if got := m.VarianceAlong(Vector{0, 1}); got != 0 {
		t.Errorf("var along const = %v", got)
	}
	// Direction scaling must not matter.
	if a, b := m.VarianceAlong(Vector{2, 0}), m.VarianceAlong(Vector{1, 0}); math.Abs(a-b) > 1e-12 {
		t.Errorf("scale dependence: %v vs %v", a, b)
	}
	if got := m.VarianceAlong(Vector{0, 0}); got != 0 {
		t.Errorf("zero direction = %v", got)
	}
}

func TestPropertyCovariancePSD(t *testing.T) {
	// Covariance matrices must be positive semi-definite: xᵀΣx ≥ 0.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n, d := 2+rr.Intn(40), 1+rr.Intn(8)
		rows := make([]Vector, n)
		for i := range rows {
			rows[i] = randomVector(rr, d)
		}
		m, _ := MatrixFromRows(rows)
		cov := m.Covariance()
		x := randomVector(rr, d)
		mx, err := cov.MulVec(x)
		if err != nil {
			return false
		}
		return x.Dot(mx) >= -1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyVarianceAlongMatchesCovQuadraticForm(t *testing.T) {
	// var(data·u) == uᵀ Σ u for unit u.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n, d := 3+rr.Intn(30), 2+rr.Intn(6)
		rows := make([]Vector, n)
		for i := range rows {
			rows[i] = randomVector(rr, d)
		}
		m, _ := MatrixFromRows(rows)
		u := randomVector(rr, d)
		if u.Norm() == 0 {
			return true
		}
		u.Normalize()
		cov := m.Covariance()
		cu, _ := cov.MulVec(u)
		quad := u.Dot(cu)
		direct := m.VarianceAlong(u)
		return math.Abs(quad-direct) <= 1e-8*(1+math.Abs(quad))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
