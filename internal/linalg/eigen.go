package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNotSymmetric is returned by SymEigen when the input matrix is not
// symmetric within a small tolerance.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// ErrNoConvergence is returned when the Jacobi iteration fails to reduce
// the off-diagonal mass below tolerance within the sweep budget.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// EigenResult holds the spectral decomposition of a symmetric matrix:
// A = V · diag(Values) · Vᵀ, with eigenvalues sorted in ascending order and
// Vectors[i] the unit eigenvector paired with Values[i].
type EigenResult struct {
	Values  []float64
	Vectors []Vector
}

const (
	jacobiMaxSweeps = 100
	// jacobiTol bounds off(A)² relative to ‖A‖²_F; 1e-26 keeps residual
	// off-diagonal entries near 1e-13·‖A‖, and Jacobi's quadratic
	// convergence makes the extra sweeps cheap.
	jacobiTol = 1e-26
)

// SymEigen computes all eigenvalues and orthonormal eigenvectors of a
// symmetric matrix using the classical cyclic Jacobi rotation method. The
// method is unconditionally stable for symmetric input and is accurate to
// machine precision for the covariance matrices (dimension ≲ a few hundred)
// this system works with.
func SymEigen(a *Matrix) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: shape %dx%d", ErrNotSymmetric, a.Rows, a.Cols)
	}
	n := a.Rows
	scale := a.MaxAbs()
	if !a.IsSymmetric(1e-9*math.Max(scale, 1) + 1e-12) {
		return nil, ErrNotSymmetric
	}
	if n == 0 {
		return &EigenResult{}, nil
	}

	// Work on a copy; accumulate rotations in v.
	w := a.Clone()
	// Symmetrize exactly to keep the iteration clean.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := (w.At(i, j) + w.At(j, i)) / 2
			w.Set(i, j, s)
			w.Set(j, i, s)
		}
	}
	v := Identity(n)

	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.At(i, j)
				s += 2 * x * x
			}
		}
		return s
	}

	frob := 0.0
	for _, x := range w.Data {
		frob += x * x
	}
	tol := jacobiTol * math.Max(frob, 1e-300)

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if off() <= tol {
			return collectEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Skip rotations that cannot change anything at
				// machine precision.
				if math.Abs(apq) <= 1e-300 ||
					math.Abs(apq) < 1e-16*(math.Abs(app)+math.Abs(aqq)) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)

				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip := w.At(i, p)
					aiq := w.At(i, q)
					w.Set(i, p, aip-s*(aiq+tau*aip))
					w.Set(p, i, w.At(i, p))
					w.Set(i, q, aiq+s*(aip-tau*aiq))
					w.Set(q, i, w.At(i, q))
				}
				for i := 0; i < n; i++ {
					vip := v.At(i, p)
					viq := v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
	}
	if off() <= tol*1e3 {
		// Close enough for covariance work; accept.
		return collectEigen(w, v), nil
	}
	return nil, ErrNoConvergence
}

// collectEigen extracts eigenpairs from the (nearly) diagonalized matrix w
// and the accumulated rotation matrix v, sorted ascending by eigenvalue.
func collectEigen(w, v *Matrix) *EigenResult {
	n := w.Rows
	res := &EigenResult{
		Values:  make([]float64, n),
		Vectors: make([]Vector, n),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
		res.Values[i] = w.At(i, i)
	}
	sort.Slice(idx, func(a, b int) bool { return w.At(idx[a], idx[a]) < w.At(idx[b], idx[b]) })
	vals := make([]float64, n)
	for rank, col := range idx {
		vals[rank] = w.At(col, col)
		res.Vectors[rank] = v.Col(col)
		res.Vectors[rank].Normalize()
	}
	res.Values = vals
	return res
}

// Reconstruct rebuilds V · diag(Values) · Vᵀ from the decomposition; used
// by tests to verify round-trip accuracy.
func (e *EigenResult) Reconstruct() *Matrix {
	n := len(e.Values)
	m := NewMatrix(n, n)
	for k := 0; k < n; k++ {
		lam := e.Values[k]
		vk := e.Vectors[k]
		for i := 0; i < n; i++ {
			if vk[i] == 0 {
				continue
			}
			li := lam * vk[i]
			row := m.Data[i*n:]
			for j := 0; j < n; j++ {
				row[j] += li * vk[j]
			}
		}
	}
	return m
}
