package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, v := range res.Values {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Errorf("value[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Eigenvector for value 1 must be ±e1.
	v := res.Vectors[0]
	if math.Abs(math.Abs(v[1])-1) > 1e-10 {
		t.Errorf("eigvec for λ=1: %v", v)
	}
}

func TestSymEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3 with vectors (1,-1)/√2, (1,1)/√2.
	a, _ := MatrixFromRows([]Vector{{2, 1}, {1, 2}})
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-1) > 1e-12 || math.Abs(res.Values[1]-3) > 1e-12 {
		t.Fatalf("values = %v", res.Values)
	}
	v0 := res.Vectors[0]
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]+v0[1]) > 1e-10 {
		t.Errorf("eigvec λ=1: %v", v0)
	}
}

func TestSymEigenRejectsNonSymmetric(t *testing.T) {
	a, _ := MatrixFromRows([]Vector{{1, 5}, {0, 1}})
	if _, err := SymEigen(a); err == nil {
		t.Fatal("expected ErrNotSymmetric")
	}
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestSymEigenEmptyAndOne(t *testing.T) {
	res, err := SymEigen(NewMatrix(0, 0))
	if err != nil || len(res.Values) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	a := NewMatrix(1, 1)
	a.Set(0, 0, -7)
	res, err = SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != -7 || math.Abs(math.Abs(res.Vectors[0][0])-1) > 1e-15 {
		t.Fatalf("1x1: %v", res)
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	res, err := SymEigen(NewMatrix(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v != 0 {
			t.Errorf("zero matrix eigenvalue %v", v)
		}
	}
	// Vectors must still be orthonormal.
	for i := range res.Vectors {
		for j := i; j < len(res.Vectors); j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(res.Vectors[i].Dot(res.Vectors[j])-want) > 1e-12 {
				t.Errorf("vectors not orthonormal")
			}
		}
	}
}

// randomSymmetric builds a random symmetric matrix A = BᵀB − shift·I.
func randomSymmetric(r *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	a, _ := b.T().Mul(b)
	shift := r.NormFloat64()
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)-shift)
	}
	return a
}

func TestPropertyEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		a := randomSymmetric(rr, n)
		res, err := SymEigen(a)
		if err != nil {
			return false
		}
		rec := res.Reconstruct()
		scale := math.Max(a.MaxAbs(), 1)
		for i := range a.Data {
			if math.Abs(a.Data[i]-rec.Data[i]) > 1e-8*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEigenOrthonormalSorted(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(10)
		res, err := SymEigen(randomSymmetric(rr, n))
		if err != nil {
			return false
		}
		if !sort.Float64sAreSorted(res.Values) {
			return false
		}
		for i := range res.Vectors {
			for j := i; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(res.Vectors[i].Dot(res.Vectors[j])-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEigenTraceAndResidual(t *testing.T) {
	// Trace preservation and A·v = λ·v.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(10)
		a := randomSymmetric(rr, n)
		res, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range res.Values {
			sum += v
		}
		if math.Abs(trace-sum) > 1e-8*math.Max(math.Abs(trace), 1) {
			return false
		}
		for k, lam := range res.Values {
			av, _ := a.MulVec(res.Vectors[k])
			want := res.Vectors[k].Scale(lam)
			if !av.ApproxEqual(want, 1e-7*math.Max(a.MaxAbs(), 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenLargeCovariance(t *testing.T) {
	// Realistic workload: covariance of 200 points in 40 dims.
	r := rand.New(rand.NewSource(7))
	rows := make([]Vector, 200)
	for i := range rows {
		rows[i] = randomVector(r, 40)
	}
	m, _ := MatrixFromRows(rows)
	cov := m.Covariance()
	res, err := SymEigen(cov)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v < -1e-8 {
			t.Errorf("covariance eigenvalue %v < 0", v)
		}
	}
}
