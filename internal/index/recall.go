package index

import (
	"context"
	"errors"
	"fmt"
)

// RecallReport is the outcome of one MeasureRecall run: the mean recall
// over the query set plus the per-query values and the accumulated work
// counters, so harnesses can print the full distribution.
type RecallReport struct {
	Backend  string
	K        int
	Queries  int
	Mean     float64
	PerQuery []float64
	Work     Stats
}

// String formats the report for the recall harness's one-line output.
func (r RecallReport) String() string {
	return fmt.Sprintf("recall(%s, k=%d, queries=%d) = %.4f", r.Backend, r.K, r.Queries, r.Mean)
}

// MeasureRecall runs backend.KNN for every query and scores each k-set
// against the exact L2 reference (a full scan over src with the engine's
// strict total order). Recall of one query is |returned ∩ true| / k by
// row position; the report's Mean averages over queries. The backend must
// already be built over src.
//
// Exact backends must measure 1.0 by construction; approximate backends
// report their true operating point — the honesty contract of the
// ann-benchmarks discipline.
func MeasureRecall(ctx context.Context, backend Backend, src Source, queries [][]float64, k int) (RecallReport, error) {
	if backend == nil {
		return RecallReport{}, errors.New("index: nil backend")
	}
	if src == nil || src.N() == 0 {
		return RecallReport{}, errors.New("index: empty source")
	}
	if k <= 0 {
		return RecallReport{}, errors.New("index: k must be positive")
	}
	if len(queries) == 0 {
		return RecallReport{}, errors.New("index: no queries")
	}
	if k > src.N() {
		k = src.N()
	}
	rep := RecallReport{Backend: backend.Name(), K: k, Queries: len(queries)}
	rep.PerQuery = make([]float64, len(queries))
	dists := make([]float64, src.N())
	for qi, q := range queries {
		if err := ctx.Err(); err != nil {
			return RecallReport{}, err
		}
		got, st, err := backend.KNN(ctx, q, k)
		if err != nil {
			return RecallReport{}, fmt.Errorf("index: KNN query %d: %w", qi, err)
		}
		rep.Work.Add(st)
		// Exact reference: full scan, bounded top-k.
		for i := 0; i < src.N(); i++ {
			dists[i] = l2(q, src.Point(i))
		}
		truth := selectSmallest(src, dists, k)
		trueSet := make(map[int]bool, k)
		for _, c := range truth {
			trueSet[c.Pos] = true
		}
		hits := 0
		for _, c := range got {
			if trueSet[c.Pos] {
				hits++
			}
		}
		rep.PerQuery[qi] = float64(hits) / float64(len(truth))
		rep.Mean += rep.PerQuery[qi]
	}
	rep.Mean /= float64(len(queries))
	return rep, nil
}
