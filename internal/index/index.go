// Package index is the pluggable candidate-generation layer: one Backend
// interface over the repository's access methods (exact scan, VA-file,
// R-tree, IGrid, priority-search k-means tree), a registry to construct
// them by name, and a recall harness that measures any backend against
// the exact reference.
//
// The engine consults a backend to prune the store to a candidate set
// before its exact micro-tiled kernels run (see internal/core); the
// serving layer surfaces the chosen backend and its work counters in
// /varz and times builds and queries into /metrics. Backends divide into
// two semantic classes, reported by Exact():
//
//   - Exact backends (exact, vafile, rtree) return the true k nearest
//     neighbors under L2 with the engine's strict total order (ascending
//     distance, ascending position on ties). A session that prunes
//     through an exact backend returns byte-identical Results to the
//     full scan.
//   - Approximate backends (kmtree, igrid) trade recall for work. Their
//     contract is honesty, not exactness: measure recall against the
//     exact reference with MeasureRecall before trusting a configuration,
//     the discipline ann-benchmarks established.
//
// All backends build from a Source — a zero-copy row accessor satisfied
// by *dataset.View and *dataset.Dataset — and both Build and KNN honor
// context cancellation and the Options.Workers pool cap.
package index

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"innsearch/internal/linalg"
)

// Source is the row accessor every backend builds over: an indexed
// collection of points with original row IDs, read in place from the
// shared immutable store. *dataset.View and *dataset.Dataset satisfy it.
type Source interface {
	N() int
	Dim() int
	Point(i int) linalg.Vector
	ID(i int) int
}

// Candidate is one generated candidate: a row position in the built
// source, its original ID, and the backend's ranking score. For L2
// backends Dist is the exact Euclidean distance; for igrid it is the
// negated IGrid similarity, so ascending Dist is always "better" and
// callers can treat the slice uniformly.
type Candidate struct {
	Pos  int
	ID   int
	Dist float64
}

// Stats reports the work one KNN call did, in backend-appropriate units.
// Zero-valued fields mean "not applicable to this backend".
type Stats struct {
	// Scanned counts rows or row approximations examined.
	Scanned int
	// Refined counts exact full-dimensional distances computed.
	Refined int
	// Nodes counts tree nodes visited (tree backends).
	Nodes int
}

// Add accumulates another query's counters, for session-lifetime totals.
func (s *Stats) Add(o Stats) {
	s.Scanned += o.Scanned
	s.Refined += o.Refined
	s.Nodes += o.Nodes
}

// Options carries the tunables of every registered backend; each backend
// reads its own fields and ignores the rest. The zero value selects the
// documented defaults.
type Options struct {
	// Workers caps the goroutines a backend may use for building and
	// querying; ≤ 0 means GOMAXPROCS (the parallel.Workers convention).
	Workers int

	// Bits is the VA-file approximation width per dimension (default 6).
	Bits int

	// Bands is the IGrid equi-depth band count per dimension (default:
	// the data dimensionality) and Exponent its similarity exponent
	// (default 2).
	Bands    int
	Exponent float64

	// Branching is the k-means tree fan-out (default 16), LeafSize the
	// maximum points per leaf (default 32), Checks the search budget in
	// points examined per query (default 512), and Seed the PRNG seed of
	// the clustering (default 1). Recall is monotone non-decreasing in
	// Checks; measure it with MeasureRecall.
	Branching int
	LeafSize  int
	Checks    int
	Seed      int64
}

// Config names a backend and its options — the value surfaced on the
// public Config.Index field. The zero value means "no index": the engine
// keeps its full-scan hot path with zero overhead.
type Config struct {
	Name    string
	Options Options
}

// Enabled reports whether a backend was requested.
func (c Config) Enabled() bool { return c.Name != "" }

// Backend is one candidate-generation strategy. Implementations must be
// safe for concurrent KNN calls after Build returns. Build may be called
// again to re-index a new source (sessions rebuild after pruning rows).
type Backend interface {
	// Name returns the registry name the backend was constructed under.
	Name() string
	// Exact reports whether KNN returns the true L2 k-nearest set in the
	// engine's strict total order (ascending distance, ascending position
	// on ties). Approximate backends return false and are subject to
	// MeasureRecall.
	Exact() bool
	// Build indexes src. It replaces any previously built state.
	Build(ctx context.Context, src Source, opts Options) error
	// KNN returns up to k candidates for query q, ascending by Dist with
	// ascending-position tie-breaks, and the work Stats of this call.
	KNN(ctx context.Context, q []float64, k int) ([]Candidate, Stats, error)
}

// Deriver is the optional incremental-maintenance interface: a backend
// that can build a child index from a parent index when the child source
// is a pure row subset of the parent's. Sessions only ever narrow by row
// subset, so deriving replaces the O(n·d) rebuild of every major
// iteration with an O(n′) filter of already-built state.
//
// Derive is called on a backend of the same registered name as parent
// (the receiver supplies dispatch; parent supplies the state). childRows
// maps each child row to its position in the parent source, ascending;
// child is the child source itself, retained by the returned backend for
// refinement and ID resolution. The returned backend must be a fresh
// instance (parent stays valid and queryable) and must satisfy the
// derivation contract of DESIGN.md §5k: for exact backends, KNN results
// identical to a fresh Build over child; for approximate backends,
// identical candidate sets whenever the search budget covers the source.
type Deriver interface {
	Backend
	// Derive builds a child backend from parent's built state. parent must
	// have the same dynamic type as the receiver.
	Derive(ctx context.Context, parent Backend, child Source, childRows []int) (Backend, error)
}

// AxisSearcher is the optional subspace-consultation interface: a backend
// whose structure supports axis-aligned dimension masks natively, so the
// engine can route projection-stage scans over axis subspaces through the
// index instead of falling back to exact full scans. qaxis[j] is the
// query coordinate along original attribute axes[j]; distances are L2
// over exactly those attributes, in the engine's strict total order. An
// exact backend's KNNAxis must agree bit-for-bit with the engine's
// masked exact scan (accumulate squared terms in ascending j, then one
// sqrt).
type AxisSearcher interface {
	Backend
	// KNNAxis returns up to k candidates nearest to qaxis in the axis
	// subspace spanned by axes (original-attribute indices, strictly
	// ascending not required but each in [0, Dim)).
	KNNAxis(ctx context.Context, qaxis []float64, axes []int, k int) ([]Candidate, Stats, error)
}

// registry maps backend names to constructors. Backends self-register in
// their init functions; the map is effectively read-only afterwards, but
// the mutex keeps Register safe for tests that add fakes.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Backend{}
)

// Register makes a backend constructible by name. Registering a
// duplicate name panics: backend names are part of the public Config
// surface and must be unambiguous.
func Register(name string, factory func() Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("index: duplicate backend %q", name))
	}
	registry[name] = factory
}

// New constructs the named backend, or an error naming the known
// backends when the name is unknown.
func New(name string) (Backend, error) {
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("index: unknown backend %q (known: %v)", name, Names())
	}
	return factory(), nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
