package index

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"innsearch/internal/dataset"
)

func init() {
	Register("kmtree", func() Backend { return &kmtreeBackend{} })
}

// Default k-means tree tunables (see Options).
const (
	defaultBranching = 16
	defaultLeafSize  = 32
	defaultChecks    = 512
	defaultSeed      = 1
	kmeansMaxIters   = 10
)

// kmtreeBackend is the priority-search k-means tree of Muja & Lowe
// (FLANN): points are clustered hierarchically by k-means with a fixed
// branching factor; a query descends best-first, always entering the
// child whose center is closest and pushing the siblings onto a priority
// queue keyed by their center distance. Leaves pop off the queue in
// center-distance order until the Checks budget of examined points is
// spent.
//
// The backend is approximate: the examined set is a deterministic
// sequence prefixed by the budget, so recall is monotone non-decreasing
// in Checks (a larger budget examines a superset) — the property the
// recall tests pin. Results among the examined points are exact L2 in
// the engine's strict total order.
type kmtreeBackend struct {
	src   Source
	root  *kmNode
	opts  Options
	nodes int
}

// kmNode is one tree node: internal nodes hold child clusters, leaves
// hold row positions. Centers are owned copies (k-means means are not
// data rows).
type kmNode struct {
	center   []float64
	children []*kmNode
	points   []int
}

func (b *kmtreeBackend) Name() string { return "kmtree" }
func (b *kmtreeBackend) Exact() bool  { return false }

func (b *kmtreeBackend) Build(ctx context.Context, src Source, opts Options) error {
	if src == nil || src.N() == 0 {
		return dataset.ErrEmpty
	}
	if opts.Branching == 0 {
		opts.Branching = defaultBranching
	}
	if opts.LeafSize == 0 {
		opts.LeafSize = defaultLeafSize
	}
	if opts.Checks == 0 {
		opts.Checks = defaultChecks
	}
	if opts.Seed == 0 {
		opts.Seed = defaultSeed
	}
	if opts.Branching < 2 {
		return fmt.Errorf("index: kmtree branching %d < 2", opts.Branching)
	}
	if opts.LeafSize < 1 {
		return fmt.Errorf("index: kmtree leaf size %d < 1", opts.LeafSize)
	}
	all := make([]int, src.N())
	for i := range all {
		all[i] = i
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	b.src = src
	b.opts = opts
	b.nodes = 0
	root, err := b.buildNode(ctx, all, rng)
	if err != nil {
		return err
	}
	b.root = root
	return nil
}

// buildNode recursively clusters rows into a subtree.
func (b *kmtreeBackend) buildNode(ctx context.Context, rows []int, rng *rand.Rand) (*kmNode, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.nodes++
	n := &kmNode{center: b.centroid(rows)}
	if len(rows) <= b.opts.LeafSize {
		n.points = rows
		return n, nil
	}
	groups := b.kmeans(rows, rng)
	if len(groups) < 2 {
		// Clustering collapsed (e.g. all points identical): stop splitting.
		n.points = rows
		return n, nil
	}
	for _, g := range groups {
		child, err := b.buildNode(ctx, g, rng)
		if err != nil {
			return nil, err
		}
		n.children = append(n.children, child)
	}
	return n, nil
}

// centroid returns the mean of the rows as an owned vector.
func (b *kmtreeBackend) centroid(rows []int) []float64 {
	d := b.src.Dim()
	c := make([]float64, d)
	for _, r := range rows {
		p := b.src.Point(r)
		for j := 0; j < d; j++ {
			c[j] += p[j]
		}
	}
	inv := 1 / float64(len(rows))
	for j := 0; j < d; j++ {
		c[j] *= inv
	}
	return c
}

// kmeans partitions rows into up to Branching non-empty groups by Lloyd
// iteration from a deterministic random-row seeding. Empty clusters are
// dropped. Ties in assignment go to the lowest center index, so the
// partition is a pure function of (rows, rng state).
func (b *kmtreeBackend) kmeans(rows []int, rng *rand.Rand) [][]int {
	kc := b.opts.Branching
	if kc > len(rows) {
		kc = len(rows)
	}
	d := b.src.Dim()
	// Seed centers from distinct random rows (Fisher–Yates prefix).
	perm := rng.Perm(len(rows))[:kc]
	centers := make([][]float64, kc)
	for i, pi := range perm {
		centers[i] = append(make([]float64, 0, d), b.src.Point(rows[pi])...)
	}
	assign := make([]int, len(rows))
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < kmeansMaxIters; iter++ {
		changed := false
		for ri, r := range rows {
			p := b.src.Point(r)
			best, bestD := 0, math.Inf(1)
			for ci, c := range centers {
				if dist := sqDist(p, c); dist < bestD {
					best, bestD = ci, dist
				}
			}
			if assign[ri] != best {
				assign[ri] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, kc)
		for ci := range centers {
			for j := range centers[ci] {
				centers[ci][j] = 0
			}
		}
		for ri, r := range rows {
			ci := assign[ri]
			counts[ci]++
			p := b.src.Point(r)
			for j := 0; j < d; j++ {
				centers[ci][j] += p[j]
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				continue // empty cluster keeps its (zeroed) center; dropped below
			}
			inv := 1 / float64(counts[ci])
			for j := range centers[ci] {
				centers[ci][j] *= inv
			}
		}
	}
	groups := make([][]int, kc)
	for ri, r := range rows {
		ci := assign[ri]
		groups[ci] = append(groups[ci], r)
	}
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// Derive implements Deriver: the child reuses the parent's tree shape and
// cluster centers and only prunes the leaf member lists to the surviving
// rows (remapped to child positions), dropping subtrees that lost every
// point — O(n′ + nodes) instead of a fresh O(n·d) clustering. Centers are
// therefore the parent's means, not the child's; the traversal order may
// differ from a fresh build's, but with a Checks budget covering the
// source both examine every point and return the exact top-k (the
// property-test regime, per DESIGN.md §5k).
func (b *kmtreeBackend) Derive(ctx context.Context, parent Backend, child Source, childRows []int) (Backend, error) {
	p, ok := parent.(*kmtreeBackend)
	if !ok || p.root == nil {
		return nil, errors.New("index: kmtree derive needs a built kmtree parent")
	}
	if child == nil || child.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if child.N() != len(childRows) {
		return nil, fmt.Errorf("index: child has %d rows, mapping has %d", child.N(), len(childRows))
	}
	pn := p.src.N()
	remap := make([]int, pn)
	for i := range remap {
		remap[i] = -1
	}
	for t, r := range childRows {
		if r < 0 || r >= pn {
			return nil, fmt.Errorf("index: derive row %d outside parent range [0, %d)", r, pn)
		}
		remap[r] = t
	}
	d := &kmtreeBackend{src: child, opts: p.opts}
	root, err := d.deriveNode(ctx, p.root, remap)
	if err != nil {
		return nil, err
	}
	if root == nil {
		return nil, errors.New("index: kmtree derive dropped every point")
	}
	d.root = root
	return d, nil
}

// deriveNode clones a subtree sharing the parent's centers, keeping only
// leaf members that survive remap; a subtree with no survivors returns
// nil and is dropped. nodes is recounted on the derived tree.
func (b *kmtreeBackend) deriveNode(ctx context.Context, n *kmNode, remap []int) (*kmNode, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(n.children) == 0 {
		var pts []int
		for _, r := range n.points {
			if t := remap[r]; t >= 0 {
				pts = append(pts, t)
			}
		}
		if len(pts) == 0 {
			return nil, nil
		}
		b.nodes++
		return &kmNode{center: n.center, points: pts}, nil
	}
	var kids []*kmNode
	for _, c := range n.children {
		kid, err := b.deriveNode(ctx, c, remap)
		if err != nil {
			return nil, err
		}
		if kid != nil {
			kids = append(kids, kid)
		}
	}
	switch len(kids) {
	case 0:
		return nil, nil
	case 1:
		// A single surviving child makes the internal node pure overhead;
		// hoist the child (its center is the tighter bound anyway).
		return kids[0], nil
	}
	b.nodes++
	return &kmNode{center: n.center, children: kids}, nil
}

// branchItem is one pending subtree on the search frontier, keyed by the
// squared distance from the query to its center; seq breaks distance
// ties in insertion order, which makes the traversal — and therefore the
// examined-point sequence — fully deterministic.
type branchItem struct {
	node *kmNode
	dist float64
	seq  int
}

type branchQueue []branchItem

func (q branchQueue) Len() int { return len(q) }
func (q branchQueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q branchQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *branchQueue) Push(x interface{}) { *q = append(*q, x.(branchItem)) }
func (q *branchQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

func (b *kmtreeBackend) KNN(ctx context.Context, q []float64, k int) ([]Candidate, Stats, error) {
	if b.root == nil {
		return nil, Stats{}, errors.New("index: kmtree backend not built")
	}
	if len(q) != b.src.Dim() {
		return nil, Stats{}, fmt.Errorf("index: query dim %d, index dim %d", len(q), b.src.Dim())
	}
	if k <= 0 {
		return nil, Stats{}, errors.New("index: k must be positive")
	}
	n := b.src.N()
	if k > n {
		k = n
	}
	checks := b.opts.Checks
	if checks < k {
		checks = k // always examine at least k points
	}

	dists := make(map[int]float64, checks+b.opts.LeafSize)
	st := Stats{}
	seq := 0
	pq := branchQueue{{node: b.root, dist: 0, seq: seq}}
	heap.Init(&pq)
	examined := 0
	for len(pq) > 0 && examined < checks {
		if err := ctx.Err(); err != nil {
			return nil, Stats{}, err
		}
		item := heap.Pop(&pq).(branchItem)
		node := item.node
		// Descend to a leaf, pushing the farther siblings at each level.
		for len(node.children) > 0 {
			st.Nodes++
			best, bestD := 0, math.Inf(1)
			childD := make([]float64, len(node.children))
			for ci, c := range node.children {
				childD[ci] = sqDist(q, c.center)
				if childD[ci] < bestD {
					best, bestD = ci, childD[ci]
				}
			}
			for ci, c := range node.children {
				if ci == best {
					continue
				}
				seq++
				heap.Push(&pq, branchItem{node: c, dist: childD[ci], seq: seq})
			}
			node = node.children[best]
		}
		st.Nodes++
		for _, r := range node.points {
			if _, seen := dists[r]; seen {
				continue
			}
			dists[r] = l2(q, b.src.Point(r))
			examined++
		}
	}
	st.Scanned = examined
	st.Refined = examined

	// Bounded top-k over the examined set in the engine's strict order.
	flat := make([]Candidate, 0, len(dists))
	for r, d := range dists {
		flat = append(flat, Candidate{Pos: r, ID: b.src.ID(r), Dist: d})
	}
	out := topK(flat, k)
	return out, st, nil
}

// topK sorts candidates ascending by (Dist, Pos) and returns the first k.
func topK(cs []Candidate, k int) []Candidate {
	less := func(a, b Candidate) bool {
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		return a.Pos < b.Pos
	}
	// Insertion-friendly: full sort is fine, the examined set is small
	// (≈ Checks points).
	sortCandidates(cs, less)
	if k > len(cs) {
		k = len(cs)
	}
	return cs[:k]
}

func sortCandidates(cs []Candidate, less func(a, b Candidate) bool) {
	// Heapsort keeps this allocation-free and deterministic.
	n := len(cs)
	down := func(i, n int) {
		for {
			kid := 2*i + 1
			if kid >= n {
				return
			}
			if r := kid + 1; r < n && less(cs[kid], cs[r]) {
				kid = r
			}
			if !less(cs[i], cs[kid]) {
				return
			}
			cs[i], cs[kid] = cs[kid], cs[i]
			i = kid
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i, n)
	}
	for end := n - 1; end > 0; end-- {
		cs[0], cs[end] = cs[end], cs[0]
		down(0, end)
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
