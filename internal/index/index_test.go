package index

import (
	"context"
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
)

// testData builds a deterministic clustered dataset: n/10 points near the
// query region, the rest uniform — the same shape the engine benchmarks
// use, so recall numbers here transfer.
func testData(t testing.TB, n, d int) (*dataset.Dataset, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		if i%10 == 0 {
			for j := range row {
				row[j] = 50 + rng.NormFloat64()
			}
		} else {
			for j := range row {
				row[j] = rng.Float64() * 100
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatalf("dataset.New: %v", err)
	}
	queries := make([][]float64, 5)
	for qi := range queries {
		q := make([]float64, d)
		for j := range q {
			q[j] = 50 + rng.NormFloat64()*2
		}
		queries[qi] = q
	}
	return ds, queries
}

func TestRegistryNames(t *testing.T) {
	want := []string{"exact", "igrid", "kmtree", "rtree", "vafile"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) should fail")
	}
}

func TestExactBackendRecallIsOne(t *testing.T) {
	ds, queries := testData(t, 500, 16)
	for _, name := range []string{"exact", "vafile", "rtree"} {
		b, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if !b.Exact() {
			t.Errorf("%s: Exact() = false, want true", name)
		}
		if err := b.Build(context.Background(), ds.View(), Options{}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		rep, err := MeasureRecall(context.Background(), b, ds.View(), queries, 10)
		if err != nil {
			t.Fatalf("%s: MeasureRecall: %v", name, err)
		}
		if rep.Mean != 1.0 {
			t.Errorf("%s: recall = %v, want exactly 1.0 (per-query %v)", name, rep.Mean, rep.PerQuery)
		}
	}
}

func TestExactBackendsAgreeOnOrder(t *testing.T) {
	ds, queries := testData(t, 400, 12)
	ref, _ := New("exact")
	if err := ref.Build(context.Background(), ds.View(), Options{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vafile", "rtree"} {
		b, _ := New(name)
		if err := b.Build(context.Background(), ds.View(), Options{}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		for qi, q := range queries {
			want, _, err := ref.KNN(context.Background(), q, 15)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := b.KNN(context.Background(), q, 15)
			if err != nil {
				t.Fatalf("%s: KNN: %v", name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s q%d: %d results, want %d", name, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].Pos != want[i].Pos || got[i].ID != want[i].ID {
					t.Fatalf("%s q%d rank %d: got pos %d, want pos %d", name, qi, i, got[i].Pos, want[i].Pos)
				}
			}
		}
	}
}

func TestKmtreeRecallMonotoneInChecks(t *testing.T) {
	ds, queries := testData(t, 2000, 64)
	budgets := []int{50, 150, 400, 1000, 2000}
	prev := -1.0
	for _, checks := range budgets {
		b, _ := New("kmtree")
		if err := b.Build(context.Background(), ds.View(), Options{Checks: checks}); err != nil {
			t.Fatalf("Build(checks=%d): %v", checks, err)
		}
		rep, err := MeasureRecall(context.Background(), b, ds.View(), queries, 20)
		if err != nil {
			t.Fatalf("MeasureRecall(checks=%d): %v", checks, err)
		}
		t.Logf("%s (checks=%d)", rep, checks)
		if rep.Mean < prev {
			t.Errorf("recall decreased: checks=%d gives %v, previous budget gave %v", checks, rep.Mean, prev)
		}
		prev = rep.Mean
	}
	if prev != 1.0 {
		t.Errorf("recall at checks=N should be exactly 1.0 (all points examined), got %v", prev)
	}
}

func TestKmtreeDefaultBudgetRecall(t *testing.T) {
	// Acceptance criterion: measured recall ≥ 0.95 at the default Checks
	// budget on the Session2000x64 shape.
	ds, queries := testData(t, 2000, 64)
	b, _ := New("kmtree")
	if err := b.Build(context.Background(), ds.View(), Options{}); err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureRecall(context.Background(), b, ds.View(), queries, 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s (default budget)", rep)
	if rep.Mean < 0.95 {
		t.Errorf("kmtree default-budget recall = %v, want >= 0.95", rep.Mean)
	}
}

func TestKmtreeDeterministic(t *testing.T) {
	ds, queries := testData(t, 800, 24)
	run := func() [][]Candidate {
		b, _ := New("kmtree")
		if err := b.Build(context.Background(), ds.View(), Options{Checks: 200}); err != nil {
			t.Fatal(err)
		}
		var out [][]Candidate
		for _, q := range queries {
			cs, _, err := b.KNN(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, cs)
		}
		return out
	}
	a, bres := run(), run()
	for qi := range a {
		for i := range a[qi] {
			if a[qi][i] != bres[qi][i] {
				t.Fatalf("q%d rank %d differs across identical builds: %+v vs %+v", qi, i, a[qi][i], bres[qi][i])
			}
		}
	}
}

func TestKNNRespectsCancellationAllBackends(t *testing.T) {
	ds, queries := testData(t, 3000, 32)
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Build(context.Background(), ds.View(), Options{Workers: 1}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // canceled before the query starts: every backend must notice
		if _, _, err := b.KNN(ctx, queries[0], 10); err == nil {
			t.Errorf("%s: KNN with canceled context returned nil error", name)
		}
	}
}

func TestBuildRespectsCancellationAllBackends(t *testing.T) {
	ds, _ := testData(t, 3000, 32)
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := b.Build(ctx, ds.View(), Options{Workers: 1}); err == nil {
			t.Errorf("%s: Build with canceled context returned nil error", name)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	ds, queries := testData(t, 1000, 16)
	for _, name := range Names() {
		b, _ := New(name)
		if err := b.Build(context.Background(), ds.View(), Options{}); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		_, st, err := b.KNN(context.Background(), queries[0], 10)
		if err != nil {
			t.Fatalf("%s: KNN: %v", name, err)
		}
		if st.Scanned == 0 && st.Refined == 0 && st.Nodes == 0 {
			t.Errorf("%s: all Stats counters zero", name)
		}
	}
}

func TestMeasureRecallErrors(t *testing.T) {
	ds, queries := testData(t, 100, 8)
	b, _ := New("exact")
	if _, err := MeasureRecall(context.Background(), nil, ds.View(), queries, 5); err == nil {
		t.Error("nil backend should fail")
	}
	if err := b.Build(context.Background(), ds.View(), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureRecall(context.Background(), b, ds.View(), nil, 5); err == nil {
		t.Error("no queries should fail")
	}
	if _, err := MeasureRecall(context.Background(), b, ds.View(), queries, 0); err == nil {
		t.Error("k=0 should fail")
	}
}
