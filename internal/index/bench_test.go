package index

import (
	"context"
	"testing"
)

// benchmarkCandidateGen measures one backend's KNN latency on the
// Session2000x64 shape at the engine's default support (k = 64). Build
// cost is excluded; sessions amortize it across every scan of a view
// generation.
func benchmarkCandidateGen(b *testing.B, name string) {
	ds, queries := testData(b, 2000, 64)
	be, err := New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := be.Build(context.Background(), ds, Options{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := be.KNN(context.Background(), queries[i%len(queries)], 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidateGenExact2000x64(b *testing.B)  { benchmarkCandidateGen(b, "exact") }
func BenchmarkCandidateGenVAFile2000x64(b *testing.B) { benchmarkCandidateGen(b, "vafile") }
func BenchmarkCandidateGenRTree2000x64(b *testing.B)  { benchmarkCandidateGen(b, "rtree") }
func BenchmarkCandidateGenKmtree2000x64(b *testing.B) { benchmarkCandidateGen(b, "kmtree") }

// BenchmarkCandidateGenBuildVAFile2000x64 times the per-view-generation
// rebuild an indexed session pays, the other side of the amortization.
func BenchmarkCandidateGenBuildVAFile2000x64(b *testing.B) {
	ds, _ := testData(b, 2000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be, err := New("vafile")
		if err != nil {
			b.Fatal(err)
		}
		if err := be.Build(context.Background(), ds, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
