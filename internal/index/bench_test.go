package index

import (
	"context"
	"math/rand"
	"testing"
)

// benchmarkCandidateGen measures one backend's KNN latency on the
// Session2000x64 shape at the engine's default support (k = 64). Build
// cost is excluded; sessions amortize it across every scan of a view
// generation.
func benchmarkCandidateGen(b *testing.B, name string) {
	ds, queries := testData(b, 2000, 64)
	be, err := New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := be.Build(context.Background(), ds, Options{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := be.KNN(context.Background(), queries[i%len(queries)], 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidateGenExact2000x64(b *testing.B)  { benchmarkCandidateGen(b, "exact") }
func BenchmarkCandidateGenVAFile2000x64(b *testing.B) { benchmarkCandidateGen(b, "vafile") }
func BenchmarkCandidateGenRTree2000x64(b *testing.B)  { benchmarkCandidateGen(b, "rtree") }
func BenchmarkCandidateGenKmtree2000x64(b *testing.B) { benchmarkCandidateGen(b, "kmtree") }

// BenchmarkCandidateGenBuildVAFile2000x64 times the per-view-generation
// rebuild an indexed session pays, the other side of the amortization.
func BenchmarkCandidateGenBuildVAFile2000x64(b *testing.B) {
	ds, _ := testData(b, 2000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be, err := New("vafile")
		if err != nil {
			b.Fatal(err)
		}
		if err := be.Build(context.Background(), ds, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkIndexDerive times deriving a ~70% child index from a built
// parent — the O(n′) path a session takes at each pruning — against
// benchmarkIndexRebuild, the from-scratch build the derivation replaces.
func benchmarkIndexDerive(b *testing.B, name string, n, d int) {
	ds, _ := testData(b, n, d)
	parent, err := New(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := parent.Build(context.Background(), ds, Options{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	der, ok := parent.(Deriver)
	if !ok {
		b.Fatalf("backend %s is not a Deriver", name)
	}
	rows := benchChildRows(n)
	child, err := ds.View().Narrow(rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := der.Derive(context.Background(), parent, child, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkIndexRebuild(b *testing.B, name string, n, d int) {
	ds, _ := testData(b, n, d)
	rows := benchChildRows(n)
	child, err := ds.View().Narrow(rows)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := be.Build(context.Background(), child, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchChildRows keeps a deterministic ~70% of [0, n), ascending — the
// shape of a session's pruning keep-set.
func benchChildRows(n int) []int {
	rng := rand.New(rand.NewSource(3))
	rows := make([]int, 0, n*7/10)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.7 {
			rows = append(rows, i)
		}
	}
	return rows
}

func BenchmarkIndexDeriveVAFile20000x64(b *testing.B)  { benchmarkIndexDerive(b, "vafile", 20000, 64) }
func BenchmarkIndexDeriveKmtree20000x64(b *testing.B)  { benchmarkIndexDerive(b, "kmtree", 20000, 64) }
func BenchmarkIndexRebuildVAFile20000x64(b *testing.B) { benchmarkIndexRebuild(b, "vafile", 20000, 64) }
func BenchmarkIndexRebuildKmtree20000x64(b *testing.B) { benchmarkIndexRebuild(b, "kmtree", 20000, 64) }
