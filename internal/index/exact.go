package index

import (
	"context"
	"errors"
	"fmt"
	"math"

	"innsearch/internal/dataset"
	"innsearch/internal/parallel"
)

func init() {
	Register("exact", func() Backend { return &exactBackend{} })
}

// exactBackend is the reference: a parallel full scan with the bounded
// top-k selection. It is both the default candidate generator semantics
// (what the engine does with no index at all) and the ground truth
// MeasureRecall compares every other backend against.
type exactBackend struct {
	src     Source
	workers int
}

func (b *exactBackend) Name() string { return "exact" }
func (b *exactBackend) Exact() bool  { return true }

// Build just retains the source: a full scan has no structure to build.
func (b *exactBackend) Build(ctx context.Context, src Source, opts Options) error {
	if src == nil || src.N() == 0 {
		return dataset.ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	b.src = src
	b.workers = opts.Workers
	return nil
}

func (b *exactBackend) KNN(ctx context.Context, q []float64, k int) ([]Candidate, Stats, error) {
	if b.src == nil {
		return nil, Stats{}, errors.New("index: exact backend not built")
	}
	if len(q) != b.src.Dim() {
		return nil, Stats{}, fmt.Errorf("index: query dim %d, index dim %d", len(q), b.src.Dim())
	}
	if k <= 0 {
		return nil, Stats{}, errors.New("index: k must be positive")
	}
	n := b.src.N()
	if k > n {
		k = n
	}
	// Each row writes its own slot, so the ranking is identical at any
	// worker count — the same discipline as the engine's distance pass.
	dists := make([]float64, n)
	err := parallel.ForShards(ctx, b.workers, n, func(_ context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			dists[i] = l2(q, b.src.Point(i))
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	out := selectSmallest(b.src, dists, k)
	return out, Stats{Scanned: n, Refined: n}, nil
}

// KNNAxis implements AxisSearcher: the same parallel scan restricted to
// the masked attributes. The accumulation order (ascending mask index,
// one sqrt at the end) matches the engine's axis-subspace distance kernel
// bit for bit, so routed sessions stay field-identical to unrouted ones.
func (b *exactBackend) KNNAxis(ctx context.Context, qaxis []float64, axes []int, k int) ([]Candidate, Stats, error) {
	if b.src == nil {
		return nil, Stats{}, errors.New("index: exact backend not built")
	}
	if len(qaxis) != len(axes) {
		return nil, Stats{}, fmt.Errorf("index: query dim %d, axis mask %d", len(qaxis), len(axes))
	}
	if len(axes) == 0 {
		return nil, Stats{}, errors.New("index: empty axis mask")
	}
	dim := b.src.Dim()
	for _, a := range axes {
		if a < 0 || a >= dim {
			return nil, Stats{}, fmt.Errorf("index: axis %d outside [0, %d)", a, dim)
		}
	}
	if k <= 0 {
		return nil, Stats{}, errors.New("index: k must be positive")
	}
	n := b.src.N()
	if k > n {
		k = n
	}
	dists := make([]float64, n)
	err := parallel.ForShards(ctx, b.workers, n, func(_ context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			x := b.src.Point(i)
			var s float64
			for j, a := range axes {
				// The +0 normalizes -0 exactly as the engine's projection
				// kernels do, keeping the distances bit-identical.
				d := qaxis[j] - (x[a] + 0)
				s += d * d
			}
			dists[i] = math.Sqrt(s)
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	out := selectSmallest(b.src, dists, k)
	return out, Stats{Scanned: n, Refined: n}, nil
}

// selectSmallest returns the k candidates of smallest (dist, pos) as a
// sorted slice, via a bounded max-heap over the distance slots.
func selectSmallest(src Source, dists []float64, k int) []Candidate {
	worse := func(a, b Candidate) bool { // a ranks after b
		if a.Dist != b.Dist {
			return a.Dist > b.Dist
		}
		return a.Pos > b.Pos
	}
	h := make([]Candidate, 0, k)
	down := func(i int) {
		for {
			kid := 2*i + 1
			if kid >= len(h) {
				return
			}
			if r := kid + 1; r < len(h) && worse(h[r], h[kid]) {
				kid = r
			}
			if !worse(h[kid], h[i]) {
				return
			}
			h[i], h[kid] = h[kid], h[i]
			i = kid
		}
	}
	for i, d := range dists {
		c := Candidate{Pos: i, ID: src.ID(i), Dist: d}
		if len(h) < k {
			h = append(h, c)
			for j := len(h) - 1; j > 0; {
				parent := (j - 1) / 2
				if !worse(h[j], h[parent]) {
					break
				}
				h[j], h[parent] = h[parent], h[j]
				j = parent
			}
		} else if worse(h[0], c) {
			h[0] = c
			down(0)
		}
	}
	// Heap-sort into ascending (dist, pos) order.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		tmp := h
		h = h[:end]
		down(0)
		h = tmp
	}
	return h
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
