package index

import (
	"context"
	"sync"
)

// Cache shares built backends across sessions that index the same source
// generation — the fix for the "index rebuild dominates short sessions"
// problem measured in EXPERIMENTS.md. Backends are safe for concurrent
// KNN calls after Build returns (the Backend contract), so two sessions
// on one dataset can query a single built instance; the first session
// pays the build, later ones hit.
//
// Keys carry the source's identity (a pointer, typically *dataset.View —
// datasets hand out one stable view pointer per store generation), the
// shard window, the backend name, and the full Options value. A store
// generation change (normalization swaps in a fresh store and view) makes
// every new lookup miss by key identity, and the stale generation's
// entries age out of the LRU — or are dropped eagerly with Invalidate.
//
// Builds are single-flight: concurrent sessions asking for the same key
// wait for the one in-flight build instead of duplicating it. A failed or
// canceled build is not cached; waiters whose own context is still live
// retry (and may become the next builder).
type Cache struct {
	cap int

	mu      sync.Mutex
	entries map[CacheKey]*cacheEntry
	tick    int64
	hits    int64
	misses  int64
}

// CacheKey identifies one built backend: the identity of the source it
// was built over (comparable, typically a *dataset.View), the shard
// window it covers (0/1 for unsharded builds), and the backend
// configuration.
type CacheKey struct {
	Source  any
	Shard   int
	Shards  int
	Name    string
	Options Options
	// Parent is the identity of the parent source a derived backend was
	// narrowed from (nil for fresh builds). Keeping derived and fresh
	// entries distinct matters for approximate backends, whose derived
	// state legitimately differs from a fresh build: a session's results
	// must depend only on its own derivation chain, never on which kind of
	// build another session cached first.
	Parent any
}

type cacheEntry struct {
	ready   chan struct{} // closed when the build finishes
	backend Backend
	err     error
	lastUse int64
}

// DefaultCacheCap bounds a zero-configured cache: generous for a server
// holding a handful of datasets with a few shard/option variants each,
// small enough that per-session narrowed views cannot pin the heap.
const DefaultCacheCap = 64

// NewCache returns a cache holding at most cap built backends (LRU
// evicted); cap ≤ 0 selects DefaultCacheCap.
func NewCache(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCacheCap
	}
	return &Cache{cap: cap, entries: make(map[CacheKey]*cacheEntry)}
}

// Get returns the backend built for key, building it with build on a
// miss. hit reports whether a previously built backend was reused — the
// signal sessions use to skip their index_build telemetry. Concurrent
// misses on one key share a single build.
func (c *Cache) Get(ctx context.Context, key CacheKey, build func(ctx context.Context) (Backend, error)) (b Backend, hit bool, err error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if ok {
			c.tick++
			e.lastUse = c.tick
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if e.err == nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return e.backend, true, nil
			}
			// The build this entry tracked failed (often the builder's
			// canceled context) and the builder removed it; retry while our
			// own context is live instead of inheriting the failure.
			if ctx.Err() != nil {
				return nil, false, ctx.Err()
			}
			continue
		}
		e = &cacheEntry{ready: make(chan struct{})}
		c.tick++
		e.lastUse = c.tick
		c.entries[key] = e
		c.misses++
		c.evictLocked()
		c.mu.Unlock()

		e.backend, e.err = build(ctx)
		if e.err != nil {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		close(e.ready)
		return e.backend, false, e.err
	}
}

// evictLocked drops least-recently-used entries beyond the cap. In-flight
// builds (ready not yet closed) are skipped so a long build cannot be
// evicted out from under its waiters.
func (c *Cache) evictLocked() {
	for len(c.entries) > c.cap {
		var victim CacheKey
		var oldest int64 = -1
		for k, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // in flight
			}
			if oldest < 0 || e.lastUse < oldest {
				oldest = e.lastUse
				victim = k
			}
		}
		if oldest < 0 {
			return // everything in flight; nothing evictable
		}
		delete(c.entries, victim)
	}
}

// Invalidate drops every entry built over src — or derived from it — the
// eager eviction for a source whose generation is being replaced.
func (c *Cache) Invalidate(src any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.Source == src || k.Parent == src {
			delete(c.entries, k)
		}
	}
}

// Stats returns the lifetime hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached (or in-flight) builds.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
