package index

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

type fakeBackend struct{ name string }

func (f *fakeBackend) Name() string { return f.name }
func (f *fakeBackend) Exact() bool  { return true }
func (f *fakeBackend) Build(context.Context, Source, Options) error {
	return nil
}
func (f *fakeBackend) KNN(context.Context, []float64, int) ([]Candidate, Stats, error) {
	return nil, Stats{}, nil
}

// TestCacheSharesBuilds checks the headline behavior: a second Get with
// the same key reuses the built backend without rebuilding.
func TestCacheSharesBuilds(t *testing.T) {
	c := NewCache(0)
	src := new(int)
	key := CacheKey{Source: src, Shards: 1, Name: "fake"}
	builds := 0
	build := func(context.Context) (Backend, error) {
		builds++
		return &fakeBackend{name: "fake"}, nil
	}
	ctx := context.Background()
	b1, hit, err := c.Get(ctx, key, build)
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	b2, hit, err := c.Get(ctx, key, build)
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	if b1 != b2 {
		t.Fatal("second get returned a different backend instance")
	}
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// A different option set is a different key.
	key2 := key
	key2.Options.Bits = 8
	if _, hit, _ := c.Get(ctx, key2, build); hit {
		t.Fatal("different options hit the same entry")
	}
	// A different shard window is a different key.
	key3 := key
	key3.Shard, key3.Shards = 1, 4
	if _, hit, _ := c.Get(ctx, key3, build); hit {
		t.Fatal("different shard window hit the same entry")
	}
}

// TestCacheSingleFlight checks that concurrent misses on one key share a
// single build.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0)
	key := CacheKey{Source: new(int), Shards: 1, Name: "fake"}
	var builds atomic.Int64
	gate := make(chan struct{})
	build := func(context.Context) (Backend, error) {
		builds.Add(1)
		<-gate
		return &fakeBackend{}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Get(context.Background(), key, build); err != nil {
				t.Error(err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d builds for 8 concurrent gets, want 1", got)
	}
}

// TestCacheFailedBuildNotCached checks that errors are not sticky: a
// failed build leaves no entry and the next Get rebuilds.
func TestCacheFailedBuildNotCached(t *testing.T) {
	c := NewCache(0)
	key := CacheKey{Source: new(int), Shards: 1, Name: "fake"}
	boom := errors.New("boom")
	if _, _, err := c.Get(context.Background(), key, func(context.Context) (Backend, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed build left a cache entry")
	}
	b, hit, err := c.Get(context.Background(), key, func(context.Context) (Backend, error) {
		return &fakeBackend{}, nil
	})
	if err != nil || hit || b == nil {
		t.Fatalf("retry after failure: backend=%v hit=%v err=%v", b, hit, err)
	}
}

// TestCacheEviction checks the LRU bound and generation invalidation.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	build := func(context.Context) (Backend, error) { return &fakeBackend{}, nil }
	ctx := context.Background()
	srcA, srcB, srcC := new(int), new(int), new(int)
	keyA := CacheKey{Source: srcA, Shards: 1, Name: "fake"}
	keyB := CacheKey{Source: srcB, Shards: 1, Name: "fake"}
	keyC := CacheKey{Source: srcC, Shards: 1, Name: "fake"}
	c.Get(ctx, keyA, build)
	c.Get(ctx, keyB, build)
	c.Get(ctx, keyA, build) // refresh A
	c.Get(ctx, keyC, build) // evicts B (least recently used)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, hit, _ := c.Get(ctx, keyA, build); !hit {
		t.Fatal("A was evicted despite being recently used")
	}
	if _, hit, _ := c.Get(ctx, keyB, build); hit {
		t.Fatal("B survived past the cap")
	}
	c.Invalidate(srcA)
	if _, hit, _ := c.Get(ctx, keyA, build); hit {
		t.Fatal("A survived Invalidate")
	}
}
