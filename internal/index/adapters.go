package index

import (
	"context"
	"errors"

	"innsearch/internal/igrid"
	"innsearch/internal/rtree"
	"innsearch/internal/vafile"
)

func init() {
	Register("vafile", func() Backend { return &vafileBackend{} })
	Register("rtree", func() Backend { return &rtreeBackend{} })
	Register("igrid", func() Backend { return &igridBackend{} })
}

// Default tunables of the adapted backends.
const (
	defaultVAFileBits   = 6
	defaultIGridExpo    = 2.0
	maxUint16Resolution = 1 << 15
)

// vafileBackend adapts the VA-file (internal/vafile): exact L2 results
// from a two-phase scan of quantized approximations.
type vafileBackend struct {
	idx *vafile.Index
}

func (b *vafileBackend) Name() string { return "vafile" }
func (b *vafileBackend) Exact() bool  { return true }

func (b *vafileBackend) Build(ctx context.Context, src Source, opts Options) error {
	bits := opts.Bits
	if bits == 0 {
		bits = defaultVAFileBits
	}
	idx, err := vafile.BuildContext(ctx, src, bits)
	if err != nil {
		return err
	}
	b.idx = idx
	return nil
}

func (b *vafileBackend) KNN(ctx context.Context, q []float64, k int) ([]Candidate, Stats, error) {
	if b.idx == nil {
		return nil, Stats{}, errors.New("index: vafile backend not built")
	}
	nbs, st, err := b.idx.SearchContext(ctx, q, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return vafileCandidates(nbs), Stats{Scanned: st.Scanned, Refined: st.Refined}, nil
}

// KNNAxis implements AxisSearcher: the VA-file's per-dimension cells make
// an axis mask free — the scan simply skips the unmasked dimensions.
func (b *vafileBackend) KNNAxis(ctx context.Context, qaxis []float64, axes []int, k int) ([]Candidate, Stats, error) {
	if b.idx == nil {
		return nil, Stats{}, errors.New("index: vafile backend not built")
	}
	nbs, st, err := b.idx.SearchAxisContext(ctx, qaxis, axes, k)
	if err != nil {
		return nil, Stats{}, err
	}
	return vafileCandidates(nbs), Stats{Scanned: st.Scanned, Refined: st.Refined}, nil
}

// Derive implements Deriver: the child filters the parent's approximation
// array against the parent's fixed quantization bounds — O(n′·d) cell
// gathers, no re-quantization pass over the source.
func (b *vafileBackend) Derive(ctx context.Context, parent Backend, child Source, childRows []int) (Backend, error) {
	p, ok := parent.(*vafileBackend)
	if !ok || p.idx == nil {
		return nil, errors.New("index: vafile derive needs a built vafile parent")
	}
	idx, err := vafile.DeriveContext(ctx, p.idx, child, childRows)
	if err != nil {
		return nil, err
	}
	return &vafileBackend{idx: idx}, nil
}

func vafileCandidates(nbs []vafile.Neighbor) []Candidate {
	out := make([]Candidate, len(nbs))
	for i, nb := range nbs {
		out[i] = Candidate{Pos: nb.Pos, ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

// rtreeBackend adapts the R-tree (internal/rtree): exact L2 results from
// best-first traversal. Selectivity degrades with dimensionality — this
// is the motivation experiment's backend, kept registered for parity.
type rtreeBackend struct {
	tree *rtree.Tree
}

func (b *rtreeBackend) Name() string { return "rtree" }
func (b *rtreeBackend) Exact() bool  { return true }

func (b *rtreeBackend) Build(ctx context.Context, src Source, opts Options) error {
	tree, err := rtree.BuildContext(ctx, src)
	if err != nil {
		return err
	}
	b.tree = tree
	return nil
}

func (b *rtreeBackend) KNN(ctx context.Context, q []float64, k int) ([]Candidate, Stats, error) {
	if b.tree == nil {
		return nil, Stats{}, errors.New("index: rtree backend not built")
	}
	nbs, st, err := b.tree.SearchContext(ctx, q, k)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]Candidate, len(nbs))
	for i, nb := range nbs {
		out[i] = Candidate{Pos: nb.Pos, ID: nb.ID, Dist: nb.Dist}
	}
	return out, Stats{Nodes: st.NodesVisited}, nil
}

// igridBackend adapts the IGrid similarity index (internal/igrid). It is
// approximate by construction: IGrid ranks by its own band-sharing
// similarity, not L2, so its k-set need not contain the L2 k-set.
// Candidate.Dist is the negated similarity, preserving ascending-is-better.
type igridBackend struct {
	idx *igrid.Index
}

func (b *igridBackend) Name() string { return "igrid" }
func (b *igridBackend) Exact() bool  { return false }

func (b *igridBackend) Build(ctx context.Context, src Source, opts Options) error {
	bands := opts.Bands
	if bands == 0 {
		bands = src.Dim()
	}
	if bands > maxUint16Resolution {
		bands = maxUint16Resolution
	}
	expo := opts.Exponent
	if expo == 0 {
		expo = defaultIGridExpo
	}
	idx, err := igrid.BuildContext(ctx, src, bands, expo)
	if err != nil {
		return err
	}
	b.idx = idx
	return nil
}

func (b *igridBackend) KNN(ctx context.Context, q []float64, k int) ([]Candidate, Stats, error) {
	if b.idx == nil {
		return nil, Stats{}, errors.New("index: igrid backend not built")
	}
	nbs, err := b.idx.SearchContext(ctx, q, k)
	if err != nil {
		return nil, Stats{}, err
	}
	out := make([]Candidate, len(nbs))
	for i, nb := range nbs {
		out[i] = Candidate{Pos: nb.Pos, ID: nb.ID, Dist: -nb.Similarity}
	}
	return out, Stats{Scanned: b.idx.N()}, nil
}
