// Package cliutil holds the flag plumbing shared by the repository's
// binaries. Before it existed, cmd/innsearch, cmd/innsearchd, and
// cmd/experiments each hand-rolled their -workers/-index/-trace parsing
// (and two of them duplicated the JSONL trace-sink opening verbatim);
// factoring it here keeps the flags' semantics and help text identical
// everywhere and gives new binaries — cmd/loadgen first — the same flags
// for free.
//
// The helpers are composable rather than monolithic: each binary registers
// exactly the flags whose backing machinery it supports, so no binary
// silently accepts a flag it ignores.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"innsearch/internal/index"
	"innsearch/internal/telemetry"
)

// WorkersFlag registers the standard -workers flag on fs. scope describes
// what one worker count applies to ("per session", "inside each session",
// …) so every binary's help reads consistently; results are bit-identical
// at any worker count, and the help says so.
func WorkersFlag(fs *flag.FlagSet, def int, scope string) *int {
	zero := "all cores"
	if def != 0 {
		zero = fmt.Sprintf("%d", def)
	}
	return fs.Int("workers", def, fmt.Sprintf(
		"engine worker goroutines %s (0 = %s; results are bit-identical at any count)", scope, zero))
}

// ShardsFlag registers the standard -shards flag on fs. scope describes
// what one partition width applies to, matching WorkersFlag's phrasing.
// 0 and 1 select the single-partition engine path (byte-identical to the
// pre-shard engine); P ≥ 2 scatters the stage kernels over P row-disjoint
// shards with deterministic in-order merges.
func ShardsFlag(fs *flag.FlagSet, scope string) *int {
	return fs.Int("shards", 0, fmt.Sprintf(
		"engine partition width %s (0 or 1 = single partition; P >= 2 scatters stage kernels over P shards deterministically)", scope))
}

// ValidateWorkers rejects negative -workers values with a uniform error
// (0 means "pick a default" everywhere, so only negatives are nonsense).
func ValidateWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("-workers: negative worker count %d", workers)
	}
	return nil
}

// ValidateShards rejects negative -shards values with a uniform error.
func ValidateShards(shards int) error {
	if shards < 0 {
		return fmt.Errorf("-shards: negative shard count %d", shards)
	}
	return nil
}

// IndexFlag registers the standard -index flag on fs, with the live
// backend registry in the help text.
func IndexFlag(fs *flag.FlagSet) *string {
	return fs.String("index", "",
		"candidate-generation index backend: "+strings.Join(index.Names(), ", ")+" (empty = plain exact scan)")
}

// TraceFlag registers the standard -trace flag on fs.
func TraceFlag(fs *flag.FlagSet) *string {
	return fs.String("trace", "", "append trace events as JSONL to this file (- for stderr)")
}

// OpenTrace opens the JSONL trace sink a -trace value names: "" is a nil
// tracer, "-" streams to stderr, anything else appends to that file. The
// returned closer flushes the file on shutdown and is always safe to call.
func OpenTrace(path string) (telemetry.Tracer, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return telemetry.NewJSONL(os.Stderr), func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, func() {}, fmt.Errorf("-trace: %w", err)
	}
	return telemetry.NewJSONL(f), func() { _ = f.Close() }, nil
}
