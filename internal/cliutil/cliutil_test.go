package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagsRegisterAndParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	workers := WorkersFlag(fs, 0, "per session")
	idx := IndexFlag(fs)
	trace := TraceFlag(fs)
	if err := fs.Parse([]string{"-workers", "4", "-index", "vafile", "-trace", "-"}); err != nil {
		t.Fatal(err)
	}
	if *workers != 4 || *idx != "vafile" || *trace != "-" {
		t.Fatalf("parsed workers=%d index=%q trace=%q", *workers, *idx, *trace)
	}
	// The index help must enumerate the live registry, so stale backend
	// lists can't survive a registry change.
	f := fs.Lookup("index")
	if !strings.Contains(f.Usage, "vafile") || !strings.Contains(f.Usage, "exact") {
		t.Errorf("index help does not list registry backends: %q", f.Usage)
	}
}

func TestOpenTrace(t *testing.T) {
	tr, closer, err := OpenTrace("")
	if err != nil || tr != nil {
		t.Fatalf("empty path: tracer=%v err=%v, want nil/nil", tr, err)
	}
	closer()

	tr, closer, err = OpenTrace("-")
	if err != nil || tr == nil {
		t.Fatalf("stderr path: tracer=%v err=%v", tr, err)
	}
	closer()

	path := filepath.Join(t.TempDir(), "events.jsonl")
	tr, closer, err = OpenTrace(path)
	if err != nil || tr == nil {
		t.Fatalf("file path: tracer=%v err=%v", tr, err)
	}
	closer()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not created: %v", err)
	}

	if _, closer, err := OpenTrace(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")); err == nil {
		t.Error("unopenable path should fail")
	} else {
		closer() // must be safe even on error
	}
}

func TestShardsFlagAndValidation(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	shards := ShardsFlag(fs, "per session")
	if err := fs.Parse([]string{"-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	if *shards != 4 {
		t.Fatalf("-shards parsed to %d, want 4", *shards)
	}
	for _, v := range []int{0, 1, 8} {
		if err := ValidateShards(v); err != nil {
			t.Errorf("ValidateShards(%d) = %v, want nil", v, err)
		}
		if err := ValidateWorkers(v); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", v, err)
		}
	}
	if err := ValidateShards(-1); err == nil {
		t.Error("ValidateShards(-1) accepted")
	}
	if err := ValidateWorkers(-3); err == nil {
		t.Error("ValidateWorkers(-3) accepted")
	}
}
