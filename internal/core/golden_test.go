package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the golden result files instead of comparing
// against them: go test ./internal/core -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden result files")

// goldenScenario is one fully deterministic end-to-end session whose
// Result must stay byte-identical across refactors of the data plane and
// at any worker count.
type goldenScenario struct {
	name string
	cfg  Config
}

func goldenScenarios() []goldenScenario {
	return []goldenScenario{
		{name: "arbitrary", cfg: Config{Support: 20, GridSize: 32, MaxMajorIterations: 3}},
		{name: "axis", cfg: Config{Support: 20, GridSize: 32, MaxMajorIterations: 3, Mode: ModeAxis}},
	}
}

// goldenResultJSON runs the scenario at the given worker count and
// serializes the Result. encoding/json emits map keys in sorted order and
// shortest-round-trip floats, so identical numeric results give identical
// bytes.
func goldenResultJSON(t *testing.T, sc goldenScenario, workers int) []byte {
	t.Helper()
	ds, q := clusteredDataset(t, 300, 40, 16, 7)
	cfg := sc.cfg
	cfg.Workers = workers
	s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestGoldenResultReplay is the data-plane regression anchor: the engine
// must return byte-identical Result JSON to the recorded seed-engine runs,
// at workers = 1, 4, and 8. Any change to the numeric pipeline — projection
// search, density estimation, selection, meaningfulness quantification —
// that alters even one bit of one float shows up here.
func TestGoldenResultReplay(t *testing.T) {
	for _, sc := range goldenScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden_result_"+sc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, goldenResultJSON(t, sc, 1), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
			}
			for _, workers := range []int{1, 4, 8} {
				got := goldenResultJSON(t, sc, workers)
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: result JSON deviates from seed golden (len %d vs %d)",
						workers, len(got), len(want))
				}
			}
		})
	}
}
