package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/grid"
)

// parallelTestData builds a seeded dataset with a tight cluster around the
// query in dims {0, 1} and noise elsewhere, plus a deterministic
// separator-placing user — enough structure that sessions exercise the
// projection search, the density grid, and the selection pass.
func parallelTestData(t *testing.T, seed int64) (*dataset.Dataset, []float64, User) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n, d := 400, 8
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		if i < 80 {
			row[0] = 5 + rng.NormFloat64()*0.2
			row[1] = 5 + rng.NormFloat64()*0.2
			for j := 2; j < d; j++ {
				row[j] = rng.Float64() * 10
			}
		} else {
			for j := range row {
				row[j] = rng.Float64() * 10
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, d)
	q[0], q[1] = 5, 5
	for j := 2; j < d; j++ {
		q[j] = 5
	}
	u := UserFunc(func(p *VisualProfile, _ func(float64) *grid.Region) Decision {
		if p.QueryDensity <= 0 {
			return Decision{Skip: true}
		}
		return Decision{Tau: 0.5 * p.QueryDensity}
	})
	return ds, q, u
}

// TestSessionDeterministicAcrossWorkers is the determinism contract at the
// session level: a 4-worker run must produce a Result identical (down to
// every float bit, via DeepEqual) to a 1-worker run, because every
// parallel pass either owns its output slots or accumulates in serial
// order.
func TestSessionDeterministicAcrossWorkers(t *testing.T) {
	ds, q, u := parallelTestData(t, 7)
	run := func(workers int) *Result {
		sess, err := NewSession(ds, q, u, Config{Support: 40, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.ViewsShown == 0 {
		t.Fatal("session showed no views; test data is degenerate")
	}
	for _, workers := range []int{2, 4, 8} {
		par := run(workers)
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d: result differs from serial run\nserial: %+v\npar:    %+v", workers, serial, par)
		}
	}
}

// TestReplayDeterministicAcrossWorkers records a serial session's
// transcript and replays it under parallelism: the replayed result must
// equal the original exactly, which requires the replayed session to
// present bit-identical views in the same order.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	ds, q, u := parallelTestData(t, 8)
	tr, obs := NewTranscript(false)
	cfg := Config{Support: 40, Workers: 1}
	rec := cfg
	rec.Observer = obs
	sess, err := NewSession(ds, q, u, rec)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	replaySess, err := NewSession(ds, q, &ReplayUser{Transcript: tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := replaySess.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, orig) {
		t.Fatal("replay under 4 workers differs from recorded serial run")
	}
}

// TestRunContextCanceled checks that a canceled context aborts the
// session with ctx.Err() rather than running to completion.
func TestRunContextCanceled(t *testing.T) {
	ds, q, u := parallelTestData(t, 9)
	sess, err := NewSession(ds, q, u, Config{Support: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSessionBatch runs the same queries once through SearchBatch and
// once as individual serial sessions: the batch must agree query by
// query, and per-query errors must be index-aligned.
func TestSessionBatch(t *testing.T) {
	ds, q, u := parallelTestData(t, 10)
	q2 := append([]float64(nil), q...)
	q2[0], q2[1] = 1, 9 // a second, off-cluster query
	queries := [][]float64{q, q2}
	users := []User{u, u}
	cfg := Config{Support: 40, Workers: 4}

	results, errs, err := SearchBatch(context.Background(), ds, queries, users, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(errs) != 2 {
		t.Fatalf("got %d results, %d errs", len(results), len(errs))
	}
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		sess, err := NewSession(ds, queries[i], users[i], Config{Support: 40, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("query %d: batch result differs from solo run", i)
		}
	}
}

// TestSessionBatchConstructionErrors checks that one bad query does not
// fail the batch: its error is reported per-query while the others run.
func TestSessionBatchConstructionErrors(t *testing.T) {
	ds, q, u := parallelTestData(t, 11)
	bad := []float64{1, 2} // wrong dimensionality
	results, errs, err := SearchBatch(context.Background(), ds,
		[][]float64{q, bad}, []User{u, u}, Config{Support: 40})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] == nil || errs[0] != nil {
		t.Fatalf("good query: result %v, err %v", results[0], errs[0])
	}
	if results[1] != nil || errs[1] == nil {
		t.Fatalf("bad query: want construction error, got result %v, err %v", results[1], errs[1])
	}
}

// TestSessionBatchCanceled checks that canceling the batch context marks
// every query with an error instead of leaving silent nil/nil entries.
func TestSessionBatchCanceled(t *testing.T) {
	ds, q, u := parallelTestData(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs, err := SearchBatch(ctx, ds,
		[][]float64{q, q, q}, []User{u, u, u}, Config{Support: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range errs {
		if results[i] != nil || errs[i] == nil {
			t.Fatalf("query %d: want error after cancellation, got result %v, err %v", i, results[i], errs[i])
		}
	}
}

// TestSessionBatchValidation covers the batch-level failure modes.
func TestSessionBatchValidation(t *testing.T) {
	ds, q, u := parallelTestData(t, 13)
	if _, err := NewSessionBatch(nil, [][]float64{q}, []User{u}, Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewSessionBatch(ds, nil, nil, Config{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := NewSessionBatch(ds, [][]float64{q}, []User{u, u}, Config{}); err == nil {
		t.Error("mismatched users accepted")
	}
}
