package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// clusterAndNoise builds a dataset with a tight cluster in dims {0, 1}
// (centered at (5, 5) with σ=0.2) and uniform noise in all other dims, so
// the discriminating projection is known.
func clusterAndNoise(t *testing.T, n, d int, seed int64) (*dataset.Dataset, linalg.Vector) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		inCluster := i < n/5
		for j := 0; j < d; j++ {
			switch {
			case inCluster && j < 2:
				row[j] = 5 + r.NormFloat64()*0.2
			default:
				row[j] = r.Float64() * 10
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := make(linalg.Vector, d)
	q[0], q[1] = 5, 5
	for j := 2; j < d; j++ {
		q[j] = 5
	}
	return ds, q
}

func TestNearestPositions(t *testing.T) {
	ds, err := dataset.New([][]float64{{0, 0}, {1, 0}, {5, 0}, {0.5, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := linalg.FullSpace(2)
	got, err := nearestPositions(context.Background(), 1, ds.View(), linalg.Vector{0, 0}, sub, 2, &searchScratch{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("nearest = %v", got)
	}
	// s > n clamps.
	if got, err := nearestPositions(context.Background(), 1, ds.View(), linalg.Vector{0, 0}, sub, 99, &searchScratch{}, nil, nil); err != nil || len(got) != 4 {
		t.Errorf("clamped = %v (err %v)", got, err)
	}
}

func TestClusterSubspaceAxisParallel(t *testing.T) {
	ds, q := clusterAndNoise(t, 500, 6, 1)
	members, err := nearestPositions(context.Background(), 1, ds.View(), q, linalg.FullSpace(6), 60, &searchScratch{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := clusterSubspace(context.Background(), ProjectionSearch{Workers: 1, AxisParallel: true}, ds.View(), members, 2, linalg.FullSpace(6), &searchScratch{})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen axes must be 0 and 1 (where the cluster is tight).
	for i := 0; i < 2; i++ {
		b := sub.BasisVector(i)
		if math.Abs(b[0])+math.Abs(b[1]) < 0.99 {
			t.Errorf("basis %d = %v, want axis 0 or 1", i, b)
		}
	}
}

func TestClusterSubspaceArbitraryFindsTightDirections(t *testing.T) {
	// A cluster tight along the diagonal direction (1,−1)/√2 in dims
	// {0,1}: arbitrary mode should recover a subspace whose directions
	// include something close to it, axis-parallel mode cannot.
	r := rand.New(rand.NewSource(2))
	n := 600
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, 4)
		if i < 150 {
			// u along (1,1)/√2 is spread, v along (1,-1)/√2 is tight.
			u := r.Float64() * 10
			v := r.NormFloat64() * 0.1
			row[0] = (u + v) / math.Sqrt2
			row[1] = (u - v) / math.Sqrt2
		} else {
			row[0] = r.Float64() * 10
			row[1] = r.Float64() * 10
		}
		row[2] = r.Float64() * 10
		row[3] = r.Float64() * 10
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int, 150)
	for i := range members {
		members[i] = i
	}
	sub, err := clusterSubspace(context.Background(), ProjectionSearch{Workers: 1}, ds.View(), members, 1, linalg.FullSpace(4), &searchScratch{})
	if err != nil {
		t.Fatal(err)
	}
	dir := sub.BasisVector(0)
	want := linalg.Vector{1 / math.Sqrt2, -1 / math.Sqrt2, 0, 0}
	dot := math.Abs(dir.Dot(want))
	if dot < 0.95 {
		t.Errorf("tight direction %v, |cos| to diagonal = %v", dir, dot)
	}
}

func TestClusterSubspaceErrors(t *testing.T) {
	ds, _ := clusterAndNoise(t, 50, 4, 3)
	if _, err := clusterSubspace(context.Background(), ProjectionSearch{Workers: 1}, ds.View(), []int{0, 1}, 9, linalg.FullSpace(4), &searchScratch{}); !errors.Is(err, ErrDegenerateData) {
		t.Errorf("l > dim: %v", err)
	}
	if _, err := clusterSubspace(context.Background(), ProjectionSearch{Workers: 1}, ds.View(), nil, 2, linalg.FullSpace(4), &searchScratch{}); err == nil {
		t.Error("empty members accepted")
	}
}

func TestFindQueryCenteredProjection(t *testing.T) {
	ds, q := clusterAndNoise(t, 800, 8, 4)
	proj, err := FindQueryCenteredProjection(ds, q, ProjectionSearch{Support: 80, Graded: true})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dim() != 2 {
		t.Fatalf("projection dim %d", proj.Dim())
	}
	// The projection should be discriminatory: high score.
	score := DiscriminationScore(ds, q, proj, 80)
	if score < 0.5 {
		t.Errorf("discrimination %v, want high", score)
	}
}

func TestFindQueryCenteredProjectionAxisParallel(t *testing.T) {
	ds, q := clusterAndNoise(t, 800, 8, 5)
	proj, err := FindQueryCenteredProjection(ds, q, ProjectionSearch{Support: 80, Graded: true, AxisParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both directions must be standard axes, and they should be axes 0,1.
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		b := proj.BasisVector(i)
		axis := -1
		for j, x := range b {
			if math.Abs(x) > 0.999 {
				axis = j
			} else if math.Abs(x) > 1e-9 {
				t.Fatalf("basis %v not axis-parallel", b)
			}
		}
		seen[axis] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("chose axes %v, want {0, 1}", seen)
	}
}

func TestFindQueryCenteredProjectionUngraded(t *testing.T) {
	ds, q := clusterAndNoise(t, 500, 8, 6)
	proj, err := FindQueryCenteredProjection(ds, q, ProjectionSearch{Support: 50, Graded: false})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dim() != 2 {
		t.Fatalf("dim %d", proj.Dim())
	}
}

func TestFindQueryCenteredProjection2D(t *testing.T) {
	ds, err := dataset.New([][]float64{{1, 2}, {3, 4}, {5, 6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := FindQueryCenteredProjection(ds, linalg.Vector{0, 0}, ProjectionSearch{Support: 2, Graded: true})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dim() != 2 {
		t.Fatalf("2-D data should return the identity plane, got dim %d", proj.Dim())
	}
}

func TestFindQueryCenteredProjectionErrors(t *testing.T) {
	ds, _ := dataset.New([][]float64{{1}, {2}}, nil)
	if _, err := FindQueryCenteredProjection(ds, linalg.Vector{0}, ProjectionSearch{Support: 1}); !errors.Is(err, ErrDegenerateData) {
		t.Errorf("1-D: %v", err)
	}
	ds2, _ := dataset.New([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, nil)
	if _, err := FindQueryCenteredProjection(ds2, linalg.Vector{0, 0}, ProjectionSearch{Support: 1}); err == nil {
		t.Error("query dim mismatch accepted")
	}
	if _, err := FindQueryCenteredProjection(ds2, linalg.Vector{0, 0, 0}, ProjectionSearch{Support: 0}); err == nil {
		t.Error("zero support accepted")
	}
}

func TestDiscriminationScoreBounds(t *testing.T) {
	ds, q := clusterAndNoise(t, 400, 6, 7)
	// Noise-only projection: low score.
	noiseProj, err := linalg.AxisSubspace(6, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	clusterProj, err := linalg.AxisSubspace(6, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sNoise := DiscriminationScore(ds, q, noiseProj, 50)
	sCluster := DiscriminationScore(ds, q, clusterProj, 50)
	if sNoise < 0 || sNoise > 1 || sCluster < 0 || sCluster > 1 {
		t.Fatalf("scores out of range: %v %v", sNoise, sCluster)
	}
	if sCluster <= sNoise {
		t.Errorf("cluster projection score %v not above noise projection %v", sCluster, sNoise)
	}
	if sCluster < 0.55 {
		t.Errorf("cluster projection score %v, want near 1", sCluster)
	}
}

func TestDiscriminationScoreConstantData(t *testing.T) {
	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = []float64{1, 1, 1}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := linalg.AxisSubspace(3, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := DiscriminationScore(ds, linalg.Vector{1, 1, 1}, proj, 5); got != 0 {
		t.Errorf("constant data score = %v, want 0", got)
	}
}
