package core

import (
	"math"
	"testing"

	"innsearch/internal/grid"
	"innsearch/internal/kde"
)

func TestModeAutoPicksDiscriminatingFamily(t *testing.T) {
	// Axis-aligned planted cluster: ModeAuto should behave at least as
	// well as the best fixed mode on the planted data.
	ds, q := clusteredDataset(t, 500, 60, 8, 21)
	var firstProjectionAxis *bool
	cfg := Config{
		Support: 40, GridSize: 16, MaxMajorIterations: 1,
		Mode: ModeAuto,
		Observer: Observer{OnProfile: func(p *VisualProfile, d Decision, picked []int) {
			if p.Minor != 1 {
				return
			}
			axis := true
			for i := 0; i < p.Projection.Dim(); i++ {
				b := p.Projection.BasisVector(i)
				nonZero := 0
				for _, x := range b {
					if math.Abs(x) > 1e-9 {
						nonZero++
					}
				}
				if nonZero != 1 {
					axis = false
				}
			}
			firstProjectionAxis = &axis
		}},
	}
	s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if firstProjectionAxis == nil {
		t.Fatal("no profile observed")
	}
	// On axis-aligned clusters the axis family should win the first,
	// easiest view.
	if !*firstProjectionAxis {
		t.Log("auto mode chose an arbitrary projection on axis-aligned data (allowed but unusual)")
	}
}

func TestLegacyAxisParallelFlagMapsToModeAxis(t *testing.T) {
	c := Config{AxisParallel: true}.withDefaults(100, 5)
	if c.Mode != ModeAxis {
		t.Errorf("mode = %v, want ModeAxis", c.Mode)
	}
	c2 := Config{Mode: ModeAuto, AxisParallel: true}.withDefaults(100, 5)
	if c2.Mode != ModeAuto {
		t.Errorf("explicit mode overridden: %v", c2.Mode)
	}
}

func TestStageFactorPaperFaithful(t *testing.T) {
	ds, q := clusteredDataset(t, 400, 60, 8, 22)
	// StageFactor 1 follows the pseudocode literally; the search must
	// still return a valid 2-D projection.
	proj, err := FindQueryCenteredProjection(ds, q, ProjectionSearch{
		Support: 20, Graded: true, StageFactor: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dim() != 2 {
		t.Fatalf("dim %d", proj.Dim())
	}
}

func TestSessionPolygonalDecision(t *testing.T) {
	ds, q := clusteredDataset(t, 400, 60, 6, 23)
	// The user answers every view with a box of ±1.5 around the query —
	// selecting only points projected near it.
	polygonUser := UserFunc(func(p *VisualProfile, _ func(tau float64) *grid.Region) Decision {
		const half = 1.5
		return Decision{Lines: []grid.Line{
			{X1: p.QueryX + half, Y1: p.QueryY - 9e9, X2: p.QueryX + half, Y2: p.QueryY + 9e9},
			{X1: p.QueryX - half, Y1: p.QueryY - 9e9, X2: p.QueryX - half, Y2: p.QueryY + 9e9},
			{X1: p.QueryX - 9e9, Y1: p.QueryY + half, X2: p.QueryX + 9e9, Y2: p.QueryY + half},
			{X1: p.QueryX - 9e9, Y1: p.QueryY - half, X2: p.QueryX + 9e9, Y2: p.QueryY - half},
		}}
	})
	var pickedCounts []int
	cfg := Config{
		Support: 30, GridSize: 16, MaxMajorIterations: 1, Mode: ModeAxis,
		Observer: Observer{OnProfile: func(p *VisualProfile, d Decision, picked []int) {
			pickedCounts = append(pickedCounts, len(picked))
		}},
	}
	s, err := NewSession(ds, q, polygonUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewsAnswered == 0 {
		t.Fatal("polygonal answers not counted")
	}
	any := false
	for _, c := range pickedCounts {
		if c > 0 && c < 400 {
			any = true
		}
	}
	if !any {
		t.Errorf("polygonal selections never selected a proper subset: %v", pickedCounts)
	}
}

func TestProfileSelectLines(t *testing.T) {
	ds, q := clusteredDataset(t, 200, 40, 4, 24)
	proj, err := FindQueryCenteredProjection(ds, q, ProjectionSearch{Support: 20, Graded: true, AxisParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(ds, q, proj, 20, kdeOptions16())
	if err != nil {
		t.Fatal(err)
	}
	all, err := p.SelectLines(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 200 {
		t.Errorf("no-line selection = %d", len(all))
	}
	sub, err := p.SelectLines([]grid.Line{
		{X1: p.QueryX + 1, Y1: -9e9, X2: p.QueryX + 1, Y2: 9e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) == 0 || len(sub) >= 200 {
		t.Errorf("half-plane selection = %d", len(sub))
	}
}

// kdeOptions16 returns a small grid option set for tests.
func kdeOptions16() kde.Options { return kde.Options{GridSize: 16} }
