package core

import (
	"strings"
	"testing"
	"time"

	"innsearch/internal/telemetry"
)

// shardedTraceEvents runs one deterministic sharded session under a step
// clock and returns its events.
func shardedTraceEvents(t *testing.T, workers int) []telemetry.Event {
	t.Helper()
	ds, q := clusteredDataset(t, 300, 40, 16, 7)
	col := telemetry.NewCollectorClock(telemetry.StepClock(time.Unix(0, 0).UTC(), time.Millisecond))
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		Support: 20, GridSize: 32, MaxMajorIterations: 3,
		Workers: workers, Shards: 4,
		Tracer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return col.Events()
}

// TestSpanDeterministicAcrossWorkersSharded extends the trace-determinism
// contract to the sharded span layer: the full event stream of a sharded
// session — span IDs, parents, scatter ordinals, shard spans, and every
// step-clock duration — must be identical at workers 1, 4, and 8. The
// only fields allowed to differ are the configured worker count echoed by
// session_start and the per-shard gather durations, which are measured
// with the real clock inside the workers by design.
func TestSpanDeterministicAcrossWorkersSharded(t *testing.T) {
	normalize := func(e telemetry.Event) telemetry.Event {
		e.Workers = 0
		if e.Type == telemetry.EventShardGather {
			e.DurationMS = 0
		}
		return e
	}
	want := shardedTraceEvents(t, 1)
	if len(want) == 0 {
		t.Fatal("no trace events emitted")
	}
	for _, workers := range []int{4, 8} {
		got := shardedTraceEvents(t, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if g, w := normalize(got[i]), normalize(want[i]); g != w {
				t.Errorf("workers=%d event %d:\n got %+v\nwant %+v", workers, i, g, w)
			}
		}
	}
}

// TestSessionSpanTreeComplete checks the span linkage of an unsharded
// traced session: every span end links into exactly one tree rooted at
// the session span, with no orphans, and the expected structural IDs.
func TestSessionSpanTreeComplete(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 16, 7)
	col := telemetry.NewCollectorClock(telemetry.StepClock(time.Unix(0, 0).UTC(), time.Millisecond))
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		Support: 20, GridSize: 32, MaxMajorIterations: 3, Tracer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	trees := telemetry.BuildSpanTrees(col.Events())
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Root == nil || tree.Root.ID != "s" || tree.Root.Type != telemetry.EventSessionEnd {
		t.Fatalf("root = %+v, want session span \"s\" ended by session_end", tree.Root)
	}
	if len(tree.Orphans) != 0 {
		t.Fatalf("span tree has %d orphans: %+v", len(tree.Orphans), tree.Orphans)
	}
	if got := len(tree.Root.Children); got != res.Iterations {
		t.Fatalf("root has %d round children, want %d iterations", got, res.Iterations)
	}
	for i, r := range tree.Root.Children {
		if want := "s/r" + string(rune('1'+i)); r.ID != want || r.Type != telemetry.EventIteration {
			t.Fatalf("round %d span = %q (%s), want %q", i, r.ID, r.Type, want)
		}
	}
	// Every view span nests a /proj and a /kde child, and the /proj span
	// decomposes into /d{dim} stage spans.
	views := 0
	for id, n := range tree.Nodes {
		if n.Type != telemetry.EventView {
			continue
		}
		views++
		var proj, kde bool
		for _, c := range n.Children {
			switch {
			case c.ID == id+"/proj":
				proj = true
				// A view over data already at the 2-D target has no
				// halving stages; every wider view decomposes.
				if len(c.Children) == 0 && n.Event.Dim > 2 {
					t.Fatalf("proj span %q has no halving-stage children at dim %d", c.ID, n.Event.Dim)
				}
				for _, st := range c.Children {
					if !strings.HasPrefix(st.ID, id+"/proj/d") {
						t.Fatalf("stage span %q not under %q", st.ID, id+"/proj")
					}
				}
			case c.ID == id+"/kde":
				kde = true
			}
		}
		if !proj || !kde {
			t.Fatalf("view span %q missing proj/kde children (proj=%v kde=%v)", id, proj, kde)
		}
	}
	if views != res.ViewsShown {
		t.Fatalf("view spans = %d, want ViewsShown %d", views, res.ViewsShown)
	}
}

// TestShardedSpanTreeCriticalPath is the acceptance scenario: a sharded
// 2000x64 session's span tree must be complete, its critical path must
// name a specific shard for each scatter stage it crosses, and the
// per-stage straggler attribution must cover every sharded stage kernel.
// Structure (IDs, parents, types, order) must be identical across worker
// counts; only the real-clock shard durations may differ.
func TestShardedSpanTreeCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("2000x64 sharded session in -short mode")
	}
	run := func(workers int) ([]telemetry.Event, telemetry.Attribution) {
		ds, q := clusteredDataset(t, 2000, 64, 16, 7)
		col := telemetry.NewCollector()
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 25, GridSize: 48, MaxMajorIterations: 2, Mode: ModeAxis,
			Workers: workers, Shards: 4,
			Tracer: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		trees := telemetry.BuildSpanTrees(col.Events())
		if len(trees) != 1 {
			t.Fatalf("got %d trees, want 1", len(trees))
		}
		tree := trees[0]
		if tree.Root == nil || len(tree.Orphans) != 0 {
			t.Fatalf("incomplete sharded span tree: root=%v orphans=%d", tree.Root, len(tree.Orphans))
		}
		return col.Events(), tree.Attribute()
	}

	events, attr := run(4)
	if attr.TotalMS <= 0 || len(attr.Path) == 0 || attr.Path[0].Span != "s" {
		t.Fatalf("attribution = %+v, want a rooted critical path", attr)
	}
	// Every sharded stage kernel the session exercised must appear in the
	// attribution, each naming one specific straggler shard in [0, 4).
	wantStages := map[string]bool{
		"stats/sums": false, "stats/moments": false, "nearest": false,
		"kde/extent": false, "kde/spread": false, "kde/lattice": false,
	}
	for _, st := range attr.Stages {
		if _, ok := wantStages[st.Stage]; ok {
			wantStages[st.Stage] = true
		}
		if st.Straggler < 0 || st.Straggler >= 4 {
			t.Fatalf("stage %q straggler = %d, want a specific shard in [0, 4)", st.Stage, st.Straggler)
		}
		if st.Scatters == 0 || st.SlowestMS > st.TotalMS {
			t.Fatalf("inconsistent stage attribution: %+v", st)
		}
	}
	for stage, seen := range wantStages {
		if !seen {
			t.Errorf("sharded stage %q missing from attribution (have %+v)", stage, attr.Stages)
		}
	}
	// Whenever the critical path crosses a scatter span, the next hop must
	// be a shard span — the straggler by construction.
	for i := 0; i+1 < len(attr.Path); i++ {
		if attr.Path[i].Type == telemetry.EventSpan {
			next := attr.Path[i+1]
			if next.Type != telemetry.EventShardGather || next.Shard < 0 {
				t.Fatalf("critical path hop after scatter %q = %+v, want a shard span", attr.Path[i].Span, next)
			}
		}
	}

	// Bit-identical span structure across worker counts: the ordered
	// (type, span, parent, stage, shard) tuples must match exactly.
	type link struct {
		typ           telemetry.EventType
		span, parent  string
		stage         string
		shard, shards int
	}
	structure := func(events []telemetry.Event) []link {
		var out []link
		for _, e := range events {
			out = append(out, link{e.Type, e.Span, e.Parent, e.Stage, e.Shard, e.Shards})
		}
		return out
	}
	want := structure(events)
	for _, workers := range []int{1, 8} {
		ev, _ := run(workers)
		got := structure(ev)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d span structure diverges at event %d:\n got %+v\nwant %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}
