package core

import (
	"time"

	"innsearch/internal/telemetry"
)

// tracer is the session's nil-safe view of the configured
// telemetry.Tracer. Every method is a no-op — no clock read, no event
// construction — when no tracer is configured, so an untraced session
// runs the exact instruction stream it ran before instrumentation
// (enforced by BenchmarkFullSessionNoopTracer against the seed numbers).
//
// All methods run on the session's driving goroutine; durations are
// measured against the tracer's own clock so tests can substitute a
// deterministic one and obtain byte-identical JSONL streams at any worker
// count.
type tracer struct {
	t telemetry.Tracer
}

// enabled reports whether events are being collected.
func (tr tracer) enabled() bool { return tr.t != nil }

// now reads the tracer's clock; callers must only use the result when
// enabled() (the zero time otherwise).
func (tr tracer) now() time.Time {
	if tr.t == nil {
		return time.Time{}
	}
	return tr.t.Now()
}

// since converts the elapsed time from start to event milliseconds.
func (tr tracer) since(start time.Time) float64 {
	return float64(tr.now().Sub(start)) / float64(time.Millisecond)
}

// clock exposes the underlying clock func for subsystems that time
// themselves (kde.Options.Clock); nil when tracing is off.
func (tr tracer) clock() func() time.Time {
	if tr.t == nil {
		return nil
	}
	return tr.t.Now
}

// emit forwards one event when tracing is on.
func (tr tracer) emit(e telemetry.Event) {
	if tr.t != nil {
		tr.t.Emit(e)
	}
}
