package core

import (
	"strconv"
	"time"

	"innsearch/internal/telemetry"
)

// tracer is the session's nil-safe view of the configured
// telemetry.Tracer. Every method is a no-op — no clock read, no event
// construction — when no tracer is configured, so an untraced session
// runs the exact instruction stream it ran before instrumentation
// (enforced by BenchmarkFullSessionNoopTracer against the seed numbers).
//
// All methods run on the session's driving goroutine; durations are
// measured against the tracer's own clock so tests can substitute a
// deterministic one and obtain byte-identical JSONL streams at any worker
// count.
type tracer struct {
	t telemetry.Tracer
}

// enabled reports whether events are being collected.
func (tr tracer) enabled() bool { return tr.t != nil }

// now reads the tracer's clock; callers must only use the result when
// enabled() (the zero time otherwise).
func (tr tracer) now() time.Time {
	if tr.t == nil {
		return time.Time{}
	}
	return tr.t.Now()
}

// since converts the elapsed time from start to event milliseconds.
func (tr tracer) since(start time.Time) float64 {
	return float64(tr.now().Sub(start)) / float64(time.Millisecond)
}

// clock exposes the underlying clock func for subsystems that time
// themselves (kde.Options.Clock); nil when tracing is off.
func (tr tracer) clock() func() time.Time {
	if tr.t == nil {
		return nil
	}
	return tr.t.Now
}

// emit forwards one event when tracing is on.
func (tr tracer) emit(e telemetry.Event) {
	if tr.t != nil {
		tr.t.Emit(e)
	}
}

// Span IDs (DESIGN.md "Causal tracing"): spans are deterministic
// structural paths below the session root — "s" → "s/r{major}" →
// "s/r{major}/v{minor}.{family}" → stage suffixes /proj, /kde, /wait,
// /select, with projection stages at /proj/d{dim} and coordinator
// scatters at {stage span}/{kernel}#{ordinal}. IDs are derived from
// iteration counters only, never from clocks or worker scheduling, so
// the same seed produces the same tree at any worker count. All ID
// construction is guarded on enabled(): an untraced session builds no
// strings.
const rootSpan = "s"

// roundSpanID is the span of one major iteration.
func roundSpanID(major int) string { return "s/r" + strconv.Itoa(major) }

// viewSpanID is the span of one candidate view (projection search +
// density profile) within a round.
func viewSpanID(round string, minor int, family string) string {
	return round + "/v" + strconv.Itoa(minor) + "." + family
}

// spanPath joins a leaf onto a parent span, tolerating an empty parent
// (a candGen used standalone under a tracer but outside any session
// stage still gets a well-formed root-level span ID).
func spanPath(parent, leaf string) string {
	if parent == "" {
		return leaf
	}
	return parent + "/" + leaf
}
