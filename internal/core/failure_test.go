package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/grid"
)

// Failure-injection tests: degenerate data, adversarial users, and odd
// shapes the session must survive (or reject with a clear error).

func TestSessionNonFiniteDataSurfacesError(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, math.NaN(), 6}, {7, 8, 9}, {1, 1, 1}}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(ds, []float64{1, 2, 3}, alwaysTauUser(0.5), Config{GridSize: 16, MaxMajorIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("NaN data did not surface an error")
	} else if !strings.Contains(err.Error(), "core:") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestSessionConstantAttributes(t *testing.T) {
	// Two informative dims, two constant dims: constant attributes must
	// never be chosen and never crash the eigen/KDE pipeline.
	r := rand.New(rand.NewSource(1))
	rows := make([][]float64, 300)
	for i := range rows {
		row := make([]float64, 4)
		if i < 50 {
			row[0] = 5 + r.NormFloat64()*0.1
			row[1] = 5 + r.NormFloat64()*0.1
		} else {
			row[0] = r.Float64() * 10
			row[1] = r.Float64() * 10
		}
		row[2] = 7 // constant
		row[3] = 7 // constant
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(ds, []float64{5, 5, 7, 7}, alwaysTauUser(0.3), Config{
		GridSize: 16, MaxMajorIterations: 2, Mode: ModeAxis, Support: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewsShown == 0 {
		t.Error("no views shown on constant-attribute data")
	}
}

func TestSessionOddDimensionality(t *testing.T) {
	ds, q := clusteredDataset(t, 200, 40, 7, 31) // d = 7, d/2 = 3 views
	viewCount := 0
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		GridSize: 16, MaxMajorIterations: 1, Mode: ModeAxis,
		Observer: Observer{OnProfile: func(*VisualProfile, Decision, []int) { viewCount++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if viewCount != 3 {
		t.Errorf("views = %d, want 3 for d=7", viewCount)
	}
}

func TestSessionTinyDataset(t *testing.T) {
	ds, err := dataset.New([][]float64{{1, 2}, {3, 4}, {5, 6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(ds, []float64{1, 2}, alwaysTauUser(0.5), Config{GridSize: 16, MaxMajorIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Error("tiny dataset ran no iterations")
	}
}

func TestSessionAdversarialUserDecisions(t *testing.T) {
	// A user returning pathological answers: negative τ, gigantic τ,
	// NaN-free but nonsensical weights — the session must not panic and
	// must produce a coherent (possibly empty) result.
	ds, q := clusteredDataset(t, 200, 30, 6, 32)
	step := 0
	u := UserFunc(func(p *VisualProfile, _ func(tau float64) *grid.Region) Decision {
		step++
		switch step % 4 {
		case 0:
			return Decision{Tau: -5}
		case 1:
			return Decision{Tau: 1e300}
		case 2:
			return Decision{Tau: 0.3 * p.QueryDensity, Weight: -2}
		default:
			return Decision{Tau: 0, Weight: 1e9}
		}
	})
	s, err := NewSession(ds, q, u, Config{GridSize: 16, MaxMajorIterations: 2, Mode: ModeAxis})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range res.Neighbors {
		if math.IsNaN(nb.Probability) || nb.Probability < 0 || nb.Probability > 1 {
			t.Fatalf("probability out of range: %+v", nb)
		}
	}
}

func TestSessionUserPanicPropagates(t *testing.T) {
	// A panicking user is a programming error; the session must not
	// swallow it.
	ds, q := clusteredDataset(t, 100, 20, 4, 33)
	u := UserFunc(func(*VisualProfile, func(tau float64) *grid.Region) Decision {
		panic("user exploded")
	})
	s, err := NewSession(ds, q, u, Config{GridSize: 16, MaxMajorIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("panic swallowed")
		}
	}()
	_, _ = s.Run()
}

func TestSessionDuplicatePoints(t *testing.T) {
	// Every point identical to the query: distances all zero, KDE
	// degenerate bandwidths — must not crash.
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{3, 3, 3}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(ds, []float64{3, 3, 3}, alwaysTauUser(0.5), Config{GridSize: 16, MaxMajorIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("duplicate-point data: %v", err)
	}
}

func TestQueryFarOutsideDataRange(t *testing.T) {
	ds, _ := clusteredDataset(t, 200, 30, 5, 34)
	q := []float64{1e9, -1e9, 1e9, -1e9, 1e9}
	s, err := NewSession(ds, q, alwaysTauUser(0.5), Config{GridSize: 16, MaxMajorIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// An absurd query should not produce a confident natural cluster.
	if res.Diagnosis.Meaningful && res.Diagnosis.MaxProb > 0.99 {
		t.Logf("far query produced meaningful=%v (geometry-dependent)", res.Diagnosis.Meaningful)
	}
}

func TestModeAutoFallsBackWhenOneFamilyFails(t *testing.T) {
	// 2-D data: both families return the identity plane; ModeAuto must
	// still work.
	ds, err := dataset.New([][]float64{{1, 2}, {3, 4}, {5, 6}, {0, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(ds, []float64{1, 2}, alwaysTauUser(0.5), Config{
		GridSize: 16, MaxMajorIterations: 1, Mode: ModeAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
