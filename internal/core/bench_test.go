package core

import (
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

func benchDataset(b *testing.B, n, d int) (*dataset.Dataset, linalg.Vector) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			if i < n/10 && j < 4 {
				row[j] = 50 + r.NormFloat64()*2
			} else {
				row[j] = r.Float64() * 100
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := make(linalg.Vector, d)
	for j := range q {
		q[j] = 50
	}
	return ds, q
}

func BenchmarkFindQueryCenteredProjection5000x20(b *testing.B) {
	ds, q := benchDataset(b, 5000, 20)
	cfg := ProjectionSearch{Support: 25, Graded: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindQueryCenteredProjection(ds, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindQueryCenteredProjectionAxis5000x20(b *testing.B) {
	ds, q := benchDataset(b, 5000, 20)
	cfg := ProjectionSearch{Support: 25, Graded: true, AxisParallel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindQueryCenteredProjection(ds, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSession2000x20(b *testing.B) {
	ds, q := benchDataset(b, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 25, GridSize: 48, MaxMajorIterations: 2, AxisParallel: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantifyMeaningfulness(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	n := 5000
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = float64(r.Intn(11))
	}
	picks := make([]PickStats, 10)
	for i := range picks {
		picks[i] = PickStats{Picked: 200 + r.Intn(300), Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = QuantifyMeaningfulness(counts, n, picks)
	}
}

func BenchmarkDiagnose5000(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	probs := make([]float64, 5000)
	for i := range probs {
		if i < 400 {
			probs[i] = 0.9 + 0.1*r.Float64()
		} else {
			probs[i] = 0.3 * r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Diagnose(probs, DiagnosisConfig{})
	}
}
