package core

import (
	"context"
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/linalg"
)

func benchDataset(b testing.TB, n, d int) (*dataset.Dataset, linalg.Vector) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			if i < n/10 && j < 4 {
				row[j] = 50 + r.NormFloat64()*2
			} else {
				row[j] = r.Float64() * 100
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := make(linalg.Vector, d)
	for j := range q {
		q[j] = 50
	}
	return ds, q
}

func BenchmarkFindQueryCenteredProjection5000x20(b *testing.B) {
	ds, q := benchDataset(b, 5000, 20)
	cfg := ProjectionSearch{Support: 25, Graded: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindQueryCenteredProjection(ds, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindQueryCenteredProjectionAxis5000x20(b *testing.B) {
	ds, q := benchDataset(b, 5000, 20)
	cfg := ProjectionSearch{Support: 25, Graded: true, AxisParallel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindQueryCenteredProjection(ds, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSession2000x20(b *testing.B) {
	ds, q := benchDataset(b, 2000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 25, GridSize: 48, MaxMajorIterations: 2, Mode: ModeAxis,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSession2000x64 runs a full session on the synthetic d=64
// dataset — the data plane's headline allocation benchmark. Run with
// -benchmem; EXPERIMENTS.md records the before→after deltas of the
// store/view refactor.
func BenchmarkSession2000x64(b *testing.B) {
	ds, q := benchDataset(b, 2000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 64, GridSize: 48, MaxMajorIterations: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSearch8x2000x32 runs an 8-query batch against one shared
// dataset, the serving layer's /v1/search shape.
func BenchmarkBatchSearch8x2000x32(b *testing.B) {
	ds, q := benchDataset(b, 2000, 32)
	queries := make([][]float64, 8)
	users := make([]User, 8)
	for i := range queries {
		qi := append([]float64(nil), q...)
		qi[0] += float64(i)
		queries[i] = qi
		users[i] = alwaysTauUser(0.3)
	}
	cfg := Config{Support: 32, GridSize: 32, MaxMajorIterations: 1, Workers: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, errs := mustBatch(b, ds, queries, users, cfg)
		for j := range results {
			if errs[j] != nil {
				b.Fatal(errs[j])
			}
		}
	}
}

func mustBatch(b *testing.B, ds *dataset.Dataset, queries [][]float64, users []User, cfg Config) ([]*Result, []error) {
	b.Helper()
	batch, err := NewSessionBatch(ds, queries, users, cfg)
	if err != nil {
		b.Fatal(err)
	}
	results, errs := batch.RunContext(context.Background())
	return results, errs
}

// BenchmarkProjectionScoring isolates the discrimination-scoring hot path
// (full-space neighbor scan plus per-direction variance ratios).
func BenchmarkProjectionScoring2000x32(b *testing.B) {
	ds, q := benchDataset(b, 2000, 32)
	proj, err := FindQueryCenteredProjection(ds, q, ProjectionSearch{Support: 32, Graded: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DiscriminationScore(ds, q, proj, 32)
	}
}

func BenchmarkQuantifyMeaningfulness(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	n := 5000
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = float64(r.Intn(11))
	}
	picks := make([]PickStats, 10)
	for i := range picks {
		picks[i] = PickStats{Picked: 200 + r.Intn(300), Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = QuantifyMeaningfulness(counts, n, picks)
	}
}

func BenchmarkDiagnose5000(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	probs := make([]float64, 5000)
	for i := range probs {
		if i < 400 {
			probs[i] = 0.9 + 0.1*r.Float64()
		} else {
			probs[i] = 0.3 * r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Diagnose(probs, DiagnosisConfig{})
	}
}

// benchmarkSessionIndexed is BenchmarkSession2000x64 with a
// candidate-generation backend installed — the numbers EXPERIMENTS.md
// quotes when comparing exact, VA-file, and k-means-tree session times.
func benchmarkSessionIndexed(b *testing.B, backend string) {
	ds, q := benchDataset(b, 2000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 64, GridSize: 48, MaxMajorIterations: 2,
			Index: index.Config{Name: backend},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSession2000x64IndexExact(b *testing.B)  { benchmarkSessionIndexed(b, "exact") }
func BenchmarkSession2000x64IndexVAFile(b *testing.B) { benchmarkSessionIndexed(b, "vafile") }
func BenchmarkSession2000x64IndexKmtree(b *testing.B) { benchmarkSessionIndexed(b, "kmtree") }

// benchmarkSessionSharded is BenchmarkSession2000x64 with the stage
// kernels scattered over P shards — the session-time-vs-P series
// EXPERIMENTS.md tabulates.
func benchmarkSessionSharded(b *testing.B, shards, workers int) {
	ds, q := benchDataset(b, 2000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 64, GridSize: 48, MaxMajorIterations: 2,
			Shards: shards, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSession20000 is the crossover-scale session: n = 20000 in
// ModeAxis, where every halving stage scans an axis-aligned subspace the
// index layer serves through KNNAxis (exact, vafile) and view narrowings
// are served by index derivation instead of rebuilds. The unindexed
// variant is the baseline EXPERIMENTS.md quotes the crossover against.
func benchmarkSession20000(b *testing.B, backend string) {
	ds, q := benchDataset(b, 20000, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{Support: 64, GridSize: 48, MaxMajorIterations: 2, Mode: ModeAxis}
		if backend != "" {
			cfg.Index = index.Config{Name: backend}
		}
		s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSession20000x64(b *testing.B)              { benchmarkSession20000(b, "") }
func BenchmarkSession20000x64IndexedExact(b *testing.B)  { benchmarkSession20000(b, "exact") }
func BenchmarkSession20000x64IndexedVAFile(b *testing.B) { benchmarkSession20000(b, "vafile") }
func BenchmarkSession20000x64IndexedKMTree(b *testing.B) { benchmarkSession20000(b, "kmtree") }

func BenchmarkSession2000x64Shards1(b *testing.B) { benchmarkSessionSharded(b, 1, 4) }
func BenchmarkSession2000x64Shards2(b *testing.B) { benchmarkSessionSharded(b, 2, 4) }
func BenchmarkSession2000x64Shards4(b *testing.B) { benchmarkSessionSharded(b, 4, 4) }
func BenchmarkSession2000x64Shards8(b *testing.B) { benchmarkSessionSharded(b, 8, 4) }
