package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"

	"innsearch/internal/index"
)

// runSharded executes one full session over the shared parallel-test
// fixture with the given config knobs and returns its result plus the
// recorded transcript.
func runSharded(t *testing.T, shards, workers int, cfg Config) (*Result, *Transcript) {
	t.Helper()
	ds, q, u := parallelTestData(t, 99)
	tr, obs := NewTranscript(false)
	cfg.Support = 40
	cfg.Workers = workers
	cfg.Shards = shards
	cfg.Observer = obs
	sess, err := NewSession(ds, q, u, cfg)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	res, err := sess.RunContext(context.Background())
	if err != nil {
		t.Fatalf("RunContext(shards=%d, workers=%d): %v", shards, workers, err)
	}
	if res.ViewsShown == 0 {
		t.Fatal("session showed no views; test data is degenerate")
	}
	return res, tr
}

// Shards: 1 must take the exact legacy single-partition path: results and
// transcripts byte-identical to a config with no Shards field at all.
func TestSessionShardsOneByteIdentical(t *testing.T) {
	base, baseTr := runSharded(t, 0, 2, Config{})
	one, oneTr := runSharded(t, 1, 2, Config{})
	if !reflect.DeepEqual(base, one) {
		t.Errorf("Shards:1 result differs from unsharded:\n base=%+v\n  one=%+v", base, one)
	}
	if !reflect.DeepEqual(baseTr, oneTr) {
		t.Error("Shards:1 transcript differs from unsharded")
	}
}

// A sharded session must be deterministic in the worker count: the shard
// split depends only on (rows, P), partials merge in shard order, and
// finishing arithmetic runs once — so workers 1, 4, and 8 agree bitwise.
func TestSessionShardedDeterministicAcrossWorkers(t *testing.T) {
	serial, serialTr := runSharded(t, 4, 1, Config{})
	for _, workers := range []int{4, 8} {
		par, parTr := runSharded(t, 4, workers, Config{})
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("Shards:4 result differs between workers=1 and workers=%d", workers)
		}
		if !reflect.DeepEqual(serialTr, parTr) {
			t.Errorf("Shards:4 transcript differs between workers=1 and workers=%d", workers)
		}
	}
}

// At P > 1 the merged moment and density sums re-associate, so floats may
// differ in the last bits — but the accepted member sets must be identical
// and every probability within 1e-10 of the unsharded run.
func TestSessionShardedAgreesWithUnsharded(t *testing.T) {
	base, _ := runSharded(t, 0, 2, Config{})
	for _, shards := range []int{2, 4, 7} {
		res, _ := runSharded(t, shards, 2, Config{})
		if res.Iterations != base.Iterations || res.Converged != base.Converged ||
			res.ViewsShown != base.ViewsShown || res.ViewsAnswered != base.ViewsAnswered {
			t.Errorf("Shards:%d session shape differs: got {it=%d conv=%v shown=%d ans=%d}, want {it=%d conv=%v shown=%d ans=%d}",
				shards, res.Iterations, res.Converged, res.ViewsShown, res.ViewsAnswered,
				base.Iterations, base.Converged, base.ViewsShown, base.ViewsAnswered)
		}
		if len(res.Probabilities) != len(base.Probabilities) {
			t.Fatalf("Shards:%d member set size %d, want %d", shards, len(res.Probabilities), len(base.Probabilities))
		}
		for id, p := range base.Probabilities {
			got, ok := res.Probabilities[id]
			if !ok {
				t.Fatalf("Shards:%d member set is missing row %d", shards, id)
			}
			if diff := math.Abs(got - p); diff > 1e-10*math.Max(1, math.Abs(p)) {
				t.Errorf("Shards:%d probability for row %d = %g, want %g (diff %g)", shards, id, got, p, diff)
			}
		}
		gotIDs := neighborIDs(res)
		wantIDs := neighborIDs(base)
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Errorf("Shards:%d neighbor ID set %v, want %v", shards, gotIDs, wantIDs)
		}
	}
}

func neighborIDs(r *Result) []int {
	ids := make([]int, len(r.Neighbors))
	for i, nb := range r.Neighbors {
		ids[i] = nb.ID
	}
	sort.Ints(ids)
	return ids
}

// A canceled context must abort a sharded session cleanly.
func TestSessionShardedCanceled(t *testing.T) {
	ds, q, u := parallelTestData(t, 99)
	sess, err := NewSession(ds, q, u, Config{Support: 40, Workers: 4, Shards: 4})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx: got %v, want context.Canceled", err)
	}
}

// Sharded candidate generation: a session with both Shards and an Index
// backend routes full-space scans through per-shard backends; the result
// must match the sharded session without an index bit-for-bit (the exact
// backend is the same ranking), and a second session sharing the cache
// must reuse every shard's backend.
func TestSessionShardedWithIndex(t *testing.T) {
	plain, _ := runSharded(t, 4, 2, Config{})
	cache := index.NewCache(0)
	idxCfg := Config{Index: index.Config{Name: "exact"}, IndexCache: cache}
	indexed, _ := runSharded(t, 4, 2, idxCfg)
	if !reflect.DeepEqual(plain, indexed) {
		t.Error("Shards:4 with exact index differs from Shards:4 without")
	}

	ds, q, u := parallelTestData(t, 99)
	first, err := NewSession(ds, q, u, Config{Support: 40, Workers: 2, Shards: 4, Index: index.Config{Name: "exact"}, IndexCache: cache})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := first.RunContext(context.Background()); err != nil {
		t.Fatalf("first run: %v", err)
	}
	st := first.IndexStats()
	if st.Builds == 0 && st.CacheHits == 0 {
		t.Fatal("indexed session recorded no builds and no cache reuse")
	}

	// A second session over the same dataset shares the root view pointer,
	// so its first scatter must be served from the cache.
	second, err := NewSession(ds, q, u, Config{Support: 40, Workers: 2, Shards: 4, Index: index.Config{Name: "exact"}, IndexCache: cache})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := second.RunContext(context.Background()); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if hits := second.IndexStats().CacheHits; hits == 0 {
		t.Error("second session over the same dataset recorded no cache reuse")
	}
}
