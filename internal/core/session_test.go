package core

import (
	"math"
	"math/rand"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/grid"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

// alwaysTauUser places the separator at a fixed fraction of the profile's
// max density.
func alwaysTauUser(frac float64) UserFunc {
	return func(p *VisualProfile, preview func(tau float64) *grid.Region) Decision {
		return Decision{Tau: frac * p.Grid.MaxDensity()}
	}
}

func skipUser() UserFunc {
	return func(*VisualProfile, func(tau float64) *grid.Region) Decision {
		return Decision{Skip: true}
	}
}

// clusteredDataset builds n points in d dims, the first clusterN of which
// form a tight cluster in dims {0,1,2} around (5,5,5); all other
// coordinates are uniform in [0,10].
func clusteredDataset(t testing.TB, n, clusterN, d int, seed int64) (*dataset.Dataset, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			if i < clusterN && j < 3 {
				row[j] = 5 + r.NormFloat64()*0.15
			} else {
				row[j] = r.Float64() * 10
			}
		}
		rows[i] = row
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, d)
	q[0], q[1], q[2] = 5, 5, 5
	for j := 3; j < d; j++ {
		q[j] = 5
	}
	return ds, q
}

func TestNewSessionValidation(t *testing.T) {
	ds, q := clusteredDataset(t, 50, 10, 4, 1)
	if _, err := NewSession(nil, q, skipUser(), Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := NewSession(ds, q[:2], skipUser(), Config{}); err == nil {
		t.Error("query dim mismatch accepted")
	}
	if _, err := NewSession(ds, q, nil, Config{}); err == nil {
		t.Error("nil user accepted")
	}
	bad := append([]float64(nil), q...)
	bad[0] = math.NaN()
	if _, err := NewSession(ds, bad, skipUser(), Config{}); err == nil {
		t.Error("NaN query accepted")
	}
	oneD, _ := dataset.New([][]float64{{1}, {2}}, nil)
	if _, err := NewSession(oneD, []float64{1}, skipUser(), Config{}); err == nil {
		t.Error("1-D data accepted")
	}
}

func TestSessionDoesNotMutateInput(t *testing.T) {
	ds, q := clusteredDataset(t, 100, 20, 4, 2)
	before := ds.Point(0).Clone()
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{MaxMajorIterations: 1, GridSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ds.Point(0).ApproxEqual(before, 0) {
		t.Error("session mutated the caller's dataset")
	}
}

func TestSessionFindsPlantedCluster(t *testing.T) {
	ds, q := clusteredDataset(t, 800, 60, 8, 3)
	s, err := NewSession(ds, q, alwaysTauUser(0.25), Config{
		Support:            40,
		GridSize:           32,
		MaxMajorIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 || len(res.Neighbors) == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	// The top neighbors should be dominated by planted cluster members
	// (IDs < 60).
	top := res.Neighbors
	if len(top) > 30 {
		top = top[:30]
	}
	hits := 0
	for _, nb := range top {
		if nb.ID < 60 {
			hits++
		}
	}
	if hits < 24 {
		t.Errorf("only %d/%d top neighbors from planted cluster", hits, len(top))
	}
	// Neighbors sorted by descending probability.
	for i := 1; i < len(res.Neighbors); i++ {
		if res.Neighbors[i].Probability > res.Neighbors[i-1].Probability+1e-12 {
			t.Fatal("neighbors not sorted by probability")
		}
	}
}

func TestSessionAllSkipsTerminates(t *testing.T) {
	ds, q := clusteredDataset(t, 200, 30, 6, 4)
	s, err := NewSession(ds, q, skipUser(), Config{MaxMajorIterations: 3, GridSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Nothing picked: all probabilities zero, diagnosis not meaningful.
	for _, nb := range res.Neighbors {
		if nb.Probability != 0 {
			t.Errorf("skip-only session produced P=%v", nb.Probability)
		}
	}
	if res.Diagnosis.Meaningful {
		t.Error("skip-only session diagnosed meaningful")
	}
}

func TestSessionObserverCallbacks(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 6, 5)
	var profiles, majors int
	var lastMinorDims []int
	cfg := Config{
		Support:            30,
		GridSize:           16,
		MaxMajorIterations: 1,
		Observer: Observer{
			OnProfile: func(p *VisualProfile, d Decision, picked []int) {
				profiles++
				lastMinorDims = append(lastMinorDims, p.RemainingDim)
				if p.Major != 1 {
					t.Errorf("major = %d", p.Major)
				}
				if p.Minor != profiles {
					t.Errorf("minor = %d, want %d", p.Minor, profiles)
				}
			},
			OnMajorIteration: func(iter int, probs map[int]float64) {
				majors++
				if len(probs) != 300 {
					t.Errorf("probs for %d points, want 300", len(probs))
				}
			},
		},
	}
	s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if profiles != 3 { // d=6 → d/2 = 3 minor iterations
		t.Errorf("profiles = %d, want 3", profiles)
	}
	if majors != 1 {
		t.Errorf("majors = %d, want 1", majors)
	}
	// The remaining dimensionality shrinks by 2 per minor iteration.
	want := []int{6, 4, 2}
	for i, dim := range lastMinorDims {
		if dim != want[i] {
			t.Errorf("minor %d remaining dim = %d, want %d", i+1, dim, want[i])
		}
	}
}

func TestSessionProjectionsMutuallyOrthogonal(t *testing.T) {
	// Capture the ambient-space projection planes across minor iterations
	// and verify orthogonality. Reconstructing ambient directions from
	// the session's shrinking coordinates needs the chain of complements,
	// so instead verify the structural invariant the recoordinatization
	// guarantees: the dimension drops 2 per minor iteration and each
	// profile's projection is 2-D within the current space.
	ds, q := clusteredDataset(t, 200, 30, 8, 6)
	var dims []int
	cfg := Config{
		Support: 20, GridSize: 16, MaxMajorIterations: 1,
		Observer: Observer{OnProfile: func(p *VisualProfile, d Decision, picked []int) {
			dims = append(dims, p.Projection.Dim(), p.Projection.Ambient())
		}},
	}
	s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	wantAmbient := []int{8, 6, 4, 2}
	for i := 0; i*2 < len(dims); i++ {
		if dims[i*2] != 2 {
			t.Errorf("projection %d dim = %d", i, dims[i*2])
		}
		if dims[i*2+1] != wantAmbient[i] {
			t.Errorf("projection %d ambient = %d, want %d", i, dims[i*2+1], wantAmbient[i])
		}
	}
}

func TestSessionConvergesAndStops(t *testing.T) {
	ds, q := clusteredDataset(t, 400, 50, 6, 7)
	s, err := NewSession(ds, q, alwaysTauUser(0.25), Config{
		Support:            30,
		GridSize:           24,
		MaxMajorIterations: 6,
		OverlapThreshold:   0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && res.Iterations == 6 {
		t.Log("session used all iterations without convergence (acceptable but unusual)")
	}
	if res.Converged && res.Iterations < 2 {
		t.Errorf("converged after %d iterations, min is 2", res.Iterations)
	}
}

func TestSessionPrunesNeverPickedPoints(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 6, 8)
	pickedLastMajor := map[int]bool{}
	var dataSizeSecondIter int
	iter := 0
	cfg := Config{
		Support: 30, GridSize: 24, MaxMajorIterations: 2, MinMajorIterations: 2,
		OverlapThreshold: 1.01, // never converge; force both iterations
		Observer: Observer{
			OnProfile: func(p *VisualProfile, d Decision, picked []int) {
				if iter == 1 && p.Minor == 1 {
					dataSizeSecondIter = len(p.IDs)
				}
				if iter == 0 {
					for _, id := range picked {
						pickedLastMajor[id] = true
					}
				}
			},
			OnMajorIteration: func(i int, probs map[int]float64) { iter = i },
		},
	}
	s, err := NewSession(ds, q, alwaysTauUser(0.25), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dataSizeSecondIter == 0 {
		t.Skip("session ended before second iteration")
	}
	if dataSizeSecondIter != len(pickedLastMajor) {
		t.Errorf("second iteration has %d points, want %d (the ever-picked set)",
			dataSizeSecondIter, len(pickedLastMajor))
	}
}

func TestBuildProfileQueryOutsideGridClamped(t *testing.T) {
	ds, _ := clusteredDataset(t, 100, 20, 4, 9)
	// An extreme query far outside the data.
	q := linalg.Vector{1e6, 1e6, 1e6, 1e6}
	proj, err := linalg.AxisSubspace(4, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(ds, q, proj, 10, kde.Options{GridSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.QueryX > p.Grid.MaxX || p.QueryY > p.Grid.MaxY {
		t.Error("query not clamped onto grid")
	}
	if _, err := p.Region(0.1); err != nil {
		t.Errorf("region after clamping: %v", err)
	}
}

func TestProfilePeakRatio(t *testing.T) {
	ds, q := clusteredDataset(t, 400, 80, 4, 10)
	clusterProj, _ := linalg.AxisSubspace(4, []int{0, 1})
	p, err := BuildProfile(ds, linalg.Vector(q), clusterProj, 40, kde.Options{GridSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if p.PeakRatio() < 0.5 {
		t.Errorf("query on cluster peak has ratio %v", p.PeakRatio())
	}
}

func TestResultNaturalNeighbors(t *testing.T) {
	res := &Result{
		Probabilities: map[int]float64{1: 0.95, 2: 0.93, 3: 0.1, 4: 0.05},
		Diagnosis:     Diagnosis{Meaningful: true, NaturalSize: 2},
	}
	nat := res.NaturalNeighbors()
	if len(nat) != 2 || nat[0].ID != 1 || nat[1].ID != 2 {
		t.Errorf("natural = %+v", nat)
	}
	res.Diagnosis.Meaningful = false
	if res.NaturalNeighbors() != nil {
		t.Error("non-meaningful result returned natural neighbors")
	}
}

func TestSessionDeterministic(t *testing.T) {
	// Two identical sessions must produce identical results — the system
	// has no hidden randomness.
	ds, q := clusteredDataset(t, 400, 60, 8, 77)
	run := func() *Result {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 30, GridSize: 24, MaxMajorIterations: 2, Mode: ModeAxis,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Neighbors) != len(b.Neighbors) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Neighbors), len(b.Neighbors))
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a.Neighbors[i], b.Neighbors[i])
		}
	}
	if a.Diagnosis != b.Diagnosis {
		t.Errorf("diagnosis differs: %+v vs %+v", a.Diagnosis, b.Diagnosis)
	}
}

func TestZScoreCanonicalizesScale(t *testing.T) {
	// The session itself is scale-sensitive (candidate selection during
	// the projection refinement uses distances), which is why real data
	// should be normalized first. Z-scoring is an exact canonicalizer:
	// z(x·s) = z(x) per attribute, so sessions over z-scored originals
	// and z-scored rescalings must agree bit for bit.
	ds, q := clusteredDataset(t, 400, 60, 6, 91)
	scales := []float64{1000, 0.001, 7, 1, 42, 0.5}
	scaledRows := make([][]float64, ds.N())
	for i := range scaledRows {
		row := make([]float64, ds.Dim())
		for j, x := range ds.Point(i) {
			row[j] = x * scales[j]
		}
		scaledRows[i] = row
	}
	scaled, err := dataset.New(scaledRows, nil)
	if err != nil {
		t.Fatal(err)
	}
	qScaled := make([]float64, len(q))
	for j := range q {
		qScaled[j] = q[j] * scales[j]
	}

	run := func(d *dataset.Dataset, query []float64) []Neighbor {
		dd := d.Clone()
		tr := dd.NormalizeZScore()
		qq := tr.Applied(query)
		s, err := NewSession(dd, qq, alwaysTauUser(0.3), Config{
			Support: 30, GridSize: 24, MaxMajorIterations: 2, Mode: ModeAxis,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Neighbors
	}
	a := run(ds, q)
	b := run(scaled, qScaled)
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("rank %d differs after z-scoring: %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
}

func TestSessionStepAPI(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 6, 92)
	cfg := Config{Support: 30, GridSize: 16, MaxMajorIterations: 3,
		MinMajorIterations: 3, OverlapThreshold: 1.01, Mode: ModeAxis}
	s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		// Mid-session results are available.
		if r := s.Result(); r.Iterations != steps {
			t.Fatalf("mid-session iterations = %d after %d steps", r.Iterations, steps)
		}
		if done {
			break
		}
		if steps > 10 {
			t.Fatal("runaway session")
		}
	}
	if steps != 3 {
		t.Errorf("steps = %d, want 3 (cap)", steps)
	}
	// Further steps are no-ops.
	done, err := s.Step()
	if err != nil || !done {
		t.Errorf("post-termination Step = %v, %v", done, err)
	}
	if s.Result().Iterations != 3 {
		t.Errorf("iterations grew after termination")
	}
}

func TestSessionStepMatchesRun(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 6, 93)
	cfg := Config{Support: 30, GridSize: 16, MaxMajorIterations: 3, Mode: ModeAxis}
	s1, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := s2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	r2 := s2.Result()
	if len(r1.Neighbors) != len(r2.Neighbors) || r1.Iterations != r2.Iterations {
		t.Fatalf("step/run mismatch: %d/%d vs %d/%d",
			len(r1.Neighbors), r1.Iterations, len(r2.Neighbors), r2.Iterations)
	}
	for i := range r1.Neighbors {
		if r1.Neighbors[i] != r2.Neighbors[i] {
			t.Fatalf("rank %d differs", i)
		}
	}
}
