// Package core implements the paper's contribution: the interactive
// nearest-neighbor search system of Aggarwal (ICDE 2002). It contains the
// graded query-centered projection search (Figures 3–4), the visual
// profile construction (Figure 5), the density-separator interaction and
// preference-count update (Figures 6–7), the meaningfulness
// quantification (Figure 8, §3), and the top-level iterative session
// (Figure 2) together with the steep-drop diagnosis of §4.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
	"innsearch/internal/parallel"
)

// ErrDegenerateData is returned when a projection cannot be determined,
// e.g. the data has fewer than two dimensions of variation left.
var ErrDegenerateData = errors.New("core: degenerate data for projection search")

// nearestPositions returns the positions of the s points of ds closest to
// q under the projected distance Pdist(·, ·, sub). Both ds and q are in
// the current coordinate system (ambient dimension of sub). The projected
// distances are computed in parallel (each point writes its own slot, so
// the ranking is identical at any worker count); the sort stays serial.
func nearestPositions(ctx context.Context, workers int, ds *dataset.Dataset, q linalg.Vector, sub *linalg.Subspace, s int) ([]int, error) {
	n := ds.N()
	if s > n {
		s = n
	}
	type cand struct {
		pos  int
		dist float64
	}
	cands := make([]cand, n)
	qp := sub.Project(q)
	err := parallel.ForShards(ctx, workers, n, func(_ context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			cands[i] = cand{pos: i, dist: linalg.Vector(qp).Dist(sub.Project(ds.Point(i)))}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].pos < cands[b].pos
	})
	out := make([]int, s)
	for i := 0; i < s; i++ {
		out[i] = cands[i].pos
	}
	return out, nil
}

// clusterSubspace realizes QueryClusterSubspace (Figure 4): it returns the
// l-dimensional subspace of within in which the query cluster (the rows of
// ds at positions members) is best distinguished from the full data — the
// directions minimizing the variance ratio λᵢ/γᵢ between the cluster and
// the whole of ds.
//
// In the default mode the candidate directions are the principal
// components of the cluster's covariance matrix inside within; in
// axis-parallel mode they are within's own basis vectors (the original
// attributes), which matches the paper's interpretable variant.
func clusterSubspace(ctx context.Context, workers int, ds *dataset.Dataset, members []int, l int, within *linalg.Subspace, axisParallel bool) (*linalg.Subspace, error) {
	m := within.Dim()
	if l > m {
		return nil, fmt.Errorf("%w: want %d directions from a %d-dim subspace", ErrDegenerateData, l, m)
	}
	memberDS, err := ds.Subset(members)
	if err != nil {
		return nil, fmt.Errorf("core: cluster members: %w", err)
	}

	var directions []linalg.Vector
	if axisParallel {
		directions = within.Basis()
	} else {
		coords, err := within.ProjectRows(memberDS.Matrix())
		if err != nil {
			return nil, err
		}
		cov, err := coords.CovarianceContext(ctx, workers)
		if err != nil {
			return nil, fmt.Errorf("core: cluster covariance: %w", err)
		}
		eig, err := linalg.SymEigen(cov)
		if err != nil {
			return nil, fmt.Errorf("core: cluster covariance eigen: %w", err)
		}
		directions = make([]linalg.Vector, len(eig.Vectors))
		for i, v := range eig.Vectors {
			directions[i] = within.Lift(v)
		}
	}

	type scored struct {
		dir   linalg.Vector
		ratio float64
		order int
	}
	// Candidate-direction scoring is the per-stage hot spot (two O(n·d)
	// variance sweeps per direction); each direction writes its own slot,
	// so the scores — and everything ranked from them — are identical at
	// any worker count.
	scoredDirs := make([]scored, len(directions))
	err = parallel.For(ctx, workers, len(directions), func(_ context.Context, i int) error {
		dir := directions[i]
		lambda := memberDS.Matrix().VarianceAlong(dir)
		gamma := ds.Matrix().VarianceAlong(dir)
		var ratio float64
		switch {
		case gamma <= 1e-18:
			// No variation in the full data along this direction: it can
			// never discriminate anything, so rank it last.
			ratio = math.Inf(1)
		default:
			ratio = lambda / gamma
		}
		scoredDirs[i] = scored{dir: dir, ratio: ratio, order: i}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(scoredDirs, func(a, b int) bool { return scoredDirs[a].ratio < scoredDirs[b].ratio })

	span := make([]linalg.Vector, 0, l)
	for _, sd := range scoredDirs {
		if len(span) == l {
			break
		}
		span = append(span, sd.dir)
	}
	sub, err := linalg.NewSubspace(within.Ambient(), span)
	if err != nil {
		return nil, fmt.Errorf("core: span cluster subspace: %w", err)
	}
	return sub, nil
}

// ProjectionSearch configures FindQueryCenteredProjection.
type ProjectionSearch struct {
	// Support is the number s of nearest points treated as the candidate
	// query cluster at each refinement stage.
	Support int
	// AxisParallel selects original-attribute projections instead of
	// arbitrary (PCA-derived) ones.
	AxisParallel bool
	// Graded enables the paper's gradual dimensionality halving
	// (d → d/2 → … → 2). When false the 2-D subspace is picked in a
	// single step — the ablation baseline.
	Graded bool
	// StageFactor floors the per-stage candidate cluster at
	// StageFactor·(current subspace dimension) points, stabilizing the
	// variance-ratio estimates against overfitting (default 5). Set to 1
	// to reproduce the paper's literal pseudocode, which uses exactly
	// Support candidates at every stage.
	StageFactor int
	// Workers caps the number of goroutines used for distance and
	// variance-ratio evaluation; values ≤ 0 mean GOMAXPROCS. Results are
	// bit-identical at any worker count.
	Workers int
}

// FindQueryCenteredProjection realizes Figure 3: starting from the full
// current space of ds (whose coordinates are the current subspace E_c of
// the session), it alternately re-selects the s-nearest query cluster and
// shrinks the subspace around it, halving the dimensionality until a
// 2-dimensional projection E_proj remains. It returns that projection (a
// subspace of the current coordinate space).
func FindQueryCenteredProjection(ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch) (*linalg.Subspace, error) {
	return FindQueryCenteredProjectionDimContext(context.Background(), ds, q, cfg, 2)
}

// FindQueryCenteredProjectionContext is FindQueryCenteredProjection with
// cooperative cancellation: the graded refinement checks ctx between
// stages (and inside the parallel distance/variance sweeps) and returns
// the context's error once canceled.
func FindQueryCenteredProjectionContext(ctx context.Context, ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch) (*linalg.Subspace, error) {
	return FindQueryCenteredProjectionDimContext(ctx, ds, q, cfg, 2)
}

// FindQueryCenteredProjectionDim is FindQueryCenteredProjection with a
// configurable target dimensionality: the graded halving stops at target
// instead of 2. The visualizable target of the interactive system is 2;
// the automated projected-NN baseline may prefer wider subspaces.
func FindQueryCenteredProjectionDim(ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch, target int) (*linalg.Subspace, error) {
	return FindQueryCenteredProjectionDimContext(context.Background(), ds, q, cfg, target)
}

// FindQueryCenteredProjectionDimContext is FindQueryCenteredProjectionDim
// with cooperative cancellation (see FindQueryCenteredProjectionContext).
func FindQueryCenteredProjectionDimContext(ctx context.Context, ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch, target int) (*linalg.Subspace, error) {
	m := ds.Dim()
	if m < 2 {
		return nil, fmt.Errorf("%w: dimension %d", ErrDegenerateData, m)
	}
	if len(q) != m {
		return nil, fmt.Errorf("core: query dim %d, data dim %d", len(q), m)
	}
	if cfg.Support <= 0 {
		return nil, errors.New("core: support must be positive")
	}
	if target < 1 || target > m {
		return nil, fmt.Errorf("%w: target dim %d outside [1, %d]", ErrDegenerateData, target, m)
	}
	ep := linalg.FullSpace(m)
	if m == target {
		return ep, nil
	}
	lp := m
	for lp > target {
		next := lp / 2
		if next < target {
			next = target
		}
		if !cfg.Graded {
			next = target
		}
		// Variance-ratio estimation from s points in lp dimensions
		// overfits badly when s is close to lp (the sample covariance of
		// s ≈ lp points has spurious near-null directions that beat the
		// true cluster subspace). Floor the stage candidates at
		// StageFactor·lp; the user-facing support still controls what is
		// ultimately retrieved.
		factor := cfg.StageFactor
		if factor == 0 {
			factor = 5
		}
		stageSupport := cfg.Support
		if minStage := factor * lp; stageSupport < minStage {
			stageSupport = minStage
		}
		members, err := nearestPositions(ctx, cfg.Workers, ds, q, ep, stageSupport)
		if err != nil {
			return nil, err
		}
		sub, err := clusterSubspace(ctx, cfg.Workers, ds, members, next, ep, cfg.AxisParallel)
		if err != nil {
			return nil, err
		}
		ep = sub
		lp = next
	}
	return ep, nil
}

// DiscriminationScore quantifies how well the projection proj separates
// the query cluster from the rest of the data: 1 − mean(λᵢ/γᵢ) over the
// projection's directions, clamped to [0, 1], where the query cluster is
// the support nearest points to q in the data's full current space. A
// score near 1 means the query's full-space neighborhood stays tight
// when projected (a "good" query-centered projection à la Figure 1(a));
// near 0 means the neighborhood scatters like the rest of the data
// (Figure 1(c)). Measuring the cluster in the full space is essential:
// the nearest points *within* the projection are tight in any view, good
// or bad.
func DiscriminationScore(ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int) float64 {
	score, _ := discriminationScoreContext(context.Background(), 1, ds, q, proj, support)
	return score
}

// discriminationScoreContext is DiscriminationScore with cancellation and
// a worker count for the full-space neighbor scan.
func discriminationScoreContext(ctx context.Context, workers int, ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int) (float64, error) {
	members, err := nearestPositions(ctx, workers, ds, q, linalg.FullSpace(ds.Dim()), support)
	if err != nil {
		return 0, err
	}
	return discriminationOf(ds, members, proj), nil
}

// HoldoutDiscriminationScore scores proj on the second band of the
// query's full-space neighborhood — the points ranked support+1 … 2·support
// by full-space distance. A projection that was (explicitly or
// implicitly) optimized on the first band cannot inflate its score here
// unless it captures genuine structure that generalizes, which makes this
// the right statistic for comparing projection families of different
// expressive power (ModeAuto).
func HoldoutDiscriminationScore(ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int) float64 {
	all, err := nearestPositions(context.Background(), 1, ds, q, linalg.FullSpace(ds.Dim()), 2*support)
	if err != nil {
		return 0
	}
	if len(all) <= support {
		return discriminationOf(ds, all, proj)
	}
	return discriminationOf(ds, all[support:], proj)
}

func discriminationOf(ds *dataset.Dataset, members []int, proj *linalg.Subspace) float64 {
	memberDS, err := ds.Subset(members)
	if err != nil {
		return 0
	}
	var ratioSum float64
	dims := 0
	for i := 0; i < proj.Dim(); i++ {
		dir := proj.BasisVector(i)
		gamma := ds.Matrix().VarianceAlong(dir)
		if gamma <= 1e-18 {
			continue
		}
		ratioSum += memberDS.Matrix().VarianceAlong(dir) / gamma
		dims++
	}
	if dims == 0 {
		return 0
	}
	score := 1 - ratioSum/float64(dims)
	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}
