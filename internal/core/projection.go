// Package core implements the paper's contribution: the interactive
// nearest-neighbor search system of Aggarwal (ICDE 2002). It contains the
// graded query-centered projection search (Figures 3–4), the visual
// profile construction (Figure 5), the density-separator interaction and
// preference-count update (Figures 6–7), the meaningfulness
// quantification (Figure 8, §3), and the top-level iterative session
// (Figure 2) together with the steep-drop diagnosis of §4.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/linalg"
	"innsearch/internal/parallel"
	"innsearch/internal/shard"
	"innsearch/internal/telemetry"
)

// ErrDegenerateData is returned when a projection cannot be determined,
// e.g. the data has fewer than two dimensions of variation left.
var ErrDegenerateData = errors.New("core: degenerate data for projection search")

// cand is one candidate of a nearest-positions scan.
type cand struct {
	pos  int
	dist float64
}

// searchScratch holds per-session reusable buffers for the projection
// search's hot loops. A scratch is single-owner (the session's goroutine);
// the parallel passes that fill its buffers write index-owned slots only.
// Every element is overwritten before use, so reuse never changes results.
type searchScratch struct {
	cands  []cand
	coords []float64
}

// candBuf returns an n-element candidate buffer.
func (sc *searchScratch) candBuf(n int) []cand {
	if cap(sc.cands) < n {
		sc.cands = make([]cand, n)
	}
	return sc.cands[:n]
}

// floatBuf returns an n-element float buffer.
func (sc *searchScratch) floatBuf(n int) []float64 {
	if cap(sc.coords) < n {
		sc.coords = make([]float64, n)
	}
	return sc.coords[:n]
}

// nearestPositions returns the positions of the s points of v closest to
// q under the projected distance Pdist(·, ·, sub). Both v and q are in
// the current coordinate system (ambient dimension of sub). The projected
// distances are computed in parallel (each point writes its own slot, so
// the ranking is identical at any worker count); the bounded top-s
// selection stays serial. No per-point projection is materialized — each
// distance reads the view's row in place.
//
// When a candidate generator is configured (gen non-nil) and the scan is
// a full-space one (sub.Identity(), where projected distance IS plain L2
// over the rows), the backend prunes the store to a candidate set first
// and only the candidates are re-ranked with the engine's own metric and
// strict total order. An exact backend's candidate set contains the true
// top-s, so the re-ranked prefix is byte-identical to the full scan;
// approximate backends trade that guarantee for work (see index.Backend).
// Narrowed-subspace scans never consult the backend: its L2 ranking would
// be wrong there.
//
// With a shard coordinator (coord non-nil) the scan runs as per-shard
// top-s partials merged under the same strict order — the member set is
// exactly the full scan's, because every distance comes from the same
// kernel. The candidate-generator path likewise scatters over per-shard
// backends through the coordinator (see candGen.candidates).
//
// Beyond the ambient identity scan, the generator is also consulted when
// the whole scan resolves to an axis-aligned mask over an ancestor
// ambient view (axisScanRoute): backends implementing index.AxisSearcher
// serve those scans over the ancestor's rows directly, so the index built
// (or derived) once per view generation is reused across the projection
// stages instead of being rebuilt per composed frame. Scans that resolve
// to no route — arbitrary-direction frames — run the exact kernels with
// no index at all, which is strictly cheaper than building one that
// cannot be consulted.
func nearestPositions(ctx context.Context, workers int, v *dataset.View, q linalg.Vector, sub *linalg.Subspace, s int, scr *searchScratch, gen *candGen, coord *shard.Coordinator) ([]int, error) {
	n := v.N()
	if s < 0 {
		s = 0
	}
	if s > n {
		s = n
	}
	qp := sub.Project(q)
	if gen != nil && s > 0 && s < n {
		var idxCands []index.Candidate
		var err error
		if base, _ := v.Base(); sub.Identity() && base == nil {
			// Ambient full-space scan: the backend's L2 ranking is the
			// engine's ranking.
			idxCands, err = gen.candidates(ctx, v, q, s)
		} else if gen.supportsAxis() {
			if origin, axes, ok := axisScanRoute(v, sub); ok {
				// qp is the query in the scanned subspace's coordinates —
				// exactly the coordinates KNNAxis measures along axes.
				idxCands, err = gen.candidatesAxis(ctx, origin, qp, axes, s)
			}
		}
		if err != nil {
			return nil, err
		}
		if len(idxCands) >= s {
			cands := scr.candBuf(n)[:len(idxCands)]
			for i, c := range idxCands {
				cands[i] = cand{pos: c.Pos, dist: sub.ProjDistTo(qp, v.Point(c.Pos))}
			}
			selectNearest(cands, s)
			out := make([]int, s)
			for i := 0; i < s; i++ {
				out[i] = cands[i].pos
			}
			return out, nil
		}
		// A backend returning fewer than s candidates falls through to the
		// exact scan rather than silently shrinking the support.
	}
	if coord != nil {
		cs, err := coord.Nearest(ctx, v, sub, qp, s)
		if err != nil {
			return nil, err
		}
		out := make([]int, len(cs))
		for i, c := range cs {
			out[i] = c.Pos
		}
		return out, nil
	}
	cands := scr.candBuf(n)
	err := parallel.ForShards(ctx, workers, n, func(_ context.Context, _, lo, hi int) error {
		for i := lo; i < hi; i++ {
			cands[i] = cand{pos: i, dist: sub.ProjDistTo(qp, v.Point(i))}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	selectNearest(cands, s)
	out := make([]int, s)
	for i := 0; i < s; i++ {
		out[i] = cands[i].pos
	}
	return out, nil
}

// axisScanRoute resolves a projected-subspace scan to an equivalent
// axis-mask scan over an ancestor ambient view: when sub is axis-aligned
// within v's coordinate frame AND every projection on v's composition
// chain is itself axis-aligned, the scanned directions compose to a mask
// of the ancestor's original attributes. origin is the deepest ambient
// view of the chain (positions in v and origin coincide — Compose
// preserves row order) and axes[j] is the origin attribute behind sub's
// j-th basis vector, so a backend's KNNAxis over (origin, axes) measures
// exactly the engine's projected distance. Any arbitrary-direction hop
// makes the scan unroutable (ok false): those frames re-coordinatize the
// data and no fixed index can serve them.
func axisScanRoute(v *dataset.View, sub *linalg.Subspace) (origin *dataset.View, axes []int, ok bool) {
	axes0, ok := sub.AxisIndices()
	if !ok {
		return nil, nil, false
	}
	axes = make([]int, len(axes0))
	copy(axes, axes0)
	for cur := v; ; {
		base, proj := cur.Base()
		if base == nil {
			return cur, axes, true
		}
		paxes, pok := proj.AxisIndices()
		if !pok {
			return nil, nil, false
		}
		for i, a := range axes {
			axes[i] = paxes[a]
		}
		cur = base
	}
}

// candLess is the scan's strict total order: ascending distance with
// ascending-position tie-breaks. Positions are distinct, so any two
// candidates compare unequal — which is what makes every correct top-s
// selection produce exactly the prefix a full sort would.
func candLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.pos < b.pos
}

// siftDown restores the max-heap property (candLess-greatest at the root)
// for the subtree rooted at i over h[:n].
func siftDown(h []cand, i, n int) {
	for {
		kid := 2*i + 1
		if kid >= n {
			return
		}
		if r := kid + 1; r < n && candLess(h[kid], h[r]) {
			kid = r
		}
		if !candLess(h[i], h[kid]) {
			return
		}
		h[i], h[kid] = h[kid], h[i]
		i = kid
	}
}

// selectNearest reorders cands so that cands[:s] holds the s smallest
// candidates under candLess in ascending order — byte-identical to the
// prefix of a full sort, found in O(n log s) with a bounded max-heap
// instead of the former O(n log n) sort.Slice over all n candidates.
func selectNearest(cands []cand, s int) {
	n := len(cands)
	if s <= 0 {
		return
	}
	if s > n {
		s = n
	}
	h := cands[:s]
	for i := s/2 - 1; i >= 0; i-- {
		siftDown(h, i, s)
	}
	for i := s; i < n; i++ {
		if candLess(cands[i], h[0]) {
			h[0], cands[i] = cands[i], h[0]
			siftDown(h, 0, s)
		}
	}
	// Heap-sort the surviving s into ascending candLess order.
	for end := s - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h, 0, end)
	}
}

// varianceAlongUnit replicates linalg.Matrix.VarianceAlong over the rows
// of v at the given positions (all rows when positions is nil), for a
// direction the caller has already normalized: same accumulation order,
// same bits, without materializing a member subset or cloning the
// direction per sweep.
func varianceAlongUnit(v *dataset.View, positions []int, u linalg.Vector) float64 {
	n := len(positions)
	if positions == nil {
		n = v.N()
	}
	if n < 2 {
		return 0
	}
	var sum, sumSq float64
	if positions == nil {
		for i := 0; i < n; i++ {
			p := v.Point(i).Dot(u)
			sum += p
			sumSq += p * p
		}
	} else {
		for _, pos := range positions {
			p := v.Point(pos).Dot(u)
			sum += p
			sumSq += p * p
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 { // numeric noise
		variance = 0
	}
	return variance
}

// clusterSubspace realizes QueryClusterSubspace (Figure 4): it returns the
// l-dimensional subspace of within in which the query cluster (the rows of
// v at positions members) is best distinguished from the full data — the
// directions minimizing the variance ratio λᵢ/γᵢ between the cluster and
// the whole of v.
//
// In the default mode the candidate directions are the principal
// components of the cluster's covariance matrix inside within; in
// axis-parallel mode they are within's own basis vectors (the original
// attributes), which matches the paper's interpretable variant.
//
// Scoring runs in one of two modes. The default fast path reads γᵢ off
// the view's memoized covariance as the quadratic form uᵀΣu and λᵢ off
// moments already in hand (the eigenvalues of the member covariance in
// PCA mode; one pass of member column variances in axis mode), so no
// per-direction O(n·d) data sweep remains. cfg.Exact restores the
// reference sweeps of Matrix.VarianceAlong bit for bit; the two agree to
// ≤ 1e-10 relative (pinned by tests).
func clusterSubspace(ctx context.Context, cfg ProjectionSearch, v *dataset.View, members []int, l int, within *linalg.Subspace, scr *searchScratch) (*linalg.Subspace, error) {
	workers := cfg.Workers
	m := within.Dim()
	if l > m {
		return nil, fmt.Errorf("%w: want %d directions from a %d-dim subspace", ErrDegenerateData, l, m)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("core: cluster members: %w", dataset.ErrEmpty)
	}
	for _, pos := range members {
		if pos < 0 || pos >= v.N() {
			return nil, fmt.Errorf("core: cluster members: position %d out of range [0,%d)", pos, v.N())
		}
	}

	// fullCov is the fast path's Σ of the whole view, memoized on the view
	// and shared by every stage, minor iteration, and projection family
	// that scores directions in this coordinate system. With a shard
	// coordinator the moments come from the scattered two-pass kernels
	// (merged in shard order) instead of the view's own single pass.
	var fullCov *linalg.Matrix
	if !cfg.Exact {
		var st *dataset.ViewStats
		var err error
		if cfg.coord != nil {
			st, err = cfg.coord.Stats(ctx, v)
		} else {
			st, err = v.Stats(ctx, workers)
		}
		if err != nil {
			return nil, fmt.Errorf("core: view stats: %w", err)
		}
		fullCov = st.Cov
	}

	memberRow := func(k int) linalg.Vector { return v.Point(members[k]) }

	var directions []linalg.Vector
	// fastLambda, in fast mode, carries the member variance along
	// directions[i] without a data sweep; see the mode notes above.
	var fastLambda []float64
	if cfg.AxisParallel {
		directions = within.Basis()
		if !cfg.Exact {
			// Member coordinates inside within via the blocked kernel (a
			// strided gather whenever within is axis-aligned, which it is
			// for the whole of axis mode); λⱼ is the variance of column j.
			coords := &linalg.Matrix{Rows: len(members), Cols: m, Data: scr.floatBuf(len(members) * m)}
			if err := within.ProjectRowsInto(ctx, workers, coords, len(members), memberRow); err != nil {
				return nil, err
			}
			fastLambda = coords.ColumnVariances()
		}
	} else {
		// Member coordinates inside within, written directly from the view
		// rows by the blocked kernel — no member-subset dataset is
		// materialized, and the per-entry accumulation order matches the
		// former row.Dot loop bit for bit. The backing buffer is scratch:
		// every cell is written, and covariance does not retain it.
		coords := &linalg.Matrix{Rows: len(members), Cols: m, Data: scr.floatBuf(len(members) * m)}
		if err := within.ProjectRowsInto(ctx, workers, coords, len(members), memberRow); err != nil {
			return nil, err
		}
		cov, err := coords.CovarianceContext(ctx, workers)
		if err != nil {
			return nil, fmt.Errorf("core: cluster covariance: %w", err)
		}
		eig, err := linalg.SymEigen(cov)
		if err != nil {
			return nil, fmt.Errorf("core: cluster covariance eigen: %w", err)
		}
		directions = make([]linalg.Vector, len(eig.Vectors))
		for i, ev := range eig.Vectors {
			directions[i] = within.Lift(ev)
		}
		if !cfg.Exact {
			// λᵢ is exactly the i-th eigenvalue: the member variance along
			// eigenvector i of the member covariance. Clamp eigensolver
			// noise at zero like every variance path does.
			fastLambda = make([]float64, len(eig.Values))
			for i, val := range eig.Values {
				if val < 0 {
					val = 0
				}
				fastLambda[i] = val
			}
		}
	}

	type scored struct {
		dir   linalg.Vector
		ratio float64
		order int
	}
	// Candidate-direction scoring was the per-stage hot spot (two O(n·d)
	// variance sweeps per direction); the fast path replaces both sweeps
	// with O(d²) work per direction. Each direction writes its own slot,
	// so the scores — and everything ranked from them — are identical at
	// any worker count. The direction is normalized once and shared.
	scoredDirs := make([]scored, len(directions))
	err := parallel.For(ctx, workers, len(directions), func(_ context.Context, i int) error {
		dir := directions[i]
		u := dir.Clone()
		var lambda, gamma float64
		if u.Normalize() != 0 {
			if cfg.Exact {
				lambda = varianceAlongUnit(v, members, u)
				gamma = varianceAlongUnit(v, nil, u)
			} else {
				lambda = fastLambda[i]
				gamma = fullCov.QuadForm(u)
				if gamma < 0 { // numeric noise, like the sweep's clamp
					gamma = 0
				}
			}
		}
		var ratio float64
		switch {
		case gamma <= 1e-18:
			// No variation in the full data along this direction: it can
			// never discriminate anything, so rank it last.
			ratio = math.Inf(1)
		default:
			ratio = lambda / gamma
		}
		scoredDirs[i] = scored{dir: dir, ratio: ratio, order: i}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(scoredDirs, func(a, b int) bool { return scoredDirs[a].ratio < scoredDirs[b].ratio })

	span := make([]linalg.Vector, 0, l)
	for _, sd := range scoredDirs {
		if len(span) == l {
			break
		}
		span = append(span, sd.dir)
	}
	sub, err := linalg.NewSubspace(within.Ambient(), span)
	if err != nil {
		return nil, fmt.Errorf("core: span cluster subspace: %w", err)
	}
	return sub, nil
}

// ProjectionSearch configures FindQueryCenteredProjection.
type ProjectionSearch struct {
	// Support is the number s of nearest points treated as the candidate
	// query cluster at each refinement stage.
	Support int
	// AxisParallel selects original-attribute projections instead of
	// arbitrary (PCA-derived) ones.
	AxisParallel bool
	// Graded enables the paper's gradual dimensionality halving
	// (d → d/2 → … → 2). When false the 2-D subspace is picked in a
	// single step — the ablation baseline.
	Graded bool
	// StageFactor floors the per-stage candidate cluster at
	// StageFactor·(current subspace dimension) points, stabilizing the
	// variance-ratio estimates against overfitting (default 5). Set to 1
	// to reproduce the paper's literal pseudocode, which uses exactly
	// Support candidates at every stage.
	StageFactor int
	// Workers caps the number of goroutines used for distance and
	// variance-ratio evaluation; values ≤ 0 mean GOMAXPROCS. Results are
	// bit-identical at any worker count.
	Workers int
	// Exact disables the covariance-memoization fast path and scores every
	// candidate direction with the reference O(n·d) variance sweeps
	// (mirroring kde's exact/binned split). The fast path agrees with the
	// exact sweeps to ≤ 1e-10 relative on the variance values and selects
	// identical projections on the golden sessions; Exact exists as the
	// reference for those tests and as an escape hatch for pathological
	// data. Off (fast) by default.
	Exact bool

	// trace, when non-nil, carries the owning session's tracer context so
	// findProjectionDim can emit one projection_stage event per halving
	// stage. Sessions set it; standalone callers get no stage events.
	trace *stageTrace

	// gen, when non-nil, is the owning session's candidate-generation
	// backend (Config.Index), consulted by the full-space nearest-s scans.
	// Sessions set it; standalone callers keep the exact full scan.
	gen *candGen

	// coord, when non-nil, is the owning session's shard coordinator
	// (Config.Shards): top-s scans and view moments run as scattered
	// partials merged in shard order. Sessions set it; standalone callers
	// keep the single-partition kernels.
	coord *shard.Coordinator
}

// stageTrace is the session context a projection search stamps onto its
// per-stage telemetry events. span is the enclosing view's /proj span;
// each halving stage opens a /d{dim} child under it and re-parents the
// coordinator's scatters there for the stage's duration.
type stageTrace struct {
	tr           tracer
	major, minor int
	family       string
	span         string
}

// FindQueryCenteredProjection realizes Figure 3: starting from the full
// current space of ds (whose coordinates are the current subspace E_c of
// the session), it alternately re-selects the s-nearest query cluster and
// shrinks the subspace around it, halving the dimensionality until a
// 2-dimensional projection E_proj remains. It returns that projection (a
// subspace of the current coordinate space).
func FindQueryCenteredProjection(ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch) (*linalg.Subspace, error) {
	return findProjectionDim(context.Background(), ds.View(), q, cfg, 2, &searchScratch{})
}

// FindQueryCenteredProjectionContext is FindQueryCenteredProjection with
// cooperative cancellation: the graded refinement checks ctx between
// stages (and inside the parallel distance/variance sweeps) and returns
// the context's error once canceled.
func FindQueryCenteredProjectionContext(ctx context.Context, ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch) (*linalg.Subspace, error) {
	return findProjectionDim(ctx, ds.View(), q, cfg, 2, &searchScratch{})
}

// FindQueryCenteredProjectionDim is FindQueryCenteredProjection with a
// configurable target dimensionality: the graded halving stops at target
// instead of 2. The visualizable target of the interactive system is 2;
// the automated projected-NN baseline may prefer wider subspaces.
func FindQueryCenteredProjectionDim(ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch, target int) (*linalg.Subspace, error) {
	return findProjectionDim(context.Background(), ds.View(), q, cfg, target, &searchScratch{})
}

// FindQueryCenteredProjectionDimContext is FindQueryCenteredProjectionDim
// with cooperative cancellation (see FindQueryCenteredProjectionContext).
func FindQueryCenteredProjectionDimContext(ctx context.Context, ds *dataset.Dataset, q linalg.Vector, cfg ProjectionSearch, target int) (*linalg.Subspace, error) {
	return findProjectionDim(ctx, ds.View(), q, cfg, target, &searchScratch{})
}

// findProjectionDim is the view-level implementation behind the
// FindQueryCenteredProjection family; sessions call it directly on their
// narrowed views.
func findProjectionDim(ctx context.Context, v *dataset.View, q linalg.Vector, cfg ProjectionSearch, target int, scr *searchScratch) (*linalg.Subspace, error) {
	m := v.Dim()
	if m < 2 {
		return nil, fmt.Errorf("%w: dimension %d", ErrDegenerateData, m)
	}
	if len(q) != m {
		return nil, fmt.Errorf("core: query dim %d, data dim %d", len(q), m)
	}
	if cfg.Support <= 0 {
		return nil, errors.New("core: support must be positive")
	}
	if target < 1 || target > m {
		return nil, fmt.Errorf("%w: target dim %d outside [1, %d]", ErrDegenerateData, target, m)
	}
	ep := linalg.FullSpace(m)
	if m == target {
		return ep, nil
	}
	lp := m
	for lp > target {
		next := lp / 2
		if next < target {
			next = target
		}
		if !cfg.Graded {
			next = target
		}
		// Variance-ratio estimation from s points in lp dimensions
		// overfits badly when s is close to lp (the sample covariance of
		// s ≈ lp points has spurious near-null directions that beat the
		// true cluster subspace). Floor the stage candidates at
		// StageFactor·lp; the user-facing support still controls what is
		// ultimately retrieved.
		factor := cfg.StageFactor
		if factor == 0 {
			factor = 5
		}
		stageSupport := cfg.Support
		if minStage := factor * lp; stageSupport < minStage {
			stageSupport = minStage
		}
		var t0 time.Time
		var stageSpan string
		tracing := cfg.trace != nil && cfg.trace.tr.enabled()
		if tracing {
			t0 = cfg.trace.tr.now()
			stageSpan = cfg.trace.span + "/d" + strconv.Itoa(next)
			if cfg.coord != nil {
				cfg.coord.SetSpan(stageSpan)
			}
			if cfg.gen != nil {
				cfg.gen.span = stageSpan
			}
		}
		members, err := nearestPositions(ctx, cfg.Workers, v, q, ep, stageSupport, scr, cfg.gen, cfg.coord)
		if err != nil {
			return nil, err
		}
		sub, err := clusterSubspace(ctx, cfg, v, members, next, ep, scr)
		if err != nil {
			return nil, err
		}
		if tracing {
			cfg.trace.tr.emit(telemetry.Event{
				Time:       t0,
				Type:       telemetry.EventProjectionStage,
				Major:      cfg.trace.major,
				Minor:      cfg.trace.minor,
				Family:     cfg.trace.family,
				N:          v.N(),
				Dim:        next,
				DurationMS: cfg.trace.tr.since(t0),
				Span:       stageSpan,
				Parent:     cfg.trace.span,
			})
		}
		ep = sub
		lp = next
	}
	return ep, nil
}

// DiscriminationScore quantifies how well the projection proj separates
// the query cluster from the rest of the data: 1 − mean(λᵢ/γᵢ) over the
// projection's directions, clamped to [0, 1], where the query cluster is
// the support nearest points to q in the data's full current space. A
// score near 1 means the query's full-space neighborhood stays tight
// when projected (a "good" query-centered projection à la Figure 1(a));
// near 0 means the neighborhood scatters like the rest of the data
// (Figure 1(c)). Measuring the cluster in the full space is essential:
// the nearest points *within* the projection are tight in any view, good
// or bad.
func DiscriminationScore(ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int) float64 {
	score, _ := discriminationScoreContext(context.Background(), 1, ds.View(), q, proj, support, &searchScratch{}, nil, nil)
	return score
}

// discriminationScoreContext is DiscriminationScore with cancellation, a
// worker count for the full-space neighbor scan, and an optional
// candidate generator pruning that scan.
func discriminationScoreContext(ctx context.Context, workers int, v *dataset.View, q linalg.Vector, proj *linalg.Subspace, support int, scr *searchScratch, gen *candGen, coord *shard.Coordinator) (float64, error) {
	members, err := nearestPositions(ctx, workers, v, q, linalg.FullSpace(v.Dim()), support, scr, gen, coord)
	if err != nil {
		return 0, err
	}
	return discriminationOf(v, members, proj), nil
}

// HoldoutDiscriminationScore scores proj on the second band of the
// query's full-space neighborhood — the points ranked support+1 … 2·support
// by full-space distance. A projection that was (explicitly or
// implicitly) optimized on the first band cannot inflate its score here
// unless it captures genuine structure that generalizes, which makes this
// the right statistic for comparing projection families of different
// expressive power (ModeAuto).
func HoldoutDiscriminationScore(ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int) float64 {
	v := ds.View()
	all, err := nearestPositions(context.Background(), 1, v, q, linalg.FullSpace(v.Dim()), 2*support, &searchScratch{}, nil, nil)
	if err != nil {
		return 0
	}
	if len(all) <= support {
		return discriminationOf(v, all, proj)
	}
	return discriminationOf(v, all[support:], proj)
}

// discriminationOf computes the clamped 1 − mean(λᵢ/γᵢ) score for an
// explicit member set, reading the view in place. Each direction is
// normalized once and reused for both variance sweeps, exactly as
// VarianceAlong would normalize it internally.
func discriminationOf(v *dataset.View, members []int, proj *linalg.Subspace) float64 {
	if len(members) == 0 {
		return 0
	}
	var ratioSum float64
	dims := 0
	for i := 0; i < proj.Dim(); i++ {
		u := proj.BasisVector(i).Clone()
		if u.Normalize() == 0 {
			continue
		}
		gamma := varianceAlongUnit(v, nil, u)
		if gamma <= 1e-18 {
			continue
		}
		ratioSum += varianceAlongUnit(v, members, u) / gamma
		dims++
	}
	if dims == 0 {
		return 0
	}
	score := 1 - ratioSum/float64(dims)
	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}
