package core

import (
	"context"
	"fmt"

	"innsearch/internal/dataset"
	"innsearch/internal/grid"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
	"innsearch/internal/shard"
)

// VisualProfile is everything the user sees for one query-centered
// projection (one minor iteration): the kernel density grid over the 2-D
// projection, the query's position and density in it, the projected data
// coordinates (for lateral scatter plots), and the projection's
// discrimination score.
type VisualProfile struct {
	// Major and Minor are 1-based iteration counters.
	Major, Minor int
	// Grid is the p×p kernel density estimate of the projected data.
	Grid *kde.Grid
	// QueryX, QueryY locate the query point in the projection.
	QueryX, QueryY float64
	// QueryDensity is the (bilinearly interpolated) density at the query.
	QueryDensity float64
	// Points holds the n×2 projected coordinates of the current data.
	Points *linalg.Matrix
	// IDs holds the original row ID of each row of Points.
	IDs []int
	// Projection is the 2-D subspace (in current session coordinates).
	Projection *linalg.Subspace
	// Discrimination is the query-cluster/rest variance-ratio score in
	// [0, 1]; higher means the projection distinguishes the query
	// cluster better (see DiscriminationScore).
	Discrimination float64
	// RemainingDim is the dimensionality of the session's current
	// subspace E_c from which this projection was drawn.
	RemainingDim int
	// OriginalN is the size of the dataset the session started from.
	// Points are pruned across major iterations, so judgements like
	// "this selection covers most of the data" must anchor here rather
	// than at len(IDs): once pruning has concentrated the data around
	// the query, the true cluster often IS the majority of what's left.
	OriginalN int
}

// PeakRatio returns the query density relative to the grid's maximum
// density — a cheap measure of whether the query sits on a density peak
// (Figure 9(a)) or in a sparse region (Figure 9(b)).
func (p *VisualProfile) PeakRatio() float64 {
	mx := p.Grid.MaxDensity()
	if mx <= 0 {
		return 0
	}
	return p.QueryDensity / mx
}

// Region returns the density-connected query region R(τ, Q) this profile
// induces at noise threshold tau — the density-separated view of
// Figure 6. Implementations of User call this (directly or through the
// session's preview callback) while adjusting the separator.
func (p *VisualProfile) Region(tau float64) (*grid.Region, error) {
	return grid.FindRegion(p.Grid, p.QueryX, p.QueryY, tau)
}

// SelectAt returns the positions (rows of the current data) inside
// R(τ, Q) at the given threshold, i.e. the user preference set a
// threshold would produce.
func (p *VisualProfile) SelectAt(tau float64) ([]int, error) {
	return p.SelectAtContext(context.Background(), 1, tau)
}

// SelectAtContext is SelectAt with cooperative cancellation and a worker
// count (≤ 0 means GOMAXPROCS) for the per-point membership pass. The
// selection is identical at any worker count.
func (p *VisualProfile) SelectAtContext(ctx context.Context, workers int, tau float64) ([]int, error) {
	pos, _, err := p.selectAtRegion(ctx, workers, tau)
	return pos, err
}

// selectAtRegion is SelectAtContext exposing the region it computed, so
// the session's select trace events can report region statistics (member
// cells, rectangles examined) without a second breadth-first search.
func (p *VisualProfile) selectAtRegion(ctx context.Context, workers int, tau float64) ([]int, *grid.Region, error) {
	reg, err := p.Region(tau)
	if err != nil {
		return nil, nil, err
	}
	pos, err := reg.SelectSourceContext(ctx, workers, kde.MatrixXY{M: p.Points})
	if err != nil {
		return nil, nil, err
	}
	return pos, reg, nil
}

// Decision is the user's answer to one visual profile: either skip the
// projection (the paper's "arbitrarily high noise threshold"), place the
// density separator at Tau, or — the paper's alternative interaction —
// draw separating Lines on the lateral plot, selecting the polygonal
// region containing the query. When Lines is non-empty it takes
// precedence over Tau.
type Decision struct {
	Skip   bool
	Tau    float64
	Lines  []grid.Line
	Weight float64 // 0 is treated as 1
	// Confidence optionally grades how sure the user is of this
	// separation, in [0, 1]. It is used only to referee ModeAuto's
	// projection-family contest; 0 means unspecified.
	Confidence float64
}

// SelectLines returns the positions of the current data points in the
// same polygonal region as the query under the given separating lines.
func (p *VisualProfile) SelectLines(lines []grid.Line) ([]int, error) {
	return grid.PolygonSelectSource(kde.MatrixXY{M: p.Points}, p.QueryX, p.QueryY, lines)
}

// User supplies the human side of the interaction: given a visual
// profile, position the density separator. The preview function renders
// the density-separated view for a candidate τ (Figure 6's interactive
// loop); it returns nil only if the query fell outside the grid, which
// cannot happen for profiles built by the session.
type User interface {
	SeparateCluster(p *VisualProfile, preview func(tau float64) *grid.Region) Decision
}

// UserFunc adapts a function to the User interface.
type UserFunc func(p *VisualProfile, preview func(tau float64) *grid.Region) Decision

// SeparateCluster implements User.
func (f UserFunc) SeparateCluster(p *VisualProfile, preview func(tau float64) *grid.Region) Decision {
	return f(p, preview)
}

// BuildProfile projects the current data and query onto proj, estimates
// the kernel density on a p×p grid (Figure 5), and assembles the visual
// profile shown to the user.
func BuildProfile(ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int, opts kde.Options) (*VisualProfile, error) {
	return BuildProfileContext(context.Background(), ds, q, proj, support, opts)
}

// BuildProfileContext is BuildProfile with cooperative cancellation: the
// density-grid evaluation and the discrimination scan abort between row
// shards once ctx is canceled. Parallelism is controlled by opts.Workers.
func BuildProfileContext(ctx context.Context, ds *dataset.Dataset, q linalg.Vector, proj *linalg.Subspace, support int, opts kde.Options) (*VisualProfile, error) {
	return buildProfile(ctx, ds.View(), q, proj, support, opts, &searchScratch{}, nil, nil)
}

// buildProfile is the view-level implementation behind BuildProfile;
// sessions call it directly on their narrowed views. The projected
// coordinates come from composing the projection onto the view — the same
// float-operation order as the eager ProjectRows path, materialized once
// and shared by the density estimate, the selection passes, and the
// profile's Points field.
func buildProfile(ctx context.Context, v *dataset.View, q linalg.Vector, proj *linalg.Subspace, support int, opts kde.Options, scr *searchScratch, gen *candGen, coord *shard.Coordinator) (*VisualProfile, error) {
	pv, err := v.Compose(proj)
	if err != nil {
		return nil, fmt.Errorf("core: project data: %w", err)
	}
	pts := pv.Coords()
	qp := proj.Project(q)
	var g *kde.Grid
	if coord != nil {
		// Sharded sessions scatter the density partials (extent, spread,
		// lattice) over the coordinator and merge in shard order.
		g, err = coord.Estimate2D(ctx, kde.MatrixXY{M: pts}, opts)
	} else {
		g, err = kde.Estimate2DContext(ctx, pts, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: density estimate: %w", err)
	}
	// The grid covers the data extent plus margins; a query outside it
	// (possible when the query is an extreme outlier) is clamped onto
	// the boundary so the density-connectivity search stays anchored.
	qx, qy := qp[0], qp[1]
	if qx < g.MinX {
		qx = g.MinX
	}
	if qx > g.MaxX {
		qx = g.MaxX
	}
	if qy < g.MinY {
		qy = g.MinY
	}
	if qy > g.MaxY {
		qy = g.MaxY
	}
	disc, err := discriminationScoreContext(ctx, opts.Workers, v, q, proj, support, scr, gen, coord)
	if err != nil {
		return nil, err
	}
	return &VisualProfile{
		Grid:           g,
		QueryX:         qx,
		QueryY:         qy,
		QueryDensity:   g.InterpAt(qx, qy),
		Points:         pts,
		IDs:            v.IDs(),
		Projection:     proj,
		Discrimination: disc,
		RemainingDim:   v.Dim(),
		OriginalN:      v.N(),
	}, nil
}
