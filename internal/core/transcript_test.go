package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestTranscriptRecordsSession(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 6, 41)
	tr, obs := NewTranscript(true)
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		Support: 30, GridSize: 16, MaxMajorIterations: 2, Mode: ModeAxis,
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Views) != res.ViewsShown {
		t.Fatalf("transcript has %d views, session showed %d", len(tr.Views), res.ViewsShown)
	}
	if tr.Iterations != res.Iterations {
		t.Errorf("transcript iterations %d, session %d", tr.Iterations, res.Iterations)
	}
	answered := 0
	for _, v := range tr.Views {
		if !v.Skipped {
			answered++
			if v.Tau <= 0 {
				t.Errorf("answered view without τ: %+v", v)
			}
			if v.PickedCount != len(v.PickedIDs) {
				t.Errorf("picked count %d vs ids %d", v.PickedCount, len(v.PickedIDs))
			}
		}
	}
	if answered != res.ViewsAnswered {
		t.Errorf("transcript answered %d, session %d", answered, res.ViewsAnswered)
	}
}

func TestTranscriptJSONRoundTrip(t *testing.T) {
	ds, q := clusteredDataset(t, 200, 30, 4, 42)
	tr, obs := NewTranscript(false)
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		Support: 20, GridSize: 16, MaxMajorIterations: 1, Mode: ModeAxis, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTranscript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Views) != len(tr.Views) {
		t.Fatalf("round trip views %d, want %d", len(back.Views), len(tr.Views))
	}
	for i := range back.Views {
		a, b := back.Views[i], tr.Views[i]
		if a.Major != b.Major || a.Minor != b.Minor || a.Skipped != b.Skipped ||
			a.Tau != b.Tau || a.PickedCount != b.PickedCount || a.DataSize != b.DataSize {
			t.Fatalf("view %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// Without keepPickedIDs, no IDs are stored.
	for _, v := range back.Views {
		if len(v.PickedIDs) != 0 {
			t.Error("picked IDs stored despite keepPickedIDs=false")
		}
	}
	// File round trip.
	path := filepath.Join(t.TempDir(), "tr.json")
	if err := tr.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
}

func TestTranscriptReplayReproducesSession(t *testing.T) {
	ds, q := clusteredDataset(t, 400, 50, 6, 43)
	tr, obs := NewTranscript(false)
	cfg := Config{Support: 30, GridSize: 16, MaxMajorIterations: 2, Mode: ModeAxis}
	cfgRec := cfg
	cfgRec.Observer = obs
	s1, err := NewSession(ds, q, alwaysTauUser(0.3), cfgRec)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}

	s2, err := NewSession(ds, q, &ReplayUser{Transcript: tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Neighbors) != len(res2.Neighbors) {
		t.Fatalf("replay produced %d neighbors, original %d", len(res2.Neighbors), len(res1.Neighbors))
	}
	for i := range res1.Neighbors {
		if res1.Neighbors[i] != res2.Neighbors[i] {
			t.Fatalf("replay diverged at rank %d: %+v vs %+v",
				i, res2.Neighbors[i], res1.Neighbors[i])
		}
	}
	if res1.Diagnosis != res2.Diagnosis {
		t.Errorf("diagnosis differs: %+v vs %+v", res2.Diagnosis, res1.Diagnosis)
	}
}
