package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"innsearch/internal/grid"
)

// Transcript records everything that happened during a session — each
// view shown, the user's decision, and what it selected — so an
// interactive search is auditable and replayable. Attach one via
// NewTranscript before running; persist with WriteJSON.
type Transcript struct {
	// Views are in presentation order.
	Views []TranscriptView `json:"views"`
	// Iterations is the number of completed major iterations.
	Iterations int `json:"iterations"`
}

// TranscriptView is one recorded minor iteration.
type TranscriptView struct {
	Major          int     `json:"major"`
	Minor          int     `json:"minor"`
	RemainingDim   int     `json:"remaining_dim"`
	Discrimination float64 `json:"discrimination"`
	PeakRatio      float64 `json:"peak_ratio"`
	QueryDensity   float64 `json:"query_density"`
	Skipped        bool    `json:"skipped"`
	Tau            float64 `json:"tau,omitempty"`
	Lines          int     `json:"lines,omitempty"`
	Weight         float64 `json:"weight,omitempty"`
	PickedCount    int     `json:"picked_count"`
	PickedIDs      []int   `json:"picked_ids,omitempty"`
	// DataSize is the number of points still in play when the view was
	// shown.
	DataSize int `json:"data_size"`
}

// RecordingUser wraps a user and records every interaction into the
// transcript. The picked IDs are filled in by the observer half (see
// NewTranscript), since selection happens after the decision.
type recordingObserver struct {
	tr            *Transcript
	keepPickedIDs bool
}

// NewTranscript returns a transcript plus an Observer that populates it;
// merge the observer into Config.Observer (or use it directly). When
// keepPickedIDs is false only counts are stored, keeping transcripts of
// big sessions small.
func NewTranscript(keepPickedIDs bool) (*Transcript, Observer) {
	tr := &Transcript{}
	rec := &recordingObserver{tr: tr, keepPickedIDs: keepPickedIDs}
	return tr, Observer{
		OnProfile: rec.onProfile,
		OnMajorIteration: func(iter int, _ map[int]float64) {
			tr.Iterations = iter
		},
	}
}

func (r *recordingObserver) onProfile(p *VisualProfile, d Decision, pickedIDs []int) {
	v := TranscriptView{
		Major:          p.Major,
		Minor:          p.Minor,
		RemainingDim:   p.RemainingDim,
		Discrimination: p.Discrimination,
		PeakRatio:      p.PeakRatio(),
		QueryDensity:   p.QueryDensity,
		Skipped:        d.Skip,
		PickedCount:    len(pickedIDs),
		DataSize:       len(p.IDs),
	}
	if !d.Skip {
		v.Tau = d.Tau
		v.Lines = len(d.Lines)
		v.Weight = d.Weight
	}
	if r.keepPickedIDs {
		v.PickedIDs = append([]int(nil), pickedIDs...)
	}
	r.tr.Views = append(r.tr.Views, v)
}

// WriteJSON serializes the transcript.
func (t *Transcript) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("core: encode transcript: %w", err)
	}
	return nil
}

// SaveJSON writes the transcript to the named file.
func (t *Transcript) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	if err := t.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadTranscript parses a transcript written by WriteJSON.
func LoadTranscript(r io.Reader) (*Transcript, error) {
	var t Transcript
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("core: decode transcript: %w", err)
	}
	return &t, nil
}

// ReplayUser replays a transcript's decisions as a User: view i of the
// new session receives the decision recorded for view i. Extra views are
// skipped. Replaying against the same dataset, query and configuration
// reproduces the original session exactly (the system is deterministic
// given the decisions).
type ReplayUser struct {
	Transcript *Transcript
	next       int
}

// SeparateCluster implements User.
func (u *ReplayUser) SeparateCluster(p *VisualProfile, _ func(tau float64) *grid.Region) Decision {
	if u.next >= len(u.Transcript.Views) {
		return Decision{Skip: true}
	}
	v := u.Transcript.Views[u.next]
	u.next++
	if v.Skipped {
		return Decision{Skip: true}
	}
	return Decision{Tau: v.Tau, Weight: v.Weight}
}
