package core

import (
	"reflect"
	"testing"

	"innsearch/internal/index"
)

// TestSessionIndexBackendParity pins the redesign's central contract:
// an exact candidate-generation backend changes how the nearest-s scan
// finds its candidates but never what it returns, so session Results are
// identical — field for field — to the plain unindexed scan on the
// Session2000x64 shape.
func TestSessionIndexBackendParity(t *testing.T) {
	ds, q := benchDataset(t, 2000, 64)
	run := func(backend string) *Result {
		t.Helper()
		cfg := Config{Support: 64, GridSize: 48, MaxMajorIterations: 2}
		if backend != "" {
			cfg.Index = index.Config{Name: backend}
		}
		s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if backend != "" {
			st := s.IndexStats()
			if st.Builds == 0 || st.Queries == 0 {
				t.Errorf("backend %q: index never consulted (builds=%d, queries=%d)", backend, st.Builds, st.Queries)
			}
		}
		return res
	}
	base := run("")
	for _, backend := range []string{"exact", "vafile", "rtree"} {
		if got := run(backend); !reflect.DeepEqual(got, base) {
			t.Errorf("backend %q: Results differ from the plain exact scan", backend)
		}
	}
}

// TestSessionUnknownIndexBackend fails at session construction, not mid-run.
func TestSessionUnknownIndexBackend(t *testing.T) {
	ds, q := benchDataset(t, 50, 4)
	cfg := Config{Support: 10, GridSize: 16, MaxMajorIterations: 1,
		Index: index.Config{Name: "nope"}}
	if _, err := NewSession(ds, q, alwaysTauUser(0.3), cfg); err == nil {
		t.Fatal("unknown index backend accepted")
	}
}
