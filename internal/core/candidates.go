package core

import (
	"context"
	"fmt"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/linalg"
	"innsearch/internal/telemetry"
)

// candGen owns a session's candidate-generation backend (Config.Index):
// the index built over the session's current view and the accumulated
// work statistics. The generator is consulted by nearestPositions only
// for full-space scans (sub.Identity()), where the backend's L2 ranking
// is the engine's ranking; narrowed-subspace scans keep the exact kernels.
//
// Sessions prune rows between major iterations, producing a new view;
// the generator detects the view change and lazily rebuilds, emitting one
// index_build trace event per build and one candidate_gen event per
// query.
type candGen struct {
	cfg     index.Config
	backend index.Backend
	built   *dataset.View // view the backend was last built over

	// tr/major/minor are the owning session's tracer context, updated as
	// the session advances (nil-safe; standalone use leaves them zero).
	tr           tracer
	major, minor int

	builds int
	calls  int
	stats  index.Stats
}

// newCandGen constructs the configured backend, or (nil, nil) when no
// index was requested — the zero-overhead default path. Unknown backend
// names fail here, at session construction, not mid-iteration.
func newCandGen(cfg index.Config, workers int) (*candGen, error) {
	if !cfg.Enabled() {
		return nil, nil
	}
	b, err := index.New(cfg.Name)
	if err != nil {
		return nil, err
	}
	if cfg.Options.Workers == 0 {
		cfg.Options.Workers = workers
	}
	return &candGen{cfg: cfg, backend: b}, nil
}

// ensure (re)builds the backend when the session's view has advanced.
func (g *candGen) ensure(ctx context.Context, v *dataset.View) error {
	if g.built == v {
		return nil
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	if err := g.backend.Build(ctx, v, g.cfg.Options); err != nil {
		return fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
	}
	g.built = v
	g.builds++
	if g.tr.enabled() {
		g.tr.emit(telemetry.Event{
			Type:       telemetry.EventIndexBuild,
			Major:      g.major,
			Backend:    g.cfg.Name,
			N:          v.N(),
			Dim:        v.Dim(),
			DurationMS: g.tr.since(t0),
		})
	}
	return nil
}

// candidates returns the backend's k-candidate set for the ambient query
// q against view v, building the index first if needed.
func (g *candGen) candidates(ctx context.Context, v *dataset.View, q linalg.Vector, k int) ([]index.Candidate, error) {
	if err := g.ensure(ctx, v); err != nil {
		return nil, err
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	cands, st, err := g.backend.KNN(ctx, q, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.calls++
	g.stats.Add(st)
	if g.tr.enabled() {
		g.tr.emit(telemetry.Event{
			Type:       telemetry.EventCandidateGen,
			Major:      g.major,
			Minor:      g.minor,
			Backend:    g.cfg.Name,
			N:          v.N(),
			Picked:     len(cands),
			Scanned:    st.Scanned,
			Refined:    st.Refined,
			DurationMS: g.tr.since(t0),
		})
	}
	return cands, nil
}

// IndexStats reports the session's candidate-generation counters so far:
// the backend name, index builds, KNN calls, and the summed work Stats.
// Zero values throughout when no index is configured.
type IndexStats struct {
	Backend string
	Builds  int
	Queries int
	Work    index.Stats
}

// IndexStats returns the session's accumulated candidate-generation
// statistics (the serving layer surfaces them in /varz).
func (s *Session) IndexStats() IndexStats {
	if s.gen == nil {
		return IndexStats{}
	}
	return IndexStats{
		Backend: s.gen.cfg.Name,
		Builds:  s.gen.builds,
		Queries: s.gen.calls,
		Work:    s.gen.stats,
	}
}
