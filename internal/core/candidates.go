package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/linalg"
	"innsearch/internal/shard"
	"innsearch/internal/telemetry"
)

// candGen owns a session's candidate-generation backend (Config.Index):
// the index built over the session's current view and the accumulated
// work statistics. The generator is consulted by nearestPositions only
// for full-space scans (sub.Identity()), where the backend's L2 ranking
// is the engine's ranking; narrowed-subspace scans keep the exact kernels.
//
// Sessions prune rows between major iterations, producing a new view;
// the generator detects the view change and lazily rebuilds, emitting one
// index_build trace event per build and one candidate_gen event per
// query. With a shared cache (Config.IndexCache) a build whose (view,
// backend, options) key was already built by another session is reused
// instead — no build runs, no index_build event fires, and the reuse is
// counted in IndexStats.CacheHits. With a shard coordinator
// (Config.Shards) the stage runs as per-shard backends scattered and
// merged by the coordinator.
type candGen struct {
	cfg     index.Config
	backend index.Backend
	built   *dataset.View // view the backend was last built over

	// cache shares built backends across sessions (nil: per-session).
	cache *index.Cache
	// coord routes the stage through per-shard backends (nil: one
	// backend over the whole view).
	coord *shard.Coordinator

	// tr/major/minor are the owning session's tracer context, updated as
	// the session advances (nil-safe; standalone use leaves them zero).
	tr           tracer
	major, minor int
	// span is the stage span the session is currently inside (the view's
	// /proj or /kde span); index_build and candidate_gen spans nest under
	// it. Maintained only while tracing, like the coordinator's parent.
	span string

	builds int
	hits   int
	calls  int
	stats  index.Stats
}

// newCandGen constructs the configured backend, or (nil, nil) when no
// index was requested — the zero-overhead default path. Unknown backend
// names fail here, at session construction, not mid-iteration.
func newCandGen(cfg index.Config, workers int) (*candGen, error) {
	if !cfg.Enabled() {
		return nil, nil
	}
	b, err := index.New(cfg.Name)
	if err != nil {
		return nil, err
	}
	if cfg.Options.Workers == 0 {
		cfg.Options.Workers = workers
	}
	return &candGen{cfg: cfg, backend: b}, nil
}

// ensure (re)builds the backend when the session's view has advanced.
// With a cache, the build is shared: a hit installs the other session's
// backend (safe — backends allow concurrent KNN after Build) and a miss
// builds a fresh instance, never re-Building a cached one in place.
func (g *candGen) ensure(ctx context.Context, v *dataset.View) error {
	if g.built == v {
		return nil
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	if g.cache != nil {
		key := index.CacheKey{Source: v, Shard: 0, Shards: 1, Name: g.cfg.Name, Options: g.cfg.Options}
		b, hit, err := g.cache.Get(ctx, key, func(ctx context.Context) (index.Backend, error) {
			nb, err := index.New(g.cfg.Name)
			if err != nil {
				return nil, err
			}
			if err := nb.Build(ctx, v, g.cfg.Options); err != nil {
				return nil, err
			}
			return nb, nil
		})
		if err != nil {
			return fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
		}
		g.backend = b
		g.built = v
		if hit {
			g.hits++
			return nil // nothing was built; no index_build event
		}
		g.builds++
		g.emitBuild(v, t0)
		return nil
	}
	if err := g.backend.Build(ctx, v, g.cfg.Options); err != nil {
		return fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
	}
	g.built = v
	g.builds++
	g.emitBuild(v, t0)
	return nil
}

func (g *candGen) emitBuild(v *dataset.View, t0 time.Time) {
	if !g.tr.enabled() {
		return
	}
	g.tr.emit(telemetry.Event{
		Time:       t0,
		Type:       telemetry.EventIndexBuild,
		Major:      g.major,
		Stage:      "index/build",
		Backend:    g.cfg.Name,
		N:          v.N(),
		Dim:        v.Dim(),
		Shards:     1,
		DurationMS: g.tr.since(t0),
		Span:       spanPath(g.span, "index_build#"+strconv.Itoa(g.builds)),
		Parent:     g.span,
	})
}

// candidates returns the backend's k-candidate set for the ambient query
// q against view v, building the index first if needed.
func (g *candGen) candidates(ctx context.Context, v *dataset.View, q linalg.Vector, k int) ([]index.Candidate, error) {
	if g.coord != nil {
		return g.candidatesSharded(ctx, v, q, k)
	}
	if err := g.ensure(ctx, v); err != nil {
		return nil, err
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	cands, st, err := g.backend.KNN(ctx, q, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.calls++
	g.stats.Add(st)
	if g.tr.enabled() {
		g.tr.emit(telemetry.Event{
			Time:       t0,
			Type:       telemetry.EventCandidateGen,
			Major:      g.major,
			Minor:      g.minor,
			Stage:      "candidates",
			Backend:    g.cfg.Name,
			N:          v.N(),
			Shards:     1,
			Picked:     len(cands),
			Scanned:    st.Scanned,
			Refined:    st.Refined,
			DurationMS: g.tr.since(t0),
			Span:       spanPath(g.span, "candidate_gen#"+strconv.Itoa(g.calls)),
			Parent:     g.span,
		})
	}
	return cands, nil
}

// candidatesSharded is the coordinator route: per-shard backends built by
// EnsureIndex (shared through the cache when one is configured), queried
// and merged under the engine's strict order. One index_build event
// covers the scatter when at least one shard actually built; all-hit
// ensures count a single cache hit instead.
func (g *candGen) candidatesSharded(ctx context.Context, v *dataset.View, q linalg.Vector, k int) ([]index.Candidate, error) {
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	builds, err := g.coord.EnsureIndex(ctx, v, g.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
	}
	if builds != nil {
		g.built = v
		anyBuilt := false
		for _, b := range builds {
			if !b.Hit {
				anyBuilt = true
				break
			}
		}
		if anyBuilt {
			g.builds++
			if g.tr.enabled() {
				g.tr.emit(telemetry.Event{
					Time:       t0,
					Type:       telemetry.EventIndexBuild,
					Major:      g.major,
					Stage:      "index/build",
					Backend:    g.cfg.Name,
					N:          v.N(),
					Dim:        v.Dim(),
					Shards:     len(builds),
					DurationMS: g.tr.since(t0),
					Span:       spanPath(g.span, "index_build#"+strconv.Itoa(g.builds)),
					Parent:     g.span,
				})
			}
		} else {
			g.hits++
		}
	}
	var t1 time.Time
	if g.tr.enabled() {
		t1 = g.tr.now()
	}
	cands, st, err := g.coord.Candidates(ctx, v, q, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.calls++
	g.stats.Add(st)
	if g.tr.enabled() {
		g.tr.emit(telemetry.Event{
			Time:       t1,
			Type:       telemetry.EventCandidateGen,
			Major:      g.major,
			Minor:      g.minor,
			Stage:      "candidates",
			Backend:    g.cfg.Name,
			N:          v.N(),
			Shards:     g.coord.Shards(),
			Picked:     len(cands),
			Scanned:    st.Scanned,
			Refined:    st.Refined,
			DurationMS: g.tr.since(t1),
			Span:       spanPath(g.span, "candidate_gen#"+strconv.Itoa(g.calls)),
			Parent:     g.span,
		})
	}
	return cands, nil
}

// IndexStats reports the session's candidate-generation counters so far:
// the backend name, index builds, cache reuses, KNN calls, and the summed
// work Stats. Zero values throughout when no index is configured.
type IndexStats struct {
	Backend string
	Builds  int
	// CacheHits counts view changes served entirely from a shared
	// backend cache — builds another session (or an earlier one on the
	// same store) already paid for.
	CacheHits int
	Queries   int
	Work      index.Stats
}

// IndexStats returns the session's accumulated candidate-generation
// statistics (the serving layer surfaces them in /varz).
func (s *Session) IndexStats() IndexStats {
	if s.gen == nil {
		return IndexStats{}
	}
	return IndexStats{
		Backend:   s.gen.cfg.Name,
		Builds:    s.gen.builds,
		CacheHits: s.gen.hits,
		Queries:   s.gen.calls,
		Work:      s.gen.stats,
	}
}
