package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/linalg"
	"innsearch/internal/shard"
	"innsearch/internal/telemetry"
)

// candGen owns a session's candidate-generation backend (Config.Index):
// the index built over the session's current view and the accumulated
// work statistics. The generator is consulted by nearestPositions for
// full-space scans (sub.Identity()), where the backend's L2 ranking is
// the engine's ranking, and — when the backend implements
// index.AxisSearcher — for axis-aligned subspace scans routed through
// axisScanRoute; arbitrary-direction subspaces keep the exact kernels.
//
// Sessions prune rows between major iterations, producing a new view;
// the generator detects the view change and lazily re-ensures the index:
// derived in O(n′) from the previous view's backend when it implements
// index.Deriver and the views share a recorded row provenance
// (dataset.RowsBetween), rebuilt from scratch otherwise. Each fresh
// build emits one index_build trace event, each derivation one
// index_derive event, and each query one candidate_gen event. With a shared cache (Config.IndexCache) a build whose (view,
// backend, options) key was already built by another session is reused
// instead — no build runs, no index_build event fires, and the reuse is
// counted in IndexStats.CacheHits. With a shard coordinator
// (Config.Shards) the stage runs as per-shard backends scattered and
// merged by the coordinator.
type candGen struct {
	cfg     index.Config
	backend index.Backend
	built   *dataset.View // view the backend was last built over

	// cache shares built backends across sessions (nil: per-session).
	cache *index.Cache
	// coord routes the stage through per-shard backends (nil: one
	// backend over the whole view).
	coord *shard.Coordinator

	// tr/major/minor are the owning session's tracer context, updated as
	// the session advances (nil-safe; standalone use leaves them zero).
	tr           tracer
	major, minor int
	// span is the stage span the session is currently inside (the view's
	// /proj or /kde span); index_build and candidate_gen spans nest under
	// it. Maintained only while tracing, like the coordinator's parent.
	span string

	builds  int
	derives int
	hits    int
	calls   int
	stats   index.Stats
}

// newCandGen constructs the configured backend, or (nil, nil) when no
// index was requested — the zero-overhead default path. Unknown backend
// names fail here, at session construction, not mid-iteration.
func newCandGen(cfg index.Config, workers int) (*candGen, error) {
	if !cfg.Enabled() {
		return nil, nil
	}
	b, err := index.New(cfg.Name)
	if err != nil {
		return nil, err
	}
	if cfg.Options.Workers == 0 {
		cfg.Options.Workers = workers
	}
	return &candGen{cfg: cfg, backend: b}, nil
}

// ensure (re)builds the backend when the session's view has advanced.
// With a cache, the build is shared: a hit installs the other session's
// backend (safe — backends allow concurrent KNN after Build) and a miss
// builds a fresh instance, never re-Building a cached one in place.
//
// Before building fresh, ensure walks the view's provenance chain: a view
// that is a pure row narrowing of the one the backend was built over, on
// a backend implementing index.Deriver, derives the child index from the
// built state in O(n′) — the tentpole that makes indexes pay off across a
// session's shrinking views instead of rebuilding per generation.
func (g *candGen) ensure(ctx context.Context, v *dataset.View) error {
	if g.built == v {
		return nil
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	if g.built != nil && g.backend != nil {
		if der, ok := g.backend.(index.Deriver); ok {
			if rows, ok := dataset.RowsBetween(g.built, v); ok && rows != nil {
				parent, parentView := g.backend, g.built
				if g.cache != nil {
					key := index.CacheKey{Source: v, Shard: 0, Shards: 1, Name: g.cfg.Name, Options: g.cfg.Options, Parent: parentView}
					b, hit, err := g.cache.Get(ctx, key, func(ctx context.Context) (index.Backend, error) {
						return der.Derive(ctx, parent, v, rows)
					})
					if err != nil {
						return fmt.Errorf("core: index derive (%s): %w", g.cfg.Name, err)
					}
					g.backend = b
					g.built = v
					if hit {
						g.hits++
						return nil // nothing was derived; no index_derive event
					}
					g.derives++
					g.emitDerive(parentView.N(), v, t0)
					return nil
				}
				nb, err := der.Derive(ctx, parent, v, rows)
				if err != nil {
					return fmt.Errorf("core: index derive (%s): %w", g.cfg.Name, err)
				}
				g.backend = nb
				g.built = v
				g.derives++
				g.emitDerive(parentView.N(), v, t0)
				return nil
			}
		}
	}
	if g.cache != nil {
		key := index.CacheKey{Source: v, Shard: 0, Shards: 1, Name: g.cfg.Name, Options: g.cfg.Options}
		b, hit, err := g.cache.Get(ctx, key, func(ctx context.Context) (index.Backend, error) {
			nb, err := index.New(g.cfg.Name)
			if err != nil {
				return nil, err
			}
			if err := nb.Build(ctx, v, g.cfg.Options); err != nil {
				return nil, err
			}
			return nb, nil
		})
		if err != nil {
			return fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
		}
		g.backend = b
		g.built = v
		if hit {
			g.hits++
			return nil // nothing was built; no index_build event
		}
		g.builds++
		g.emitBuild(v, t0)
		return nil
	}
	if err := g.backend.Build(ctx, v, g.cfg.Options); err != nil {
		return fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
	}
	g.built = v
	g.builds++
	g.emitBuild(v, t0)
	return nil
}

func (g *candGen) emitBuild(v *dataset.View, t0 time.Time) {
	if !g.tr.enabled() {
		return
	}
	g.tr.emit(telemetry.Event{
		Time:       t0,
		Type:       telemetry.EventIndexBuild,
		Major:      g.major,
		Minor:      g.minor,
		Stage:      "index/build",
		Backend:    g.cfg.Name,
		N:          v.N(),
		Dim:        v.Dim(),
		Shards:     1,
		DurationMS: g.tr.since(t0),
		Span:       spanPath(g.span, "index_build#"+strconv.Itoa(g.builds)),
		Parent:     g.span,
	})
}

// emitDerive mirrors emitBuild for the incremental path: ParentN records
// the size of the index the derivation avoided re-scanning.
func (g *candGen) emitDerive(parentN int, v *dataset.View, t0 time.Time) {
	if !g.tr.enabled() {
		return
	}
	g.tr.emit(telemetry.Event{
		Time:       t0,
		Type:       telemetry.EventIndexDerive,
		Major:      g.major,
		Minor:      g.minor,
		Stage:      "index/derive",
		Backend:    g.cfg.Name,
		ParentN:    parentN,
		N:          v.N(),
		Dim:        v.Dim(),
		Shards:     1,
		DurationMS: g.tr.since(t0),
		Span:       spanPath(g.span, "index_derive#"+strconv.Itoa(g.derives)),
		Parent:     g.span,
	})
}

// candidates returns the backend's k-candidate set for the ambient query
// q against view v, building the index first if needed.
func (g *candGen) candidates(ctx context.Context, v *dataset.View, q linalg.Vector, k int) ([]index.Candidate, error) {
	if g.coord != nil {
		return g.candidatesSharded(ctx, v, q, k)
	}
	if err := g.ensure(ctx, v); err != nil {
		return nil, err
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	cands, st, err := g.backend.KNN(ctx, q, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.emitQuery(v, cands, st, t0, 1)
	return cands, nil
}

// candidatesAxis is the axis-subspace route: the backend's KNNAxis serves
// the scan over the masked original attributes (see index.AxisSearcher).
// The caller guarantees the backend supports it (supportsAxis).
func (g *candGen) candidatesAxis(ctx context.Context, v *dataset.View, qaxis []float64, axes []int, k int) ([]index.Candidate, error) {
	if g.coord != nil {
		return g.candidatesAxisSharded(ctx, v, qaxis, axes, k)
	}
	if err := g.ensure(ctx, v); err != nil {
		return nil, err
	}
	as, ok := g.backend.(index.AxisSearcher)
	if !ok {
		return nil, fmt.Errorf("core: backend %s cannot serve axis scans", g.cfg.Name)
	}
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	cands, st, err := as.KNNAxis(ctx, qaxis, axes, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.emitQuery(v, cands, st, t0, 1)
	return cands, nil
}

// supportsAxis reports whether the configured backend implements
// index.AxisSearcher — the gate nearestPositions checks before routing an
// axis-subspace scan through the index.
func (g *candGen) supportsAxis() bool {
	_, ok := g.backend.(index.AxisSearcher)
	return ok
}

// emitQuery counts one query and emits its candidate_gen event.
func (g *candGen) emitQuery(v *dataset.View, cands []index.Candidate, st index.Stats, t0 time.Time, shards int) {
	g.calls++
	g.stats.Add(st)
	if !g.tr.enabled() {
		return
	}
	g.tr.emit(telemetry.Event{
		Time:       t0,
		Type:       telemetry.EventCandidateGen,
		Major:      g.major,
		Minor:      g.minor,
		Stage:      "candidates",
		Backend:    g.cfg.Name,
		N:          v.N(),
		Dim:        v.Dim(),
		Shards:     shards,
		Picked:     len(cands),
		Scanned:    st.Scanned,
		Refined:    st.Refined,
		DurationMS: g.tr.since(t0),
		Span:       spanPath(g.span, "candidate_gen#"+strconv.Itoa(g.calls)),
		Parent:     g.span,
	})
}

// candidatesSharded is the coordinator route: per-shard backends built by
// EnsureIndex (shared through the cache when one is configured), queried
// and merged under the engine's strict order. One index_build event
// covers the scatter when at least one shard actually built fresh; one
// index_derive event covers a scatter served entirely by per-shard
// derivations; all-hit ensures count a single cache hit instead.
func (g *candGen) candidatesSharded(ctx context.Context, v *dataset.View, q linalg.Vector, k int) ([]index.Candidate, error) {
	if err := g.ensureSharded(ctx, v); err != nil {
		return nil, err
	}
	var t1 time.Time
	if g.tr.enabled() {
		t1 = g.tr.now()
	}
	cands, st, err := g.coord.Candidates(ctx, v, q, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.emitQuery(v, cands, st, t1, g.coord.Shards())
	return cands, nil
}

// candidatesAxisSharded mirrors candidatesSharded for axis-subspace
// scans, merging the per-shard KNNAxis partials.
func (g *candGen) candidatesAxisSharded(ctx context.Context, v *dataset.View, qaxis []float64, axes []int, k int) ([]index.Candidate, error) {
	if err := g.ensureSharded(ctx, v); err != nil {
		return nil, err
	}
	var t1 time.Time
	if g.tr.enabled() {
		t1 = g.tr.now()
	}
	cands, st, err := g.coord.CandidatesAxis(ctx, v, qaxis, axes, k)
	if err != nil {
		return nil, fmt.Errorf("core: candidate generation (%s): %w", g.cfg.Name, err)
	}
	g.emitQuery(v, cands, st, t1, g.coord.Shards())
	return cands, nil
}

// ensureSharded runs the coordinator's EnsureIndex and classifies its
// per-shard records into exactly one of: an index_build event (some shard
// built fresh), an index_derive event (shards derived, none built), or a
// counted cache hit (everything reused). The event fields match the
// unsharded path's except Shards, so span trees and /debug/sessions
// attribute builds identically on both paths.
func (g *candGen) ensureSharded(ctx context.Context, v *dataset.View) error {
	var t0 time.Time
	if g.tr.enabled() {
		t0 = g.tr.now()
	}
	builds, err := g.coord.EnsureIndex(ctx, v, g.cfg)
	if err != nil {
		return fmt.Errorf("core: index build (%s): %w", g.cfg.Name, err)
	}
	if builds == nil {
		return nil
	}
	g.built = v
	anyBuilt, anyDerived, parentN := false, false, 0
	for _, b := range builds {
		if b.Hit {
			continue
		}
		if b.Derived {
			anyDerived = true
			parentN += b.ParentN
		} else {
			anyBuilt = true
		}
	}
	switch {
	case anyBuilt:
		g.builds++
		if g.tr.enabled() {
			g.tr.emit(telemetry.Event{
				Time:       t0,
				Type:       telemetry.EventIndexBuild,
				Major:      g.major,
				Minor:      g.minor,
				Stage:      "index/build",
				Backend:    g.cfg.Name,
				N:          v.N(),
				Dim:        v.Dim(),
				Shards:     len(builds),
				DurationMS: g.tr.since(t0),
				Span:       spanPath(g.span, "index_build#"+strconv.Itoa(g.builds)),
				Parent:     g.span,
			})
		}
	case anyDerived:
		g.derives++
		if g.tr.enabled() {
			g.tr.emit(telemetry.Event{
				Time:       t0,
				Type:       telemetry.EventIndexDerive,
				Major:      g.major,
				Minor:      g.minor,
				Stage:      "index/derive",
				Backend:    g.cfg.Name,
				ParentN:    parentN,
				N:          v.N(),
				Dim:        v.Dim(),
				Shards:     len(builds),
				DurationMS: g.tr.since(t0),
				Span:       spanPath(g.span, "index_derive#"+strconv.Itoa(g.derives)),
				Parent:     g.span,
			})
		}
	default:
		g.hits++
	}
	return nil
}

// IndexStats reports the session's candidate-generation counters so far:
// the backend name, index builds, cache reuses, KNN calls, and the summed
// work Stats. Zero values throughout when no index is configured.
type IndexStats struct {
	Backend string
	Builds  int
	// Derives counts view changes served by deriving the child index from
	// its parent (index.Deriver) instead of rebuilding — the O(n′) path.
	Derives int
	// CacheHits counts view changes served entirely from a shared
	// backend cache — builds another session (or an earlier one on the
	// same store) already paid for.
	CacheHits int
	Queries   int
	Work      index.Stats
}

// IndexStats returns the session's accumulated candidate-generation
// statistics (the serving layer surfaces them in /varz).
func (s *Session) IndexStats() IndexStats {
	if s.gen == nil {
		return IndexStats{}
	}
	return IndexStats{
		Backend:   s.gen.cfg.Name,
		Builds:    s.gen.builds,
		Derives:   s.gen.derives,
		CacheHits: s.gen.hits,
		Queries:   s.gen.calls,
		Work:      s.gen.stats,
	}
}
