package core

import (
	"math"

	"innsearch/internal/stats"
)

// PickStats records one minor iteration's selection for the Bernoulli
// coherence model of §3: how many points the user picked (nᵢ) and the
// projection weight (wᵢ).
type PickStats struct {
	Picked int
	Weight float64
}

// QuantifyMeaningfulness converts one major iteration's preference counts
// into per-point meaningfulness probabilities (Figure 8).
//
// counts[j] is the weighted number of projections in which point j was
// picked this major iteration, n is the number of points currently in the
// data, and picks describes each projection's selection size and weight.
// Under the null model the per-projection indicator X_ij is Bernoulli with
// success probability nᵢ/N, so Y_j = Σ wᵢ·X_ij has mean E[Y] = Σ wᵢ·nᵢ/N
// and variance var(Y) = Σ wᵢ²·(nᵢ/N)(1−nᵢ/N). The meaningfulness
// coefficient M(j) = (v(j) − E[Y]) / √var(Y) is mapped through the normal
// CDF to P(j) = max(2Φ(M(j)) − 1, 0).
//
// When the variance is zero (every projection picked nothing or
// everything) no point can be distinguished and all probabilities are 0.
func QuantifyMeaningfulness(counts []float64, n int, picks []PickStats) []float64 {
	probs := make([]float64, len(counts))
	if n <= 0 || len(picks) == 0 {
		return probs
	}
	var ey, vy float64
	for _, p := range picks {
		w := p.Weight
		if w == 0 {
			w = 1
		}
		frac := float64(p.Picked) / float64(n)
		ey += w * frac
		vy += w * w * frac * (1 - frac)
	}
	if vy <= 0 {
		return probs
	}
	sd := math.Sqrt(vy)
	for j, v := range counts {
		m := (v - ey) / sd
		p := 2*stats.NormalCDF(m) - 1
		if p < 0 {
			p = 0
		}
		probs[j] = p
	}
	return probs
}

// DiagnosisConfig tunes the steep-drop analysis of §4. Zero values take
// the documented defaults.
type DiagnosisConfig struct {
	// MinTopProb is the smallest maximum meaningfulness probability for
	// a result to count as meaningful (default 0.7). Uniform-like data
	// never concentrates probability on any point, so its maximum stays
	// low.
	MinTopProb float64
	// MinDrop is the smallest steep-drop magnitude that marks a natural
	// query cluster boundary (default 0.35). The drop is measured over a
	// short rank window (see DropWindowFrac) rather than between strictly
	// consecutive values, because a cliff in the sorted probabilities
	// typically spans a handful of ranks.
	MinDrop float64
	// DropWindowFrac sets the drop-measurement window as a fraction of
	// the number of points, with a minimum of one rank (default 0.05).
	DropWindowFrac float64
	// MaxNaturalFrac caps the natural cluster at this fraction of the
	// data (default 0.5): a "cluster" holding most of the data set
	// distinguishes nothing.
	MaxNaturalFrac float64
	// MinAnsweredFrac is the smallest fraction of shown views the user
	// must have answered (not skipped) for a result to count as
	// meaningful (default 0.2). On truly noisy data the user cannot find
	// usable views — exactly the evidence §4.2 of the paper relies on —
	// so a session answered almost entirely with skips is diagnosed as
	// not meaningful regardless of the probability profile. The fraction
	// is applied by the session, which knows the view history; Diagnose
	// alone cannot enforce it.
	MinAnsweredFrac float64
}

func (c DiagnosisConfig) withDefaults() DiagnosisConfig {
	if c.MinTopProb == 0 {
		c.MinTopProb = 0.7
	}
	if c.MinDrop == 0 {
		c.MinDrop = 0.35
	}
	if c.DropWindowFrac == 0 {
		c.DropWindowFrac = 0.05
	}
	if c.MaxNaturalFrac == 0 {
		c.MaxNaturalFrac = 0.5
	}
	if c.MinAnsweredFrac == 0 {
		c.MinAnsweredFrac = 0.2
	}
	return c
}

// Diagnosis is the verdict on whether the nearest neighbors found are
// meaningful, and if so where the natural query cluster ends (§4.1: the
// steep drop in sorted meaningfulness probabilities just below the top
// group marks the projected cluster containing the query).
type Diagnosis struct {
	// Meaningful reports whether a natural, statistically coherent query
	// cluster exists. When false the data behaves like the uniform case
	// of §4.2 and nearest-neighbor search on it should be distrusted.
	Meaningful bool
	// NaturalSize is the number of points above the steep drop (0 when
	// not meaningful).
	NaturalSize int
	// Threshold is the meaningfulness probability just above the drop.
	Threshold float64
	// MaxProb is the largest meaningfulness probability observed.
	MaxProb float64
	// Drop is the magnitude of the steepest consecutive drop found.
	Drop float64
}

// Diagnose runs the steep-drop analysis over the (unsorted) per-point
// meaningfulness probabilities.
func Diagnose(probs []float64, cfg DiagnosisConfig) Diagnosis {
	cfg = cfg.withDefaults()
	if len(probs) == 0 {
		return Diagnosis{}
	}
	sorted := append([]float64(nil), probs...)
	sortDesc(sorted)

	d := Diagnosis{MaxProb: sorted[0]}
	n := len(sorted)
	limit := int(cfg.MaxNaturalFrac * float64(n))
	if limit < 1 {
		limit = 1
	}
	window := int(cfg.DropWindowFrac * float64(n))
	if window < 1 {
		window = 1
	}
	// The steepest windowed descent locates the cliff; its top edge is
	// the natural cluster boundary.
	bestK, bestDrop := 0, 0.0
	for k := 0; k < n-1 && k < limit; k++ {
		hi := k + window
		if hi > n-1 {
			hi = n - 1
		}
		if drop := sorted[k] - sorted[hi]; drop > bestDrop {
			bestDrop, bestK = drop, k
		}
	}
	d.Drop = bestDrop
	if d.MaxProb >= cfg.MinTopProb && bestDrop >= cfg.MinDrop {
		// The natural cluster extends from the plateau through the top
		// half of the cliff: everything with probability above
		// sorted[bestK] − drop/2. Stopping exactly at the cliff top
		// systematically cuts fringe members; the paper reports the
		// natural count as a slight (5–15%) overestimate of the true
		// cluster, which this boundary reproduces.
		cut := sorted[bestK] - bestDrop/2
		edge := bestK
		for edge+1 < n && sorted[edge+1] >= cut {
			edge++
		}
		d.Meaningful = true
		d.NaturalSize = edge + 1
		d.Threshold = sorted[edge]
	}
	return d
}

func sortDesc(xs []float64) {
	// Insertion-free: reuse stats argsort to keep one sorting idiom.
	order := stats.ArgsortDesc(xs)
	tmp := make([]float64, len(xs))
	for i, idx := range order {
		tmp[i] = xs[idx]
	}
	copy(xs, tmp)
}
