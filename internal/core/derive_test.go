package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"innsearch/internal/index"
	"innsearch/internal/shard"
	"innsearch/internal/telemetry"
)

// TestDerivedIndexMatchesFreshCandidates is the derivation property test:
// down a random narrowing chain, a generator that derives each child
// index from its parent (index.Deriver) must return exactly the
// candidate set a generator built fresh on the narrowed view returns —
// at every chain depth, for every Deriver backend, across worker counts
// and shard widths. kmtree runs with Checks ≥ n, the exhaustive regime
// where its search is exact and the equivalence is exact too (see
// DESIGN.md §5k for why approximate budgets may legitimately diverge).
func TestDerivedIndexMatchesFreshCandidates(t *testing.T) {
	ds, q := benchDataset(t, 800, 12)
	const k, depth = 20, 5
	ctx := context.Background()
	backends := []index.Config{
		{Name: "vafile"},
		{Name: "kmtree", Options: index.Options{Checks: 1 << 20}},
	}
	for _, cfg := range backends {
		for _, workers := range []int{1, 4, 8} {
			for _, shards := range []int{1, 4} {
				cfg, workers, shards := cfg, workers, shards
				t.Run(fmt.Sprintf("%s/w%d/p%d", cfg.Name, workers, shards), func(t *testing.T) {
					mk := func() *candGen {
						g, err := newCandGen(cfg, workers)
						if err != nil {
							t.Fatal(err)
						}
						if shards > 1 {
							g.coord = shard.New(shard.Config{Shards: shards, Workers: workers})
						}
						return g
					}
					gen := mk()
					rng := rand.New(rand.NewSource(9))
					v := ds.View()
					for step := 0; step < depth; step++ {
						got, err := gen.candidates(ctx, v, q, k)
						if err != nil {
							t.Fatalf("depth %d: derived chain: %v", step, err)
						}
						want, err := mk().candidates(ctx, v, q, k)
						if err != nil {
							t.Fatalf("depth %d: fresh build: %v", step, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("depth %d (n=%d): derived candidates differ from fresh\n got %v\nwant %v",
								step, v.N(), got, want)
						}
						var keep []int
						for i := 0; i < v.N(); i++ {
							if rng.Float64() < 0.7 {
								keep = append(keep, i)
							}
						}
						v, err = v.Narrow(keep)
						if err != nil {
							t.Fatal(err)
						}
					}
					if gen.derives != depth-1 {
						t.Errorf("derives = %d, want %d (one per narrowing)", gen.derives, depth-1)
					}
				})
			}
		}
	}
}

// TestAxisRouteSessionParity pins the axis-subspace routing contract: a
// ModeAxis session whose scans go through a backend's KNNAxis produces a
// Result identical field for field — and a transcript identical byte for
// byte — to the plain unindexed session. Exact and VA-file backends both
// return the true top-s set, so the engine's re-rank reconstructs the
// same neighbors with the same exact distances.
func TestAxisRouteSessionParity(t *testing.T) {
	ds, q := benchDataset(t, 2000, 64)
	run := func(backend string) (*Result, []byte, IndexStats) {
		t.Helper()
		tr, obs := NewTranscript(true)
		cfg := Config{Support: 64, GridSize: 48, MaxMajorIterations: 2,
			Mode: ModeAxis, Observer: obs}
		if backend != "" {
			cfg.Index = index.Config{Name: backend}
		}
		s, err := NewSession(ds, q, alwaysTauUser(0.3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes(), s.IndexStats()
	}
	base, baseTr, _ := run("")
	for _, backend := range []string{"exact", "vafile"} {
		res, trBytes, st := run(backend)
		if st.Queries == 0 {
			t.Errorf("backend %q: axis scans never routed through the index", backend)
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("backend %q: ModeAxis Results differ from the plain scan", backend)
		}
		if !bytes.Equal(trBytes, baseTr) {
			t.Errorf("backend %q: ModeAxis transcripts not byte-identical", backend)
		}
	}
}

// TestIndexEventFieldParity is the satellite taxonomy check: the sharded
// and unsharded candidate-generation paths must stamp the same fields on
// their events — index_build and index_derive events carry Minor (the
// view ordinal that triggered them) and Dim, candidate_gen events carry
// Dim — so dashboards never see half-populated rows depending on the
// partition width. It also pins that narrowing chains actually emit
// index_derive events with ParentN ≥ N on both paths.
func TestIndexEventFieldParity(t *testing.T) {
	ds, q := benchDataset(t, 800, 16)
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			col := telemetry.NewCollectorClock(telemetry.StepClock(time.Unix(0, 0).UTC(), time.Millisecond))
			s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
				Support: 32, GridSize: 32, MaxMajorIterations: 3,
				Shards: shards, Tracer: col,
				Index: index.Config{Name: "vafile"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatal(err)
			}
			counts := col.CountByType()
			if counts[telemetry.EventIndexBuild] == 0 {
				t.Errorf("no index_build events (have %v)", counts)
			}
			if counts[telemetry.EventIndexDerive] == 0 {
				t.Errorf("no index_derive events (have %v)", counts)
			}
			if counts[telemetry.EventCandidateGen] == 0 {
				t.Errorf("no candidate_gen events (have %v)", counts)
			}
			for _, e := range col.Events() {
				switch e.Type {
				case telemetry.EventIndexBuild, telemetry.EventIndexDerive:
					if e.Major < 1 || e.Minor < 1 || e.N <= 0 || e.Dim <= 0 ||
						e.Backend == "" || e.Span == "" {
						t.Errorf("half-stamped %s event: %+v", e.Type, e)
					}
					if e.Type == telemetry.EventIndexDerive && e.ParentN < e.N {
						t.Errorf("index_derive with ParentN %d < N %d: %+v", e.ParentN, e.N, e)
					}
				case telemetry.EventCandidateGen:
					if e.Major < 1 || e.Minor < 1 || e.N <= 0 || e.Dim <= 0 ||
						e.Backend == "" || e.Span == "" {
						t.Errorf("half-stamped candidate_gen event: %+v", e)
					}
				}
			}
		})
	}
}
