package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"innsearch/internal/grid"
	"innsearch/internal/telemetry"
)

// traceJSONL runs one fully deterministic session at the given worker
// count with a step clock and returns the raw JSONL trace stream.
func traceJSONL(t *testing.T, workers int) []byte {
	t.Helper()
	ds, q := clusteredDataset(t, 300, 40, 16, 7)
	var buf bytes.Buffer
	clock := telemetry.StepClock(time.Unix(0, 0).UTC(), time.Millisecond)
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		Support: 20, GridSize: 32, MaxMajorIterations: 3,
		Workers: workers,
		Tracer:  telemetry.NewJSONLClock(&buf, clock),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterministicAcrossWorkers is the telemetry analogue of the
// golden Result replay: because every event is emitted from the session's
// driving goroutine at fixed code points, a deterministic clock must yield
// a byte-identical JSONL stream at any worker count. Note the worker count
// itself appears in the session_start event, so streams are compared after
// normalizing it away via re-parse.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	want, err := telemetry.ReadJSONL(bytes.NewReader(traceJSONL(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no trace events emitted")
	}
	for _, workers := range []int{4, 8} {
		got, err := telemetry.ReadJSONL(bytes.NewReader(traceJSONL(t, workers)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			// The only field allowed to differ is the configured worker
			// count echoed by session_start.
			g.Workers, w.Workers = 0, 0
			if g != w {
				t.Errorf("workers=%d event %d:\n got %+v\nwant %+v", workers, i, g, w)
			}
		}
	}
}

// TestTraceEventTaxonomy checks that a traced session emits every event
// type the observability contract promises, with exactly-once session
// boundaries and per-iteration pruning records.
func TestTraceEventTaxonomy(t *testing.T) {
	ds, q := clusteredDataset(t, 300, 40, 16, 7)
	col := telemetry.NewCollectorClock(telemetry.StepClock(time.Unix(0, 0).UTC(), time.Millisecond))
	s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
		Support: 20, GridSize: 32, MaxMajorIterations: 3, Tracer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	counts := col.CountByType()
	for _, typ := range []telemetry.EventType{
		telemetry.EventSessionStart, telemetry.EventSessionEnd,
		telemetry.EventIteration, telemetry.EventProjection,
		telemetry.EventProjectionStage,
		telemetry.EventKDEBuild, telemetry.EventView,
		telemetry.EventDecisionWait, telemetry.EventSelect,
		telemetry.EventPointsDropped,
	} {
		if counts[typ] == 0 {
			t.Errorf("no %s events (have %v)", typ, counts)
		}
	}
	if counts[telemetry.EventSessionStart] != 1 || counts[telemetry.EventSessionEnd] != 1 {
		t.Errorf("session boundaries not exactly-once: %v", counts)
	}
	if counts[telemetry.EventIteration] != res.Iterations {
		t.Errorf("iteration events = %d, want %d", counts[telemetry.EventIteration], res.Iterations)
	}
	if counts[telemetry.EventPointsDropped] != res.Iterations {
		t.Errorf("points_dropped events = %d, want %d", counts[telemetry.EventPointsDropped], res.Iterations)
	}
	if counts[telemetry.EventView] != res.ViewsShown {
		t.Errorf("view events = %d, want ViewsShown %d", counts[telemetry.EventView], res.ViewsShown)
	}
	if counts[telemetry.EventSelect] != res.ViewsAnswered {
		t.Errorf("select events = %d, want ViewsAnswered %d", counts[telemetry.EventSelect], res.ViewsAnswered)
	}
	var end telemetry.Event
	for _, e := range col.Events() {
		if e.Type == telemetry.EventSessionEnd {
			end = e
		}
	}
	if end.Iterations != res.Iterations || end.Converged != res.Converged ||
		end.ViewsShown != res.ViewsShown || end.ViewsAnswered != res.ViewsAnswered {
		t.Errorf("session_end %+v disagrees with Result %+v", end, res)
	}
	if end.DurationMS <= 0 {
		t.Errorf("session_end duration %v, want > 0 under a step clock", end.DurationMS)
	}
	// KDE build timing must flow through from the injected clock.
	for _, e := range col.Events() {
		if e.Type == telemetry.EventKDEBuild && e.KDEBuildMS <= 0 {
			t.Errorf("kde_build event with no grid build time: %+v", e)
		}
	}
	// Every projection decomposes into at least one halving stage (the
	// session's views all start above the 2-D target), and stage events
	// must carry the stage's target dimensionality and a positive duration
	// under the step clock.
	if counts[telemetry.EventProjectionStage] < counts[telemetry.EventProjection] {
		t.Errorf("projection_stage events = %d < projection events = %d",
			counts[telemetry.EventProjectionStage], counts[telemetry.EventProjection])
	}
	for _, e := range col.Events() {
		if e.Type != telemetry.EventProjectionStage {
			continue
		}
		if e.Dim < 2 || e.N <= 0 || e.DurationMS <= 0 || e.Family == "" {
			t.Errorf("malformed projection_stage event: %+v", e)
		}
	}
}

// TestTraceSessionEndOnError checks the abort path: a canceled context
// still closes the trace with a session_end carrying the error, and only
// once.
func TestTraceSessionEndOnError(t *testing.T) {
	ds, q := clusteredDataset(t, 100, 20, 8, 3)
	col := telemetry.NewCollectorClock(telemetry.StepClock(time.Unix(0, 0).UTC(), time.Millisecond))
	// The user cancels the context from inside the first view, so the
	// sweep aborts at the next pool checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewSession(ds, q, UserFunc(func(p *VisualProfile, preview func(float64) *grid.Region) Decision {
		cancel()
		return Decision{Skip: true}
	}), Config{Support: 10, GridSize: 16, MaxMajorIterations: 2, Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(ctx); err == nil {
		t.Fatal("expected cancellation error")
	}
	counts := col.CountByType()
	if counts[telemetry.EventSessionStart] != 1 {
		t.Fatalf("session_start = %d, want 1", counts[telemetry.EventSessionStart])
	}
	if counts[telemetry.EventSessionEnd] != 1 {
		t.Fatalf("session_end = %d, want 1", counts[telemetry.EventSessionEnd])
	}
	events := col.Events()
	last := events[len(events)-1]
	if last.Type != telemetry.EventSessionEnd || last.Err == "" {
		t.Fatalf("last event %+v, want session_end with error", last)
	}
}

// BenchmarkFullSessionNoopTracer is BenchmarkFullSession2000x20 with the
// tracer left nil — the guard-only path. Compare against
// BenchmarkFullSession2000x20 (identical config) to verify the no-op
// tracer shows no measurable regression: the acceptance budget is ±2% on
// ns/op and B/op.
func BenchmarkFullSessionNoopTracer(b *testing.B) {
	ds, q := benchDataset(b, 2000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 25, GridSize: 48, MaxMajorIterations: 2, Mode: ModeAxis,
			Tracer: nil,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSessionCollectorTracer is the same session with a live
// Collector tracer — the upper bound on tracing overhead with an
// in-memory sink.
func BenchmarkFullSessionCollectorTracer(b *testing.B) {
	ds, q := benchDataset(b, 2000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 25, GridSize: 48, MaxMajorIterations: 2, Mode: ModeAxis,
			Tracer: telemetry.NewCollector(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
