package core

import (
	"context"
	"errors"
	"fmt"

	"innsearch/internal/dataset"
	"innsearch/internal/parallel"
)

// SessionBatch runs many independent search sessions against the same
// dataset concurrently on the shared worker pool. The unit of parallelism
// is the session: each query's session runs serially inside (its inner
// Workers is forced to 1) while up to Workers sessions execute at once.
// This is the right shape for simulated-user experiments and batch
// re-ranking, where queries vastly outnumber cores.
type SessionBatch struct {
	sessions []*Session
	errs     []error // per-query construction errors (nil where sessions[i] != nil)
	workers  int
}

// NewSessionBatch validates the batch and constructs one session per
// query. queries[i] is searched on behalf of users[i]; the two slices must
// have equal nonzero length. A query whose session cannot be constructed
// (bad dimensionality, nil user) does not fail the batch — its error is
// recorded and returned per-query by RunContext.
//
// cfg applies to every session, except that cfg.Workers controls the
// batch-level concurrency and the sessions themselves run serially.
func NewSessionBatch(ds *dataset.Dataset, queries [][]float64, users []User, cfg Config) (*SessionBatch, error) {
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if len(queries) == 0 {
		return nil, errors.New("core: empty query batch")
	}
	if len(users) != len(queries) {
		return nil, fmt.Errorf("core: %d queries but %d users", len(queries), len(users))
	}
	b := &SessionBatch{
		sessions: make([]*Session, len(queries)),
		errs:     make([]error, len(queries)),
		workers:  cfg.Workers,
	}
	inner := cfg
	inner.Workers = 1
	for i, q := range queries {
		s, err := NewSession(ds, q, users[i], inner)
		if err != nil {
			b.errs[i] = fmt.Errorf("core: batch query %d: %w", i, err)
			continue
		}
		b.sessions[i] = s
	}
	return b, nil
}

// Len returns the number of queries in the batch.
func (b *SessionBatch) Len() int { return len(b.sessions) }

// RunContext executes every session and returns one result and one error
// per query, index-aligned with the queries passed to NewSessionBatch.
// Queries whose construction failed keep that error; queries not started
// before ctx was canceled report ctx.Err(). The slices are complete at any
// outcome — exactly one of results[i], errs[i] is non-nil for each i.
//
// One query's failure does not cancel its siblings; only ctx does.
func (b *SessionBatch) RunContext(ctx context.Context) ([]*Result, []error) {
	results := make([]*Result, len(b.sessions))
	errs := make([]error, len(b.sessions))
	copy(errs, b.errs)
	// fn always returns nil: per-query failures are data, not a reason to
	// tear down the batch. Cancellation still propagates through ctx.
	_ = parallel.For(ctx, b.workers, len(b.sessions), func(ctx context.Context, i int) error {
		if b.sessions[i] == nil {
			return nil // construction error already recorded
		}
		res, err := b.sessions[i].RunContext(ctx)
		results[i], errs[i] = res, err
		return nil
	})
	// Entries the pool never reached (canceled context) get ctx.Err() so
	// the caller can tell "not run" from "ran and failed".
	for i := range errs {
		if results[i] == nil && errs[i] == nil {
			errs[i] = ctx.Err()
			if errs[i] == nil {
				errs[i] = errors.New("core: batch entry not run")
			}
		}
	}
	return results, errs
}

// SearchBatch is the convenience one-shot: build a batch and run it.
// See NewSessionBatch and SessionBatch.RunContext for the semantics.
func SearchBatch(ctx context.Context, ds *dataset.Dataset, queries [][]float64, users []User, cfg Config) ([]*Result, []error, error) {
	b, err := NewSessionBatch(ds, queries, users, cfg)
	if err != nil {
		return nil, nil, err
	}
	results, errs := b.RunContext(ctx)
	return results, errs, nil
}
