package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantifyMeaningfulnessCoherentUser(t *testing.T) {
	// 10 projections, 50 of 1000 points picked each time; points 0–49
	// picked every time, the rest never.
	n := 1000
	counts := make([]float64, n)
	var picks []PickStats
	for i := 0; i < 10; i++ {
		picks = append(picks, PickStats{Picked: 50, Weight: 1})
	}
	for j := 0; j < 50; j++ {
		counts[j] = 10
	}
	probs := QuantifyMeaningfulness(counts, n, picks)
	for j := 0; j < 50; j++ {
		if probs[j] < 0.99 {
			t.Fatalf("coherently picked point %d has P=%v", j, probs[j])
		}
	}
	for j := 50; j < n; j++ {
		if probs[j] != 0 {
			t.Fatalf("never-picked point %d has P=%v", j, probs[j])
		}
	}
}

func TestQuantifyMeaningfulnessIncoherentUser(t *testing.T) {
	// Picks spread evenly: every point picked in about half the
	// projections → counts near E[Y] → probabilities stay small.
	n := 200
	r := rand.New(rand.NewSource(1))
	counts := make([]float64, n)
	var picks []PickStats
	rounds := 10
	for i := 0; i < rounds; i++ {
		picks = append(picks, PickStats{Picked: n / 2, Weight: 1})
	}
	for j := range counts {
		// Binomial(rounds, 1/2) counts: exactly the null model.
		for i := 0; i < rounds; i++ {
			if r.Float64() < 0.5 {
				counts[j]++
			}
		}
	}
	probs := QuantifyMeaningfulness(counts, n, picks)
	high := 0
	for _, p := range probs {
		if p > 0.95 {
			high++
		}
	}
	if high > n/10 {
		t.Errorf("%d of %d null points got P>0.95", high, n)
	}
}

func TestQuantifyMeaningfulnessEdgeCases(t *testing.T) {
	// No picks at all → all zero.
	probs := QuantifyMeaningfulness([]float64{1, 2}, 2, nil)
	for _, p := range probs {
		if p != 0 {
			t.Error("no-projection probabilities should be 0")
		}
	}
	// Every projection picked everything → zero variance → all zero.
	probs = QuantifyMeaningfulness([]float64{3, 3}, 2, []PickStats{{Picked: 2}, {Picked: 2}, {Picked: 2}})
	for _, p := range probs {
		if p != 0 {
			t.Errorf("zero-variance P = %v", p)
		}
	}
	// n = 0 guard.
	probs = QuantifyMeaningfulness(nil, 0, []PickStats{{Picked: 1}})
	if len(probs) != 0 {
		t.Error("n=0 should return empty")
	}
}

func TestQuantifyMeaningfulnessWeights(t *testing.T) {
	// A point picked only in the heavily weighted projection should score
	// higher than one picked only in the light projection.
	n := 100
	counts := make([]float64, n)
	counts[0] = 5 // picked in the w=5 projection
	counts[1] = 1 // picked in the w=1 projection
	picks := []PickStats{
		{Picked: 10, Weight: 5},
		{Picked: 10, Weight: 1},
	}
	probs := QuantifyMeaningfulness(counts, n, picks)
	if probs[0] <= probs[1] {
		t.Errorf("weighted pick P=%v not above unweighted P=%v", probs[0], probs[1])
	}
}

func TestPropertyMeaningfulnessMonotoneInCount(t *testing.T) {
	// More picks ⇒ at least as high probability.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 10 + rr.Intn(100)
		rounds := 1 + rr.Intn(10)
		picks := make([]PickStats, rounds)
		for i := range picks {
			picks[i] = PickStats{Picked: 1 + rr.Intn(n-1), Weight: 1}
		}
		counts := make([]float64, n)
		for j := range counts {
			counts[j] = float64(rr.Intn(rounds + 1))
		}
		probs := QuantifyMeaningfulness(counts, n, picks)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if counts[a] > counts[b] && probs[a] < probs[b]-1e-12 {
					return false
				}
			}
		}
		for _, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiagnoseSteepDrop(t *testing.T) {
	// 20 points near 1, then a cliff to near 0.
	probs := make([]float64, 500)
	for i := range probs {
		if i < 20 {
			probs[i] = 0.95 + 0.002*float64(i%3)
		} else {
			probs[i] = 0.05
		}
	}
	d := Diagnose(probs, DiagnosisConfig{})
	if !d.Meaningful {
		t.Fatal("clear steep drop not detected")
	}
	if d.NaturalSize != 20 {
		t.Errorf("natural size = %d, want 20", d.NaturalSize)
	}
	if d.Threshold < 0.9 {
		t.Errorf("threshold = %v", d.Threshold)
	}
	if d.MaxProb < 0.95 {
		t.Errorf("max prob = %v", d.MaxProb)
	}
}

func TestDiagnoseUniformNoDrop(t *testing.T) {
	// Evenly spread small probabilities: not meaningful.
	r := rand.New(rand.NewSource(2))
	probs := make([]float64, 500)
	for i := range probs {
		probs[i] = r.Float64() * 0.4
	}
	d := Diagnose(probs, DiagnosisConfig{})
	if d.Meaningful {
		t.Errorf("uniform probabilities diagnosed meaningful: %+v", d)
	}
	if d.NaturalSize != 0 {
		t.Errorf("natural size = %d for meaningless data", d.NaturalSize)
	}
}

func TestDiagnoseHighButGradual(t *testing.T) {
	// High max but a smooth ramp (no cliff): not meaningful.
	probs := make([]float64, 100)
	for i := range probs {
		probs[i] = 1 - float64(i)*0.01
	}
	d := Diagnose(probs, DiagnosisConfig{})
	if d.Meaningful {
		t.Errorf("gradual ramp diagnosed meaningful: %+v", d)
	}
}

func TestDiagnoseEmptyAndDefaults(t *testing.T) {
	d := Diagnose(nil, DiagnosisConfig{})
	if d.Meaningful || d.MaxProb != 0 {
		t.Errorf("empty diagnosis = %+v", d)
	}
	// MaxNaturalFrac cap: a cliff past the cap must not count.
	probs := make([]float64, 100)
	for i := range probs {
		if i < 80 {
			probs[i] = 0.9
		} else {
			probs[i] = 0.1
		}
	}
	d = Diagnose(probs, DiagnosisConfig{MaxNaturalFrac: 0.5})
	if d.Meaningful {
		t.Errorf("cliff at 80%% counted as natural cluster: %+v", d)
	}
}

func TestDiagnoseCustomThresholds(t *testing.T) {
	probs := []float64{0.6, 0.6, 0.2, 0.2, 0.1, 0.1, 0.05, 0.05}
	// Default MinTopProb=0.7 rejects.
	if Diagnose(probs, DiagnosisConfig{}).Meaningful {
		t.Error("default config should reject max 0.6")
	}
	// Relaxed config accepts.
	d := Diagnose(probs, DiagnosisConfig{MinTopProb: 0.5, MinDrop: 0.3})
	if !d.Meaningful || d.NaturalSize != 2 {
		t.Errorf("relaxed diagnosis = %+v", d)
	}
}
