package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// TestSelectNearestMatchesFullSort is the property test behind the bounded
// top-s selection: on random candidate sets salted with duplicate
// distances, selectNearest's prefix must be byte-identical to the prefix
// of a full sort under the same (dist, pos) order.
func TestSelectNearestMatchesFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(120)
		cands := make([]cand, n)
		for i := range cands {
			// Draw from a small value set so exact-distance ties are common.
			cands[i] = cand{pos: i, dist: float64(r.Intn(8))}
		}
		want := append([]cand(nil), cands...)
		sort.Slice(want, func(a, b int) bool { return candLess(want[a], want[b]) })
		s := r.Intn(n + 10) // frequently > n
		got := append([]cand(nil), cands...)
		clamped := s
		if clamped > n {
			clamped = n
		}
		selectNearest(got, clamped)
		for i := 0; i < clamped; i++ {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d s=%d) slot %d: %+v, full sort has %+v",
					trial, n, s, i, got[i], want[i])
			}
		}
	}
}

// TestNearestPositionsEdgeCases covers the clamps and the tie-break: s=0
// and negative s return empty, s>n returns all n, and exact distance ties
// resolve by ascending position.
func TestNearestPositionsEdgeCases(t *testing.T) {
	// Four points at distance 1 from the origin query, one at distance 0.
	ds, err := dataset.New([][]float64{
		{1, 0}, {0, 1}, {0, 0}, {-1, 0}, {0, -1},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := ds.View()
	q := linalg.Vector{0, 0}
	full := linalg.FullSpace(2)
	scr := &searchScratch{}
	ctx := context.Background()

	for _, s := range []int{0, -3} {
		got, err := nearestPositions(ctx, 1, v, q, full, s, scr, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Errorf("s=%d: got %v, want empty", s, got)
		}
	}
	got, err := nearestPositions(ctx, 1, v, q, full, 99, scr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Distance 0 first, then the four tied points in position order.
	want := []int{2, 0, 1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("s>n: got %v, want %v", got, want)
	}
	got, err = nearestPositions(ctx, 1, v, q, full, 3, scr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Errorf("tie-break prefix: got %v, want [2 0 1]", got)
	}
}

// TestFastGammaMatchesExactSweep pins the tentpole's numerical contract:
// the full-data variance along any unit direction read off the memoized
// covariance (uᵀΣu) agrees with the reference data sweep to ≤ 1e-10
// relative.
func TestFastGammaMatchesExactSweep(t *testing.T) {
	ds, _ := clusteredDataset(t, 400, 60, 12, 41)
	v := ds.View()
	st, err := v.Stats(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		u := make(linalg.Vector, 12)
		for j := range u {
			u[j] = r.NormFloat64()
		}
		u.Normalize()
		exact := varianceAlongUnit(v, nil, u)
		fast := st.Cov.QuadForm(u)
		if fast < 0 {
			fast = 0
		}
		if rel := math.Abs(fast-exact) / math.Max(exact, 1e-300); rel > 1e-10 {
			t.Fatalf("trial %d: uᵀΣu = %v, sweep = %v, relative error %v", trial, fast, exact, rel)
		}
	}
}

// TestFindProjectionFastVsExact runs the graded search in both scoring
// modes over both direction families and requires the selected subspaces
// to be bitwise identical: the fast path must change the cost of the
// variance ratios, never the ranking they induce.
func TestFindProjectionFastVsExact(t *testing.T) {
	ds, q := clusteredDataset(t, 500, 80, 16, 13)
	for _, axis := range []bool{false, true} {
		base := ProjectionSearch{Support: 25, Graded: true, AxisParallel: axis, Workers: 1}
		exact := base
		exact.Exact = true
		fastSub, err := FindQueryCenteredProjection(ds, q, base)
		if err != nil {
			t.Fatal(err)
		}
		exactSub, err := FindQueryCenteredProjection(ds, q, exact)
		if err != nil {
			t.Fatal(err)
		}
		if fastSub.Dim() != exactSub.Dim() {
			t.Fatalf("axis=%v: fast dim %d, exact dim %d", axis, fastSub.Dim(), exactSub.Dim())
		}
		for i := 0; i < fastSub.Dim(); i++ {
			f, e := fastSub.BasisVector(i), exactSub.BasisVector(i)
			for j := range f {
				if math.Float64bits(f[j]) != math.Float64bits(e[j]) {
					t.Fatalf("axis=%v basis %d coord %d: fast %v, exact %v", axis, i, j, f[j], e[j])
				}
			}
		}
	}
}

// TestSessionExactProjectionSameResult runs one deterministic simulated
// session per scoring mode and requires identical Results — the
// session-level restatement of the golden-replay guarantee.
func TestSessionExactProjectionSameResult(t *testing.T) {
	run := func(exact bool) *Result {
		ds, q := clusteredDataset(t, 300, 40, 16, 7)
		s, err := NewSession(ds, q, alwaysTauUser(0.3), Config{
			Support: 20, GridSize: 32, MaxMajorIterations: 3,
			ExactProjection: exact,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast, exact := run(false), run(true)
	if !reflect.DeepEqual(fast, exact) {
		t.Errorf("fast result differs from exact:\n fast %+v\nexact %+v", fast, exact)
	}
}
