package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"innsearch/internal/dataset"
	"innsearch/internal/grid"
	"innsearch/internal/index"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
	"innsearch/internal/shard"
	"innsearch/internal/stats"
	"innsearch/internal/telemetry"
)

// ProjectionMode selects the family of projections a session searches.
type ProjectionMode int

const (
	// ModeArbitrary uses PCA-derived directions (the general case of
	// §2.1) — the most powerful family on arbitrarily oriented clusters.
	ModeArbitrary ProjectionMode = iota
	// ModeAxis restricts projections to original attributes, the
	// interpretable variant.
	ModeAxis
	// ModeAuto determines both an axis-parallel and an arbitrary
	// candidate projection each minor iteration and shows the user
	// whichever discriminates the query's full-space neighborhood
	// better. This extends the paper, which supports both families but
	// leaves the choice to configuration.
	ModeAuto
)

// Config tunes an interactive search session. Zero values take documented
// defaults.
type Config struct {
	// Support is s, the number of points to retrieve and the candidate
	// cluster size during projection search. Per §2 of the paper it is
	// raised to the data dimensionality when smaller, and clamped to N.
	Support int
	// Mode selects the projection family (arbitrary by default; see
	// ProjectionMode). The legacy AxisParallel flag forces ModeAxis when
	// Mode is left at its zero value.
	Mode ProjectionMode
	// AxisParallel restricts projections to original attributes.
	//
	// Deprecated: set Mode to ModeAxis instead. The flag is honored for
	// one more release (only when Mode is left at its zero value, mapped
	// by withDefaults) and will then be removed.
	AxisParallel bool
	// Workers caps the number of goroutines the session uses for its
	// parallel hot paths (density-grid evaluation, covariance
	// accumulation, projection scoring, per-point region membership).
	// Values ≤ 0 mean GOMAXPROCS; 1 forces fully serial execution. The
	// session's output is bit-identical at any worker count — every
	// parallel pass writes index-owned slots or accumulates in the serial
	// order — so Workers is purely a performance knob.
	Workers int
	// StageSupportFactor floors each projection-search stage's candidate
	// cluster at factor·dim points (default 5; 1 = the paper's literal
	// pseudocode). See ProjectionSearch.StageFactor.
	StageSupportFactor int
	// ExactProjection scores candidate directions with the reference
	// O(n·d) variance sweeps instead of the memoized-covariance fast path.
	// See ProjectionSearch.Exact. Off (fast) by default.
	ExactProjection bool
	// Graded enables gradual subspace halving (default). Setting
	// DisableGrading turns it off for ablation.
	DisableGrading bool
	// Index selects a candidate-generation backend (internal/index) for
	// the session's full-space nearest-s scans: the named index prunes the
	// store to a candidate set before the exact kernels re-rank it. The
	// zero value keeps the exact full scan with zero overhead. Exact
	// backends ("exact", "vafile", "rtree") leave every Result
	// byte-identical; approximate ones ("kmtree", "igrid") trade recall
	// for sub-linear work — measure them with index.MeasureRecall before
	// relying on a configuration.
	Index index.Config
	// IndexCache, when non-nil, shares built candidate backends across
	// sessions whose views coincide (same store generation, same backend
	// and options) — the first session pays the build, later ones reuse
	// it. Nil keeps per-session builds. Serving layers inject one cache
	// per server; results are unaffected either way.
	IndexCache *index.Cache
	// Shards is P, the number of row-disjoint partitions the session's
	// stage kernels (moment statistics, top-s scans, density lattices,
	// candidate generation) scatter over through a shard coordinator.
	// Values ≤ 1 (the default) keep the single-partition kernels — that
	// path is byte-identical to prior releases. Any fixed P ≥ 2 is
	// deterministic across runs and worker counts and agrees with P=1 to
	// ≤ 1e-10 relative (identical top-s member sets); see internal/shard
	// for the partial/merge contract.
	Shards int
	// GridSize is the density grid resolution p (default 48).
	GridSize int
	// BandwidthScale multiplies the Silverman bandwidths (default 1).
	BandwidthScale float64
	// MaxMajorIterations caps the outer loop (default 8).
	MaxMajorIterations int
	// MinMajorIterations is the minimum number of major iterations before
	// the termination test may fire (default 2).
	MinMajorIterations int
	// OverlapThreshold is t: the session terminates once the top-s sets
	// of two successive major iterations overlap by at least this
	// fraction (default 0.9).
	OverlapThreshold float64
	// Diagnosis tunes the steep-drop analysis.
	Diagnosis DiagnosisConfig
	// Observer, when non-nil, receives progress callbacks.
	Observer Observer
	// Tracer, when non-nil, receives typed telemetry events for every
	// stage of the session: session start/end, major-iteration boundaries
	// with convergence overlap, per-projection subspace-determination
	// timing, KDE grid builds, separator-decision wait time, density
	// selections, and per-iteration pruning. Nil (the default) is a
	// supported no-op: no clock reads, no allocations, no events. All
	// events are emitted from the session's driving goroutine, so with a
	// deterministic tracer clock the stream is byte-identical at any
	// worker count.
	Tracer telemetry.Tracer
}

func (c Config) withDefaults(n, d int) Config {
	if c.Mode == ModeArbitrary && c.AxisParallel {
		c.Mode = ModeAxis
	}
	if c.Support <= 0 {
		c.Support = d
	}
	if c.Support < d {
		c.Support = d
	}
	if c.Support > n {
		c.Support = n
	}
	if c.GridSize == 0 {
		c.GridSize = 48
	}
	if c.BandwidthScale == 0 {
		c.BandwidthScale = 1
	}
	if c.MaxMajorIterations == 0 {
		c.MaxMajorIterations = 8
	}
	if c.MinMajorIterations == 0 {
		c.MinMajorIterations = 2
	}
	if c.OverlapThreshold == 0 {
		c.OverlapThreshold = 0.9
	}
	return c
}

// Observer receives progress callbacks from a session. Either hook may be
// nil.
type Observer struct {
	// OnProfile fires after each minor iteration with the profile shown,
	// the user's decision, and the original IDs of the picked points.
	OnProfile func(p *VisualProfile, d Decision, pickedIDs []int)
	// OnMajorIteration fires after each major iteration with the
	// iteration number (1-based) and the running mean meaningfulness
	// probability per original ID.
	OnMajorIteration func(iter int, probs map[int]float64)
}

// Neighbor is one entry of the final answer: an original dataset row and
// its meaningfulness probability.
type Neighbor struct {
	ID          int
	Probability float64
}

// Result summarizes a completed session.
type Result struct {
	// Neighbors holds the s points with the highest meaningfulness
	// probability, in descending order.
	Neighbors []Neighbor
	// Probabilities maps every original row ID that survived at least
	// one iteration to its final (iteration-averaged) meaningfulness
	// probability. Rows removed early keep the average over the
	// iterations they participated in.
	Probabilities map[int]float64
	// Iterations is the number of major iterations executed.
	Iterations int
	// Converged reports whether the top-s overlap test triggered
	// termination (as opposed to the iteration cap).
	Converged bool
	// ViewsShown and ViewsAnswered count the minor iterations presented
	// to the user and those the user answered with a density separator
	// (rather than skipping). A low answered fraction is itself strong
	// evidence that the data supports no meaningful search (§4.2).
	ViewsShown, ViewsAnswered int
	// Diagnosis is the steep-drop verdict on the final probabilities.
	Diagnosis Diagnosis
}

// NaturalNeighbors returns the neighbors above the diagnosed steep drop —
// the "natural" query cluster of §4.1 — or nil when the search was
// diagnosed as not meaningful.
func (r *Result) NaturalNeighbors() []Neighbor {
	if !r.Diagnosis.Meaningful {
		return nil
	}
	ranked := rankProbabilities(r.Probabilities)
	if r.Diagnosis.NaturalSize < len(ranked) {
		ranked = ranked[:r.Diagnosis.NaturalSize]
	}
	return ranked
}

// Session runs the interactive nearest-neighbor loop of Figure 2 against
// a dataset and a single user.
type Session struct {
	cfg   Config
	user  User
	data  *dataset.View // current D (narrowed across major iterations)
	query linalg.Vector // ambient query

	// probSum accumulates Σ pᵢⱼ per original ID; probIters counts the
	// major iterations each ID participated in.
	probSum   map[int]float64
	probIters map[int]int
	iter      int
	originalN int

	viewsShown    int
	viewsAnswered int

	// arena recycles the per-minor complement-chain frames; scratch holds
	// the projection search's reusable candidate/coordinate buffers. Both
	// are single-owner (the goroutine driving the session) and never
	// change results — see dataset.Arena and searchScratch.
	arena   dataset.Arena
	scratch searchScratch

	// gen is the candidate-generation backend (Config.Index), nil when no
	// index is configured — the zero-overhead full-scan path.
	gen *candGen

	// coord is the scatter-gather coordinator (Config.Shards ≥ 2), nil on
	// the single-partition path — which therefore stays byte-identical to
	// a coordinator-free build.
	coord *shard.Coordinator

	prevTop   []int
	converged bool
	finished  bool

	// tr is the nil-safe tracer wrapper; traceStarted/traceEnded make the
	// session_start and session_end events exactly-once across Step calls
	// and error paths, and traceBegan anchors the session_end duration.
	tr           tracer
	traceStarted bool
	traceEnded   bool
	traceBegan   time.Time
	// lastViewSpan is the span ID of the view the user last answered
	// (the contest winner in ModeAuto), which the select event's span
	// links under. Only maintained while tracing; "" otherwise.
	lastViewSpan string

	// autoChoice is ModeAuto's family pick for the current major
	// iteration (set at the first minor iteration, reused afterwards):
	// one arbitrary view re-coordinatizes the complement into mixtures
	// and destroys axis semantics for every later view of the iteration,
	// so the family must be chosen once per sweep, where both candidates
	// are cleanest.
	autoChoice ProjectionMode
}

// NewSession validates the inputs and prepares a session. The session
// reads the dataset through a lightweight view of its immutable store —
// no point data is copied, the caller's dataset is never mutated, and any
// number of sessions may share one store concurrently.
func NewSession(ds *dataset.Dataset, query []float64, user User, cfg Config) (*Session, error) {
	if ds == nil || ds.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if ds.Dim() < 2 {
		return nil, fmt.Errorf("%w: need at least 2 dimensions", ErrDegenerateData)
	}
	if len(query) != ds.Dim() {
		return nil, fmt.Errorf("core: query dim %d, data dim %d", len(query), ds.Dim())
	}
	if !linalg.Vector(query).IsFinite() {
		return nil, errors.New("core: query has non-finite coordinates")
	}
	if user == nil {
		return nil, errors.New("core: nil user")
	}
	cfg = cfg.withDefaults(ds.N(), ds.Dim())
	gen, err := newCandGen(cfg.Index, cfg.Workers)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:       cfg,
		tr:        tracer{t: cfg.Tracer},
		user:      user,
		data:      ds.View(),
		query:     linalg.Vector(query).Clone(),
		probSum:   make(map[int]float64),
		probIters: make(map[int]int),
		originalN: ds.N(),
		gen:       gen,
	}
	if cfg.Shards > 1 {
		s.coord = shard.New(shard.Config{
			Shards:  cfg.Shards,
			Workers: cfg.Workers,
			Tracer:  cfg.Tracer,
			Cache:   cfg.IndexCache,
		})
	}
	if s.gen != nil {
		s.gen.tr = s.tr
		s.gen.coord = s.coord
		s.gen.cache = cfg.IndexCache
	}
	return s, nil
}

// Run executes major iterations until the termination criterion fires or
// the iteration cap is reached, then returns the ranked result. It is
// RunContext with a background context.
func (s *Session) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: a canceled context
// aborts the session between grid-row shards of the current density
// evaluation (and at every other pool checkpoint), returning ctx.Err().
// The partial probabilities accumulated so far remain readable through
// Result.
func (s *Session) RunContext(ctx context.Context) (*Result, error) {
	for {
		done, err := s.StepContext(ctx)
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result(), nil
		}
	}
}

// Step executes one major iteration — a full sweep of d/2 orthogonal
// projections plus the meaningfulness update — and reports whether the
// session has terminated (by convergence of the top-s set, by the
// iteration cap, or because the data has shrunk below usability). Hosts
// that want control between sweeps (progress UIs, budget checks) can call
// Step in their own loop and read Result at any point.
func (s *Session) Step() (done bool, err error) {
	return s.StepContext(context.Background())
}

// StepContext is Step with cooperative cancellation (see RunContext).
func (s *Session) StepContext(ctx context.Context) (done bool, err error) {
	if s.finished {
		return true, nil
	}
	if err := ctx.Err(); err != nil {
		s.traceEnd(err)
		return false, err
	}
	s.traceStart()
	var iterStart time.Time
	if s.tr.enabled() {
		iterStart = s.tr.now()
	}
	if err := s.runMajorIteration(ctx); err != nil {
		s.traceEnd(err)
		return false, err
	}
	top := s.topIDs(s.cfg.Support)
	// Overlap is computed once and reused by both the trace event and the
	// termination test so the two can never disagree.
	overlap := -1.0
	if s.prevTop != nil {
		overlap = stats.Overlap(s.prevTop, top)
	}
	if s.tr.enabled() {
		e := telemetry.Event{
			Time:       iterStart,
			Type:       telemetry.EventIteration,
			Major:      s.iter,
			DurationMS: s.tr.since(iterStart),
			N:          s.data.N(),
			Dim:        s.data.Dim(),
			Span:       roundSpanID(s.iter),
			Parent:     rootSpan,
		}
		if overlap >= 0 {
			e.Overlap = overlap
		}
		s.tr.emit(e)
	}
	if s.iter >= s.cfg.MinMajorIterations && s.prevTop != nil &&
		overlap >= s.cfg.OverlapThreshold {
		s.converged = true
		s.finished = true
		s.traceEnd(nil)
		return true, nil
	}
	s.prevTop = top
	if s.iter >= s.cfg.MaxMajorIterations || s.data.N() < 2 || s.data.Dim() < 2 {
		s.finished = true
		s.traceEnd(nil)
		return true, nil
	}
	return false, nil
}

// traceStart emits the session_start event exactly once, on the first
// iteration actually driven.
func (s *Session) traceStart() {
	if !s.tr.enabled() || s.traceStarted {
		return
	}
	s.traceStarted = true
	s.traceBegan = s.tr.now()
	s.tr.emit(telemetry.Event{
		Type:    telemetry.EventSessionStart,
		N:       s.data.N(),
		Dim:     s.data.Dim(),
		Workers: s.cfg.Workers,
		Shards:  s.cfg.Shards,
		Family:  s.cfg.Mode.traceName(),
		Parent:  rootSpan,
	})
}

// traceEnd emits the session_end event exactly once; err non-nil marks an
// aborted session. A session whose tracer never saw session_start (e.g.
// canceled before the first step) emits nothing.
func (s *Session) traceEnd(err error) {
	if !s.tr.enabled() || !s.traceStarted || s.traceEnded {
		return
	}
	s.traceEnded = true
	e := telemetry.Event{
		Time:          s.traceBegan, // span ends are back-stamped to their start
		Type:          telemetry.EventSessionEnd,
		DurationMS:    s.tr.since(s.traceBegan),
		Iterations:    s.iter,
		Converged:     s.converged,
		ViewsShown:    s.viewsShown,
		ViewsAnswered: s.viewsAnswered,
		N:             s.data.N(),
		Span:          rootSpan,
	}
	if err != nil {
		e.Err = err.Error()
	}
	s.tr.emit(e)
}

// traceName renders the projection mode for the session_start event.
func (m ProjectionMode) traceName() string {
	switch m {
	case ModeAxis:
		return "axis"
	case ModeAuto:
		return "auto"
	default:
		return "arbitrary"
	}
}

// Result ranks the current meaningfulness probabilities and diagnoses
// them. It may be called after any Step (or after Run, which calls it on
// termination); calling it mid-session yields the verdict as of the
// completed iterations.
func (s *Session) Result() *Result {
	return s.finish(s.converged)
}

// runMajorIteration performs one sweep of ⌊d/2⌋ mutually orthogonal
// projections, quantifies the user's coherence, and removes never-picked
// points.
func (s *Session) runMajorIteration(ctx context.Context) error {
	s.iter++
	d := s.data.Dim()
	n := s.data.N()

	// Current data and query in the shrinking coordinate system E_c.
	dc := s.data
	qc := s.query.Clone()

	counts := make([]float64, n) // by position in s.data
	var picks []PickStats
	psearch := ProjectionSearch{
		Support:     min(s.cfg.Support, n),
		Graded:      !s.cfg.DisableGrading,
		StageFactor: s.cfg.StageSupportFactor,
		Workers:     s.cfg.Workers,
		Exact:       s.cfg.ExactProjection,
		gen:         s.gen,
		coord:       s.coord,
	}
	if s.gen != nil {
		s.gen.major = s.iter
	}
	round := ""
	if s.tr.enabled() {
		round = roundSpanID(s.iter)
	}

	for minor := 1; minor <= d/2; minor++ {
		if dc.Dim() < 2 || dc.N() < 2 {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		profile, decision, err := s.presentView(ctx, dc, qc, psearch, minor, round)
		if err != nil {
			return fmt.Errorf("core: major %d minor %d: %w", s.iter, minor, err)
		}
		proj := profile.Projection

		s.viewsShown++
		var pickedIDs []int
		if !decision.Skip {
			s.viewsAnswered++
			var positions []int
			var selStart time.Time
			if s.tr.enabled() {
				selStart = s.tr.now()
			}
			if len(decision.Lines) > 0 {
				positions, err = profile.SelectLines(decision.Lines)
				if err != nil {
					return fmt.Errorf("core: polygonal selection: %w", err)
				}
				if s.tr.enabled() {
					s.tr.emit(telemetry.Event{
						Time: selStart,
						Type: telemetry.EventSelect, Major: s.iter, Minor: minor,
						DurationMS: s.tr.since(selStart), Picked: len(positions),
						Span: s.lastViewSpan + "/select", Parent: round,
					})
				}
			} else {
				var reg *grid.Region
				positions, reg, err = profile.selectAtRegion(ctx, s.cfg.Workers, decision.Tau)
				if err != nil {
					return fmt.Errorf("core: select at τ=%v: %w", decision.Tau, err)
				}
				if s.tr.enabled() {
					s.tr.emit(telemetry.Event{
						Time: selStart,
						Type: telemetry.EventSelect, Major: s.iter, Minor: minor,
						DurationMS: s.tr.since(selStart), Tau: decision.Tau,
						Cells: reg.Cells, Examined: reg.Examined, Picked: len(positions),
						Span: s.lastViewSpan + "/select", Parent: round,
					})
				}
			}
			w := decision.Weight
			if w == 0 {
				w = 1
			}
			for _, pos := range positions {
				counts[pos] += w
				pickedIDs = append(pickedIDs, dc.ID(pos))
			}
			picks = append(picks, PickStats{Picked: len(positions), Weight: w})
		} else {
			picks = append(picks, PickStats{Picked: 0, Weight: 1})
		}

		if s.cfg.Observer.OnProfile != nil {
			s.cfg.Observer.OnProfile(profile, decision, pickedIDs)
		}

		if dc.Dim() == 2 {
			break // the whole space has been shown
		}
		complement, err := proj.Complement(linalg.FullSpace(dc.Dim()))
		if err != nil {
			return fmt.Errorf("core: complement: %w", err)
		}
		// The next frame materializes eagerly from the current one; the
		// current frame's coordinates are dead after that and its buffer
		// goes back to the arena for the frame after next. (Reclaim is a
		// no-op on the first frame, the ambient s.data view.)
		next, err := dc.ComposeArenaContext(ctx, s.cfg.Workers, complement, &s.arena)
		if err != nil {
			return fmt.Errorf("core: reproject data: %w", err)
		}
		dc.Reclaim()
		dc = next
		qc = complement.Project(qc)
	}
	dc.Reclaim()

	probs := QuantifyMeaningfulness(counts, n, picks)
	for pos, p := range probs {
		id := s.data.ID(pos)
		s.probSum[id] += p
		s.probIters[id]++
	}
	if s.cfg.Observer.OnMajorIteration != nil {
		s.cfg.Observer.OnMajorIteration(s.iter, s.meanProbs())
	}

	// Remove points never picked this iteration — unless nothing was
	// picked at all (the user skipped everything), which carries no
	// information about any individual point.
	totalPicked := 0
	for _, p := range picks {
		totalPicked += p.Picked
	}
	dropped := 0
	if totalPicked > 0 {
		var keep []int
		for pos := range counts {
			if counts[pos] > 0 {
				keep = append(keep, pos)
			}
		}
		if len(keep) >= 2 {
			kept, err := s.data.Narrow(keep)
			if err != nil {
				return fmt.Errorf("core: prune: %w", err)
			}
			s.data = kept
			dropped = n - len(keep)
		}
	}
	if s.tr.enabled() {
		s.tr.emit(telemetry.Event{
			Type:    telemetry.EventPointsDropped,
			Major:   s.iter,
			Dropped: dropped,
			N:       s.data.N(),
			Parent:  round,
		})
	}
	return nil
}

// presentView determines the next query-centered projection per the
// session's mode, builds its visual profile, and collects the user's
// decision.
//
// In ModeAuto the choice between projection families is made by the user
// on the first view of each major iteration: the interpretable
// axis-parallel view is shown first and, if the user skips it, the
// arbitrary view is offered; whichever family the user answers drives the
// rest of the sweep (one arbitrary view re-coordinatizes the complement
// into mixtures, destroying axis semantics for later views, so the family
// cannot change mid-iteration). Automating this contest is a trap — every
// tightness-style statistic is optimistically biased toward the more
// expressive arbitrary family — and judging views is exactly what the
// paper keeps the human for.
func (s *Session) presentView(ctx context.Context, dc *dataset.View, qc linalg.Vector, psearch ProjectionSearch, minor int, round string) (*VisualProfile, Decision, error) {
	if s.gen != nil {
		s.gen.minor = minor
	}
	var families []bool // axis-parallel?
	switch {
	case s.cfg.Mode == ModeAxis:
		families = []bool{true}
	case s.cfg.Mode == ModeArbitrary:
		families = []bool{false}
	case minor == 1: // ModeAuto, family contest
		families = []bool{true, false}
	default: // ModeAuto, family locked for this sweep
		families = []bool{s.autoChoice == ModeAxis}
	}

	type candidate struct {
		profile  *VisualProfile
		decision Decision
		axis     bool
		span     string // the view's span ID ("" when untraced)
	}
	var cands []candidate
	for _, axis := range families {
		psearch.AxisParallel = axis
		family := "arbitrary"
		if axis {
			family = "axis"
		}
		var t0 time.Time
		var view string
		if s.tr.enabled() {
			t0 = s.tr.now()
			view = viewSpanID(round, minor, family)
			// The stage trace lets findProjectionDim emit one
			// projection_stage event per halving stage with this view's
			// iteration coordinates stamped on; the stage trace's span and
			// the coordinator/candidate-generator parents nest every
			// downstream event under this view's /proj span until the
			// profile build re-parents them under /kde.
			psearch.trace = &stageTrace{tr: s.tr, major: s.iter, minor: minor, family: family, span: view + "/proj"}
			s.setStageSpan(view + "/proj")
		}
		proj, err := findProjectionDim(ctx, dc, qc, psearch, 2, &s.scratch)
		if err != nil {
			if len(families) > 1 && ctx.Err() == nil {
				continue // the other family may still work
			}
			return nil, Decision{}, err
		}
		var t1 time.Time
		if s.tr.enabled() {
			t1 = s.tr.now()
			s.tr.emit(telemetry.Event{
				Time: t0,
				Type: telemetry.EventProjection, Major: s.iter, Minor: minor,
				Family: family, Dim: dc.Dim(), N: dc.N(),
				DurationMS: float64(t1.Sub(t0)) / float64(time.Millisecond),
				Span:       view + "/proj", Parent: view,
			})
			s.setStageSpan(view + "/kde")
		}
		profile, err := buildProfile(ctx, dc, qc, proj, psearch.Support, kde.Options{
			GridSize:       s.cfg.GridSize,
			BandwidthScale: s.cfg.BandwidthScale,
			Workers:        s.cfg.Workers,
			Clock:          s.tr.clock(),
		}, &s.scratch, s.gen, s.coord)
		if err != nil {
			return nil, Decision{}, err
		}
		profile.Major = s.iter
		profile.Minor = minor
		profile.OriginalN = s.originalN
		var t2 time.Time
		if s.tr.enabled() {
			t2 = s.tr.now()
			s.tr.emit(telemetry.Event{
				Time: t1,
				Type: telemetry.EventKDEBuild, Major: s.iter, Minor: minor,
				GridSize: profile.Grid.P, N: dc.N(),
				DurationMS: float64(t2.Sub(t1)) / float64(time.Millisecond),
				KDEBuildMS: float64(profile.Grid.BuildTime) / float64(time.Millisecond),
				Span:       view + "/kde", Parent: view,
			})
			s.tr.emit(telemetry.Event{
				Time: t0,
				Type: telemetry.EventView, Major: s.iter, Minor: minor,
				Family: family, N: dc.N(), Dim: dc.Dim(),
				DurationMS: float64(t2.Sub(t0)) / float64(time.Millisecond),
				Span:       view, Parent: round,
			})
		}
		decision := s.user.SeparateCluster(profile, func(tau float64) *grid.Region {
			reg, err := profile.Region(tau)
			if err != nil {
				return nil
			}
			return reg
		})
		if s.tr.enabled() {
			// The wait span is a sibling of the view under the round: its
			// duration is user think time, not view construction, and
			// keeping it out of the view span keeps the critical path's
			// compute/wait split honest.
			s.tr.emit(telemetry.Event{
				Time: t2,
				Type: telemetry.EventDecisionWait, Major: s.iter, Minor: minor,
				Family: family, Skipped: decision.Skip,
				DurationMS: s.tr.since(t2),
				Span:       view + "/wait", Parent: round,
			})
		}
		cands = append(cands, candidate{profile, decision, axis, view})
	}
	if len(cands) == 0 {
		return nil, Decision{}, fmt.Errorf("core: no projection family usable")
	}
	// Contest refereeing (only ever more than one candidate in ModeAuto's
	// first minor iteration): an answered view beats a skipped one;
	// between two answered views the higher user confidence wins; the
	// interpretable axis family wins ties.
	best := 0
	for i := 1; i < len(cands); i++ {
		b, c := cands[best], cands[i]
		switch {
		case b.decision.Skip && !c.decision.Skip:
			best = i
		case !b.decision.Skip && !c.decision.Skip &&
			c.decision.Confidence > b.decision.Confidence:
			best = i
		}
	}
	if s.cfg.Mode == ModeAuto && minor == 1 {
		if cands[best].axis {
			s.autoChoice = ModeAxis
		} else {
			s.autoChoice = ModeArbitrary
		}
	}
	s.lastViewSpan = cands[best].span
	return cands[best].profile, cands[best].decision, nil
}

// setStageSpan re-parents the coordinator's scatters and the candidate
// generator's events under the given stage span. Only called while
// tracing; the untraced session never builds span strings.
func (s *Session) setStageSpan(span string) {
	if s.coord != nil {
		s.coord.SetSpan(span)
	}
	if s.gen != nil {
		s.gen.span = span
	}
}

// meanProbs returns the per-ID mean meaningfulness probability so far.
func (s *Session) meanProbs() map[int]float64 {
	out := make(map[int]float64, len(s.probSum))
	for id, sum := range s.probSum {
		out[id] = sum / float64(s.probIters[id])
	}
	return out
}

// topIDs returns the k IDs with the highest mean probability.
func (s *Session) topIDs(k int) []int {
	ranked := rankProbabilities(s.meanProbs())
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ranked[i].ID
	}
	return out
}

func (s *Session) finish(converged bool) *Result {
	probs := s.meanProbs()
	ranked := rankProbabilities(probs)
	k := s.cfg.Support
	if k > len(ranked) {
		k = len(ranked)
	}
	values := make([]float64, len(ranked))
	for i, nb := range ranked {
		values[i] = nb.Probability
	}
	diag := Diagnose(values, s.cfg.Diagnosis)
	// A user who skipped nearly every view has declared the data
	// undiagnosable by inspection; the probability profile alone (often
	// just the query's own trivial coherence) must not override that.
	minAnswered := s.cfg.Diagnosis.withDefaults().MinAnsweredFrac
	if s.viewsShown > 0 && float64(s.viewsAnswered) < minAnswered*float64(s.viewsShown) {
		diag.Meaningful = false
		diag.NaturalSize = 0
		diag.Threshold = 0
	}
	return &Result{
		Neighbors:     ranked[:k],
		Probabilities: probs,
		Iterations:    s.iter,
		Converged:     converged,
		Diagnosis:     diag,
		ViewsShown:    s.viewsShown,
		ViewsAnswered: s.viewsAnswered,
	}
}

// rankProbabilities sorts (ID, probability) pairs by descending
// probability with ascending-ID tie-breaks.
func rankProbabilities(probs map[int]float64) []Neighbor {
	ids := make([]int, 0, len(probs))
	for id := range probs {
		ids = append(ids, id)
	}
	// Deterministic order before ranking.
	sort.Ints(ids)
	vals := make([]float64, len(ids))
	for i, id := range ids {
		vals[i] = probs[id]
	}
	order := stats.ArgsortDesc(vals)
	out := make([]Neighbor, len(ids))
	for rank, idx := range order {
		out[rank] = Neighbor{ID: ids[idx], Probability: vals[idx]}
	}
	return out
}
