// Package vafile implements the vector-approximation file of Weber,
// Schek & Blott (VLDB 1998) — reference [27] of the paper and the
// representative "fast but metric-bound" high-dimensional access method
// its motivation addresses. Each point is compressed to a few bits per
// dimension; a k-NN query scans the small approximation file computing
// lower/upper distance bounds and only fetches the exact vectors of
// candidates whose lower bound beats the current k-th upper bound.
//
// The index is exact (it returns the true L2 nearest neighbors) and fast,
// which is precisely the paper's point: speed does not make the answer
// meaningful. The experiments use it to show that the fraction of
// approximations surviving the filter grows with dimensionality — the
// curse hits the index, not just the scan. Since the candidate-generation
// refactor it is also a first-class session backend (internal/index),
// built zero-copy over a dataset view.
package vafile

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// ErrBadBits is returned for unusable per-dimension bit widths.
var ErrBadBits = errors.New("vafile: bits per dimension must be in [1, 16]")

// Source is the row-accessor interface the index builds over and refines
// against: any indexed collection of points with original row IDs. Both
// *dataset.Dataset and *dataset.View satisfy it, so the build reads rows
// in place from the shared immutable store — no per-row copies.
type Source interface {
	N() int
	Dim() int
	Point(i int) linalg.Vector
	ID(i int) int
}

// ctxCheckEvery is how many rows a scan processes between context polls.
const ctxCheckEvery = 1024

// blockRows is the row-block width of the phase-1 scan: 1024 running
// float64 bounds (8 KiB) stay resident in L1 while the consulted cell
// columns stream past.
const blockRows = 1024

// Index is a VA-file over a point source.
type Index struct {
	src  Source
	bits int
	// bounds[j] holds the 2^bits+1 partition boundaries of dimension j.
	bounds [][]float64
	// cells is column-major: cells[j*n+i] is the cell index of point i
	// in dimension j. Dimension-major storage lets an axis-subspace scan
	// stream exactly the consulted columns instead of faulting in every
	// row's cache line.
	cells []uint16
	dim   int
}

// Stats reports the work a query did.
type Stats struct {
	// Scanned is the number of approximations examined (always N).
	Scanned int
	// Refined is the number of exact vectors fetched — the candidates
	// whose lower bound beat the running k-th upper bound.
	Refined int
}

// Build constructs the index with the given bits per dimension, using
// equally spaced partition boundaries over each dimension's range (the
// original paper's default). It is BuildContext with a background context.
func Build(src Source, bits int) (*Index, error) {
	return BuildContext(context.Background(), src, bits)
}

// BuildContext is Build with cooperative cancellation: the quantization
// pass polls ctx between row blocks. Rows are read in place through the
// source accessor; the only allocations are the boundary tables and the
// packed cell array, so build cost is O(1) allocations per dimension —
// never per row.
func BuildContext(ctx context.Context, src Source, bits int) (*Index, error) {
	if src == nil || src.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: %d", ErrBadBits, bits)
	}
	n := src.N()
	d := src.Dim()
	cellsPerDim := 1 << bits
	idx := &Index{src: src, bits: bits, dim: d}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for j, x := range src.Point(i) {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	idx.bounds = make([][]float64, d)
	for j := 0; j < d; j++ {
		b := make([]float64, cellsPerDim+1)
		span := hi[j] - lo[j]
		if span == 0 {
			span = 1 // constant attribute: all points share cell 0
		}
		for c := 0; c <= cellsPerDim; c++ {
			b[c] = lo[j] + span*float64(c)/float64(cellsPerDim)
		}
		idx.bounds[j] = b
	}
	// Quantize by direct arithmetic: the grid is equally spaced, so the
	// cell is floor((x−lo)·cells/span) up to floating-point rounding,
	// which the two nudge loops repair against the stored boundaries —
	// the exact cell a binary search over bounds[j] would return, at a
	// fraction of the cost of one (this loop touches every value once
	// per build and dominated build profiles as a search).
	inv := make([]float64, d)
	for j := 0; j < d; j++ {
		inv[j] = float64(cellsPerDim) / (idx.bounds[j][cellsPerDim] - idx.bounds[j][0])
	}
	idx.cells = make([]uint16, n*d)
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p := src.Point(i)
		for j := 0; j < d; j++ {
			b := idx.bounds[j]
			c := int((p[j] - b[0]) * inv[j])
			if c > cellsPerDim-1 {
				c = cellsPerDim - 1
			} else if c < 0 {
				c = 0
			}
			x := p[j]
			for c < cellsPerDim-1 && x >= b[c+1] {
				c++
			}
			for c > 0 && x < b[c] {
				c--
			}
			idx.cells[j*n+i] = uint16(c)
		}
	}
	return idx, nil
}

// N returns the number of indexed points.
func (idx *Index) N() int { return idx.src.N() }

// Bits returns the per-dimension approximation width.
func (idx *Index) Bits() int { return idx.bits }

// Neighbor is one k-NN result.
type Neighbor struct {
	Pos  int
	ID   int
	Dist float64
}

// resultHeap keeps the k best candidates with the worst on top, ordered
// lexicographically by (Dist, Pos) so distance ties resolve to the lowest
// position — the same strict total order the engine's top-s selection
// uses, which is what makes the returned k-set deterministic. Hand rolled
// rather than container/heap so pushes do not box each Neighbor in an
// interface and the comparison inlines into the sifts.
type resultHeap []Neighbor

// worse reports whether entry i sits above entry j in heap order.
func (h resultHeap) worse(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].Pos > h[j].Pos
}

func (h resultHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.worse(i, p) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (h resultHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.worse(r, l) {
			m = r
		}
		if !h.worse(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Derive builds a child index over a row subset of parent's source in
// O(n′·d) cell gathers — no re-quantization, no source pass. It is
// DeriveContext with a background context.
func Derive(parent *Index, child Source, rows []int) (*Index, error) {
	return DeriveContext(context.Background(), parent, child, rows)
}

// DeriveContext filters the parent's approximation array down to child:
// rows[t] is the parent position of child row t. The child shares the
// parent's partition boundaries, so its cells may span a wider range than
// a fresh build's would — that only loosens the scan's distance bounds
// (more refinement work in the worst case), never the answer, because the
// VA-file filter is correct for any boundaries that contain the data.
// Both indexes are exact, so derived and fresh-built return identical
// neighbor sets.
func DeriveContext(ctx context.Context, parent *Index, child Source, rows []int) (*Index, error) {
	if parent == nil {
		return nil, errors.New("vafile: nil parent")
	}
	if child == nil || child.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if child.N() != len(rows) {
		return nil, fmt.Errorf("vafile: child has %d rows, mapping has %d", child.N(), len(rows))
	}
	if child.Dim() != parent.dim {
		return nil, fmt.Errorf("vafile: child dim %d, parent dim %d", child.Dim(), parent.dim)
	}
	d := parent.dim
	pn := len(parent.cells) / d
	cn := len(rows)
	for _, r := range rows {
		if r < 0 || r >= pn {
			return nil, fmt.Errorf("vafile: derive row %d outside parent range [0, %d)", r, pn)
		}
	}
	idx := &Index{src: child, bits: parent.bits, bounds: parent.bounds, dim: d}
	idx.cells = make([]uint16, cn*d)
	for j := 0; j < d; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pcol := parent.cells[j*pn : (j+1)*pn : (j+1)*pn]
		ccol := idx.cells[j*cn : (j+1)*cn : (j+1)*cn]
		for t, r := range rows {
			ccol[t] = pcol[r]
		}
	}
	return idx, nil
}

// Search returns the exact k nearest neighbors of query under L2. It is
// SearchContext with a background context.
func (idx *Index) Search(query []float64, k int) ([]Neighbor, Stats, error) {
	return idx.SearchContext(context.Background(), query, k)
}

// SearchContext returns the exact k nearest neighbors of query under L2,
// two-phase: scan approximations accumulating candidates whose lower
// bound beats the running k-th smallest upper bound, then refine
// candidates in ascending lower-bound order. Both phases poll ctx between
// row blocks and return its error once canceled.
func (idx *Index) SearchContext(ctx context.Context, query []float64, k int) ([]Neighbor, Stats, error) {
	if len(query) != idx.dim {
		return nil, Stats{}, fmt.Errorf("vafile: query dim %d, index dim %d", len(query), idx.dim)
	}
	return idx.search(ctx, query, nil, k)
}

// SearchAxis returns the exact k nearest neighbors of qaxis under L2
// restricted to the axis-aligned subspace spanned by axes. It is
// SearchAxisContext with a background context.
func (idx *Index) SearchAxis(qaxis []float64, axes []int, k int) ([]Neighbor, Stats, error) {
	return idx.SearchAxisContext(context.Background(), qaxis, axes, k)
}

// SearchAxisContext runs the same two-phase filter over only the masked
// dimensions: qaxis[j] is the query coordinate along original attribute
// axes[j], and both the approximation bounds and the refinement distance
// sum over exactly those attributes. The per-dimension structure of the
// VA-file makes the mask free — the unmasked cells are simply skipped —
// which is what lets the engine consult the index on axis subspaces
// instead of falling back to the exact scan.
func (idx *Index) SearchAxisContext(ctx context.Context, qaxis []float64, axes []int, k int) ([]Neighbor, Stats, error) {
	if len(qaxis) != len(axes) {
		return nil, Stats{}, fmt.Errorf("vafile: query dim %d, axis mask %d", len(qaxis), len(axes))
	}
	if len(axes) == 0 {
		return nil, Stats{}, errors.New("vafile: empty axis mask")
	}
	for _, a := range axes {
		if a < 0 || a >= idx.dim {
			return nil, Stats{}, fmt.Errorf("vafile: axis %d outside [0, %d)", a, idx.dim)
		}
	}
	return idx.search(ctx, qaxis, axes, k)
}

// search is the shared two-phase scan. A nil axes mask means all
// dimensions in natural order (q is then a full-dimensional query).
//
// All bound and distance comparisons run in squared space: squaring is
// strictly monotone on non-negative reals, so the filter decisions and
// the selected k-set are identical to the sqrt formulation while the hot
// loops do no math.Sqrt at all — one sqrt per returned neighbor at the
// end.
//
// Phase 1 computes only squared LOWER bounds, through one per-query
// lookup table indexed by (queried dimension, cell): the per-row cost is
// one uint16 load, one table load, and one add per dimension, split
// across two accumulators so consecutive dimensions overlap instead of
// serializing on the add latency. No upper bounds are tracked — phase 2
// refines rows in ascending (lower, pos) order out of a lazy min-heap
// and stops as soon as the smallest unrefined lower bound exceeds the
// k-th best EXACT distance, a cutoff at least as tight as the classic
// k-th-upper-bound filter (actual distances never exceed upper bounds),
// so the refined set is never larger and the k-set is identical.
func (idx *Index) search(ctx context.Context, q []float64, axes []int, k int) ([]Neighbor, Stats, error) {
	if k <= 0 {
		return nil, Stats{}, errors.New("vafile: k must be positive")
	}
	n := idx.src.N()
	if k > n {
		k = n
	}
	dim := idx.dim
	cpd := 1 << idx.bits
	nq := dim
	if axes != nil {
		nq = len(axes)
	}
	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)

	// Squared lower-bound contribution of each (queried dimension, cell).
	loT := sc.grow(&sc.loT, nq*cpd)
	for jj := 0; jj < nq; jj++ {
		a := jj
		if axes != nil {
			a = axes[jj]
		}
		b := idx.bounds[a]
		qv := q[jj]
		row := loT[jj*cpd : (jj+1)*cpd : (jj+1)*cpd]
		for c := 0; c < cpd; c++ {
			cellLo, cellHi := b[c], b[c+1]
			var dl float64
			switch {
			case qv < cellLo:
				dl = cellLo - qv
			case qv > cellHi:
				dl = qv - cellHi
			}
			row[c] = dl * dl
		}
	}

	// Phase 1: the squared lower bound of every row, accumulated
	// dimension-major over the column-major cell array in row blocks
	// sized so the running bounds stay in L1. The scan's memory traffic
	// is exactly the m consulted columns — 2·m·n bytes, streamed
	// sequentially — so a 2-dimension subspace scan touches 1/32nd of the
	// approximation file where a row-major layout would fault in every
	// row's cache line regardless of m. Each row's bound accumulates in
	// strict dimension order, so bounds are deterministic for a given
	// index.
	lowers := sc.grow(&sc.lowers, n)
	cells := idx.cells
	for b0 := 0; b0 < n; b0 += blockRows {
		if err := ctx.Err(); err != nil {
			return nil, Stats{}, err
		}
		b1 := b0 + blockRows
		if b1 > n {
			b1 = n
		}
		blk := lowers[b0:b1]
		for jj := 0; jj < nq; jj++ {
			a := jj
			if axes != nil {
				a = axes[jj]
			}
			col := cells[a*n+b0 : a*n+b1 : a*n+b1]
			row := loT[jj*cpd : (jj+1)*cpd : (jj+1)*cpd]
			if jj == 0 {
				// The first column initializes the block, sparing a
				// separate zeroing pass.
				for t, c := range col {
					blk[t] = row[c]
				}
				continue
			}
			for t, c := range col {
				blk[t] += row[c]
			}
		}
	}

	// Phase 2a: refine the k rows with the smallest (lower, pos) keys,
	// found with a bounded max-heap in one sequential pass (no full
	// heapify of n entries — on large views that random-access heapify
	// costs more than the bound scan itself). Their k-th best EXACT
	// squared distance is then a correct refinement cutoff τ: for any
	// true neighbor r, lower(r) ≤ d(r) ≤ τ.
	seed := sc.growSeed(k)[:0]
	cut := math.Inf(1)
	for i, lo2 := range lowers {
		if lo2 > cut {
			continue
		}
		if len(seed) < k {
			seed = append(seed, seedEntry{lower: lo2, pos: int32(i)})
			if len(seed) == k {
				for j := k/2 - 1; j >= 0; j-- {
					seedSiftDown(seed, j)
				}
				cut = seed[0].lower
			}
		} else if lo2 < cut || (lo2 == cut && int32(i) < seed[0].pos) {
			seed[0] = seedEntry{lower: lo2, pos: int32(i)}
			seedSiftDown(seed, 0)
			cut = seed[0].lower
		}
	}
	best := make(resultHeap, 0, k+1)
	refined := 0
	refine := func(pos int) {
		refined++
		p := idx.src.Point(pos)
		var d2 float64
		if axes == nil {
			for j, qv := range q {
				dv := qv - p[j]
				d2 += dv * dv
			}
		} else {
			for jj, a := range axes {
				dv := q[jj] - p[a]
				d2 += dv * dv
			}
		}
		if len(best) < k {
			best = append(best, Neighbor{Pos: pos, ID: idx.src.ID(pos), Dist: d2})
			best.siftUp(len(best) - 1)
		} else if d2 < best[0].Dist || (d2 == best[0].Dist && pos < best[0].Pos) {
			best[0] = Neighbor{Pos: pos, ID: idx.src.ID(pos), Dist: d2}
			best.siftDown(0)
		}
	}
	for _, e := range seed {
		refine(int(e.pos))
	}
	tau := best[0].Dist
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	// Phase 2b: any row outside the seed whose lower bound is within τ can
	// still displace a seed from the answer. Collect them (there are about
	// as many as the seeds on well-separated data), refine in ascending
	// (lower, pos) order, and stop as soon as the smallest unrefined lower
	// bound exceeds the running k-th best exact distance — a cutoff at
	// least as tight as the classic k-th-upper-bound filter.
	seedPos := sc.growHeap(k)[:0]
	for _, e := range seed {
		seedPos = append(seedPos, e.pos)
	}
	sort.Slice(seedPos, func(a, b int) bool { return seedPos[a] < seedPos[b] })
	extras := sc.extras[:0]
	sp := 0
	for i, lo2 := range lowers {
		if sp < len(seedPos) && seedPos[sp] == int32(i) {
			sp++ // already refined as a seed
			continue
		}
		if lo2 > tau {
			continue
		}
		extras = append(extras, seedEntry{lower: lo2, pos: int32(i)})
	}
	sort.Slice(extras, func(a, b int) bool {
		if extras[a].lower != extras[b].lower {
			return extras[a].lower < extras[b].lower
		}
		return extras[a].pos < extras[b].pos
	})
	for _, e := range extras {
		if e.lower > best[0].Dist {
			break // no remaining row can improve the answer
		}
		refine(int(e.pos))
	}
	sc.extras = extras[:0]

	out := []Neighbor(best)
	for i := range out {
		out[i].Dist = math.Sqrt(out[i].Dist)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Pos < out[b].Pos
	})
	return out, Stats{Scanned: n, Refined: refined}, nil
}

// searchScratch holds a query's working buffers — the lower-bound table,
// the per-row lower bounds, and the refinement heap. They are pooled
// across searches (and across concurrently searching goroutines) because
// every entry is overwritten before it is read: without the pool a
// session's hundreds of scans allocate — and zero — hundreds of
// megabytes the results never see.
type searchScratch struct {
	loT    []float64
	lowers []float64
	heap   []int32
	seed   []seedEntry
	extras []seedEntry
}

var scratchPool = sync.Pool{New: func() interface{} { return new(searchScratch) }}

// grow returns (*buf)[:n], reallocating only when the capacity is short.
// The contents are unspecified; callers fully overwrite them.
func (sc *searchScratch) grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

func (sc *searchScratch) growHeap(n int) []int32 {
	if cap(sc.heap) < n {
		sc.heap = make([]int32, n)
	}
	return sc.heap[:n]
}

func (sc *searchScratch) growSeed(n int) []seedEntry {
	if cap(sc.seed) < n {
		sc.seed = make([]seedEntry, n)
	}
	return sc.seed[:n]
}

// seedEntry / seedSiftDown implement the bounded max-heap of the k
// smallest (lower, pos) keys: the worst seed sits on top, ordered
// lexicographically so ties resolve to the lowest position. Hand rolled
// (not container/heap) so the comparison inlines into the sift.
type seedEntry struct {
	lower float64
	pos   int32
}

func seedSiftDown(h []seedEntry, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && seedGreater(h[r], h[l]) {
			m = r
		}
		if !seedGreater(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func seedGreater(a, b seedEntry) bool {
	if a.lower != b.lower {
		return a.lower > b.lower
	}
	return a.pos > b.pos
}
