// Package vafile implements the vector-approximation file of Weber,
// Schek & Blott (VLDB 1998) — reference [27] of the paper and the
// representative "fast but metric-bound" high-dimensional access method
// its motivation addresses. Each point is compressed to a few bits per
// dimension; a k-NN query scans the small approximation file computing
// lower/upper distance bounds and only fetches the exact vectors of
// candidates whose lower bound beats the current k-th upper bound.
//
// The index is exact (it returns the true L2 nearest neighbors) and fast,
// which is precisely the paper's point: speed does not make the answer
// meaningful. The experiments use it to show that the fraction of
// approximations surviving the filter grows with dimensionality — the
// curse hits the index, not just the scan. Since the candidate-generation
// refactor it is also a first-class session backend (internal/index),
// built zero-copy over a dataset view.
package vafile

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"innsearch/internal/dataset"
	"innsearch/internal/linalg"
)

// ErrBadBits is returned for unusable per-dimension bit widths.
var ErrBadBits = errors.New("vafile: bits per dimension must be in [1, 16]")

// Source is the row-accessor interface the index builds over and refines
// against: any indexed collection of points with original row IDs. Both
// *dataset.Dataset and *dataset.View satisfy it, so the build reads rows
// in place from the shared immutable store — no per-row copies.
type Source interface {
	N() int
	Dim() int
	Point(i int) linalg.Vector
	ID(i int) int
}

// ctxCheckEvery is how many rows a scan processes between context polls.
const ctxCheckEvery = 1024

// Index is a VA-file over a point source.
type Index struct {
	src  Source
	bits int
	// bounds[j] holds the 2^bits+1 partition boundaries of dimension j.
	bounds [][]float64
	// cells[i*dim+j] is the cell index of point i in dimension j.
	cells []uint16
	dim   int
}

// Stats reports the work a query did.
type Stats struct {
	// Scanned is the number of approximations examined (always N).
	Scanned int
	// Refined is the number of exact vectors fetched — the candidates
	// whose lower bound beat the running k-th upper bound.
	Refined int
}

// Build constructs the index with the given bits per dimension, using
// equally spaced partition boundaries over each dimension's range (the
// original paper's default). It is BuildContext with a background context.
func Build(src Source, bits int) (*Index, error) {
	return BuildContext(context.Background(), src, bits)
}

// BuildContext is Build with cooperative cancellation: the quantization
// pass polls ctx between row blocks. Rows are read in place through the
// source accessor; the only allocations are the boundary tables and the
// packed cell array, so build cost is O(1) allocations per dimension —
// never per row.
func BuildContext(ctx context.Context, src Source, bits int) (*Index, error) {
	if src == nil || src.N() == 0 {
		return nil, dataset.ErrEmpty
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("%w: %d", ErrBadBits, bits)
	}
	n := src.N()
	d := src.Dim()
	cellsPerDim := 1 << bits
	idx := &Index{src: src, bits: bits, dim: d}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for j, x := range src.Point(i) {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	idx.bounds = make([][]float64, d)
	for j := 0; j < d; j++ {
		b := make([]float64, cellsPerDim+1)
		span := hi[j] - lo[j]
		if span == 0 {
			span = 1 // constant attribute: all points share cell 0
		}
		for c := 0; c <= cellsPerDim; c++ {
			b[c] = lo[j] + span*float64(c)/float64(cellsPerDim)
		}
		idx.bounds[j] = b
	}
	idx.cells = make([]uint16, n*d)
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p := src.Point(i)
		for j := 0; j < d; j++ {
			idx.cells[i*d+j] = idx.cellOf(j, p[j])
		}
	}
	return idx, nil
}

// cellOf locates the cell of value x in dimension j.
func (idx *Index) cellOf(j int, x float64) uint16 {
	b := idx.bounds[j]
	// Binary search for the rightmost boundary ≤ x.
	c := sort.SearchFloat64s(b, x)
	if c > 0 && (c >= len(b) || b[c] != x) {
		c--
	}
	if c >= len(b)-1 {
		c = len(b) - 2
	}
	return uint16(c)
}

// N returns the number of indexed points.
func (idx *Index) N() int { return idx.src.N() }

// Bits returns the per-dimension approximation width.
func (idx *Index) Bits() int { return idx.bits }

// Neighbor is one k-NN result.
type Neighbor struct {
	Pos  int
	ID   int
	Dist float64
}

// resultHeap keeps the k best candidates with the worst on top, ordered
// lexicographically by (Dist, Pos) so distance ties resolve to the lowest
// position — the same strict total order the engine's top-s selection
// uses, which is what makes the returned k-set deterministic.
type resultHeap []Neighbor

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].Pos > h[j].Pos
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Search returns the exact k nearest neighbors of query under L2. It is
// SearchContext with a background context.
func (idx *Index) Search(query []float64, k int) ([]Neighbor, Stats, error) {
	return idx.SearchContext(context.Background(), query, k)
}

// SearchContext returns the exact k nearest neighbors of query under L2,
// two-phase: scan approximations accumulating candidates whose lower
// bound beats the running k-th smallest upper bound, then refine
// candidates in ascending lower-bound order. Both phases poll ctx between
// row blocks and return its error once canceled.
func (idx *Index) SearchContext(ctx context.Context, query []float64, k int) ([]Neighbor, Stats, error) {
	if len(query) != idx.dim {
		return nil, Stats{}, fmt.Errorf("vafile: query dim %d, index dim %d", len(query), idx.dim)
	}
	if k <= 0 {
		return nil, Stats{}, errors.New("vafile: k must be positive")
	}
	n := idx.src.N()
	if k > n {
		k = n
	}

	// Phase 1: bounds from approximations.
	type cand struct {
		pos   int
		lower float64
	}
	cands := make([]cand, 0, n)
	// Track the k-th smallest upper bound seen so far.
	upperHeap := make(resultHeap, 0, k+1)
	lowers := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, Stats{}, err
			}
		}
		lb, ub := idx.boundsFor(i, query)
		lowers[i] = lb
		if len(upperHeap) < k {
			heap.Push(&upperHeap, Neighbor{Pos: i, Dist: ub})
		} else if ub < upperHeap[0].Dist {
			upperHeap[0] = Neighbor{Pos: i, Dist: ub}
			heap.Fix(&upperHeap, 0)
		}
	}
	kthUpper := upperHeap[0].Dist
	for i := 0; i < n; i++ {
		if lowers[i] <= kthUpper {
			cands = append(cands, cand{pos: i, lower: lowers[i]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].lower != cands[b].lower {
			return cands[a].lower < cands[b].lower
		}
		return cands[a].pos < cands[b].pos
	})

	// Phase 2: refine in lower-bound order with early termination.
	best := make(resultHeap, 0, k+1)
	refined := 0
	for ci, c := range cands {
		if ci%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, Stats{}, err
			}
		}
		if len(best) == k && c.lower > best[0].Dist {
			break // no remaining candidate can improve the answer
		}
		refined++
		d := l2(query, idx.src.Point(c.pos))
		if len(best) < k {
			heap.Push(&best, Neighbor{Pos: c.pos, ID: idx.src.ID(c.pos), Dist: d})
		} else if d < best[0].Dist || (d == best[0].Dist && c.pos < best[0].Pos) {
			best[0] = Neighbor{Pos: c.pos, ID: idx.src.ID(c.pos), Dist: d}
			heap.Fix(&best, 0)
		}
	}
	out := []Neighbor(best)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].Pos < out[b].Pos
	})
	return out, Stats{Scanned: n, Refined: refined}, nil
}

// boundsFor computes the squared-distance-free L2 lower and upper bounds
// between query and the approximation cell of point i.
func (idx *Index) boundsFor(i int, query []float64) (lower, upper float64) {
	var lo2, hi2 float64
	base := i * idx.dim
	for j := 0; j < idx.dim; j++ {
		c := int(idx.cells[base+j])
		cellLo := idx.bounds[j][c]
		cellHi := idx.bounds[j][c+1]
		q := query[j]
		// Lower bound: distance from q to the cell interval.
		var dl float64
		switch {
		case q < cellLo:
			dl = cellLo - q
		case q > cellHi:
			dl = q - cellHi
		}
		lo2 += dl * dl
		// Upper bound: distance from q to the farthest cell corner.
		dh := math.Max(math.Abs(q-cellLo), math.Abs(q-cellHi))
		hi2 += dh * dh
	}
	return math.Sqrt(lo2), math.Sqrt(hi2)
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
