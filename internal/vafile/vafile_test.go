package vafile

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"innsearch/internal/dataset"
	"innsearch/internal/knn"
	"innsearch/internal/metric"
)

func uniformDS(t testing.TB, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.Float64() * 100
		}
	}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildValidation(t *testing.T) {
	ds := uniformDS(t, 10, 3, 1)
	if _, err := Build(nil, 4); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Build(ds, 0); !errors.Is(err, ErrBadBits) {
		t.Errorf("bits=0: %v", err)
	}
	if _, err := Build(ds, 17); !errors.Is(err, ErrBadBits) {
		t.Errorf("bits=17: %v", err)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	ds := uniformDS(t, 500, 8, 2)
	idx, err := Build(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	query := ds.PointCopy(7)
	got, stats, err := idx.Search(query, 10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := knn.Search(ds, query, 10, metric.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Pos != want[i].Pos {
			t.Fatalf("rank %d: VA-file %d, brute force %d", i, got[i].Pos, want[i].Pos)
		}
	}
	if stats.Refined >= ds.N() {
		t.Errorf("no pruning: refined %d of %d", stats.Refined, ds.N())
	}
	if stats.Scanned != ds.N() {
		t.Errorf("scanned %d, want %d", stats.Scanned, ds.N())
	}
}

func TestSearchValidation(t *testing.T) {
	ds := uniformDS(t, 20, 4, 3)
	idx, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.Search([]float64{1}, 3); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := idx.Search(make([]float64, 4), 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k > N clamps.
	got, _, err := idx.Search(make([]float64, 4), 99)
	if err != nil || len(got) != 20 {
		t.Errorf("clamped search: %d, %v", len(got), err)
	}
}

func TestConstantAttribute(t *testing.T) {
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	ds, err := dataset.New(rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := idx.Search([]float64{2.1, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Pos != 1 {
		t.Errorf("nearest = %d, want 1", got[0].Pos)
	}
}

func TestPruningImprovesWithBits(t *testing.T) {
	ds := uniformDS(t, 2000, 10, 4)
	query := ds.PointCopy(0)
	prev := ds.N() + 1
	for _, bits := range []int{2, 4, 8} {
		idx, err := Build(ds, bits)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := idx.Search(query, 10)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Refined > prev {
			t.Errorf("bits=%d refined %d > previous %d", bits, stats.Refined, prev)
		}
		prev = stats.Refined
	}
}

func TestCurseOfDimensionalityOnFilter(t *testing.T) {
	// The fraction of candidates surviving the filter grows with
	// dimensionality — the motivation statistic.
	fracAt := func(d int) float64 {
		ds := uniformDS(t, 1500, d, 5)
		idx, err := Build(ds, 4)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := idx.Search(ds.PointCopy(0), 10)
		if err != nil {
			t.Fatal(err)
		}
		return float64(stats.Refined) / float64(stats.Scanned)
	}
	low := fracAt(4)
	high := fracAt(50)
	if high <= low {
		t.Errorf("refine fraction did not grow with dimension: %v → %v", low, high)
	}
}

func TestPropertyVAFileExactness(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 20 + rr.Intn(150)
		d := 1 + rr.Intn(10)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rr.NormFloat64() * 10
			}
		}
		ds, err := dataset.New(rows, nil)
		if err != nil {
			return false
		}
		idx, err := Build(ds, 1+rr.Intn(8))
		if err != nil {
			return false
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rr.NormFloat64() * 10
		}
		k := 1 + rr.Intn(n)
		got, _, err := idx.Search(q, k)
		if err != nil {
			return false
		}
		want, err := knn.Search(ds, q, k, metric.Euclidean{})
		if err != nil {
			return false
		}
		for i := range want {
			// Positions may differ on exact ties; distances must match.
			if got[i].Dist != want[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVAFileSearch5000x20(b *testing.B) {
	ds := uniformDS(b, 5000, 20, 6)
	idx, err := Build(ds, 6)
	if err != nil {
		b.Fatal(err)
	}
	q := ds.PointCopy(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := idx.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBuildAllocsIndependentOfRows pins the zero-copy build contract: rows
// are read in place through the source accessor, so the only allocations
// are the boundary tables and the packed cell array — a per-dimension
// count that must not grow with the row count.
func TestBuildAllocsIndependentOfRows(t *testing.T) {
	small := uniformDS(t, 256, 16, 9)
	big := uniformDS(t, 4096, 16, 9)
	measure := func(ds *dataset.Dataset) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Build(ds, 6); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := measure(small), measure(big)
	if b > a+4 {
		t.Errorf("build allocations grew with rows: %v at n=256 vs %v at n=4096", a, b)
	}
}

// TestSearchAllocsIndependentOfRows asserts the per-row approximation
// scan allocates nothing: a query pays for its lookup tables, the bounds
// array, and the candidate/result buffers, a count that must not grow
// with the row count.
func TestSearchAllocsIndependentOfRows(t *testing.T) {
	measure := func(n int) float64 {
		ds := uniformDS(t, n, 24, 10)
		idx, err := Build(ds, 6)
		if err != nil {
			t.Fatal(err)
		}
		q := ds.PointCopy(0)
		return testing.AllocsPerRun(20, func() {
			if _, _, err := idx.Search(q, 10); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := measure(512), measure(4096)
	if b > a+6 {
		t.Errorf("search allocations grew with rows: %v at n=512 vs %v at n=4096", a, b)
	}
}

func BenchmarkVAFileBuild2000x64(b *testing.B) {
	ds := uniformDS(b, 2000, 64, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ds, 6); err != nil {
			b.Fatal(err)
		}
	}
}
