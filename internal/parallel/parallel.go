// Package parallel is the shared worker pool behind every concurrent hot
// path in the repository: indexed fan-out (For), contiguous-shard fan-out
// (ForShards), and one convention for resolving worker counts (Workers).
//
// # Determinism contract
//
// Both For and ForShards guarantee that the set of fn calls — and the
// index or shard each call receives — is independent of the worker count
// and of goroutine scheduling. A caller whose fn(i) writes only to its own
// index-i slot, or whose shard fn writes only shard-local state merged
// afterwards in ascending shard order, therefore produces bit-identical
// output at any worker count, including the serial fast path. Every
// caller in this repository follows that discipline, which is what makes
// a parallel session reproduce a serial one exactly (see the determinism
// tests in internal/core).
//
// # Cancellation
//
// The context passed to fn is canceled as soon as any fn returns an error
// or the caller's context is canceled, so long-running work items (a whole
// interactive session in internal/experiments, a kernel-density grid in
// internal/kde) can abort between rows instead of running to completion as
// orphans. No new indices are claimed after cancellation, and For/ForShards
// always wait for in-flight calls before returning.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool occupancy gauges, exported through Stats for the serving
// subsystem's /metrics endpoint. activeWorkers counts goroutines (or the
// caller, on the serial path) currently executing work items; queuedTasks
// counts work items accepted by a live For/ForShards call but not yet
// claimed by a worker. Both are instantaneous gauges: they rise while a
// fan-out is in flight and return to zero when it completes, so a scrape
// seeing a persistent nonzero queue depth is seeing real backlog.
var (
	activeWorkers atomic.Int64
	queuedTasks   atomic.Int64
)

// Stats reports the instantaneous worker-pool occupancy: goroutines
// executing work items and work items waiting to be claimed.
func Stats() (active, queued int64) {
	return activeWorkers.Load(), queuedTasks.Load()
}

// Workers resolves a configured worker-count override: n ≥ 1 is used as
// given; anything else (in particular the zero value of a Workers config
// field) means runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(ctx, i) for every i in [0, n) across min(Workers(workers), n)
// goroutines. The context handed to fn is canceled on the first error or
// when the caller's ctx is canceled; in-flight calls are expected to
// observe it and return early, and For waits for all of them either way.
//
// On failure For returns the error of the lowest index among the calls
// that actually ran; if no call failed but ctx was canceled, it returns
// the context's error. Indices are claimed dynamically (good load balance
// for uneven work items); determinism must come from fn writing only to
// its own index-i slot.
func For(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	queuedTasks.Add(int64(n))
	if w <= 1 {
		activeWorkers.Add(1)
		claimed := 0
		defer func() {
			activeWorkers.Add(-1)
			queuedTasks.Add(int64(claimed - n)) // release the unclaimed remainder
		}()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			claimed++
			queuedTasks.Add(-1)
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			activeWorkers.Add(1)
			defer activeWorkers.Add(-1)
			for {
				if fctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				queuedTasks.Add(-1)
				if err := fn(fctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Claims = increments of next that landed below n; release whatever a
	// cancellation left unclaimed so the gauge drains to zero.
	claimed := next.Load()
	if claimed > int64(n) {
		claimed = int64(n)
	}
	queuedTasks.Add(claimed - int64(n))
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// NumShards returns the shard count ForShards uses for the given worker
// override and problem size: min(Workers(workers), n), at least 1.
func NumShards(workers, n int) int {
	s := Workers(workers)
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ShardBounds returns the half-open range [lo, hi) of shard `shard` when
// [0, n) is split into `shards` contiguous, near-equal pieces. Earlier
// shards take the remainder, so bounds depend only on n and shards.
func ShardBounds(n, shards, shard int) (lo, hi int) {
	base := n / shards
	rem := n % shards
	lo = shard*base + min(shard, rem)
	hi = lo + base
	if shard < rem {
		hi++
	}
	return lo, hi
}

// ForShards splits [0, n) into NumShards(workers, n) contiguous shards and
// runs fn(ctx, shard, lo, hi) once per shard, with the same cancellation
// and error semantics as For (the returned error is the one of the lowest
// failing shard). Each shard covers an ascending, disjoint index range, so
// shard-local results concatenated in shard order reproduce the serial
// iteration order exactly. Note that shard boundaries depend on the worker
// count: merges that are sensitive to association (floating-point
// accumulation across shard boundaries) should use For with per-index
// slots instead.
func ForShards(ctx context.Context, workers, n int, fn func(ctx context.Context, shard, lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	shards := NumShards(workers, n)
	return For(ctx, workers, shards, func(c context.Context, shard int) error {
		lo, hi := ShardBounds(n, shards, shard)
		return fn(c, shard, lo, hi)
	})
}
