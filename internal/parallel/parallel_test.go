package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		n := 237
		hits := make([]int32, n)
		err := For(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	if err := For(context.Background(), 4, 0, func(context.Context, int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := For(context.Background(), 4, -3, func(context.Context, int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n <= 0")
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := For(context.Background(), workers, 100, func(_ context.Context, i int) error {
			if i%10 == 7 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		// Serial execution must fail at exactly 7; parallel execution must
		// fail at some index that really ran, and report the lowest.
		if workers == 1 && err.Error() != "fail at 7" {
			t.Fatalf("serial error = %v, want fail at 7", err)
		}
	}
}

func TestForCancellationReachesInFlightCalls(t *testing.T) {
	// One call fails immediately; every other in-flight call blocks until
	// it observes cancellation. If the pool did not propagate cancellation
	// (the bug in the old experiments forEach), this test would time out.
	started := make(chan struct{}, 64)
	err := For(context.Background(), 8, 8, func(ctx context.Context, i int) error {
		if i == 0 {
			return errors.New("boom")
		}
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Second):
			return errors.New("orphaned worker: cancellation never arrived")
		}
	})
	if err == nil {
		t.Fatal("want error")
	}
	if err.Error() != "boom" {
		t.Fatalf("got %v, want the lowest-index error boom", err)
	}
}

func TestForParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := For(ctx, 4, 1000, func(_ context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if atomic.LoadInt32(&ran) == 1000 {
		t.Fatal("canceled context still ran every index")
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{10, 3}, {7, 7}, {100, 8}, {5, 1}, {13, 4},
	} {
		prev := 0
		total := 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := ShardBounds(tc.n, tc.shards, s)
			if lo != prev {
				t.Fatalf("n=%d shards=%d shard %d: lo=%d, want contiguous %d", tc.n, tc.shards, s, lo, prev)
			}
			if hi < lo {
				t.Fatalf("n=%d shards=%d shard %d: hi %d < lo %d", tc.n, tc.shards, s, hi, lo)
			}
			total += hi - lo
			prev = hi
		}
		if prev != tc.n || total != tc.n {
			t.Fatalf("n=%d shards=%d: covered %d ending at %d", tc.n, tc.shards, total, prev)
		}
	}
}

func TestForShardsMergeOrderMatchesSerial(t *testing.T) {
	n := 101
	for _, workers := range []int{1, 2, 5, 16} {
		shards := NumShards(workers, n)
		parts := make([][]int, shards)
		err := ForShards(context.Background(), workers, n, func(_ context.Context, shard, lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i%3 == 0 {
					parts[shard] = append(parts[shard], i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var merged []int
		for _, p := range parts {
			merged = append(merged, p...)
		}
		want := 0
		for _, v := range merged {
			if v != want {
				t.Fatalf("workers=%d: merged order %v", workers, merged)
			}
			want += 3
		}
		if len(merged) != (n+2)/3 {
			t.Fatalf("workers=%d: got %d elements", workers, len(merged))
		}
	}
}

// TestStatsDrainToZero pins the pool-occupancy gauges: they must rise
// while a fan-out is in flight and return exactly to zero afterwards, on
// the serial path, the parallel path, and the cancellation path (where
// some items are never claimed).
func TestStatsDrainToZero(t *testing.T) {
	check := func(label string) {
		t.Helper()
		active, queued := Stats()
		if active != 0 || queued != 0 {
			t.Fatalf("%s: gauges did not drain: active=%d queued=%d", label, active, queued)
		}
	}
	check("initial")

	var sawActive, sawQueued atomic.Bool
	err := For(context.Background(), 4, 64, func(context.Context, int) error {
		a, q := Stats()
		if a > 0 {
			sawActive.Store(true)
		}
		if q > 0 {
			sawQueued.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	check("parallel")
	if !sawActive.Load() {
		t.Error("active gauge never rose during a parallel fan-out")
	}
	if !sawQueued.Load() {
		t.Error("queued gauge never rose during a parallel fan-out")
	}

	if err := For(context.Background(), 1, 16, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	check("serial")

	boom := errors.New("boom")
	if err := For(context.Background(), 3, 100, func(_ context.Context, i int) error {
		if i == 5 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	check("error path (unclaimed items released)")

	if err := For(context.Background(), 1, 10, func(_ context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("serial err = %v", err)
	}
	check("serial error path")
}
