package wire

// This file defines the HTTP request/response envelopes of the innsearchd
// protocol. Session lifecycle:
//
//	POST /v1/sessions            CreateSessionRequest  → CreateSessionResponse
//	GET  /v1/sessions/{id}/view  (?wait=5s)            → ViewResponse (long-poll)
//	GET  /v1/sessions/{id}/preview?seq=N&tau=T         → PreviewResponse
//	POST /v1/sessions/{id}/decision  DecisionRequest   → DecisionResponse
//	GET  /v1/sessions/{id}/result (?wait=5s)           → ResultResponse
//	DELETE /v1/sessions/{id}                           → {"state":"closed"}
//	POST /v1/search              SearchRequest         → SearchResponse
//
// Session states, as reported by the state fields below:
//
//	computing         the engine is searching for the next projection
//	awaiting_decision a view is on display, waiting for a decision
//	done              the session finished; the result is available
//	failed            the session aborted (view deadline, engine error)
//	evicted           the session idled past the server TTL
//	closed            the client deleted the session

// Session states.
const (
	StateComputing = "computing"
	StateAwaiting  = "awaiting_decision"
	StateDone      = "done"
	StateFailed    = "failed"
	StateEvicted   = "evicted"
	StateClosed    = "closed"
)

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}

// CreateSessionRequest opens an interactive (or server-driven) session
// against a preloaded dataset. Exactly one of Query and QueryRow selects
// the query point. User is "remote" (default: a human drives the session
// over the view/decision endpoints), "heuristic", or "oracle" (labeled
// datasets with QueryRow only; relevance = rows sharing the query's
// label).
type CreateSessionRequest struct {
	Dataset  string        `json:"dataset"`
	Query    []float64     `json:"query,omitempty"`
	QueryRow *int          `json:"query_row,omitempty"`
	User     string        `json:"user,omitempty"`
	Config   SessionConfig `json:"config"`
}

// CreateSessionResponse acknowledges session creation.
type CreateSessionResponse struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	State   string `json:"state"`
}

// ViewResponse is the long-poll answer of the view endpoint. Profile is
// set only in state awaiting_decision; DeadlineMS is the remaining
// decision budget in milliseconds (0 = no per-view deadline); Error is
// set in state failed.
type ViewResponse struct {
	State      string   `json:"state"`
	Seq        int      `json:"seq,omitempty"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
	Profile    *Profile `json:"profile,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// PreviewResponse renders the density-separated region a candidate τ
// would induce on the current view — the Figure 6 adjustment loop over
// the wire.
type PreviewResponse struct {
	Seq    int    `json:"seq"`
	Region Region `json:"region"`
}

// DecisionRequest answers the view with sequence number Seq. The embedded
// Decision carries skip/tau/lines/weight/confidence. Seq must name the
// view currently on display: a decision for an expired, already answered,
// or timed-out view is rejected, never silently applied to a later view.
type DecisionRequest struct {
	Seq int `json:"seq"`
	Decision
}

// DecisionResponse acknowledges an accepted decision. LatencyMS is the
// time the view waited for this decision (the server's view-latency
// metric).
type DecisionResponse struct {
	Accepted  bool    `json:"accepted"`
	Seq       int     `json:"seq"`
	LatencyMS float64 `json:"latency_ms"`
}

// ResultResponse reports the session outcome. Result is set in state
// done; Error in states failed and evicted.
type ResultResponse struct {
	State  string  `json:"state"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// SearchRequest runs a non-interactive batch search (SearchBatch) with
// simulated users: "heuristic" (default, label-blind) or "oracle"
// (labeled datasets with QueryRows only). Exactly one of Queries and
// QueryRows supplies the query points.
type SearchRequest struct {
	Dataset   string        `json:"dataset"`
	Queries   [][]float64   `json:"queries,omitempty"`
	QueryRows []int         `json:"query_rows,omitempty"`
	User      string        `json:"user,omitempty"`
	Config    SessionConfig `json:"config"`
}

// SearchResponse is index-aligned with the request's queries: for each
// query exactly one of Results[i], Errors[i] is non-zero.
type SearchResponse struct {
	Results []*Result `json:"results"`
	Errors  []string  `json:"errors"`
}

// DatasetInfo describes one preloaded dataset.
type DatasetInfo struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Dim     int    `json:"dim"`
	Labeled bool   `json:"labeled"`
}

// DatasetsResponse lists the datasets the server can search.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}
