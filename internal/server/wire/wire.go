// Package wire defines the stable JSON encodings of the interactive
// protocol: the visual profiles a server streams to remote clients, the
// decisions clients send back, and the final results and diagnoses. The
// in-memory types in internal/core are free to evolve; these wire types
// are a contract with remote clients and change only deliberately (the
// golden-file tests in this package pin the encoded bytes).
//
// Conventions: snake_case field names; float64 values round-trip exactly
// through encoding/json (Go emits the shortest representation that parses
// back to the same bits), so a decision echoed through the wire selects
// bit-identically the same points as one made in-process.
package wire

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"innsearch/internal/core"
	"innsearch/internal/grid"
	"innsearch/internal/index"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

// Grid is the wire form of a kernel density grid: a p×p lattice of
// density values over [min_x, max_x] × [min_y, max_y], row-major by y.
type Grid struct {
	P       int       `json:"p"`
	MinX    float64   `json:"min_x"`
	MaxX    float64   `json:"max_x"`
	MinY    float64   `json:"min_y"`
	MaxY    float64   `json:"max_y"`
	Density []float64 `json:"density"`
	Hx      float64   `json:"hx"`
	Hy      float64   `json:"hy"`
	N       int       `json:"n"`
}

// FromGrid encodes a density grid.
func FromGrid(g *kde.Grid) Grid {
	return Grid{
		P:    g.P,
		MinX: g.MinX, MaxX: g.MaxX, MinY: g.MinY, MaxY: g.MaxY,
		Density: g.Density,
		Hx:      g.Hx, Hy: g.Hy,
		N: g.N,
	}
}

// Profile is the wire form of one visual profile (core.VisualProfile):
// everything a remote client needs to render the density view, the
// lateral scatter plot, and the query marker, and to convert a separator
// fraction into an absolute τ.
type Profile struct {
	Major          int          `json:"major"`
	Minor          int          `json:"minor"`
	RemainingDim   int          `json:"remaining_dim"`
	OriginalN      int          `json:"original_n"`
	QueryX         float64      `json:"query_x"`
	QueryY         float64      `json:"query_y"`
	QueryDensity   float64      `json:"query_density"`
	Discrimination float64      `json:"discrimination"`
	PeakRatio      float64      `json:"peak_ratio"`
	Grid           Grid         `json:"grid"`
	Points         [][2]float64 `json:"points"`
	IDs            []int        `json:"ids"`
}

// FromProfile encodes a visual profile.
func FromProfile(p *core.VisualProfile) Profile {
	pts := make([][2]float64, p.Points.Rows)
	for i := range pts {
		pts[i] = [2]float64{p.Points.At(i, 0), p.Points.At(i, 1)}
	}
	return Profile{
		Major:          p.Major,
		Minor:          p.Minor,
		RemainingDim:   p.RemainingDim,
		OriginalN:      p.OriginalN,
		QueryX:         p.QueryX,
		QueryY:         p.QueryY,
		QueryDensity:   p.QueryDensity,
		Discrimination: p.Discrimination,
		PeakRatio:      p.PeakRatio(),
		Grid:           FromGrid(p.Grid),
		Points:         pts,
		IDs:            p.IDs,
	}
}

// ToGrid decodes the density grid back into the engine's in-memory form.
// Density values round-trip exactly through JSON, so the decoded grid is
// bit-identical to the one the server rendered.
func (g Grid) ToGrid() *kde.Grid {
	return &kde.Grid{
		P:    g.P,
		MinX: g.MinX, MaxX: g.MaxX, MinY: g.MinY, MaxY: g.MaxY,
		Density: g.Density,
		Hx:      g.Hx, Hy: g.Hy,
		N: g.N,
	}
}

// ToProfile decodes a served profile back into the engine's in-memory
// form, so client-side simulated users (user.Oracle, user.Heuristic, the
// load-generation policies) can read a remote view exactly as they read an
// in-process one. Because every float64 round-trips exactly, local region
// previews computed on the decoded grid select bit-identically the same
// points the server's preview endpoint would. Projection is nil — the
// server never ships the basis — which no simulated user consults.
func (p Profile) ToProfile() *core.VisualProfile {
	pts := linalg.NewMatrix(len(p.Points), 2)
	for i, xy := range p.Points {
		pts.Set(i, 0, xy[0])
		pts.Set(i, 1, xy[1])
	}
	return &core.VisualProfile{
		Major:          p.Major,
		Minor:          p.Minor,
		Grid:           p.Grid.ToGrid(),
		QueryX:         p.QueryX,
		QueryY:         p.QueryY,
		QueryDensity:   p.QueryDensity,
		Points:         pts,
		IDs:            p.IDs,
		Discrimination: p.Discrimination,
		RemainingDim:   p.RemainingDim,
		OriginalN:      p.OriginalN,
	}
}

// Line is the wire form of a polygonal separating line.
type Line struct {
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
	X2 float64 `json:"x2"`
	Y2 float64 `json:"y2"`
}

// Decision is the wire form of a user's answer to one visual profile:
// skip, a density separator at tau, or polygonal separating lines (which
// take precedence over tau, as in core.Decision).
type Decision struct {
	Skip       bool    `json:"skip,omitempty"`
	Tau        float64 `json:"tau,omitempty"`
	Lines      []Line  `json:"lines,omitempty"`
	Weight     float64 `json:"weight,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// ToCore decodes the decision for the session engine.
func (d Decision) ToCore() core.Decision {
	out := core.Decision{
		Skip:       d.Skip,
		Tau:        d.Tau,
		Weight:     d.Weight,
		Confidence: d.Confidence,
	}
	for _, l := range d.Lines {
		out.Lines = append(out.Lines, grid.Line{X1: l.X1, Y1: l.Y1, X2: l.X2, Y2: l.Y2})
	}
	return out
}

// FromDecision encodes a core decision.
func FromDecision(d core.Decision) Decision {
	out := Decision{
		Skip:       d.Skip,
		Tau:        d.Tau,
		Weight:     d.Weight,
		Confidence: d.Confidence,
	}
	for _, l := range d.Lines {
		out.Lines = append(out.Lines, Line{X1: l.X1, Y1: l.Y1, X2: l.X2, Y2: l.Y2})
	}
	return out
}

// Region is the wire form of a density-separated preview R(τ, Q): the
// member cells of the density-connected query region and the points it
// selects, so a remote client can render the Figure 6 adjustment loop.
type Region struct {
	Tau float64 `json:"tau"`
	// Cells is the number of member elementary rectangles.
	Cells int `json:"cells"`
	// MemberCells lists the member rectangles as [cx, cy] pairs, cy-major
	// ascending — the deterministic scan order.
	MemberCells [][2]int `json:"member_cells"`
	// SelectedIDs are the original row IDs inside the region, ascending
	// by row position.
	SelectedIDs []int `json:"selected_ids"`
	// SelectedCount is len(SelectedIDs) of a total of ViewN points in the
	// view.
	SelectedCount int `json:"selected_count"`
	ViewN         int `json:"view_n"`
}

// FromRegion encodes a region preview against the profile it was computed
// from.
func FromRegion(reg *grid.Region, p *core.VisualProfile) Region {
	side := reg.Grid.P - 1
	out := Region{Tau: reg.Tau, Cells: reg.Cells, ViewN: p.Points.Rows}
	for cy := 0; cy < side; cy++ {
		for cx := 0; cx < side; cx++ {
			if reg.ContainsCell(cx, cy) {
				out.MemberCells = append(out.MemberCells, [2]int{cx, cy})
			}
		}
	}
	positions := reg.SelectPoints(p.Points.Col(0), p.Points.Col(1))
	out.SelectedIDs = make([]int, len(positions))
	for i, pos := range positions {
		out.SelectedIDs[i] = p.IDs[pos]
	}
	out.SelectedCount = len(positions)
	return out
}

// Diagnosis is the wire form of the steep-drop meaningfulness verdict.
type Diagnosis struct {
	Meaningful  bool    `json:"meaningful"`
	NaturalSize int     `json:"natural_size"`
	Threshold   float64 `json:"threshold"`
	MaxProb     float64 `json:"max_prob"`
	Drop        float64 `json:"drop"`
}

// FromDiagnosis encodes a diagnosis.
func FromDiagnosis(d core.Diagnosis) Diagnosis {
	return Diagnosis{
		Meaningful:  d.Meaningful,
		NaturalSize: d.NaturalSize,
		Threshold:   d.Threshold,
		MaxProb:     d.MaxProb,
		Drop:        d.Drop,
	}
}

// Neighbor is one ranked answer entry.
type Neighbor struct {
	ID          int     `json:"id"`
	Probability float64 `json:"probability"`
}

// Probability is one per-point meaningfulness probability entry; Result
// encodes the probability map as a slice sorted ascending by ID so the
// bytes are deterministic.
type Probability struct {
	ID          int     `json:"id"`
	Probability float64 `json:"probability"`
}

// Result is the wire form of a completed session.
type Result struct {
	Neighbors     []Neighbor    `json:"neighbors"`
	Probabilities []Probability `json:"probabilities"`
	Iterations    int           `json:"iterations"`
	Converged     bool          `json:"converged"`
	ViewsShown    int           `json:"views_shown"`
	ViewsAnswered int           `json:"views_answered"`
	Diagnosis     Diagnosis     `json:"diagnosis"`
	// NaturalNeighbors are the entries above the diagnosed steep drop, or
	// empty when the search was diagnosed not meaningful.
	NaturalNeighbors []Neighbor `json:"natural_neighbors"`
}

// FromResult encodes a completed session result.
func FromResult(r *core.Result) Result {
	out := Result{
		Iterations:    r.Iterations,
		Converged:     r.Converged,
		ViewsShown:    r.ViewsShown,
		ViewsAnswered: r.ViewsAnswered,
		Diagnosis:     FromDiagnosis(r.Diagnosis),
	}
	out.Neighbors = make([]Neighbor, len(r.Neighbors))
	for i, nb := range r.Neighbors {
		out.Neighbors[i] = Neighbor{ID: nb.ID, Probability: nb.Probability}
	}
	ids := make([]int, 0, len(r.Probabilities))
	for id := range r.Probabilities {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out.Probabilities = make([]Probability, len(ids))
	for i, id := range ids {
		out.Probabilities[i] = Probability{ID: id, Probability: r.Probabilities[id]}
	}
	for _, nb := range r.NaturalNeighbors() {
		out.NaturalNeighbors = append(out.NaturalNeighbors, Neighbor{ID: nb.ID, Probability: nb.Probability})
	}
	return out
}

// SessionConfig is the wire form of the session tunables a client may
// set. Zero values take the engine defaults (see core.Config); Mode ""
// means the engine's default family (arbitrary). Workers left at 0 is
// resolved by the server to its per-session default, not to GOMAXPROCS —
// a server hosts many sessions and parallelizes across them.
type SessionConfig struct {
	Support            int     `json:"support,omitempty"`
	Mode               string  `json:"mode,omitempty"` // "", "arbitrary", "axis", "auto"
	Workers            int     `json:"workers,omitempty"`
	GridSize           int     `json:"grid_size,omitempty"`
	BandwidthScale     float64 `json:"bandwidth_scale,omitempty"`
	MaxMajorIterations int     `json:"max_major_iterations,omitempty"`
	MinMajorIterations int     `json:"min_major_iterations,omitempty"`
	OverlapThreshold   float64 `json:"overlap_threshold,omitempty"`
	StageSupportFactor int     `json:"stage_support_factor,omitempty"`
	DisableGrading     bool    `json:"disable_grading,omitempty"`
	// Index names the candidate-generation backend for the session's
	// nearest-s scans ("" disables; see index.Names for the registry).
	// Backend tuning stays at engine defaults over the wire.
	Index string `json:"index,omitempty"`
	// Shards is the engine partition width: 0 takes the server default,
	// 1 forces the single-partition path (byte-identical to pre-shard
	// sessions), P ≥ 2 scatters the stage kernels over P row-disjoint
	// shards with deterministic in-order merges. Results at P ≥ 2 agree
	// with P = 1 within float re-association (≤ 1e-10 relative) and
	// select identical member sets.
	Shards int `json:"shards,omitempty"`
}

// ToCore decodes the config for the session engine.
func (c SessionConfig) ToCore() (core.Config, error) {
	if c.Workers < 0 {
		return core.Config{}, fmt.Errorf("wire: negative workers %d", c.Workers)
	}
	if c.Shards < 0 {
		return core.Config{}, fmt.Errorf("wire: negative shards %d", c.Shards)
	}
	cfg := core.Config{
		Support:            c.Support,
		Workers:            c.Workers,
		Shards:             c.Shards,
		GridSize:           c.GridSize,
		BandwidthScale:     c.BandwidthScale,
		MaxMajorIterations: c.MaxMajorIterations,
		MinMajorIterations: c.MinMajorIterations,
		OverlapThreshold:   c.OverlapThreshold,
		StageSupportFactor: c.StageSupportFactor,
		DisableGrading:     c.DisableGrading,
	}
	switch c.Mode {
	case "", "arbitrary":
		cfg.Mode = core.ModeArbitrary
	case "axis":
		cfg.Mode = core.ModeAxis
	case "auto":
		cfg.Mode = core.ModeAuto
	default:
		return core.Config{}, fmt.Errorf("wire: unknown projection mode %q (want arbitrary, axis, or auto)", c.Mode)
	}
	if c.Index != "" {
		if !slices.Contains(index.Names(), c.Index) {
			return core.Config{}, fmt.Errorf("wire: unknown index backend %q (want one of %s)", c.Index, strings.Join(index.Names(), ", "))
		}
		cfg.Index = index.Config{Name: c.Index}
	}
	return cfg, nil
}
