package wire

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"innsearch/internal/core"
	"innsearch/internal/grid"
	"innsearch/internal/kde"
	"innsearch/internal/linalg"
)

// -update regenerates the golden files. The goldens pin the client
// contract: a diff here means remote clients will see different bytes,
// which must be a deliberate, versioned protocol change.
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server/wire -update` after a deliberate protocol change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire JSON for %s drifted from the golden contract\n got: %s\nwant: %s", name, got, want)
	}
}

// fixtureProfile builds a small, fully hand-pinned visual profile.
func fixtureProfile(t *testing.T) *core.VisualProfile {
	t.Helper()
	g := &kde.Grid{
		P:    3,
		MinX: -1, MaxX: 1, MinY: -2, MaxY: 2,
		Density: []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1},
		Hx:      0.5, Hy: 0.25,
		N: 4,
	}
	pts, err := linalg.MatrixFromRows([]linalg.Vector{
		{-0.5, -1}, {0.25, 0.5}, {0.75, 1.5}, {0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &core.VisualProfile{
		Major: 2, Minor: 3,
		Grid:           g,
		QueryX:         0.25,
		QueryY:         0.5,
		QueryDensity:   0.625,
		Points:         pts,
		IDs:            []int{7, 3, 11, 0},
		Discrimination: 0.75,
		RemainingDim:   6,
		OriginalN:      9,
	}
}

func TestProfileGolden(t *testing.T) {
	checkGolden(t, "profile.golden.json", FromProfile(fixtureProfile(t)))
}

func TestResultGolden(t *testing.T) {
	res := &core.Result{
		Neighbors: []core.Neighbor{{ID: 3, Probability: 0.96875}, {ID: 7, Probability: 0.875}, {ID: 11, Probability: 0.125}},
		Probabilities: map[int]float64{
			3: 0.96875, 7: 0.875, 11: 0.125, 0: 0.0625,
		},
		Iterations:    2,
		Converged:     true,
		ViewsShown:    6,
		ViewsAnswered: 5,
		Diagnosis: core.Diagnosis{
			Meaningful:  true,
			NaturalSize: 2,
			Threshold:   0.875,
			MaxProb:     0.96875,
			Drop:        0.75,
		},
	}
	checkGolden(t, "result.golden.json", FromResult(res))
}

func TestDiagnosisGolden(t *testing.T) {
	checkGolden(t, "diagnosis.golden.json", FromDiagnosis(core.Diagnosis{
		Meaningful:  true,
		NaturalSize: 12,
		Threshold:   0.8125,
		MaxProb:     0.9375,
		Drop:        0.5,
	}))
}

func TestRegionGolden(t *testing.T) {
	p := fixtureProfile(t)
	reg, err := grid.FindRegion(p.Grid, p.QueryX, p.QueryY, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "region.golden.json", FromRegion(reg, p))
}

func TestDecisionRoundTrip(t *testing.T) {
	in := Decision{
		Tau:        0.37,
		Lines:      []Line{{X1: -1, Y1: 0, X2: 1, Y2: 0.5}},
		Weight:     0.8,
		Confidence: 0.9,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Decision
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	c := out.ToCore()
	if c.Tau != in.Tau || c.Weight != in.Weight || c.Confidence != in.Confidence || c.Skip {
		t.Errorf("round trip lost fields: %+v", c)
	}
	if len(c.Lines) != 1 || c.Lines[0] != (grid.Line{X1: -1, Y1: 0, X2: 1, Y2: 0.5}) {
		t.Errorf("lines lost: %+v", c.Lines)
	}
	back := FromDecision(c)
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("decision bytes not stable: %s vs %s", data, data2)
	}
}

// TestFloatsRoundTripExactly is the bit-identity foundation of the remote
// protocol: a τ that crosses the wire selects exactly the same points as
// one chosen in-process.
func TestFloatsRoundTripExactly(t *testing.T) {
	for _, v := range []float64{0.1, 1.0 / 3, 0.30000000000000004, 1e-308, 123456.789e-7} {
		data, err := json.Marshal(Decision{Tau: v})
		if err != nil {
			t.Fatal(err)
		}
		var out Decision
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Tau != v {
			t.Errorf("τ %v did not round trip (got %v)", v, out.Tau)
		}
	}
}

func TestSessionConfigToCore(t *testing.T) {
	cfg, err := SessionConfig{Mode: "auto", GridSize: 24, Workers: 2}.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Mode != core.ModeAuto || cfg.GridSize != 24 || cfg.Workers != 2 {
		t.Errorf("decoded config %+v", cfg)
	}
	for mode, want := range map[string]core.ProjectionMode{
		"": core.ModeArbitrary, "arbitrary": core.ModeArbitrary, "axis": core.ModeAxis,
	} {
		cfg, err := SessionConfig{Mode: mode}.ToCore()
		if err != nil || cfg.Mode != want {
			t.Errorf("mode %q → %v, %v", mode, cfg.Mode, err)
		}
	}
	if _, err := (SessionConfig{Mode: "bogus"}).ToCore(); err == nil {
		t.Error("bogus mode accepted")
	}
}

// TestProfileRoundTrip pins the inverse decode: a profile encoded for the
// wire and decoded back must drive a simulated user bit-identically —
// same grid densities, same point coordinates, same region selections.
func TestProfileRoundTrip(t *testing.T) {
	p := fixtureProfile(t)
	enc := FromProfile(p)
	// Through actual JSON, since the contract is about the bytes.
	raw, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var over Profile
	if err := json.Unmarshal(raw, &over); err != nil {
		t.Fatal(err)
	}
	got := over.ToProfile()
	if got.Major != p.Major || got.Minor != p.Minor || got.RemainingDim != p.RemainingDim || got.OriginalN != p.OriginalN {
		t.Fatalf("counters drifted: got %+v", got)
	}
	if got.QueryX != p.QueryX || got.QueryY != p.QueryY || got.QueryDensity != p.QueryDensity || got.Discrimination != p.Discrimination {
		t.Fatalf("query fields drifted: got %+v", got)
	}
	if got.Grid.P != p.Grid.P || got.Grid.Hx != p.Grid.Hx || got.Grid.Hy != p.Grid.Hy || got.Grid.N != p.Grid.N {
		t.Fatalf("grid header drifted: got %+v", got.Grid)
	}
	for i, d := range p.Grid.Density {
		if got.Grid.Density[i] != d {
			t.Fatalf("density[%d] = %v, want bit-identical %v", i, got.Grid.Density[i], d)
		}
	}
	if got.Points.Rows != p.Points.Rows {
		t.Fatalf("points rows = %d, want %d", got.Points.Rows, p.Points.Rows)
	}
	for i := 0; i < p.Points.Rows; i++ {
		for j := 0; j < 2; j++ {
			if got.Points.At(i, j) != p.Points.At(i, j) {
				t.Fatalf("point (%d,%d) drifted", i, j)
			}
		}
	}
	if got.PeakRatio() != p.PeakRatio() {
		t.Fatalf("peak ratio = %v, want %v", got.PeakRatio(), p.PeakRatio())
	}
	// A region preview computed on the decoded profile selects the same
	// points as one computed on the original.
	want, err := p.Region(0.2)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Region(0.2)
	if err != nil {
		t.Fatal(err)
	}
	ws := want.SelectPoints(p.Points.Col(0), p.Points.Col(1))
	hs := have.SelectPoints(got.Points.Col(0), got.Points.Col(1))
	if len(ws) != len(hs) {
		t.Fatalf("region selections differ: %v vs %v", ws, hs)
	}
	for i := range ws {
		if ws[i] != hs[i] {
			t.Fatalf("region selections differ at %d: %v vs %v", i, ws, hs)
		}
	}
}
