// Package server is the serving subsystem behind cmd/innsearchd: a
// JSON-over-HTTP API hosting many concurrent interactive search sessions
// against preloaded datasets. The numeric engine (internal/core) runs
// server-side; a thin remote client renders the visual profiles and
// returns the user's density-separator decisions — the client/server
// split of the interactive-projection literature, applied to the paper's
// human-in-the-loop search.
//
// Endpoints (wire formats in internal/server/wire):
//
//	POST   /v1/sessions               create an interactive session
//	GET    /v1/sessions/{id}/view     current profile (long-poll, ?wait=)
//	GET    /v1/sessions/{id}/preview  density-separated region at ?tau=
//	POST   /v1/sessions/{id}/decision answer the current view
//	GET    /v1/sessions/{id}/result   final ranking (+?wait=)
//	DELETE /v1/sessions/{id}          abandon a session
//	POST   /v1/search                 non-interactive batch search
//	GET    /v1/datasets               preloaded datasets
//	GET    /healthz                   liveness (503 while draining)
//	GET    /varz                      counters and latency summaries
//
// Concurrency model: one goroutine per admitted session runs the engine;
// admission is bounded by Config.MaxSessions (beyond it creation returns
// 429). Idle sessions are evicted after Config.SessionTTL; a view left
// unanswered past Config.ViewTimeout aborts its session. Drain stops
// admission and waits for live sessions before shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/dataset"
	"innsearch/internal/index"
	"innsearch/internal/parallel"
	"innsearch/internal/server/wire"
	"innsearch/internal/telemetry"
	"innsearch/internal/user"
)

// Config tunes a server. Zero values take the documented defaults.
type Config struct {
	// Datasets maps the names clients address to preloaded datasets.
	// Datasets are read-only once registered. Sessions read them through
	// lightweight views of their immutable point stores, so any number of
	// concurrent sessions share the single resident copy of each dataset;
	// per-session memory no longer scales with N·d.
	Datasets map[string]*dataset.Dataset
	// MaxSessions bounds concurrently live sessions; creation beyond it
	// is refused with 429 (default 64).
	MaxSessions int
	// SessionTTL evicts sessions idle (no client request) this long
	// (default 10m). Finished sessions keep their result readable for one
	// more TTL.
	SessionTTL time.Duration
	// ViewTimeout aborts a session whose view waits this long for a
	// decision (default 5m; ≤ -1 disables, 0 takes the default).
	ViewTimeout time.Duration
	// LongPollWait caps the ?wait= of the view and result endpoints
	// (default 30s).
	LongPollWait time.Duration
	// SessionWorkers is the engine worker count for sessions that do not
	// request one (default 1: a server parallelizes across sessions, not
	// within them).
	SessionWorkers int
	// BatchWorkers bounds concurrent sessions of one /v1/search call
	// (default 0 = GOMAXPROCS).
	BatchWorkers int
	// Index names the default candidate-generation backend for sessions
	// that do not request one over the wire ("" keeps candidate
	// generation off; see internal/index.Names for the registry).
	Index string
	// Shards is the default engine partition width for sessions that do
	// not request one over the wire (0 or 1: the single-partition path,
	// byte-identical to pre-shard behavior; P ≥ 2: stage kernels scatter
	// over P row-disjoint shards and merge deterministically). Negative
	// values are rejected at construction.
	Shards int
	// SweepInterval overrides the TTL sweep cadence (default TTL/4);
	// tests use it to observe eviction quickly.
	SweepInterval time.Duration
	// Logger, when non-nil, receives one structured line per HTTP request
	// (method, path, status, duration, request ID, session ID). Nil
	// disables request logging; the middleware still assigns request IDs.
	Logger *slog.Logger
	// Trace, when non-nil, receives every engine trace event of every
	// hosted session (interactive and batch), stamped with session and
	// request IDs — typically a telemetry.JSONL sink. The latency
	// histograms are always fed regardless of this field.
	Trace telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = 10 * time.Minute
	}
	switch {
	case c.ViewTimeout == 0:
		c.ViewTimeout = 5 * time.Minute
	case c.ViewTimeout < 0:
		c.ViewTimeout = 0 // disabled
	}
	if c.LongPollWait == 0 {
		c.LongPollWait = 30 * time.Second
	}
	if c.SessionWorkers == 0 {
		c.SessionWorkers = 1
	}
	return c
}

// Server hosts the session-serving subsystem. Create with New, mount
// Handler, and Close (or Drain then Close) on shutdown.
type Server struct {
	cfg     Config
	store   *store
	metrics *metrics
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the telemetry middleware
	base    context.Context
	stop    context.CancelFunc
	logger  *slog.Logger
	trace   telemetry.Tracer
	// idxCache shares candidate-generation backends across every hosted
	// session (interactive, batch, sharded): sessions over the same view
	// of the same resident dataset reuse one build per (view, shard,
	// backend, options) key instead of rebuilding per session.
	idxCache *index.Cache
	// residentBytes is the summed footprint of the preloaded immutable
	// point stores, exported as the resident_dataset_bytes gauge.
	residentBytes int64
	// debugz folds every session's trace events into the live-session
	// table served by GET /debug/sessions.
	debugz *debugWatcher
}

// New validates the configuration and starts the store's TTL sweeper.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Datasets) == 0 {
		return nil, errors.New("server: no datasets configured")
	}
	var residentBytes int64
	for name, ds := range cfg.Datasets {
		if ds == nil || ds.N() == 0 {
			return nil, fmt.Errorf("server: dataset %q is empty", name)
		}
		residentBytes += ds.Store().Bytes()
	}
	if cfg.Index != "" {
		if _, err := index.New(cfg.Index); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("server: negative shard count %d", cfg.Shards)
	}
	m := newMetrics()
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		store:         newStore(cfg.MaxSessions, cfg.SessionTTL, cfg.SweepInterval, m),
		metrics:       m,
		base:          base,
		stop:          stop,
		logger:        cfg.Logger,
		trace:         cfg.Trace,
		idxCache:      index.NewCache(0),
		residentBytes: residentBytes,
		debugz:        newDebugWatcher(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /v1/sessions/{id}/view", s.handleView)
	mux.HandleFunc("GET /v1/sessions/{id}/preview", s.handlePreview)
	mux.HandleFunc("POST /v1/sessions/{id}/decision", s.handleDecision)
	mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("GET /debug/sessions", s.handleDebugSessions)
	s.mux = mux
	s.handler = s.withTelemetry(mux)
	return s, nil
}

// Handler returns the HTTP handler tree, wrapped in the request-ID and
// structured-logging middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// Drain stops admitting sessions and waits for live ones up to ctx's
// deadline (stragglers are canceled). Healthz reports 503 while
// draining, so load balancers stop routing here.
func (s *Server) Drain(ctx context.Context) { s.store.drain(ctx) }

// Close cancels every session and stops the background sweeper.
func (s *Server) Close() {
	s.stop()
	s.store.close()
}

// ---- plumbing ----

// writeJSON is the single JSON response helper: every JSON endpoint —
// /varz and all of /v1 — goes through it, so the Content-Type and
// Cache-Control headers are uniform. no-store matters: session views and
// varz snapshots are instantaneous state that must never be replayed from
// an intermediary cache.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.Error{Error: fmt.Sprintf(format, args...)})
}

// waitParam parses ?wait= (a Go duration, e.g. 5s or 1500ms), clamped to
// the server's long-poll cap. Absent means no waiting.
func (s *Server) waitParam(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad wait %q: %v", raw, err)
	}
	if d < 0 {
		d = 0
	}
	if d > s.cfg.LongPollWait {
		d = s.cfg.LongPollWait
	}
	return d, nil
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return nil, false
	}
	annotateSession(r.Context(), id)
	return sess, true
}

// ---- health and introspection ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.store.isDraining() {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":          state,
		"active_sessions": s.store.active(),
	})
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	poolActive, poolQueued := parallel.Stats()
	writeJSON(w, http.StatusOK, s.metrics.snapshot(
		s.store.active(), s.store.isDraining(), s.residentBytes, poolActive, poolQueued, s.cfg.Index, s.cfg.Shards))
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	resp := wire.DatasetsResponse{}
	for name, ds := range s.cfg.Datasets {
		resp.Datasets = append(resp.Datasets, wire.DatasetInfo{
			Name: name, N: ds.N(), Dim: ds.Dim(), Labeled: ds.Labeled(),
		})
	}
	sort.Slice(resp.Datasets, func(i, j int) bool { return resp.Datasets[i].Name < resp.Datasets[j].Name })
	writeJSON(w, http.StatusOK, resp)
}

// ---- session lifecycle ----

// resolveQuery returns the query vector selected by exactly one of a
// literal vector and a dataset row index.
func resolveQuery(q []float64, row *int, ds *dataset.Dataset) ([]float64, error) {
	switch {
	case q != nil && row != nil:
		return nil, errors.New("give query or query_row, not both")
	case q != nil:
		if len(q) != ds.Dim() {
			return nil, fmt.Errorf("query has %d dims, dataset has %d", len(q), ds.Dim())
		}
		return q, nil
	case row != nil:
		if *row < 0 || *row >= ds.N() {
			return nil, fmt.Errorf("query_row %d outside [0, %d)", *row, ds.N())
		}
		return ds.PointCopy(*row), nil
	default:
		return nil, errors.New("missing query or query_row")
	}
}

// oracleFor builds the paper's attentive simulated user from the labels:
// the rows sharing the query row's label are the ground-truth cluster.
func oracleFor(ds *dataset.Dataset, row int) (core.User, error) {
	if !ds.Labeled() {
		return nil, errors.New("oracle user needs a labeled dataset")
	}
	truth := ds.Label(row)
	var relevant []int
	for i := 0; i < ds.N(); i++ {
		if ds.Label(i) == truth {
			relevant = append(relevant, ds.ID(i))
		}
	}
	return user.NewOracle(relevant), nil
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ds, ok := s.cfg.Datasets[req.Dataset]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", req.Dataset)
		return
	}
	query, err := resolveQuery(req.Query, req.QueryRow, ds)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := req.Config.ToCore()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.SessionWorkers
	}
	if !cfg.Index.Enabled() && s.cfg.Index != "" {
		cfg.Index = index.Config{Name: s.cfg.Index}
	}
	if cfg.Shards == 0 {
		cfg.Shards = s.cfg.Shards
	}
	cfg.IndexCache = s.idxCache
	// The session ID is allocated before the engine so the tracer can stamp
	// it (together with the creating request's ID) onto every trace event.
	id := newSessionID()
	annotateSession(r.Context(), id)
	cfg.Tracer = s.sessionTracer(id, RequestID(r.Context()))

	ctx, cancel := context.WithCancelCause(s.base)
	var remote *user.Remote
	var u core.User
	switch req.User {
	case "", "remote":
		remote = user.NewRemote(ctx, cancel, s.cfg.ViewTimeout)
		u = remote
	case "heuristic":
		u = &user.Heuristic{}
	case "oracle":
		if req.QueryRow == nil {
			cancel(nil)
			writeError(w, http.StatusBadRequest, "oracle user needs query_row")
			return
		}
		u, err = oracleFor(ds, *req.QueryRow)
		if err != nil {
			cancel(nil)
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		cancel(nil)
		writeError(w, http.StatusBadRequest, "unknown user %q (want remote, heuristic, or oracle)", req.User)
		return
	}

	engine, err := core.NewSession(ds, query, u, cfg)
	if err != nil {
		cancel(nil)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess := &session{
		id:        id,
		remote:    remote,
		cancel:    cancel,
		done:      make(chan struct{}),
		created:   time.Now(),
		lastTouch: time.Now(),
		state:     wire.StateComputing,
	}
	if err := s.store.add(sess); err != nil {
		cancel(nil)
		s.metrics.SessionsRejected.Add(1)
		switch {
		case errors.Is(err, errDraining):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusTooManyRequests, "%v", err)
		}
		return
	}
	s.metrics.SessionsCreated.Add(1)
	s.metrics.LiveSessionViews.Add(1)

	go func() {
		defer s.metrics.LiveSessionViews.Add(-1)
		res, runErr := engine.RunContext(ctx)
		if runErr != nil {
			// Surface the cancellation cause (view timeout, eviction,
			// client close, shutdown) instead of the bare context error.
			if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, runErr) {
				runErr = cause
			}
		}
		sess.finish(res, runErr)
		if remote != nil {
			remote.Close()
		}
		switch state, _, _ := sess.outcome(); state {
		case wire.StateDone:
			s.metrics.SessionsDone.Add(1)
		case wire.StateClosed:
			s.metrics.SessionsClosed.Add(1)
		case wire.StateEvicted:
			// counted by the sweeper
		default:
			s.metrics.SessionsFailed.Add(1)
		}
		cancel(nil)
	}()

	writeJSON(w, http.StatusCreated, wire.CreateSessionResponse{
		ID:      sess.id,
		Dataset: req.Dataset,
		N:       ds.N(),
		Dim:     ds.Dim(),
		State:   wire.StateComputing,
	})
}

// finalViewResponse reports a finished session through the view endpoint.
func finalViewResponse(sess *session) wire.ViewResponse {
	state, _, err := sess.outcome()
	resp := wire.ViewResponse{State: state}
	if err != nil && state != wire.StateDone {
		resp.Error = err.Error()
	}
	return resp
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if sess.remote == nil {
		writeError(w, http.StatusBadRequest, "session is not interactive")
		return
	}
	wait, err := s.waitParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		bell := sess.remote.Changed()
		if v, ok := sess.remote.CurrentView(); ok {
			profile := wire.FromProfile(v.Profile)
			resp := wire.ViewResponse{
				State:   wire.StateAwaiting,
				Seq:     v.Seq,
				Profile: &profile,
			}
			if !v.Deadline.IsZero() {
				resp.DeadlineMS = time.Until(v.Deadline).Milliseconds()
			}
			s.metrics.ViewsServed.Add(1)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if !sess.running() {
			writeJSON(w, http.StatusOK, finalViewResponse(sess))
			return
		}
		select {
		case <-bell:
		case <-sess.done:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, wire.ViewResponse{State: wire.StateComputing})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if sess.remote == nil {
		writeError(w, http.StatusBadRequest, "session is not interactive")
		return
	}
	q := r.URL.Query()
	var seq int
	var tau float64
	if _, err := fmt.Sscan(q.Get("seq"), &seq); err != nil {
		writeError(w, http.StatusBadRequest, "bad seq %q", q.Get("seq"))
		return
	}
	if _, err := fmt.Sscan(q.Get("tau"), &tau); err != nil {
		writeError(w, http.StatusBadRequest, "bad tau %q", q.Get("tau"))
		return
	}
	reg, profile, err := sess.remote.Preview(seq, tau)
	if err != nil {
		writeError(w, statusForUserErr(err), "%v", err)
		return
	}
	s.metrics.Previews.Add(1)
	writeJSON(w, http.StatusOK, wire.PreviewResponse{Seq: seq, Region: wire.FromRegion(reg, profile)})
}

// statusForUserErr maps remote-adapter errors to HTTP statuses: stale or
// expired views conflict (409); closed sessions are gone (410).
func statusForUserErr(err error) int {
	switch {
	case errors.Is(err, user.ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, user.ErrViewExpired):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if sess.remote == nil {
		writeError(w, http.StatusBadRequest, "session is not interactive")
		return
	}
	var req wire.DecisionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if state, _, serr := sessionStateIfDead(sess); state != "" {
		s.metrics.DecisionsRejected.Add(1)
		writeError(w, http.StatusGone, "session %s: %v", state, serr)
		return
	}
	latency, err := sess.remote.SubmitDecision(req.Seq, req.Decision.ToCore())
	if err != nil {
		s.metrics.DecisionsRejected.Add(1)
		writeError(w, statusForUserErr(err), "%v", err)
		return
	}
	s.metrics.Decisions.Add(1)
	// The decision-wait histogram is fed by the engine's decision_wait
	// trace events through the metrics bridge; observing here too would
	// double-count. The response still reports this view's wait.
	ms := float64(latency) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, wire.DecisionResponse{Accepted: true, Seq: req.Seq, LatencyMS: ms})
}

// sessionStateIfDead returns the terminal state when the engine has
// already stopped, so a late decision gets "session evicted" rather than
// the adapter's generic view error.
func sessionStateIfDead(sess *session) (string, *core.Result, error) {
	select {
	case <-sess.done:
		state, res, err := sess.outcome()
		if err == nil {
			err = errors.New("session already finished")
		}
		return state, res, err
	default:
		return "", nil, nil
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	wait, err := s.waitParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	select {
	case <-sess.done:
	case <-time.After(wait):
	case <-r.Context().Done():
		return
	}
	if sess.running() {
		writeJSON(w, http.StatusOK, wire.ResultResponse{State: wire.StateComputing})
		return
	}
	state, res, serr := sess.outcome()
	resp := wire.ResultResponse{State: state}
	if res != nil {
		enc := wire.FromResult(res)
		resp.Result = &enc
	}
	if serr != nil {
		resp.Error = serr.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess.cancel(errClientClosed)
	<-sess.done
	writeJSON(w, http.StatusOK, map[string]string{"state": wire.StateClosed})
}
