package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/server/wire"
	"innsearch/internal/user"
)

// Store admission errors; the handlers map them to 429 and 503.
var (
	errAtCapacity = errors.New("server: at max concurrent sessions")
	errDraining   = errors.New("server: draining, not accepting sessions")
	errEvicted    = errors.New("server: session evicted after idle timeout")
)

// session is one hosted interactive session: the engine goroutine runs
// RunContext against the remote (or simulated) user while handlers talk
// to it through remote and the done channel.
type session struct {
	id      string
	remote  *user.Remote // nil for server-driven (heuristic/oracle) users
	cancel  context.CancelCauseFunc
	done    chan struct{} // closed when the engine goroutine returns
	created time.Time

	mu        sync.Mutex
	lastTouch time.Time
	state     string // wire.State* (computing/awaiting are both "running" here)
	result    *core.Result
	err       error
}

// running reports whether the engine goroutine is still alive.
func (s *session) running() bool {
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// touch refreshes the idle clock.
func (s *session) touch() {
	s.mu.Lock()
	s.lastTouch = time.Now()
	s.mu.Unlock()
}

// idle returns how long the session has gone without client contact.
func (s *session) idle() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Since(s.lastTouch)
}

// finish records the engine outcome exactly once.
func (s *session) finish(res *core.Result, err error) {
	s.mu.Lock()
	s.result = res
	s.err = err
	switch {
	case err == nil:
		s.state = wire.StateDone
	case errors.Is(err, errEvicted):
		s.state = wire.StateEvicted
	case errors.Is(err, errClientClosed):
		s.state = wire.StateClosed
	default:
		s.state = wire.StateFailed
	}
	s.mu.Unlock()
	close(s.done)
}

// outcome returns the final state once done is closed.
func (s *session) outcome() (string, *core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.result, s.err
}

var errClientClosed = errors.New("server: session closed by client")

// store is the concurrent session table: admission control (max live
// sessions, drain), ID allocation, and TTL eviction. Finished sessions
// linger for one TTL so clients can still fetch their result, then their
// entries are dropped; evicted sessions linger as tombstones for one more
// TTL so a late decision gets a clear 410 rather than a 404.
type store struct {
	maxSessions int
	ttl         time.Duration
	metrics     *metrics

	mu       sync.Mutex
	sessions map[string]*session
	draining bool

	stop     chan struct{}
	sweeper  sync.WaitGroup
	stopOnce sync.Once
}

func newStore(maxSessions int, ttl, sweepEvery time.Duration, m *metrics) *store {
	st := &store{
		maxSessions: maxSessions,
		ttl:         ttl,
		metrics:     m,
		sessions:    make(map[string]*session),
		stop:        make(chan struct{}),
	}
	if sweepEvery <= 0 {
		sweepEvery = ttl / 4
		if sweepEvery <= 0 {
			sweepEvery = time.Second
		}
	}
	st.sweeper.Add(1)
	go st.sweepLoop(sweepEvery)
	return st
}

// add admits a new session, enforcing drain and capacity. The caller
// fills in the session's engine goroutine after admission.
func (st *store) add(s *session) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.draining {
		return errDraining
	}
	live := 0
	for _, other := range st.sessions {
		if other.running() {
			live++
		}
	}
	if live >= st.maxSessions {
		return errAtCapacity
	}
	st.sessions[s.id] = s
	return nil
}

// get looks a session up and refreshes its idle clock.
func (st *store) get(id string) (*session, bool) {
	st.mu.Lock()
	s, ok := st.sessions[id]
	st.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// active counts live sessions.
func (st *store) active() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.sessions {
		if s.running() {
			n++
		}
	}
	return n
}

func (st *store) isDraining() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.draining
}

// sweepLoop evicts idle sessions and reaps old tombstones.
func (st *store) sweepLoop(every time.Duration) {
	defer st.sweeper.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-ticker.C:
			st.sweep()
		}
	}
}

func (st *store) sweep() {
	st.mu.Lock()
	var evict []*session
	for id, s := range st.sessions {
		idle := s.idle()
		switch {
		case s.running() && idle > st.ttl:
			evict = append(evict, s)
		case !s.running() && idle > 2*st.ttl:
			delete(st.sessions, id)
		}
	}
	st.mu.Unlock()
	for _, s := range evict {
		s.cancel(fmt.Errorf("%w (idle %v > ttl %v)", errEvicted, s.idle().Round(time.Millisecond), st.ttl))
		st.metrics.SessionsEvicted.Add(1)
	}
}

// drain stops admitting sessions and waits for the live ones to finish,
// up to ctx's deadline; stragglers are then canceled.
func (st *store) drain(ctx context.Context) {
	st.mu.Lock()
	st.draining = true
	live := make([]*session, 0, len(st.sessions))
	for _, s := range st.sessions {
		if s.running() {
			live = append(live, s)
		}
	}
	st.mu.Unlock()
	for _, s := range live {
		select {
		case <-s.done:
		case <-ctx.Done():
			s.cancel(fmt.Errorf("server: shutdown: %w", context.Cause(ctx)))
		}
	}
}

// close cancels everything and stops the sweeper. Safe to call more than
// once.
func (st *store) close() {
	st.stopOnce.Do(func() { close(st.stop) })
	st.sweeper.Wait()
	st.mu.Lock()
	live := make([]*session, 0, len(st.sessions))
	for _, s := range st.sessions {
		if s.running() {
			live = append(live, s)
		}
	}
	st.mu.Unlock()
	for _, s := range live {
		s.cancel(errors.New("server: shutting down"))
		<-s.done
	}
}

// newSessionID returns an unguessable 16-hex-digit session ID.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for a server; fall back to
		// a time-derived ID rather than crash the request.
		return fmt.Sprintf("s%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
