package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"log/slog"

	"innsearch/internal/dataset"
	"innsearch/internal/server/wire"
	"innsearch/internal/telemetry"
)

// updateMetrics regenerates the /metrics golden file:
// go test ./internal/server -run MetricsGolden -update-metrics
var updateMetrics = flag.Bool("update-metrics", false, "rewrite the /metrics golden file")

// TestMetricsGolden pins the full Prometheus exposition of a fresh server:
// every metric family, its HELP/TYPE lines, bucket layout, and zero
// values. Scraped before any traffic so every sample is deterministic
// (the resident-bytes gauge comes from the fixed test dataset). A change
// to this file is a change to the monitoring contract — review renames
// and removals as breaking.
func TestMetricsGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	path := filepath.Join("testdata", "metrics_golden.txt")
	if *updateMetrics {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-metrics to create): %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("/metrics drifted from golden file.\n got:\n%s\nwant:\n%s", body, want)
	}
}

// TestMetricsConcurrentScrape hammers /metrics and /varz while sessions
// run — the race detector's view of the lock-free histograms, the pool
// gauges, and the middleware. Run with -race.
func TestMetricsConcurrentScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Datasets:    map[string]*dataset.Dataset{"test": testData(t, 240, 11)},
		MaxSessions: 16,
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/varz"} {
					resp, err := ts.Client().Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	var sessions sync.WaitGroup
	for i := 0; i < 8; i++ {
		sessions.Add(1)
		go func(i int) {
			defer sessions.Done()
			c := newClient(t, ts)
			row := i % 240
			created := c.createSession(wire.CreateSessionRequest{
				Dataset: "test", QueryRow: &row,
				Config: wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 1, Workers: 2},
			})
			c.driveSession(created.ID, func(seq int, p *wire.Profile) wire.Decision {
				return wire.Decision{Tau: 0.5 * p.QueryDensity}
			})
		}(i)
	}
	sessions.Wait()
	close(stop)
	wg.Wait()
}

// TestRequestIDMiddleware checks the request-identification contract: a
// generated X-Request-Id on every response, inbound IDs honored, and one
// structured log line per request carrying method, path, status, and —
// on session routes — the session ID.
func TestRequestIDMiddleware(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	// Generated ID.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); len(id) != 16 {
		t.Errorf("generated X-Request-Id = %q, want 16 hex chars", id)
	}

	// Inbound ID honored and echoed.
	req, _ := http.NewRequest("GET", ts.URL+"/varz", nil)
	req.Header.Set("X-Request-Id", "req-from-proxy-01")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "req-from-proxy-01" {
		t.Errorf("inbound X-Request-Id not echoed: got %q", id)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("varz Cache-Control = %q, want no-store", cc)
	}

	// A session route's log line carries the session ID.
	c := newClient(t, ts)
	row := 0
	created := c.createSession(wire.CreateSessionRequest{
		Dataset: "test", QueryRow: &row, User: "heuristic",
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 1},
	})
	var res wire.ResultResponse
	c.do("GET", "/v1/sessions/"+created.ID+"/result?wait=10s", nil, &res)

	lines := parseLogLines(t, logBuf.String())
	var sawVarz, sawCreate, sawResult bool
	for _, ln := range lines {
		switch {
		case ln["path"] == "/varz" && ln["request"] == "req-from-proxy-01":
			sawVarz = true
		case ln["path"] == "/v1/sessions" && ln["session"] == created.ID:
			sawCreate = true
		case ln["session"] == created.ID && ln["method"] == "GET":
			sawResult = true
		}
		if ln["path"] != "" {
			for _, key := range []string{"request", "method", "status", "duration_ms", "bytes"} {
				if _, ok := ln[key]; !ok {
					t.Errorf("log line %v missing %q", ln, key)
				}
			}
		}
	}
	if !sawVarz || !sawCreate || !sawResult {
		t.Errorf("log lines missing: varz=%v create=%v result=%v\n%s",
			sawVarz, sawCreate, sawResult, logBuf.String())
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func parseLogLines(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// TestTelemetryReconstruction is the acceptance check of the
// observability PR: one interactive session must be reconstructible
// end-to-end from telemetry alone. A single request ID (sent by the
// client that created the session) links the structured request log, the
// JSONL trace stream, and the metrics; the trace carries at least six
// distinct event types for the session.
func TestTelemetryReconstruction(t *testing.T) {
	var logBuf syncBuffer
	var traceBuf syncBuffer
	_, ts := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Trace:  telemetry.NewJSONL(&traceBuf),
	})

	const reqID = "e2e-reconstruct-001"
	body, _ := json.Marshal(wire.CreateSessionRequest{
		Dataset: "test", QueryRow: intPtr(3),
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 2, Workers: 1},
	})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", reqID)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var created wire.CreateSessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	c := newClient(t, ts)
	res := c.driveSession(created.ID, func(seq int, p *wire.Profile) wire.Decision {
		return wire.Decision{Tau: 0.5 * p.QueryDensity}
	})
	if res.State != wire.StateDone {
		t.Fatalf("session state %q (%s)", res.State, res.Error)
	}

	// 1. The trace stream: every event of the session carries both IDs.
	events, err := telemetry.ReadJSONL(strings.NewReader(traceBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	types := map[telemetry.EventType]bool{}
	for _, e := range events {
		if e.Session != created.ID {
			continue
		}
		if e.Request != reqID {
			t.Fatalf("event %+v: request ID %q, want %q", e, e.Request, reqID)
		}
		types[e.Type] = true
	}
	if len(types) < 6 {
		t.Errorf("trace has %d event types for the session, want ≥ 6: %v", len(types), types)
	}
	for _, must := range []telemetry.EventType{
		telemetry.EventSessionStart, telemetry.EventSessionEnd,
		telemetry.EventIteration, telemetry.EventView,
		telemetry.EventDecisionWait, telemetry.EventKDEBuild,
	} {
		if !types[must] {
			t.Errorf("trace missing %s events", must)
		}
	}

	// 2. The request log: the creating request's line carries the same
	// request ID and session ID.
	var linked bool
	for _, ln := range parseLogLines(t, logBuf.String()) {
		if ln["request"] == reqID && ln["session"] == created.ID {
			linked = true
		}
	}
	if !linked {
		t.Errorf("no log line links request %q to session %q:\n%s", reqID, created.ID, logBuf.String())
	}

	// 3. The metrics: the histograms fed by this session's events are
	// non-empty.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"innsearch_view_latency_seconds_count",
		"innsearch_decision_wait_seconds_count",
		"innsearch_kde_build_seconds_count",
		"innsearch_iteration_duration_seconds_count",
		"innsearch_sessions_done_total",
	} {
		if !scrapeHasNonZero(string(mbody), family) {
			t.Errorf("/metrics: %s is zero or missing after the session", family)
		}
	}
}

func intPtr(v int) *int { return &v }

// scrapeHasNonZero reports whether the exposition has a sample for name
// with a nonzero value.
func scrapeHasNonZero(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		val := strings.TrimSpace(strings.TrimPrefix(line, name))
		return val != "0" && val != ""
	}
	return false
}
