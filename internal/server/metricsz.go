package server

import (
	"net/http"
	"time"

	"innsearch/internal/parallel"
	"innsearch/internal/telemetry"
)

// metricsBridge adapts the server's histogram set to the engine's Tracer
// interface: every hosted session gets one installed (composed with the
// optional JSONL trace sink), so the latency histograms are fed by the
// same events operators see in the trace stream — one source of truth for
// both.
type metricsBridge struct{ m *metrics }

func (b metricsBridge) Now() time.Time { return time.Now() }

func (b metricsBridge) Emit(e telemetry.Event) {
	const sec = 1.0 / 1000 // events carry milliseconds; histograms observe seconds
	switch e.Type {
	case telemetry.EventView:
		b.m.viewLatency.Observe(e.DurationMS * sec)
	case telemetry.EventDecisionWait:
		b.m.decisionWait.Observe(e.DurationMS * sec)
	case telemetry.EventKDEBuild:
		b.m.kdeBuild.Observe(e.DurationMS * sec)
	case telemetry.EventIteration:
		b.m.iteration.Observe(e.DurationMS * sec)
	case telemetry.EventProjectionStage:
		b.m.projectionStage.Observe(e.DurationMS * sec)
	case telemetry.EventIndexBuild:
		b.m.indexBuild.Observe(e.DurationMS * sec)
	case telemetry.EventIndexDerive:
		b.m.IndexDerives.Add(1)
		b.m.indexDerive.Observe(e.DurationMS * sec)
	case telemetry.EventCandidateGen:
		b.m.candidateGen.Observe(e.DurationMS * sec)
	case telemetry.EventShardGather:
		b.m.observeShardGather(e.Shard, e.DurationMS*sec)
	}
}

// sessionTracer composes the tracer installed on a hosted session: the
// metrics bridge, the /debug/sessions live watcher, and the server's
// optional trace sink, with session and request IDs stamped on every
// event.
func (s *Server) sessionTracer(sessionID, requestID string) telemetry.Tracer {
	return telemetry.WithIDs(telemetry.Multi(metricsBridge{m: s.metrics}, s.debugz, s.trace), sessionID, requestID)
}

// boolGauge renders a boolean as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleMetrics serves the Prometheus text exposition (format 0.0.4) of
// every counter, gauge, and histogram the server tracks. Families are
// written in a fixed order so the output is stable for golden tests and
// diffable between scrapes.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	m := s.metrics
	p := telemetry.NewPromWriter(w)

	p.Counter("innsearch_sessions_created_total", "Interactive sessions admitted.", m.SessionsCreated.Load())
	p.Counter("innsearch_sessions_done_total", "Sessions that finished with a result.", m.SessionsDone.Load())
	p.Counter("innsearch_sessions_failed_total", "Sessions that ended in an engine error.", m.SessionsFailed.Load())
	p.Counter("innsearch_sessions_evicted_total", "Sessions evicted after the idle TTL.", m.SessionsEvicted.Load())
	p.Counter("innsearch_sessions_rejected_total", "Session creations refused by capacity or drain.", m.SessionsRejected.Load())
	p.Counter("innsearch_sessions_closed_total", "Sessions closed by client DELETE.", m.SessionsClosed.Load())
	p.Counter("innsearch_views_served_total", "Long-poll responses that carried a visual profile.", m.ViewsServed.Load())
	p.Counter("innsearch_decisions_total", "Separator decisions accepted.", m.Decisions.Load())
	p.Counter("innsearch_decisions_rejected_total", "Decisions rejected as stale, expired, or closed.", m.DecisionsRejected.Load())
	p.Counter("innsearch_previews_total", "Density-separated region previews served.", m.Previews.Load())
	p.Counter("innsearch_batch_searches_total", "Batch search requests.", m.BatchSearches.Load())
	p.Counter("innsearch_batch_queries_total", "Individual queries across batch searches.", m.BatchQueries.Load())

	p.Gauge("innsearch_active_sessions", "Sessions whose engine goroutine is live.", float64(s.store.active()))
	p.Gauge("innsearch_draining", "1 while the server refuses new sessions for shutdown.", boolGauge(s.store.isDraining()))
	p.Gauge("innsearch_live_session_views", "Dataset views held open by running sessions.", float64(m.LiveSessionViews.Load()))
	p.Gauge("innsearch_resident_dataset_bytes", "Bytes held by the preloaded immutable point stores.", float64(s.residentBytes))
	poolActive, poolQueued := parallel.Stats()
	p.Gauge("innsearch_parallel_active_workers", "Worker-pool goroutines currently executing work items.", float64(poolActive))
	p.Gauge("innsearch_parallel_queued_tasks", "Worker-pool work items accepted but not yet claimed.", float64(poolQueued))

	p.Histogram("innsearch_view_latency_seconds", "Engine time to build one visual profile.", m.viewLatency.Snapshot())
	p.Histogram("innsearch_decision_wait_seconds", "Wall time a view waited for its separator decision.", m.decisionWait.Snapshot())
	p.Histogram("innsearch_kde_build_seconds", "Kernel-density grid construction time per view.", m.kdeBuild.Snapshot())
	p.Histogram("innsearch_iteration_duration_seconds", "Major-iteration duration across hosted sessions.", m.iteration.Snapshot())
	p.Histogram("innsearch_batch_search_seconds", "End-to-end duration of /v1/search requests.", m.batchSearch.Snapshot())
	p.Histogram("innsearch_projection_stage_seconds", "Per-halving-stage cost of the graded projection search.", m.projectionStage.Snapshot())
	p.Histogram("innsearch_index_build_seconds", "Candidate-generation index build time per view generation.", m.indexBuild.Snapshot())
	p.Histogram("innsearch_index_derive_seconds", "Candidate-generation index derivation time (child index derived from a parent in O(n')).", m.indexDerive.Snapshot())
	p.Histogram("innsearch_candidate_gen_seconds", "Candidate-generation query time per nearest-s scan.", m.candidateGen.Snapshot())
	p.Histogram("innsearch_shard_gather_seconds", "Per-shard partial gather latency across sharded sessions, merged over shard indices.", m.shardGatherMerged().Snapshot())

	_ = p.Err() // the client is gone if writing failed; nothing to do
}
