package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"innsearch/internal/dataset"
	"innsearch/internal/server/wire"
)

// TestShardedServer drives a server whose default partition width is 4
// through a batch search and checks the full sharded observability chain:
// the coordinator's shard_gather events must reach the /metrics merged
// histogram family and the /varz shard block, and the sharded result must
// agree with an unsharded server's on the same workload.
func TestShardedServer(t *testing.T) {
	ds := testData(t, 240, 11)
	run := func(shards int) wire.SearchResponse {
		t.Helper()
		_, ts := newTestServer(t, Config{
			Datasets: map[string]*dataset.Dataset{"test": ds},
			Shards:   shards,
		})
		c := newClient(t, ts)
		var resp wire.SearchResponse
		code := c.do("POST", "/v1/search", wire.SearchRequest{
			Dataset:   "test",
			QueryRows: []int{3},
			User:      "oracle",
			Config:    wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 1, Workers: 2},
		}, &resp)
		if code != http.StatusOK {
			t.Fatalf("search (shards=%d): status %d", shards, code)
		}
		if len(resp.Results) != 1 || resp.Errors[0] != "" {
			t.Fatalf("search (shards=%d): results=%d err=%q", shards, len(resp.Results), resp.Errors[0])
		}
		if shards > 1 {
			// The coordinator ran: gather latency must be visible on both
			// introspection surfaces.
			metricsResp, err := ts.Client().Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(metricsResp.Body)
			metricsResp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			text := string(body)
			if !strings.Contains(text, "innsearch_shard_gather_seconds_bucket") {
				t.Error("/metrics is missing the innsearch_shard_gather_seconds family")
			}
			if strings.Contains(text, "innsearch_shard_gather_seconds_count 0\n") {
				t.Error("sharded session fed no shard_gather observations")
			}
			var v varz
			if code := c.do("GET", "/varz", nil, &v); code != http.StatusOK {
				t.Fatalf("varz: status %d", code)
			}
			if v.Shard.DefaultShards != shards {
				t.Errorf("varz shard.default_shards = %d, want %d", v.Shard.DefaultShards, shards)
			}
			if v.Shard.Gather.Count == 0 {
				t.Error("varz shard.gather has no observations")
			}
			if len(v.Shard.GatherByShard) != shards {
				t.Errorf("varz shard.gather_by_shard has %d entries, want %d", len(v.Shard.GatherByShard), shards)
			}
		}
		return resp
	}

	base := run(0)
	sharded := run(4)
	br, sr := base.Results[0], sharded.Results[0]
	if len(sr.Neighbors) != len(br.Neighbors) {
		t.Fatalf("sharded returned %d neighbors, unsharded %d", len(sr.Neighbors), len(br.Neighbors))
	}
	ids := func(r *wire.Result) map[int]bool {
		m := make(map[int]bool, len(r.Neighbors))
		for _, nb := range r.Neighbors {
			m[nb.ID] = true
		}
		return m
	}
	bi, si := ids(br), ids(sr)
	for id := range bi {
		if !si[id] {
			t.Errorf("unsharded neighbor %d missing from sharded result", id)
		}
	}
}

// TestShardedConfigValidation pins the rejection surfaces: a negative
// server default fails construction, and negative wire values fail the
// session-create request.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := New(Config{
		Datasets: map[string]*dataset.Dataset{"test": testData(t, 60, 3)},
		Shards:   -1,
	}); err == nil {
		t.Error("New accepted a negative shard count")
	}
	_, ts := newTestServer(t, Config{})
	c := newClient(t, ts)
	for _, cfg := range []wire.SessionConfig{{Shards: -2}, {Workers: -1}} {
		var errResp wire.Error
		code := c.do("POST", "/v1/sessions", wire.CreateSessionRequest{
			Dataset: "test", QueryRow: intPtr(3), User: "heuristic", Config: cfg,
		}, &errResp)
		if code != http.StatusBadRequest {
			t.Errorf("create with %+v: status %d, want 400", cfg, code)
		}
	}
}
