package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"innsearch/internal/core"
	"innsearch/internal/dataset"
	"innsearch/internal/server/wire"
	"innsearch/internal/synth"
	"innsearch/internal/user"
)

// testData builds a small labeled clustered dataset (the paper's Case 1
// workload, shrunk) shared by the HTTP tests.
func testData(t *testing.T, n int, seed int64) *dataset.Dataset {
	t.Helper()
	pd, err := synth.Case1(n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return pd.Data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Datasets == nil {
		cfg.Datasets = map[string]*dataset.Dataset{"test": testData(t, 240, 11)}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// client is a minimal JSON/HTTP test client for the protocol.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func newClient(t *testing.T, ts *httptest.Server) *client {
	return &client{t: t, base: ts.URL, http: ts.Client()}
}

// do runs a request and decodes the JSON body into out (unless nil),
// returning the status code.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("%s %s: bad body %q: %v", method, path, data, err)
		}
	}
	return resp.StatusCode
}

func (c *client) createSession(req wire.CreateSessionRequest) wire.CreateSessionResponse {
	c.t.Helper()
	var resp wire.CreateSessionResponse
	if code := c.do("POST", "/v1/sessions", req, &resp); code != http.StatusCreated {
		c.t.Fatalf("create session: status %d", code)
	}
	return resp
}

// driveSession answers every view with decide (which may return skip)
// until the session leaves the interactive phase, then returns the final
// result response.
func (c *client) driveSession(id string, decide func(seq int, p *wire.Profile) wire.Decision) wire.ResultResponse {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			c.t.Fatal("session did not finish in time")
		}
		var view wire.ViewResponse
		if code := c.do("GET", "/v1/sessions/"+id+"/view?wait=5s", nil, &view); code != http.StatusOK {
			c.t.Fatalf("view: status %d", code)
		}
		switch view.State {
		case wire.StateAwaiting:
			d := decide(view.Seq, view.Profile)
			var dr wire.DecisionResponse
			code := c.do("POST", "/v1/sessions/"+id+"/decision",
				wire.DecisionRequest{Seq: view.Seq, Decision: d}, &dr)
			if code != http.StatusOK {
				c.t.Fatalf("decision for view %d: status %d", view.Seq, code)
			}
		case wire.StateComputing:
			// long-poll again
		default:
			var res wire.ResultResponse
			if code := c.do("GET", "/v1/sessions/"+id+"/result?wait=5s", nil, &res); code != http.StatusOK {
				c.t.Fatalf("result: status %d", code)
			}
			return res
		}
	}
}

// sessionWireConfig is the configuration both halves of the end-to-end
// comparison run with.
var sessionWireConfig = wire.SessionConfig{
	Mode:               "axis",
	GridSize:           24,
	MaxMajorIterations: 2,
	Workers:            1,
}

// TestEndToEndMatchesInProcess is the acceptance test of the serving
// subsystem: a session scripted over real HTTP returns byte-identical
// wire JSON — same neighbors, same probabilities, same diagnosis — to the
// same session run in-process.
func TestEndToEndMatchesInProcess(t *testing.T) {
	ds := testData(t, 240, 11)
	queryRow := 3

	// In-process reference: heuristic user, transcript recorded.
	coreCfg, err := sessionWireConfig.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	transcript, obs := core.NewTranscript(false)
	refCfg := coreCfg
	refCfg.Observer = obs
	sess, err := core.NewSession(ds, ds.PointCopy(queryRow), &user.Heuristic{}, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	refResult, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(wire.FromResult(refResult))
	if err != nil {
		t.Fatal(err)
	}

	// Remote run: the recorded decisions are replayed over HTTP.
	_, ts := newTestServer(t, Config{
		Datasets: map[string]*dataset.Dataset{"test": ds},
	})
	c := newClient(t, ts)
	created := c.createSession(wire.CreateSessionRequest{
		Dataset:  "test",
		QueryRow: &queryRow,
		Config:   sessionWireConfig,
	})
	if created.N != ds.N() || created.Dim != ds.Dim() {
		t.Fatalf("created = %+v", created)
	}

	previewChecked := false
	res := c.driveSession(created.ID, func(seq int, p *wire.Profile) wire.Decision {
		if seq > len(transcript.Views) {
			t.Fatalf("remote session showed view %d but the reference showed only %d", seq, len(transcript.Views))
		}
		v := transcript.Views[seq-1]
		// The remote client sees the same projections the in-process user
		// saw, in the same order.
		if p.Major != v.Major || p.Minor != v.Minor {
			t.Fatalf("view %d is major %d minor %d; reference was %d/%d", seq, p.Major, p.Minor, v.Major, v.Minor)
		}
		if p.QueryDensity != v.QueryDensity {
			t.Fatalf("view %d query density %v, reference %v", seq, p.QueryDensity, v.QueryDensity)
		}
		if !previewChecked && !v.Skipped {
			previewChecked = true
			var pr wire.PreviewResponse
			code := c.do("GET", fmt.Sprintf("/v1/sessions/%s/preview?seq=%d&tau=%v", created.ID, seq, v.Tau), nil, &pr)
			if code != http.StatusOK {
				t.Fatalf("preview: status %d", code)
			}
			if pr.Region.SelectedCount == 0 || pr.Region.Cells == 0 {
				t.Errorf("preview at the accepted τ selected nothing: %+v", pr.Region)
			}
		}
		if v.Skipped {
			return wire.Decision{Skip: true}
		}
		return wire.Decision{Tau: v.Tau, Weight: v.Weight}
	})
	if res.State != wire.StateDone {
		t.Fatalf("remote session state %q (%s)", res.State, res.Error)
	}
	remoteJSON, err := json.Marshal(*res.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, remoteJSON) {
		t.Errorf("remote result differs from in-process result\n in-process: %.300s…\n remote:     %.300s…", refJSON, remoteJSON)
	}
}

// TestConcurrentSessions drives ≥32 simultaneous interactive sessions
// through the full protocol; run under -race this exercises the store,
// the remote adapters, and the engine goroutines together.
func TestConcurrentSessions(t *testing.T) {
	ds := testData(t, 120, 7)
	srv, ts := newTestServer(t, Config{
		Datasets:    map[string]*dataset.Dataset{"test": ds},
		MaxSessions: 64,
	})
	const sessions = 32
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := newClient(t, ts)
			row := i % ds.N()
			created := c.createSession(wire.CreateSessionRequest{
				Dataset:  "test",
				QueryRow: &row,
				Config: wire.SessionConfig{
					Mode: "axis", GridSize: 16, MaxMajorIterations: 1, Workers: 1,
				},
			})
			res := c.driveSession(created.ID, func(seq int, p *wire.Profile) wire.Decision {
				if seq%3 == 0 || p.QueryDensity == 0 {
					return wire.Decision{Skip: true}
				}
				// A client-side choice computed from wire data, like a
				// real remote UI.
				return wire.Decision{Tau: 0.6 * p.QueryDensity}
			})
			if res.State != wire.StateDone {
				errs <- fmt.Errorf("session %d: state %q (%s)", i, res.State, res.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	v := srv.metrics.snapshot(srv.store.active(), false, srv.residentBytes, 0, 0, "", 0)
	if v.SessionsDone != sessions {
		t.Errorf("varz sessions_done = %d, want %d", v.SessionsDone, sessions)
	}
	// Every view built by the engine lands in the view-latency histogram;
	// decision waits (answered and skipped alike) land in decision_wait.
	if v.Decisions == 0 {
		t.Error("varz decisions = 0, want > 0")
	}
	if v.ViewLatency.Count == 0 || v.ViewLatency.Count != v.KDEBuild.Count {
		t.Errorf("varz view_latency count = %d, kde_build count = %d, want equal and > 0",
			v.ViewLatency.Count, v.KDEBuild.Count)
	}
	if v.DecisionWait.Count < v.Decisions {
		t.Errorf("varz decision_wait count = %d < decisions %d", v.DecisionWait.Count, v.Decisions)
	}
	if v.Iteration.Count == 0 {
		t.Error("varz iteration count = 0, want > 0")
	}
	if v.ResidentDatasetBytes <= 0 {
		t.Errorf("varz resident_dataset_bytes = %d, want > 0", v.ResidentDatasetBytes)
	}
	if v.LiveSessionViews != 0 {
		t.Errorf("varz live_session_views = %d after all sessions finished, want 0", v.LiveSessionViews)
	}
}

// TestTTLEvictionVisibleInVarz abandons a session and watches the TTL
// sweeper evict it, via /varz like an operator would.
func TestTTLEvictionVisibleInVarz(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Datasets:      map[string]*dataset.Dataset{"test": testData(t, 120, 7)},
		SessionTTL:    80 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
		ViewTimeout:   -1, // isolate TTL eviction from the view deadline
	})
	c := newClient(t, ts)
	row := 0
	created := c.createSession(wire.CreateSessionRequest{
		Dataset: "test", QueryRow: &row,
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 1},
	})

	// Abandon it: no client contact at all. Poll /varz (which touches no
	// session) until the sweeper reports the eviction.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var v varz
		if code := c.do("GET", "/varz", nil, &v); code != http.StatusOK {
			t.Fatalf("varz: status %d", code)
		}
		if v.SessionsEvicted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction never showed up in /varz")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The tombstone must reject interaction with a clear error, not 404.
	var errResp wire.Error
	code := c.do("POST", "/v1/sessions/"+created.ID+"/decision",
		wire.DecisionRequest{Seq: 1, Decision: wire.Decision{Tau: 1}}, &errResp)
	if code != http.StatusGone {
		t.Fatalf("decision on evicted session: status %d (%s)", code, errResp.Error)
	}
	if !strings.Contains(errResp.Error, "evicted") {
		t.Errorf("eviction error not explained: %q", errResp.Error)
	}
	var view wire.ViewResponse
	if code := c.do("GET", "/v1/sessions/"+created.ID+"/view", nil, &view); code != http.StatusOK {
		t.Fatalf("view on evicted session: status %d", code)
	}
	if view.State != wire.StateEvicted {
		t.Errorf("view state = %q, want evicted", view.State)
	}
}

// TestViewTimeoutAbortsSessionOverHTTP lets a view deadline expire and
// checks the late decision is rejected and the session reports failure.
func TestViewTimeoutAbortsSessionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Datasets:    map[string]*dataset.Dataset{"test": testData(t, 120, 7)},
		ViewTimeout: 60 * time.Millisecond,
	})
	c := newClient(t, ts)
	row := 0
	created := c.createSession(wire.CreateSessionRequest{
		Dataset: "test", QueryRow: &row,
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 1},
	})
	// Fetch the first view, then miss its deadline.
	var view wire.ViewResponse
	for view.State != wire.StateAwaiting {
		if code := c.do("GET", "/v1/sessions/"+created.ID+"/view?wait=5s", nil, &view); code != http.StatusOK {
			t.Fatalf("view: status %d", code)
		}
		if view.State == wire.StateFailed {
			t.Fatalf("session failed before showing a view: %s", view.Error)
		}
	}
	var res wire.ResultResponse
	if code := c.do("GET", "/v1/sessions/"+created.ID+"/result?wait=5s", nil, &res); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if res.State != wire.StateFailed || !strings.Contains(res.Error, "deadline") {
		t.Fatalf("result after missed deadline = %q (%s), want failed with deadline error", res.State, res.Error)
	}
	var errResp wire.Error
	code := c.do("POST", "/v1/sessions/"+created.ID+"/decision",
		wire.DecisionRequest{Seq: view.Seq, Decision: wire.Decision{Tau: 1}}, &errResp)
	if code != http.StatusGone && code != http.StatusConflict {
		t.Fatalf("late decision: status %d (%s)", code, errResp.Error)
	}
	if errResp.Error == "" {
		t.Error("late decision rejected without an explanation")
	}
}

func TestCapacityBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	c := newClient(t, ts)
	row := 0
	first := c.createSession(wire.CreateSessionRequest{
		Dataset: "test", QueryRow: &row,
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16},
	})
	var errResp wire.Error
	code := c.do("POST", "/v1/sessions", wire.CreateSessionRequest{
		Dataset: "test", QueryRow: &row,
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16},
	}, &errResp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity create: status %d", code)
	}
	// Deleting the first session frees the slot.
	if code := c.do("DELETE", "/v1/sessions/"+first.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	var resp wire.CreateSessionResponse
	if code := c.do("POST", "/v1/sessions", wire.CreateSessionRequest{
		Dataset: "test", QueryRow: &row,
		Config: wire.SessionConfig{Mode: "axis", GridSize: 16},
	}, &resp); code != http.StatusCreated {
		t.Fatalf("create after delete: status %d", code)
	}
}

func TestBatchSearchEndpoint(t *testing.T) {
	ds := testData(t, 240, 11)
	_, ts := newTestServer(t, Config{Datasets: map[string]*dataset.Dataset{"test": ds}})
	c := newClient(t, ts)
	var resp wire.SearchResponse
	code := c.do("POST", "/v1/search", wire.SearchRequest{
		Dataset:   "test",
		QueryRows: []int{3, 40},
		User:      "oracle",
		Config:    wire.SessionConfig{Mode: "axis", GridSize: 16, MaxMajorIterations: 1, Workers: 2},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if len(resp.Results) != 2 || len(resp.Errors) != 2 {
		t.Fatalf("results/errors = %d/%d, want 2/2", len(resp.Results), len(resp.Errors))
	}
	for i := range resp.Results {
		if resp.Errors[i] != "" {
			t.Errorf("query %d failed: %s", i, resp.Errors[i])
			continue
		}
		if len(resp.Results[i].Neighbors) == 0 {
			t.Errorf("query %d returned no neighbors", i)
		}
	}
	// Oracle with raw query vectors must be refused.
	var errResp wire.Error
	code = c.do("POST", "/v1/search", wire.SearchRequest{
		Dataset: "test",
		Queries: [][]float64{make([]float64, ds.Dim())},
		User:    "oracle",
	}, &errResp)
	if code != http.StatusBadRequest {
		t.Fatalf("oracle with query vectors: status %d", code)
	}
}

func TestHealthzDatasetsAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := newClient(t, ts)
	var health struct {
		Status string `json:"status"`
	}
	if code := c.do("GET", "/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %q", code, health.Status)
	}
	var dsResp wire.DatasetsResponse
	if code := c.do("GET", "/v1/datasets", nil, &dsResp); code != http.StatusOK {
		t.Fatal("datasets endpoint failed")
	}
	if len(dsResp.Datasets) != 1 || dsResp.Datasets[0].Name != "test" || !dsResp.Datasets[0].Labeled {
		t.Fatalf("datasets = %+v", dsResp.Datasets)
	}

	row := 0
	for name, req := range map[string]wire.CreateSessionRequest{
		"unknown dataset": {Dataset: "nope", QueryRow: &row},
		"no query":        {Dataset: "test"},
		"both queries":    {Dataset: "test", QueryRow: &row, Query: []float64{1}},
		"bad mode":        {Dataset: "test", QueryRow: &row, Config: wire.SessionConfig{Mode: "spiral"}},
		"bad user":        {Dataset: "test", QueryRow: &row, User: "psychic"},
	} {
		var errResp wire.Error
		code := c.do("POST", "/v1/sessions", req, &errResp)
		if code != http.StatusBadRequest && code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 4xx (%s)", name, code, errResp.Error)
		}
		if errResp.Error == "" {
			t.Errorf("%s: no error message", name)
		}
	}
	if code := c.do("GET", "/v1/sessions/deadbeef/view", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown session view: status %d", code)
	}
}

// TestScriptedSessionAgainstExternal drives a full interactive session
// against an already running innsearchd (CI builds the binary, starts
// it, and points this test at it via INNSEARCHD_URL). Skipped otherwise.
func TestScriptedSessionAgainstExternal(t *testing.T) {
	base := os.Getenv("INNSEARCHD_URL")
	if base == "" {
		t.Skip("INNSEARCHD_URL not set")
	}
	c := &client{t: t, base: base, http: &http.Client{Timeout: 30 * time.Second}}
	var dsResp wire.DatasetsResponse
	if code := c.do("GET", "/v1/datasets", nil, &dsResp); code != http.StatusOK || len(dsResp.Datasets) == 0 {
		t.Fatalf("external server has no datasets (status %d)", code)
	}
	name := dsResp.Datasets[0].Name
	row := 1
	created := c.createSession(wire.CreateSessionRequest{
		Dataset: name, QueryRow: &row,
		Config: wire.SessionConfig{Mode: "axis", GridSize: 24, MaxMajorIterations: 2, Workers: 1},
	})
	res := c.driveSession(created.ID, func(seq int, p *wire.Profile) wire.Decision {
		if p.PeakRatio < 0.1 {
			return wire.Decision{Skip: true}
		}
		return wire.Decision{Tau: 0.5 * p.QueryDensity}
	})
	if res.State != wire.StateDone {
		t.Fatalf("external session state %q (%s)", res.State, res.Error)
	}
	if res.Result == nil || len(res.Result.Neighbors) == 0 {
		t.Fatal("external session returned no neighbors")
	}
	t.Logf("external session: %d iterations, %d/%d views answered, meaningful=%v",
		res.Result.Iterations, res.Result.ViewsAnswered, res.Result.ViewsShown, res.Result.Diagnosis.Meaningful)
}
